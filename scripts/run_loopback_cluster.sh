#!/usr/bin/env bash
# Launches an N-process CCM cluster on 127.0.0.1 and checks that its final
# backing-storage bytes are identical to an in-process ccm_stress run of the
# same deterministic workload. This is the acceptance check for the socket
# transport: same runtime, same RNG streams, different deployment — the
# bytes must not care.
#
# Usage: run_loopback_cluster.sh [build-dir] [nodes] [iters] [port-base]
#
# LOCKCHECK=1 arms the lock-order watchdog in every process (--lockcheck);
# LOCKCHECK_REPORT_DIR names a directory that collects per-process violation
# dumps (the CI failure artifact).
#
# METRICS_DIR=<dir> turns on the telemetry harness: every process dumps a
# binary metrics snapshot and a runtime span log there, node 0 additionally
# scrapes the whole cluster over kStatsPull into cluster_metrics.json, and
# tools/ccm_metrics cross-checks the offline merge and writes the combined
# Perfetto trace runtime_trace.json (CI uploads the directory).
set -euo pipefail

BUILD="${1:-build}"
NODES="${2:-3}"
ITERS="${3:-400}"
PORT_BASE="${4:-37400}"
FILES=48
WORK=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

COMMON=(--nodes="$NODES" --drivers="$NODES" --files="$FILES" \
        --iters="$ITERS" --deterministic-writes)
if [[ "${LOCKCHECK:-0}" == "1" ]]; then
  COMMON+=(--lockcheck)
  REPORT_DIR="${LOCKCHECK_REPORT_DIR:-$WORK}"
  mkdir -p "$REPORT_DIR"
  echo "== lock-order watchdog armed (reports -> $REPORT_DIR) =="
fi
lockcheck_report() {  # lockcheck_report <name> -> per-process report flag
  if [[ "${LOCKCHECK:-0}" == "1" ]]; then
    echo "--lockcheck-report=$REPORT_DIR/lockcheck-$1.txt"
  fi
}

METRICS_DIR="${METRICS_DIR:-}"
NODE_METRICS=()
if [[ -n "$METRICS_DIR" ]]; then
  mkdir -p "$METRICS_DIR"
  # --scrape on every node: all processes hold the post-run barrier while
  # node 0 pulls their registries over kStatsPull.
  NODE_METRICS=(--scrape)
  echo "== telemetry armed (artifacts -> $METRICS_DIR) =="
fi
node_metrics() {  # node_metrics <i> -> per-process telemetry flags
  if [[ -n "$METRICS_DIR" ]]; then
    echo "--metrics-out=$METRICS_DIR/node$1.ccms" \
         "--runtime-trace-out=$METRICS_DIR/node$1.spans" \
         "--json=$METRICS_DIR/node$1.json"
  fi
}

echo "== in-process reference (ccm_stress) =="
"$BUILD/bench/ccm_stress" "${COMMON[@]}" $(lockcheck_report stress) \
    --dump-storage="$WORK/inproc.bin"

echo "== $NODES-process loopback cluster (ccm_node) =="
SCRAPE_OUT=()
if [[ -n "$METRICS_DIR" ]]; then
  SCRAPE_OUT=(--scrape-out="$METRICS_DIR/cluster_metrics.json")
fi
for ((i = 1; i < NODES; i++)); do
  "$BUILD/bench/ccm_node" --node="$i" --port-base="$PORT_BASE" \
      "${COMMON[@]}" "${NODE_METRICS[@]:-}" $(node_metrics "$i") \
      $(lockcheck_report "node$i") >"$WORK/node$i.log" 2>&1 &
  pids+=($!)
done
"$BUILD/bench/ccm_node" --node=0 --port-base="$PORT_BASE" "${COMMON[@]}" \
    "${NODE_METRICS[@]:-}" $(node_metrics 0) "${SCRAPE_OUT[@]:-}" \
    $(lockcheck_report node0) --dump-storage="$WORK/multiproc.bin" \
    | tee "$WORK/node0.log"
rc=0
for pid in "${pids[@]}"; do
  wait "$pid" || rc=$?
done
pids=()
for ((i = 1; i < NODES; i++)); do
  sed "s/^/  [node $i] /" "$WORK/node$i.log"
done
if [[ $rc -ne 0 ]]; then
  echo "FAIL: a peer process exited non-zero" >&2
  exit 1
fi

if cmp -s "$WORK/inproc.bin" "$WORK/multiproc.bin"; then
  echo "OK: storage bytes identical across runtimes ($(md5sum <"$WORK/inproc.bin" | cut -d' ' -f1))"
else
  echo "FAIL: storage bytes differ between in-process and multi-process runs" >&2
  exit 1
fi

# The zero-copy contract over real sockets: every payload leaves as an iovec
# into the shared block buffer, so the staging-copy counter must read 0.
if grep -h "payload copies" "$WORK"/node*.log | grep -qv "payload copies 0"; then
  echo "FAIL: a node reported send-side payload copies:" >&2
  grep -h "payload copies" "$WORK"/node*.log >&2
  exit 1
fi
echo "OK: zero send-side payload copies on every node"

# Same cluster with directory batching off: the batched protocol is an
# amortization, not a semantic change, so the final storage bytes must not
# move. (Different port base: the previous mesh's sockets may linger.)
echo "== $NODES-process loopback cluster, batching off (equivalence) =="
PORT_NB=$((PORT_BASE + 100))
for ((i = 1; i < NODES; i++)); do
  "$BUILD/bench/ccm_node" --node="$i" --port-base="$PORT_NB" \
      "${COMMON[@]}" --batch=0 $(lockcheck_report "nobatch$i") \
      >"$WORK/nobatch$i.log" 2>&1 &
  pids+=($!)
done
"$BUILD/bench/ccm_node" --node=0 --port-base="$PORT_NB" "${COMMON[@]}" \
    --batch=0 $(lockcheck_report nobatch0) \
    --dump-storage="$WORK/multiproc-nobatch.bin" >"$WORK/nobatch0.log" 2>&1
rc=0
for pid in "${pids[@]}"; do
  wait "$pid" || rc=$?
done
pids=()
if [[ $rc -ne 0 ]]; then
  for ((i = 0; i < NODES; i++)); do
    sed "s/^/  [nobatch $i] /" "$WORK/nobatch$i.log"
  done
  echo "FAIL: a peer process exited non-zero in the unbatched run" >&2
  exit 1
fi
MD5_BATCHED=$(md5sum <"$WORK/multiproc.bin" | cut -d' ' -f1)
MD5_UNBATCHED=$(md5sum <"$WORK/multiproc-nobatch.bin" | cut -d' ' -f1)
if [[ "$MD5_BATCHED" == "$MD5_UNBATCHED" ]]; then
  echo "OK: batched and unbatched clusters agree byte-for-byte (md5 $MD5_BATCHED)"
else
  echo "FAIL: storage md5 differs: batched $MD5_BATCHED vs unbatched $MD5_UNBATCHED" >&2
  exit 1
fi

if [[ -n "$METRICS_DIR" ]]; then
  echo "== offline aggregation (ccm_metrics) =="
  "$BUILD/tools/ccm_metrics/ccm_metrics" \
      --json-out="$METRICS_DIR/merged_metrics.json" \
      --trace-out="$METRICS_DIR/runtime_trace.json" \
      "$METRICS_DIR"/node*.ccms "$METRICS_DIR"/node*.spans
  # The live kStatsPull scrape and the offline snapshot merge must agree on
  # coverage: one registry per process.
  for f in cluster_metrics.json merged_metrics.json; do
    procs=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['metrics']['processes'])" "$METRICS_DIR/$f")
    if [[ "$procs" != "$NODES" ]]; then
      echo "FAIL: $f covers $procs of $NODES processes" >&2
      exit 1
    fi
  done
  echo "OK: cluster-wide metrics cover all $NODES processes (live scrape + offline merge)"
fi
