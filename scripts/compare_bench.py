#!/usr/bin/env python3
"""Diff a fresh `ccm_stress --json` report against the pinned baseline.

Usage: compare_bench.py BASELINE.json FRESH.json

The job is drift *visibility*, not perf gating: CI runners are far too noisy
to fail a build on ops/s, so throughput and latency changes are reported as
percentage deltas for a human to read in the job log. What DOES fail the
build:

  * the fresh run reporting consistent: false (the workload corrupted state)
  * schema regressions — any key present in the baseline but missing from
    the fresh report (a field silently dropped from the JSON breaks every
    downstream consumer of the artifact)
  * a workload-config mismatch, which would make every delta meaningless

Exit codes: 0 ok, 1 check failed, 2 usage/IO error.
"""
import json
import sys


def walk(prefix, node, out):
    """Flattens a JSON tree into {dotted.path: leaf} (lists by index)."""
    if isinstance(node, dict):
        for k, v in node.items():
            walk(f"{prefix}.{k}" if prefix else k, v, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk(f"{prefix}[{i}]", v, out)
    else:
        out[prefix] = node


def pct(base, fresh):
    if not isinstance(base, (int, float)) or not isinstance(fresh, (int, float)):
        return None
    if base == 0:
        return None
    return 100.0 * (fresh - base) / base


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            base = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2

    failures = []

    if fresh.get("consistent") is not True:
        failures.append("fresh run reports consistent != true")

    if base.get("config") != fresh.get("config"):
        failures.append(
            f"workload config mismatch: baseline {base.get('config')} "
            f"vs fresh {fresh.get('config')}"
        )

    flat_base, flat_fresh = {}, {}
    walk("", base, flat_base)
    walk("", fresh, flat_fresh)
    missing = sorted(k for k in flat_base if k not in flat_fresh)
    if missing:
        failures.append(
            "schema regression, baseline keys missing from fresh report: "
            + ", ".join(missing[:20])
            + (" ..." if len(missing) > 20 else "")
        )

    # Headline throughput + the latency percentiles the metrics block adds.
    print(f"baseline: {argv[1]}\nfresh:    {argv[2]}")
    headline = ["ops_per_second", "elapsed_seconds"]
    percentile_keys = [
        k
        for k in flat_base
        if k.startswith("metrics.") and k.rsplit(".", 1)[-1] in
        ("p50_us", "p90_us", "p99_us", "count")
    ]
    for key in headline + sorted(percentile_keys):
        b, f = flat_base.get(key), flat_fresh.get(key)
        if b is None or f is None:
            continue
        d = pct(b, f)
        delta = f"{d:+8.1f}%" if d is not None else "      n/a"
        print(f"  {delta}  {key}: {b} -> {f}")

    # Headline summary: the throughput delta and the directory round-trip
    # delta the batching work moves (informational, not gating).
    tb, tf = base.get("ops_per_second"), fresh.get("ops_per_second")
    td = pct(tb, tf)
    if td is not None:
        print(f"throughput: {tb:.0f} -> {tf:.0f} ops/s ({td:+.1f}%)")
    rb = flat_base.get("directory_client.trips")
    rf = flat_fresh.get("directory_client.trips")
    rd = pct(rb, rf)
    if rd is not None:
        print(f"directory trips: {rb} -> {rf} ({rd:+.1f}%)")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("OK: schema intact, fresh run consistent (deltas informational)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
