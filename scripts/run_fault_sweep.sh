#!/usr/bin/env bash
# Seeded fault-schedule sweep: the acceptance harness for the fault-injection
# layer (net::FaultyTransport, docs/FAULTS.md). Two legs per seed:
#
#   in-proc   ccm_stress --drivers=1 --deterministic-writes --fault-seed=S,
#             run twice. The injected-event logs must be byte-identical
#             (the determinism contract) and the final storage bytes must
#             equal a fault-free reference run (no lost committed write).
#
#   tcp       an N-process ccm_node loopback cluster with every process
#             injecting the same generated schedule at its transport seam.
#             The home process's storage dump must equal the in-process
#             fault-free reference (convergence once faults cease), and
#             every process must exit zero with consistency OK.
#
# Usage: run_fault_sweep.sh [build-dir] [seeds] [nodes] [iters] [port-base]
#   seeds: space-separated list, e.g. "1 2 3" (default "1 2 3")
#
# FAULT_ARTIFACT_DIR, when set, collects fault logs + storage dumps (the CI
# failure artifact). AUDIT=1 additionally asserts that every run reported
# consistency OK in its JSON (`"consistent": true`).
set -euo pipefail

BUILD="${1:-build}"
SEEDS="${2:-1 2 3}"
NODES="${3:-3}"
ITERS="${4:-400}"
PORT_BASE="${5:-37600}"
FILES=48
WORK=$(mktemp -d)
ARTIFACTS="${FAULT_ARTIFACT_DIR:-$WORK}"
mkdir -p "$ARTIFACTS"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "  artifacts in $ARTIFACTS" >&2
  exit 1
}

check_consistent() {  # check_consistent <json> <label>
  if [[ "${AUDIT:-0}" == "1" ]]; then
    grep -Eq '"consistent": ?true' "$1" || fail "$2: consistency not OK"
  fi
}

# Single-driver workload: one RNG stream, so the sequence of messages
# crossing the transport — and therefore the injected-event log — is a pure
# function of the schedule seed.
COMMON=(--nodes="$NODES" --drivers=1 --files="$FILES" --iters="$ITERS" \
        --deterministic-writes)

echo "== fault-free in-process reference =="
"$BUILD/bench/ccm_stress" "${COMMON[@]}" \
    --dump-storage="$WORK/reference.bin" \
    --json="$ARTIFACTS/reference.json" >/dev/null
check_consistent "$ARTIFACTS/reference.json" "reference"

for SEED in $SEEDS; do
  echo "== seed $SEED: in-proc determinism + convergence =="
  for run in 1 2; do
    "$BUILD/bench/ccm_stress" "${COMMON[@]}" --fault-seed="$SEED" \
        --fault-log="$ARTIFACTS/faults-s$SEED-r$run.log" \
        --dump-storage="$WORK/faulted-s$SEED-r$run.bin" \
        --json="$ARTIFACTS/stress-s$SEED-r$run.json" >/dev/null
    check_consistent "$ARTIFACTS/stress-s$SEED-r$run.json" "seed $SEED run $run"
  done
  cmp -s "$ARTIFACTS/faults-s$SEED-r1.log" "$ARTIFACTS/faults-s$SEED-r2.log" \
      || fail "seed $SEED: injected-event logs differ between identical runs"
  cmp -s "$WORK/faulted-s$SEED-r1.bin" "$WORK/faulted-s$SEED-r2.bin" \
      || fail "seed $SEED: storage bytes differ between identical runs"
  cmp -s "$WORK/faulted-s$SEED-r1.bin" "$WORK/reference.bin" \
      || fail "seed $SEED: faulted storage diverged from fault-free reference"
  events=$(wc -l <"$ARTIFACTS/faults-s$SEED-r1.log")
  echo "   OK: $events injected events, log + storage deterministic"
done

# TCP leg: the multi-driver loopback cluster under the same generated
# schedules. Multiple drivers make the event log schedule-dependent, so here
# the assertion is the end state, not the log.
TCP_COMMON=(--nodes="$NODES" --drivers="$NODES" --files="$FILES" \
            --iters="$ITERS" --deterministic-writes)
echo "== fault-free tcp reference =="
"$BUILD/bench/ccm_stress" "${TCP_COMMON[@]}" \
    --dump-storage="$WORK/tcp-reference.bin" >/dev/null

for SEED in $SEEDS; do
  echo "== seed $SEED: $NODES-process tcp cluster under faults =="
  port=$((PORT_BASE + SEED * NODES))
  pids=()
  for ((i = 1; i < NODES; i++)); do
    "$BUILD/bench/ccm_node" --node="$i" --port-base="$port" \
        "${TCP_COMMON[@]}" --fault-seed="$SEED" \
        --fault-log="$ARTIFACTS/tcp-s$SEED-node$i.log" \
        --json="$ARTIFACTS/tcp-s$SEED-node$i.json" \
        >"$WORK/node$i.log" 2>&1 &
    pids+=($!)
  done
  "$BUILD/bench/ccm_node" --node=0 --port-base="$port" "${TCP_COMMON[@]}" \
      --fault-seed="$SEED" \
      --fault-log="$ARTIFACTS/tcp-s$SEED-node0.log" \
      --json="$ARTIFACTS/tcp-s$SEED-node0.json" \
      --dump-storage="$WORK/tcp-s$SEED.bin" >"$WORK/node0.log" 2>&1 \
      || { sed "s/^/  [node 0] /" "$WORK/node0.log"; fail "seed $SEED: home process failed"; }
  rc=0
  for pid in "${pids[@]}"; do
    wait "$pid" || rc=$?
  done
  pids=()
  if [[ $rc -ne 0 ]]; then
    for ((i = 1; i < NODES; i++)); do
      sed "s/^/  [node $i] /" "$WORK/node$i.log"
    done
    fail "seed $SEED: a peer process exited non-zero"
  fi
  for ((i = 0; i < NODES; i++)); do
    check_consistent "$ARTIFACTS/tcp-s$SEED-node$i.json" "seed $SEED node $i"
  done
  cmp -s "$WORK/tcp-s$SEED.bin" "$WORK/tcp-reference.bin" \
      || fail "seed $SEED: tcp storage diverged from fault-free reference"
  injected=$(cat "$ARTIFACTS"/tcp-s$SEED-node*.log | wc -l)
  echo "   OK: $injected injected events across $NODES processes, storage converged"
done

echo "OK: fault sweep green (seeds: $SEEDS)"
