// Ablation A4: the disk-scheduling step in isolation (the CC-Basic ->
// CC-Sched improvement of §5) and its interaction with the replacement
// policy. Reports throughput plus the seek-per-read ratio, the mechanism the
// paper identifies ("12 seeks instead of 4" under stream interleaving).
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 16));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A4: disk scheduling x replacement policy",
      trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) + " MB/node (disk-bound regime).");

  util::TextTable t;
  t.set_header({"system", "throughput (req/s)", "seeks/read", "disk util",
                "max disk util"});
  util::CsvWriter csv;
  csv.set_header({"system", "throughput_rps", "seeks_per_read", "disk_util",
                  "max_disk_util"});
  for (const auto system :
       {server::SystemKind::kCcBasic, server::SystemKind::kCcSched,
        server::SystemKind::kCcNem, server::SystemKind::kL2S}) {
    const auto cfg =
        harness::figure_config(system, nodes, mem_mb * 1024 * 1024);
    const auto m = server::run_simulation(cfg, tr);
    const double spr = m.disk_block_reads
                           ? static_cast<double>(m.disk_seeks) /
                                 static_cast<double>(m.disk_block_reads)
                           : 0.0;
    t.add_row({server::to_string(system), util::fixed(m.throughput_rps, 0),
               util::fixed(spr, 2), util::percent(m.disk_utilization, 1),
               util::percent(m.max_disk_utilization, 1)});
    csv.add_row({server::to_string(system), util::fixed(m.throughput_rps, 2),
                 util::fixed(spr, 3), util::fixed(m.disk_utilization, 4),
                 util::fixed(m.max_disk_utilization, 4)});
    std::cerr << "  " << server::to_string(system) << " done\n";
  }
  t.print();
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
