// repro_check: one binary that verifies every headline claim of the paper at
// reduced scale and prints PASS/FAIL per claim. Exit code 0 iff all pass.
//
// This is the quick "does the reproduction hold" gate; the fig*/ablation_*
// binaries produce the full tables. Runs in roughly a minute.
//
// Flags: --requests=N (default 50000)
#include <iostream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "trace/stats.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

struct Check {
  std::string claim;
  std::string measured;
  bool pass;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 50000));

  std::vector<Check> checks;
  const auto add = [&](std::string claim, std::string measured, bool pass) {
    std::cout << (pass ? "[PASS] " : "[FAIL] ") << claim << " — " << measured
              << "\n";
    checks.push_back({std::move(claim), std::move(measured), pass});
  };

  // --- Claim 1 (Fig 1 / Table 2): Rutgers' 99% working set ~ 494 MB. ---
  {
    const auto tr = harness::load_trace("rutgers", 0);
    const double mb = static_cast<double>(trace::working_set_bytes(tr, 0.99)) /
                      (1024.0 * 1024.0);
    add("rutgers 99% working set within 15% of the paper's 494 MB",
        util::fixed(mb, 0) + " MB", mb > 420.0 && mb < 570.0);
  }

  const auto tr = harness::load_trace("rutgers", requests);
  const auto mems = std::vector<std::uint64_t>{16ull << 20, 64ull << 20};
  const auto points =
      harness::run_memory_sweep(tr, harness::all_systems(), 8, mems);
  const auto rps = [&](server::SystemKind s, std::uint64_t mem) {
    return harness::find_point(points, s, mem).metrics.throughput_rps;
  };

  // --- Claim 2 (Fig 2/3): CC-NEM >= 80% of L2S. ---
  {
    double worst = 1e9;
    for (const auto mem : mems) {
      worst = std::min(worst, rps(server::SystemKind::kCcNem, mem) /
                                  rps(server::SystemKind::kL2S, mem));
    }
    add("CC-NEM achieves >= 80% of L2S throughput",
        "worst ratio " + util::fixed(worst, 2), worst >= 0.8);
  }

  // --- Claim 3 (Fig 2): CC-Basic performs far worse (paper: often ~20%). ---
  {
    double worst = 1e9;
    for (const auto mem : mems) {
      worst = std::min(worst, rps(server::SystemKind::kCcBasic, mem) /
                                  rps(server::SystemKind::kL2S, mem));
    }
    add("CC-Basic falls below 50% of L2S (paper: often ~20%)",
        "worst ratio " + util::fixed(worst, 2), worst < 0.5);
  }

  // --- Claim 4 (Fig 2): ordering Basic < Sched < NEM. ---
  {
    bool ordered = true;
    for (const auto mem : mems) {
      ordered = ordered &&
                rps(server::SystemKind::kCcBasic, mem) <
                    rps(server::SystemKind::kCcSched, mem) &&
                rps(server::SystemKind::kCcSched, mem) <=
                    rps(server::SystemKind::kCcNem, mem) * 1.02;
    }
    add("throughput ordering CC-Basic < CC-Sched <= CC-NEM",
        ordered ? "holds at 16 and 64 MB/node" : "violated", ordered);
  }

  // --- Claim 5 (Fig 4): CC-NEM hits are mostly remote at scarce memory. ---
  {
    const auto& m =
        harness::find_point(points, server::SystemKind::kCcNem, 64ull << 20)
            .metrics;
    const bool pass = m.remote_hit_rate > 2.0 * m.local_hit_rate &&
                      m.remote_hit_rate > 0.4;
    add("CC-NEM hits mostly remote at 64 MB/node (paper: local 12-21%, "
        "remote 60-75%)",
        "local " + util::percent(m.local_hit_rate) + ", remote " +
            util::percent(m.remote_hit_rate),
        pass);
  }

  // --- Claim 6 (Fig 4): CC-NEM's hit rate ~ L2S's. ---
  {
    const auto nem =
        harness::find_point(points, server::SystemKind::kCcNem, 64ull << 20)
            .metrics.global_hit_rate();
    const auto l2s =
        harness::find_point(points, server::SystemKind::kL2S, 64ull << 20)
            .metrics.global_hit_rate();
    add("CC-NEM global hit rate within 10% of L2S",
        util::percent(nem) + " vs " + util::percent(l2s),
        nem > l2s - 0.10);
  }

  // --- Claim 7 (Fig 6a): the network is mostly idle for CC-NEM. ---
  {
    const auto& m =
        harness::find_point(points, server::SystemKind::kCcNem, 16ull << 20)
            .metrics;
    add("CC-NEM network mostly idle while disk-bound",
        "nic " + util::percent(m.nic_utilization) + ", disk " +
            util::percent(m.disk_utilization),
        m.nic_utilization < 0.25 && m.disk_utilization > 0.5);
  }

  // --- Claim 8 (Fig 6b): scaling 4 -> 16 nodes at 32 MB/node. ---
  {
    const auto scale = harness::run_node_sweep(
        tr, server::SystemKind::kCcNem, {4, 16}, 32ull << 20);
    const double speedup = scale[1].metrics.throughput_rps /
                           scale[0].metrics.throughput_rps;
    add("CC-NEM scales (>=2.5x from 4 to 16 nodes at 32 MB/node)",
        util::fixed(speedup, 1) + "x", speedup >= 2.5);
  }

  // --- Claim 9 (§5 mechanism): seek-aware scheduling slashes seeks. ---
  {
    const auto basic =
        harness::find_point(points, server::SystemKind::kCcBasic, 16ull << 20)
            .metrics;
    const auto sched =
        harness::find_point(points, server::SystemKind::kCcSched, 16ull << 20)
            .metrics;
    const double b = static_cast<double>(basic.disk_seeks) /
                     static_cast<double>(basic.disk_block_reads);
    const double s = static_cast<double>(sched.disk_seeks) /
                     static_cast<double>(sched.disk_block_reads);
    add("disk scheduling halves seeks-per-read vs FIFO",
        util::fixed(b, 2) + " -> " + util::fixed(s, 2), s < 0.6 * b);
  }

  std::size_t failed = 0;
  for (const auto& c : checks) failed += c.pass ? 0 : 1;
  std::cout << "\n"
            << (checks.size() - failed) << "/" << checks.size()
            << " paper claims reproduced\n";
  return failed == 0 ? 0 : 1;
}
