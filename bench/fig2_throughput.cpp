// Reproduces Figure 2: throughput of L2S and the three CC variants on
// 8 nodes, per-node memory swept 4-512 MB, one panel per trace.
//
// Expected shape (paper §5): CC-Basic far below L2S (often ~20%); CC-Sched
// above CC-Basic but still well below; CC-NEM at >=80% of L2S almost
// everywhere and >=90%/matching in most configurations.
//
// Flags: --trace=NAME  --requests=N (per-trace request limit, default 80000)
//        --nodes=N (default 8)  --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string only = flags.get("trace", "");
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const bool quiet = flags.get_bool("quiet", false);

  const auto systems = harness::all_systems();
  const auto memories = harness::memory_sweep_bytes();

  util::CsvWriter csv;

  for (const auto& spec : trace::all_presets()) {
    if (!only.empty() && spec.name != only) continue;
    const auto tr = harness::load_trace(spec.name, requests);

    harness::print_heading(
        "Figure 2: throughput on " + std::to_string(nodes) + " nodes — " +
            spec.name,
        "Per-node memory 4-512 MB; closed-loop clients; steady state.");

    const auto points = harness::run_memory_sweep(
        tr, systems, nodes, memories, {},
        [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
          if (quiet) return;
          std::cerr << "  [" << done << "/" << total << "] "
                    << server::to_string(p.system) << " "
                    << util::human_bytes(p.memory_per_node) << " -> "
                    << util::fixed(p.metrics.throughput_rps, 0) << " req/s\n";
        });

    harness::throughput_table(points, systems, memories).print();
    harness::append_sweep_csv(csv, points, spec.name);
  }
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
