// Ablation A2 (§6): the TCP hand-off advantage for L2S. Bianchini & Carrera
// measured ~7% for a server without hand-off; the effect grows with the
// migrated-request fraction and the served bytes.
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "calgary");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 128));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A2: TCP hand-off for L2S",
      trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) +
          " MB/node (warm memory so migrations dominate).");

  util::TextTable t;
  t.set_header({"variant", "throughput (req/s)", "mean resp (ms)",
                "handoffs", "replications"});
  util::CsvWriter csv;
  csv.set_header({"variant", "throughput_rps", "mean_response_ms",
                  "handoffs", "replications"});
  double with_rps = 0.0, without_rps = 0.0;
  for (const bool handoff : {true, false}) {
    auto cfg = harness::figure_config(server::SystemKind::kL2S, nodes,
                                      mem_mb * 1024 * 1024);
    cfg.tcp_handoff = handoff;
    const auto m = server::run_simulation(cfg, tr);
    (handoff ? with_rps : without_rps) = m.throughput_rps;
    const std::string label = handoff ? "hand-off" : "relay (no hand-off)";
    t.add_row({label, util::fixed(m.throughput_rps, 0),
               util::fixed(m.mean_response_ms, 2), std::to_string(m.handoffs),
               std::to_string(m.replications)});
    csv.add_row({label, util::fixed(m.throughput_rps, 2),
                 util::fixed(m.mean_response_ms, 3),
                 std::to_string(m.handoffs), std::to_string(m.replications)});
    std::cerr << "  " << label << " done\n";
  }
  t.print();
  if (without_rps > 0.0) {
    std::cout << "hand-off advantage: "
              << util::percent(with_rps / without_rps - 1.0, 1)
              << " (paper cites ~7% for Bianchini & Carrera's testbed)\n";
  }
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
