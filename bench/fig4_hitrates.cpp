// Reproduces Figure 4: cache hit rates of L2S and the CC variants for the
// Rutgers trace on 8 nodes, split into local and remote components.
//
// Expected shape (paper §5): CC-NEM's global hit rate approaches L2S's and
// the theoretical maximum, but most of its hits are *remote* (the paper
// quotes local 12-21%, remote 60-75% for <=64 MB/node); CC-Basic's global
// hit rate is much lower because masters get evicted.
//
// Flags: --trace=NAME (default rutgers) --nodes=N (default 8)
//        --requests=N (default 120000)  --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 100000));
  const bool quiet = flags.get_bool("quiet", false);

  const auto systems = harness::all_systems();
  const auto memories = harness::memory_sweep_bytes();
  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Figure 4: hit rates — " + trace_name + ", " + std::to_string(nodes) +
          " nodes",
      "local+remote = global. CCM rates are block-level; L2S file-level.");

  const auto points = harness::run_memory_sweep(
      tr, systems, nodes, memories, {},
      [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
        if (quiet) return;
        std::cerr << "  [" << done << "/" << total << "] "
                  << server::to_string(p.system) << " "
                  << util::human_bytes(p.memory_per_node) << "\n";
      });

  util::TextTable t;
  std::vector<std::string> header{"mem/node"};
  for (const auto s : systems) {
    header.push_back(std::string(server::to_string(s)) + " loc");
    header.push_back(std::string(server::to_string(s)) + " rem");
    header.push_back(std::string(server::to_string(s)) + " glob");
  }
  t.set_header(std::move(header));
  for (const auto mem : memories) {
    std::vector<std::string> row{util::human_bytes(mem)};
    for (const auto s : systems) {
      const auto& m = harness::find_point(points, s, mem).metrics;
      row.push_back(util::percent(m.local_hit_rate, 0));
      row.push_back(util::percent(m.remote_hit_rate, 0));
      row.push_back(util::percent(m.global_hit_rate(), 0));
    }
    t.add_row(std::move(row));
  }
  t.print();

  util::CsvWriter csv = harness::sweep_csv(points, trace_name);
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
