// Prints Table 1: the simulation parameters, alongside the scraped literal
// values and the reconstruction rationale (see DESIGN.md).
#include <iostream>

#include "harness/report.hpp"
#include "hw/params.hpp"
#include "util/format.hpp"

int main() {
  using namespace coop;
  const hw::ModelParams p;

  harness::print_heading("Table 1: simulation parameters",
                         "Sizes in KB, times in ms. 'paper' column is the "
                         "scraped literal; see DESIGN.md for reconstruction "
                         "notes.");

  util::TextTable t;
  t.set_header({"Event", "paper", "this model"});
  t.add_row({"Parsing time", ".1ms", util::fixed(p.parse_ms, 2) + " ms"});
  t.add_row({"Serving time", ".1 + (Size/115)ms",
             util::fixed(p.serve_base_ms, 2) + " + Size/" +
                 util::fixed(1.0 / p.serve_per_kb_ms, 0) + " ms"});
  t.add_row({"Process a file request", ".3 + (NBlocks*.1)ms",
             util::fixed(p.process_request_base_ms, 2) + " + NBlocks*" +
                 util::fixed(p.process_request_per_block_ms, 2) + " ms"});
  t.add_row({"Serve peer block request", ".7ms",
             util::fixed(p.serve_peer_block_ms, 2) + " ms"});
  t.add_row(
      {"Cache a new block", ".1ms", util::fixed(p.cache_block_ms, 2) + " ms"});
  t.add_row({"Process an evicted master block", ".16ms",
             util::fixed(p.evict_master_ms, 2) + " ms"});
  t.add_row({"Disk read (non-contiguous)", "(Size/3)ms",
             "2*" + util::fixed(p.disk_seek_ms, 1) + " + Size/" +
                 util::fixed(1.0 / p.disk_per_kb_ms, 0) + " ms"});
  t.add_row({"Disk read (contiguous)", "(Size/3)ms",
             "Size/" + util::fixed(1.0 / p.disk_per_kb_ms, 0) + " ms"});
  t.add_row({"Bus transfer time", ".1 + (Size/13172)ms",
             util::fixed(p.bus_base_ms, 2) + " + Size/" +
                 util::fixed(1.0 / p.bus_per_kb_ms, 0) + " ms"});
  t.add_row({"Network latency", ".38ms",
             util::fixed(p.net_latency_ms, 3) + " ms"});
  t.print();

  std::cout << "\nGeometry: block " << util::human_bytes(p.block_bytes)
            << ", disk contiguity unit " << util::human_bytes(p.disk_unit_bytes)
            << " (" << p.blocks_per_unit() << " blocks/unit)\n"
            << "NIC: " << util::fixed(1.0 / p.nic_per_kb_ms, 0)
            << " KB/ms (Gb/s), control message " << p.control_kb
            << " KB, router " << util::fixed(p.router_ms, 3)
            << " ms/request\n";
  return 0;
}
