// ccm_stress: drives the threaded middleware runtime (CcmCluster) with a
// mixed read/write/invalidate workload and reports throughput plus the
// per-shard lock-contention counters that motivated sharding the runtime out
// of its old global cluster lock. The interesting number is the contention
// rate per shard: with one lock per node it stays low even with every worker
// hammering a shared file set, where a single global lock saturates.
//
// Flags:
//   --nodes=N            cluster size                     (default 4)
//   --blocks-per-node=N  cache capacity per node, blocks  (default 64)
//   --files=N            file count                       (default 48)
//   --file-blocks=N      blocks per file                  (default 4)
//   --workers=N          worker threads per node          (default 2)
//   --drivers=N          client driver threads            (default nodes)
//   --iters=N            operations per driver            (default 2000)
//   --write-pct=P        % of ops that write              (default 20)
//   --invalidate-pct=P   % of ops that invalidate         (default 2)
//   --seed=N             workload RNG seed                (default 1)
//   --policy=nem|basic   eviction policy                  (default nem)
//   --directory=perfect|hinted                            (default perfect)
//   --batch=0|1          batch directory ops on multi-block reads and
//                        eviction sweeps (default 1); 0 restores the
//                        one-RPC-per-op protocol — the perf-smoke CI job
//                        runs both and asserts the trip reduction
//   --deterministic-writes  partition write targets per driver so the final
//                           storage bytes are schedule-independent (the
//                           multi-process equality harness; needs
//                           files % drivers == 0)
//   --dump-storage=PATH  write final storage bytes to PATH (file-id order)
//   --json[=PATH]        emit a JSON report (stdout or PATH), including a
//                        "metrics" block with per-RPC-kind latency
//                        percentiles (see docs/OBSERVABILITY.md)
//   --faults=SPEC        inject faults from an explicit schedule spec (see
//                        net::FaultSchedule::parse / docs/FAULTS.md)
//   --fault-seed=N       inject a generated schedule drawn from seed N
//                        (ignored when --faults gives an explicit spec)
//   --fault-log=PATH     write the injected-event log to PATH, one line per
//                        event; byte-identical across two runs of the same
//                        seed+workload with --drivers=1
//   --lockcheck          arm the lock-order watchdog for the whole run; any
//                        acquisition-order cycle is reported and aborts, and
//                        a final whole-graph audit gates the exit code
//   --lockcheck-report=PATH  also append watchdog violations to PATH (a CI
//                            artifact) before aborting
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "ccm_report.hpp"
#include "ccm_workload.hpp"
#include "net/fault.hpp"
#include "util/audit.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/lockcheck.hpp"

using namespace coop;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const bool lockcheck_on = flags.get_bool("lockcheck", false);
  const std::string lockcheck_report = flags.get("lockcheck-report");
  if (lockcheck_on) {
    // Arm the watchdog before any runtime lock exists so every acquisition
    // lands in the order graph; a violation is written out (report file
    // first, for the CI artifact) and then aborts the run — a stress bench
    // must not keep hammering a runtime whose lock discipline just broke.
    util::lockcheck::set_enabled(true);
    audit::set_handler([lockcheck_report](const audit::Violation& v) {
      if (!lockcheck_report.empty()) {
        std::ofstream out(lockcheck_report, std::ios::app);
        out << v.invariant << "\n" << v.detail << "\n";
      }
      std::cerr << "ccm_stress: " << v.invariant << " violated\n"
                << v.detail << "\n";
      std::abort();
    });
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  const auto blocks_per_node =
      static_cast<std::uint64_t>(flags.get_int("blocks-per-node", 64));
  const auto files = static_cast<std::size_t>(flags.get_int("files", 48));
  const auto file_blocks =
      static_cast<std::uint32_t>(flags.get_int("file-blocks", 4));
  const auto workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  const auto drivers = static_cast<std::size_t>(
      flags.get_int("drivers", static_cast<std::int64_t>(nodes)));
  const auto iters = static_cast<int>(flags.get_int("iters", 2000));
  const auto write_pct = flags.get_int("write-pct", 20);
  const auto invalidate_pct = flags.get_int("invalidate-pct", 2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  ccm::CcmConfig cfg;
  cfg.nodes = nodes;
  cfg.block_bytes = 8 * 1024;
  cfg.capacity_bytes = blocks_per_node * cfg.block_bytes;
  cfg.workers_per_node = workers;
  cfg.policy = flags.get("policy", "nem") == "basic"
                   ? cache::Policy::kBasic
                   : cache::Policy::kNeverEvictMaster;
  cfg.directory = flags.get("directory", "perfect") == "hinted"
                      ? cache::DirectoryMode::kHinted
                      : cache::DirectoryMode::kPerfect;
  cfg.batch_directory = flags.get_bool("batch", true);

  ccm_bench::Workload wl;
  wl.nodes = nodes;
  wl.files = files;
  wl.file_blocks = file_blocks;
  wl.block_bytes = cfg.block_bytes;
  wl.drivers = drivers;
  wl.iters = iters;
  wl.write_pct = write_pct;
  wl.invalidate_pct = invalidate_pct;
  wl.seed = seed;
  wl.deterministic_writes = flags.get_bool("deterministic-writes", false);
  wl.validate();

  auto storage = std::make_shared<ccm::BufferStorage>(
      std::vector<std::uint32_t>(files, wl.file_bytes()));

  // Fault injection: wrap the in-process transport in a FaultyTransport
  // driving a parsed or seed-generated schedule.
  std::shared_ptr<net::FaultyTransport> faulty;
  ccm::CcmHosting hosting;
  const bool faults_on = flags.has("faults") || flags.has("fault-seed");
  if (faults_on) {
    const auto fault_seed =
        static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
    const std::string spec = flags.get("faults");
    net::FaultSchedule schedule =
        (spec.empty() || spec == "true")
            ? net::FaultSchedule::generated(fault_seed)
            : net::FaultSchedule::parse(spec, fault_seed);
    faulty = std::make_shared<net::FaultyTransport>(
        std::make_shared<net::InProcTransport>(nodes), std::move(schedule));
    hosting.transport = faulty;
    std::cout << "ccm_stress: fault schedule [" << faulty->schedule().seed
              << "] " << faulty->schedule().to_string() << "\n";
  }

  ccm::CcmCluster cluster(cfg, storage, hosting);

  // Seed every file so the steady-state workload starts warm.
  std::vector<cache::NodeId> vias;
  for (std::size_t n = 0; n < nodes; ++n) {
    vias.push_back(static_cast<cache::NodeId>(n));
  }
  wl.seed_files(cluster, vias);
  cluster.reset_stats();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] { wl.run_driver(cluster, d, std::nullopt); });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto s = cluster.stats();
  const double total_ops = static_cast<double>(drivers) * iters;
  const bool consistent = cluster.check_consistency();

  std::cout << "ccm_stress: " << drivers << " drivers x " << iters
            << " ops over " << nodes << " nodes (" << workers
            << " workers/node), " << files << " files\n"
            << "  elapsed " << util::fixed(secs, 3) << " s, "
            << util::fixed(total_ops / secs, 0) << " ops/s, consistency "
            << (consistent ? "OK" : "BROKEN") << "\n"
            << "  hits: local " << s.local_hits << ", remote "
            << s.remote_hits << ", disk " << s.disk_reads << ", writes "
            << s.writes << ", invalidations " << s.invalidations << "\n"
            << "  transport: sent " << s.transport.sent << ", received "
            << s.transport.received << ", rpcs " << s.transport.rpcs
            << ", payload copies " << s.transport.payload_copies << "\n"
            << "  directory client: " << s.dir_client.trips() << " trips ("
            << s.dir_client.singles << " singles + " << s.dir_client.batches
            << " batches carrying " << s.dir_client.batched_ops
            << " ops), hints: " << s.hint_hits << " hits, " << s.hint_stale
            << " stale\n";
  if (faults_on) {
    std::cout << "  faults: drops " << s.transport.injected_drops
              << ", delays " << s.transport.injected_delays << ", duplicates "
              << s.transport.injected_duplicates << ", reorders "
              << s.transport.injected_reorders << "; rpc retries "
              << s.transport.rpc_retries << ", timeouts "
              << s.transport.rpc_timeouts << ", failures "
              << s.transport.rpc_failures << "\n";
  }
  for (std::size_t n = 0; n < s.shards.size(); ++n) {
    const auto& sh = s.shards[n];
    const double rate = sh.lock_acquired
                            ? static_cast<double>(sh.lock_contended) /
                                  static_cast<double>(sh.lock_acquired)
                            : 0.0;
    std::cout << "  shard " << n << ": lock acquired " << sh.lock_acquired
              << ", contended " << sh.lock_contended << " ("
              << util::fixed(rate * 100.0, 2) << "%), local reads "
              << sh.local_reads << ", msgs sent " << sh.messages_sent
              << ", handled " << sh.messages_handled << "\n";
  }

  if (flags.has("json")) {
    util::JsonWriter j;
    j.begin_object();
    j.key("bench").value("ccm_stress");
    j.key("config").begin_object();
    j.key("nodes").value(static_cast<std::uint64_t>(nodes));
    j.key("blocks_per_node").value(blocks_per_node);
    j.key("files").value(static_cast<std::uint64_t>(files));
    j.key("file_blocks").value(file_blocks);
    j.key("workers_per_node").value(static_cast<std::uint64_t>(workers));
    j.key("drivers").value(static_cast<std::uint64_t>(drivers));
    j.key("iters").value(static_cast<std::int64_t>(iters));
    j.key("write_pct").value(write_pct);
    j.key("invalidate_pct").value(invalidate_pct);
    j.key("seed").value(seed);
    j.key("policy").value(cfg.policy == cache::Policy::kBasic ? "basic"
                                                              : "nem");
    j.key("directory").value(cfg.directory == cache::DirectoryMode::kHinted
                                 ? "hinted"
                                 : "perfect");
    j.key("batch").value(cfg.batch_directory);
    j.end_object();
    j.key("elapsed_seconds").value(secs);
    j.key("ops_per_second").value(total_ops / secs);
    j.key("consistent").value(consistent);
    j.key("totals").begin_object();
    j.key("local_hits").value(s.local_hits);
    j.key("remote_hits").value(s.remote_hits);
    j.key("disk_reads").value(s.disk_reads);
    j.key("writes").value(s.writes);
    j.key("invalidations").value(s.invalidations);
    j.key("ownership_migrations").value(s.ownership_migrations);
    j.key("forwards_attempted").value(s.forwards_attempted);
    j.key("forwards_accepted").value(s.forwards_accepted);
    j.key("master_drops").value(s.master_drops);
    j.end_object();
    j.key("shards").begin_array();
    for (const auto& sh : s.shards) {
      j.begin_object();
      j.key("lock_acquired").value(sh.lock_acquired);
      j.key("lock_contended").value(sh.lock_contended);
      j.key("contention_rate")
          .value(sh.lock_acquired ? static_cast<double>(sh.lock_contended) /
                                        static_cast<double>(sh.lock_acquired)
                                  : 0.0);
      j.key("local_reads").value(sh.local_reads);
      j.key("messages_sent").value(sh.messages_sent);
      j.key("messages_handled").value(sh.messages_handled);
      j.end_object();
    }
    j.end_array();
    j.key("directory_ops").begin_object();
    j.key("lookups").value(s.directory.lookups);
    j.key("claims").value(s.directory.claims);
    j.key("claim_conflicts").value(s.directory.claim_conflicts);
    j.key("forwards_begun").value(s.directory.forwards_begun);
    j.key("forward_claims").value(s.directory.forward_claims);
    j.key("forward_rejects").value(s.directory.forward_rejects);
    j.key("masters_dropped").value(s.directory.masters_dropped);
    j.key("write_claims").value(s.directory.write_claims);
    j.key("hint_misdirects").value(s.directory.hint_misdirects);
    j.key("masters_purged").value(s.directory.masters_purged);
    j.end_object();
    // The batching headline: trips is what the ≥4x perf-smoke assertion and
    // the throughput comparison key on.
    j.key("directory_client").begin_object();
    j.key("singles").value(s.dir_client.singles);
    j.key("batches").value(s.dir_client.batches);
    j.key("batched_ops").value(s.dir_client.batched_ops);
    j.key("trips").value(s.dir_client.trips());
    j.end_object();
    j.key("hints").begin_object();
    j.key("hits").value(s.hint_hits);
    j.key("stale").value(s.hint_stale);
    j.end_object();
    j.key("transport").begin_object();
    j.key("sent").value(s.transport.sent);
    j.key("received").value(s.transport.received);
    j.key("rpcs").value(s.transport.rpcs);
    j.key("payload_copies").value(s.transport.payload_copies);
    j.key("injected_drops").value(s.transport.injected_drops);
    j.key("injected_delays").value(s.transport.injected_delays);
    j.key("injected_duplicates").value(s.transport.injected_duplicates);
    j.key("injected_reorders").value(s.transport.injected_reorders);
    j.key("rpc_timeouts").value(s.transport.rpc_timeouts);
    j.key("rpc_retries").value(s.transport.rpc_retries);
    j.key("rpc_failures").value(s.transport.rpc_failures);
    j.end_object();
    // Runtime telemetry: per-MsgKind RPC latency/bytes/retry percentiles,
    // hot-path counters, lock-wait and whole-op histograms.
    ccm_bench::metrics_block(j, "metrics", cluster.metrics().snapshot());
    if (faults_on) {
      j.key("fault_schedule").begin_object();
      j.key("seed").value(faulty->schedule().seed);
      j.key("spec").value(faulty->schedule().to_string());
      j.key("injected_events")
          .value(static_cast<std::uint64_t>(faulty->events().size()));
      j.end_object();
    }
    j.end_object();

    const std::string path = flags.get("json");
    if (path.empty() || path == "true") {
      std::cout << j.str() << "\n";
    } else {
      std::ofstream out(path);
      out << j.str() << "\n";
      std::cout << "  json report -> " << path << "\n";
    }
  }

  if (flags.has("dump-storage")) {
    const std::string path = flags.get("dump-storage");
    if (!ccm_bench::dump_storage(*storage, path)) {
      std::cerr << "ccm_stress: cannot write storage dump to " << path
                << "\n";
      return 1;
    }
    std::cout << "  storage dump -> " << path << "\n";
  }

  if (faults_on && flags.has("fault-log")) {
    const std::string path = flags.get("fault-log");
    if (!faulty->dump_events(path)) {
      std::cerr << "ccm_stress: cannot write fault log to " << path << "\n";
      return 1;
    }
    std::cout << "  fault log (" << faulty->events().size() << " events) -> "
              << path << "\n";
  }

  if (lockcheck_on) {
    // Quiescent whole-graph sweep: catches any inversion recorded by edges
    // that never happened to close at acquire time on this schedule.
    const std::size_t lock_cycles = util::lockcheck::audit("ccm_stress-final");
    std::cout << "  lockcheck: " << util::lockcheck::cycles_detected()
              << " cycle(s) detected; final graph "
              << (lock_cycles == 0 ? "acyclic" : "CYCLIC") << "\n";
    if (lock_cycles != 0) return 1;
  }

  return consistent ? 0 : 1;
}
