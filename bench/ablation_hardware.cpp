// Ablation A6 (§6: "this paper assumes a very specific set of hardware
// characteristics. We will investigate the effects of different hardware
// configurations on the cooperative caching algorithm").
//
// The paper's thesis is a bet on a hardware trend: trading network traffic
// for disk accesses is only a win while LANs outpace disks. This bench
// sweeps the LAN generation (10 Mb/s .. 10 Gb/s) and a faster disk, and
// reports CC-NEM vs L2S throughput for each: with a slow LAN the remote-hit
// path collapses and cooperative caching loses its edge; with fast LANs the
// paper's conclusion holds with room to spare.
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 64));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A6: hardware sensitivity (CC-NEM vs L2S)",
      trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) + " MB/node.");

  struct Hw {
    std::string label;
    double nic_kb_per_ms;   // LAN wire rate
    double latency_ms;      // one-way
    double disk_kb_per_ms;  // media rate
    double seek_ms;
  };
  const Hw configs[] = {
      {"10 Mb/s LAN, 2001 disk", 1.25, 0.5, 30.0, 6.5},
      {"100 Mb/s LAN, 2001 disk", 12.5, 0.15, 30.0, 6.5},
      {"1 Gb/s LAN, 2001 disk (paper)", 125.0, 0.038, 30.0, 6.5},
      {"10 Gb/s LAN, 2001 disk", 1250.0, 0.01, 30.0, 6.5},
      {"1 Gb/s LAN, 4x faster disk", 125.0, 0.038, 120.0, 3.0},
  };

  util::TextTable t;
  t.set_header({"hardware", "L2S (req/s)", "CC-NEM (req/s)", "CC-NEM/L2S",
                "CC-NEM nic util"});
  util::CsvWriter csv;
  csv.set_header({"hardware", "l2s_rps", "ccnem_rps", "ratio", "nic_util"});
  for (const auto& hw : configs) {
    double results[2] = {0.0, 0.0};
    double nic_util = 0.0;
    const server::SystemKind systems[2] = {server::SystemKind::kL2S,
                                           server::SystemKind::kCcNem};
    for (int i = 0; i < 2; ++i) {
      auto cfg = harness::figure_config(systems[i], nodes,
                                        mem_mb * 1024 * 1024);
      cfg.params.nic_per_kb_ms = 1.0 / hw.nic_kb_per_ms;
      cfg.params.net_latency_ms = hw.latency_ms;
      cfg.params.disk_per_kb_ms = 1.0 / hw.disk_kb_per_ms;
      cfg.params.disk_seek_ms = hw.seek_ms;
      const auto m = server::run_simulation(cfg, tr);
      results[i] = m.throughput_rps;
      if (i == 1) nic_util = m.nic_utilization;
    }
    const double ratio = results[0] > 0 ? results[1] / results[0] : 0.0;
    t.add_row({hw.label, util::fixed(results[0], 0),
               util::fixed(results[1], 0), util::fixed(ratio, 2),
               util::percent(nic_util, 1)});
    csv.add_row({hw.label, util::fixed(results[0], 2),
                 util::fixed(results[1], 2), util::fixed(ratio, 3),
                 util::fixed(nic_util, 4)});
    std::cerr << "  " << hw.label << " done\n";
  }
  t.print();
  std::cout << "The cooperative-caching trade (LAN traffic for disk seeks) "
               "only pays on fast LANs — the paper's premise.\n";
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
