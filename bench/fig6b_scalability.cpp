// Reproduces Figure 6(b): CC-NEM throughput against cluster size for the
// Rutgers trace with 32 MB of memory per node.
//
// Expected shape (paper §5): throughput scales well up to 32 nodes (adding
// nodes adds both memory and disks; round-robin DNS spreads hot blocks so no
// single node is overwhelmed).
//
// Flags: --trace=NAME --mem-mb=N (default 32) --requests=N (default 150000)
//        --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 32));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 120000));
  const bool quiet = flags.get_bool("quiet", false);

  const std::vector<std::size_t> node_counts{4, 8, 16, 24, 32};
  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Figure 6(b): CC-NEM throughput vs cluster size — " + trace_name +
          ", " + std::to_string(mem_mb) + " MB/node",
      "Speedup is relative to the 4-node configuration.");

  const auto points = harness::run_node_sweep(
      tr, server::SystemKind::kCcNem, node_counts, mem_mb * 1024 * 1024, {},
      [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
        if (quiet) return;
        std::cerr << "  [" << done << "/" << total << "] " << p.nodes
                  << " nodes -> " << util::fixed(p.metrics.throughput_rps, 0)
                  << " req/s\n";
      });

  util::TextTable t;
  t.set_header({"nodes", "throughput (req/s)", "speedup vs 4", "global hit",
                "disk util"});
  const double base = points.front().metrics.throughput_rps;
  for (const auto& p : points) {
    t.add_row({std::to_string(p.nodes),
               util::fixed(p.metrics.throughput_rps, 0),
               util::fixed(p.metrics.throughput_rps / base, 2),
               util::percent(p.metrics.global_hit_rate(), 1),
               util::percent(p.metrics.disk_utilization, 1)});
  }
  t.print();

  harness::maybe_write_csv(harness::sweep_csv(points, trace_name),
                           flags.get("csv", ""));
  return 0;
}
