// Reproduces Figure 6(a): CC-NEM's average resource utilization (disk, CPU,
// NIC) serving the Rutgers trace on 8 nodes, as a function of per-node
// memory.
//
// Expected shape (paper §5): disk utilization dominates and falls as memory
// grows; CPU utilization rises as the cluster stops being disk-bound; the
// network stays mostly idle (the basis for the paper's argument that extra
// LAN traffic is a good trade for fewer disk accesses).
//
// Flags: --trace=NAME --nodes=N --requests=N (default 150000)
//        --system=cc-nem|cc-basic|cc-sched|l2s  --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 120000));
  const bool quiet = flags.get_bool("quiet", false);

  server::SystemKind system = server::SystemKind::kCcNem;
  const std::string sysname = flags.get("system", "cc-nem");
  if (sysname == "l2s") system = server::SystemKind::kL2S;
  if (sysname == "cc-basic") system = server::SystemKind::kCcBasic;
  if (sysname == "cc-sched") system = server::SystemKind::kCcSched;

  const auto memories = harness::memory_sweep_bytes();
  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      std::string("Figure 6(a): ") + server::to_string(system) +
          " resource utilization — " + trace_name + ", " +
          std::to_string(nodes) + " nodes",
      "Average across nodes; 'disk max' is the hottest single disk.");

  const auto points = harness::run_memory_sweep(
      tr, {system}, nodes, memories, {},
      [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
        if (quiet) return;
        std::cerr << "  [" << done << "/" << total << "] "
                  << util::human_bytes(p.memory_per_node) << "\n";
      });

  util::TextTable t;
  t.set_header({"mem/node", "disk", "disk max", "cpu", "nic", "router",
                "throughput (req/s)"});
  for (const auto& p : points) {
    t.add_row({util::human_bytes(p.memory_per_node),
               util::percent(p.metrics.disk_utilization, 1),
               util::percent(p.metrics.max_disk_utilization, 1),
               util::percent(p.metrics.cpu_utilization, 1),
               util::percent(p.metrics.nic_utilization, 1),
               util::percent(p.metrics.router_utilization, 1),
               util::fixed(p.metrics.throughput_rps, 0)});
  }
  t.print();

  harness::maybe_write_csv(harness::sweep_csv(points, trace_name),
                           flags.get("csv", ""));
  return 0;
}
