// Stub over the declarative experiment registry (src/harness/spec.hpp):
// the sweep axes, tables, and CSV layout for "fig6a_utilization" are declared as data in
// spec.cpp and executed by the shared parallel driver.
//
// Shared flags: --trace=NAME --nodes=N --requests=N --mem-mb=M
//               --threads=N --csv=PATH --json=PATH --quiet
#include "harness/spec.hpp"

int main(int argc, char** argv) {
  return coop::harness::run_experiment("fig6a_utilization", argc, argv);
}
