// Reproduces Figure 5: CC average request response time normalized against
// L2S — (a) Calgary on 4 nodes, (b) Rutgers on 8 nodes.
//
// Expected shape (paper §5): CC-NEM's response time is 5-100% worse than
// L2S's (ratios ~1.05-2.0) even where throughput nearly matches; absolute
// values stay in the low milliseconds at the memory sizes where the cluster
// is not disk-thrashed.
//
// Flags: --requests=N (default 80000)  --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 60000));
  const bool quiet = flags.get_bool("quiet", false);

  const auto systems = harness::all_systems();
  const auto memories = harness::memory_sweep_bytes();

  struct Panel {
    const char* trace;
    std::size_t nodes;
  };
  const Panel panels[] = {{"calgary", 4}, {"rutgers", 8}};

  util::CsvWriter csv;
  for (const auto& panel : panels) {
    const auto tr = harness::load_trace(panel.trace, requests);
    harness::print_heading(
        std::string("Figure 5: mean response time normalized against L2S — ") +
            panel.trace + ", " + std::to_string(panel.nodes) + " nodes",
        "Ratios >1 mean CC responds slower than L2S.");

    const auto points = harness::run_memory_sweep(
        tr, systems, panel.nodes, memories, {},
        [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
          if (quiet) return;
          std::cerr << "  [" << done << "/" << total << "] "
                    << server::to_string(p.system) << " "
                    << util::human_bytes(p.memory_per_node) << "\n";
        });

    harness::normalized_table(points, systems, memories,
                              harness::Metric::kResponseTime)
        .print();

    // The paper notes CC's absolute response times remain acceptable
    // (order 2-3 ms at the comfortable end of the sweep).
    util::TextTable abs;
    abs.set_header({"mem/node", "L2S (ms)", "CC-NEM (ms)"});
    for (const auto mem : memories) {
      abs.add_row(
          {util::human_bytes(mem),
           util::fixed(harness::find_point(points, server::SystemKind::kL2S,
                                           mem)
                           .metrics.mean_response_ms,
                       2),
           util::fixed(harness::find_point(points, server::SystemKind::kCcNem,
                                           mem)
                           .metrics.mean_response_ms,
                       2)});
    }
    abs.print();
    harness::append_sweep_csv(csv, points, panel.trace);
  }
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
