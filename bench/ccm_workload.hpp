// The mixed read/write/invalidate workload shared by the CCM runtime
// drivers: ccm_stress (all nodes in one process) and ccm_node (one node per
// process over TCP). Both binaries must consume the *same* RNG streams and
// issue the *same* write sequences so that, in deterministic-writes mode,
// the final backing-storage bytes of a multi-process run are byte-identical
// to an in-process run of the same parameters — that equality is the
// loopback cluster's acceptance check.
//
// Determinism argument: storage content is only changed by writes, and with
// `deterministic_writes` each driver's writes are remapped onto a private
// slice of the file set (driver d writes file (f % (files/drivers)) *
// drivers + d), so no two drivers ever write the same file. Within a driver
// the writes are sequential and their (file, offset, content) sequence
// depends only on the RNG seed and iteration index — never on scheduling,
// cache state, or which node served the op. Reads and invalidations touch
// caches, not storage. Hence the final bytes are a pure function of the
// workload parameters.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "sim/random.hpp"

namespace ccm_bench {

inline std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

struct Workload {
  std::size_t nodes = 4;
  std::size_t files = 48;
  std::uint32_t file_blocks = 4;
  std::uint32_t block_bytes = 8 * 1024;
  std::size_t drivers = 4;
  int iters = 2000;
  std::int64_t write_pct = 20;
  std::int64_t invalidate_pct = 2;
  std::uint64_t seed = 1;
  /// Partition write targets per driver so final storage bytes are
  /// schedule-independent (see file comment). Requires files % drivers == 0.
  bool deterministic_writes = false;

  [[nodiscard]] std::uint32_t file_bytes() const {
    return file_blocks * block_bytes;
  }

  void validate() const {
    if (deterministic_writes && (drivers == 0 || files % drivers != 0)) {
      throw std::invalid_argument(
          "deterministic writes need files % drivers == 0");
    }
  }

  /// The file driver `d` actually writes when it rolled a write against `f`.
  [[nodiscard]] coop::cache::FileId write_target(std::size_t d,
                                                 coop::cache::FileId f) const {
    if (!deterministic_writes) return f;
    const std::size_t per_driver = files / drivers;
    return static_cast<coop::cache::FileId>((f % per_driver) * drivers + d);
  }

  /// Seeds every file with its deterministic initial content, spreading the
  /// writes over `vias` (hosted nodes). Both runtimes seed identically —
  /// content depends only on the file id.
  void seed_files(coop::ccm::CcmCluster& cluster,
                  const std::vector<coop::cache::NodeId>& vias) const {
    for (std::size_t f = 0; f < files; ++f) {
      cluster.write(vias[f % vias.size()],
                    static_cast<coop::cache::FileId>(f), 0,
                    pattern(file_bytes(), static_cast<std::uint8_t>(f)));
    }
  }

  /// Runs driver `d`'s operation stream against `cluster`. `force_via`
  /// pins every op to one hosted node (multi-process mode) — the RNG still
  /// draws the via so the stream stays aligned with the in-process run.
  void run_driver(coop::ccm::CcmCluster& cluster, std::size_t d,
                  std::optional<coop::cache::NodeId> force_via) const {
    coop::sim::Rng rng(seed * 1000 + d);
    for (int i = 0; i < iters; ++i) {
      const auto f =
          static_cast<coop::cache::FileId>(rng.uniform_int(files));
      const auto drawn =
          static_cast<coop::cache::NodeId>(rng.uniform_int(nodes));
      const coop::cache::NodeId via = force_via.value_or(drawn);
      const auto roll = static_cast<std::int64_t>(rng.uniform_int(100));
      if (roll < write_pct) {
        const std::uint64_t off = rng.uniform_int(file_blocks) * block_bytes;
        const auto len =
            std::min<std::uint64_t>(block_bytes, file_bytes() - off);
        cluster.write(via, write_target(d, f), off,
                      pattern(static_cast<std::size_t>(len),
                              static_cast<std::uint8_t>(f + i)));
      } else if (roll < write_pct + invalidate_pct) {
        cluster.invalidate(f);
      } else {
        cluster.read(via, f);
      }
    }
  }
};

/// Writes every file's bytes, concatenated in file-id order, to `path`
/// (the storage-equality artifact compared between runtimes).
inline bool dump_storage(const coop::ccm::Storage& storage,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::vector<std::byte> buf;
  for (std::size_t f = 0; f < storage.file_count(); ++f) {
    const auto file = static_cast<coop::cache::FileId>(f);
    buf.resize(storage.file_size(file));
    storage.read(file, 0, buf);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  return static_cast<bool>(out);
}

}  // namespace ccm_bench
