// ccm_node: one cooperative-caching node as its own OS process. Launch N of
// these (node ids 0..N-1) against the same --port-base and they form a
// middleware cluster over 127.0.0.1 TCP sockets, then serve the identical
// mixed read/write/invalidate workload as bench/ccm_stress — the
// multi-process deployment of the exact same CcmCluster runtime, swapped
// onto the socket transport.
//
// The process hosting node 0 ("home") owns the backing BufferStorage, the
// master DirectoryService, and the barrier service; every other process
// mounts RemoteStorage / RemoteDirectory proxies that reach home over kDir*
// and kStorage* RPCs. Driver threads are partitioned by id (driver d runs in
// process d % nodes) and pin their operations to the local node while
// consuming the same RNG streams as ccm_stress, so with
// --deterministic-writes the final storage bytes at home are byte-identical
// to an in-process run — `--dump-storage` emits them for the comparison (see
// docs/MIDDLEWARE.md, "Multi-process loopback cluster").
//
// Flags (workload flags must match across all N processes):
//   --node=I             this process's node id               (required)
//   --nodes=N            cluster size                         (default 4)
//   --port-base=P        node i listens on P+i                (default 37100)
//   --blocks-per-node, --files, --file-blocks, --workers, --drivers,
//   --iters, --write-pct, --invalidate-pct, --seed, --policy, --directory,
//   --batch, --deterministic-writes   as in ccm_stress (pass --batch to
//                        every process alike)
//   --dump-storage=PATH  home only: final storage bytes -> PATH
//   --connect-timeout-ms=N   peer dial/mesh deadline          (default 20000)
//   --json[=PATH]        emit a JSON report (stdout or PATH), including a
//                        "metrics" block with per-RPC-kind latency
//                        percentiles (see docs/OBSERVABILITY.md)
//   --metrics-out=PATH   dump this process's metrics registry in binary
//                        snapshot form (aggregate with tools/ccm_metrics)
//   --scrape             hold an extra post-run barrier so the home process
//                        can scrape every process over kStatsPull; pass to
//                        ALL nodes whenever the home gets --scrape-out
//   --scrape-out=PATH    home only (implies --scrape): pull one merged
//                        cluster-wide metrics snapshot over kStatsPull RPCs
//                        and write it as JSON to PATH
//   --runtime-trace-out=PATH  arm wall-clock runtime tracing for the
//                        measured phase and write this process's span log to
//                        PATH; merge the per-process logs with
//                        tools/ccm_metrics --trace-out for a Perfetto view
//   --faults=SPEC        inject faults from an explicit schedule spec (see
//                        net::FaultSchedule::parse / docs/FAULTS.md)
//   --fault-seed=N       inject a generated schedule drawn from seed N
//                        (ignored when --faults gives an explicit spec)
//   --fault-log=PATH     write this process's injected-event log to PATH
//   --lockcheck          arm the lock-order watchdog; violations abort and a
//                        final whole-graph audit gates the exit code
//   --lockcheck-report=PATH  also append watchdog violations to PATH
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/directory_client.hpp"
#include "ccm/remote_storage.hpp"
#include "ccm/storage.hpp"
#include "ccm_workload.hpp"
#include "ccm_report.hpp"
#include "net/fault.hpp"
#include "net/tcp_transport.hpp"
#include "obs/runtime_trace.hpp"
#include "util/audit.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/lockcheck.hpp"

using namespace coop;

namespace {

/// Seed (all files written once) and done (all ops retired) fences.
constexpr std::uint32_t kPhaseSeeded = 0;
constexpr std::uint32_t kPhaseDone = 1;
/// Post-run metrics fence: peers park here (protocol threads still serving)
/// while the home pulls every process's registry over kStatsPull.
constexpr std::uint32_t kPhaseScraped = 2;

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  if (!flags.has("node")) {
    std::cerr << "ccm_node: --node=I is required\n";
    return 2;
  }
  const auto local = static_cast<cache::NodeId>(flags.get_int("node", 0));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 4));
  const auto port_base =
      static_cast<std::uint16_t>(flags.get_int("port-base", 37100));
  const auto blocks_per_node =
      static_cast<std::uint64_t>(flags.get_int("blocks-per-node", 64));
  const auto files = static_cast<std::size_t>(flags.get_int("files", 48));
  const auto file_blocks =
      static_cast<std::uint32_t>(flags.get_int("file-blocks", 4));
  const auto workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  const auto drivers = static_cast<std::size_t>(
      flags.get_int("drivers", static_cast<std::int64_t>(nodes)));
  if (local >= nodes) {
    std::cerr << "ccm_node: --node must be < --nodes\n";
    return 2;
  }

  ccm::CcmConfig cfg;
  cfg.nodes = nodes;
  cfg.block_bytes = 8 * 1024;
  cfg.capacity_bytes = blocks_per_node * cfg.block_bytes;
  cfg.workers_per_node = workers;
  cfg.policy = flags.get("policy", "nem") == "basic"
                   ? cache::Policy::kBasic
                   : cache::Policy::kNeverEvictMaster;
  cfg.directory = flags.get("directory", "perfect") == "hinted"
                      ? cache::DirectoryMode::kHinted
                      : cache::DirectoryMode::kPerfect;
  cfg.batch_directory = flags.get_bool("batch", true);

  ccm_bench::Workload wl;
  wl.nodes = nodes;
  wl.files = files;
  wl.file_blocks = file_blocks;
  wl.block_bytes = cfg.block_bytes;
  wl.drivers = drivers;
  wl.iters = static_cast<int>(flags.get_int("iters", 2000));
  wl.write_pct = flags.get_int("write-pct", 20);
  wl.invalidate_pct = flags.get_int("invalidate-pct", 2);
  wl.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  wl.deterministic_writes = flags.get_bool("deterministic-writes", false);
  wl.validate();

  const bool lockcheck_on = flags.get_bool("lockcheck", false);
  const std::string lockcheck_report = flags.get("lockcheck-report");
  if (lockcheck_on) {
    // Armed before the transport exists so socket-layer locks are watched
    // too. Per process: each ccm_node only sees its own slice of the lock
    // graph, but the cross-process wait-for chains all end at the home
    // process by design (see cluster.hpp, "Concurrency model").
    util::lockcheck::set_enabled(true);
    audit::set_handler([local, lockcheck_report](const audit::Violation& v) {
      if (!lockcheck_report.empty()) {
        std::ofstream out(lockcheck_report, std::ios::app);
        out << "node " << local << ": " << v.invariant << "\n"
            << v.detail << "\n";
      }
      std::cerr << "ccm_node " << local << ": " << v.invariant
                << " violated\n" << v.detail << "\n";
      std::abort();
    });
  }

  const cache::NodeId home = 0;
  const bool is_home = local == home;

  // --- transport: bind, then mesh with every peer over loopback ---
  net::TcpConfig tcfg;
  tcfg.local_node = local;
  tcfg.nodes = nodes;
  tcfg.listen_port = static_cast<std::uint16_t>(port_base + local);
  tcfg.connect_timeout =
      std::chrono::milliseconds(flags.get_int("connect-timeout-ms", 20000));
  auto transport = std::make_shared<net::TcpTransport>(tcfg);
  std::vector<net::TcpPeer> peers;
  for (std::size_t n = 0; n < nodes; ++n) {
    peers.push_back(
        {"127.0.0.1", static_cast<std::uint16_t>(port_base + n)});
  }
  try {
    transport->connect_peers(peers);
  } catch (const std::exception& e) {
    std::cerr << "ccm_node " << local << ": mesh failed: " << e.what()
              << "\n";
    return 1;
  }

  // Fault injection: decorate the socket transport so this process's
  // outbound traffic (runtime RPCs and the home-service proxies alike) is
  // perturbed under a deterministic schedule.
  std::shared_ptr<net::FaultyTransport> faulty;
  std::shared_ptr<net::Transport> fabric = transport;
  const bool faults_on = flags.has("faults") || flags.has("fault-seed");
  if (faults_on) {
    const auto fault_seed =
        static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
    const std::string spec = flags.get("faults");
    net::FaultSchedule schedule =
        (spec.empty() || spec == "true")
            ? net::FaultSchedule::generated(fault_seed)
            : net::FaultSchedule::parse(spec, fault_seed);
    faulty = std::make_shared<net::FaultyTransport>(transport,
                                                    std::move(schedule));
    fabric = faulty;
    std::cout << "ccm_node " << local << ": fault schedule ["
              << faulty->schedule().seed << "] "
              << faulty->schedule().to_string() << "\n";
  }

  // --- the node: home hosts the real storage + directory, peers proxy ---
  ccm::CcmHosting hosting;
  hosting.transport = fabric;
  hosting.local_nodes = {local};
  hosting.home = home;
  net::RetryStats proxy_retries;  // RemoteStorage/RemoteDirectory retries
  std::shared_ptr<ccm::Storage> storage;
  if (is_home) {
    storage = std::make_shared<ccm::BufferStorage>(
        std::vector<std::uint32_t>(files, wl.file_bytes()));
  } else {
    storage = std::make_shared<ccm::RemoteStorage>(
        fabric, local, home,
        std::vector<std::uint32_t>(files, wl.file_bytes()), &proxy_retries);
    hosting.directory = std::make_shared<ccm::RemoteDirectory>(
        fabric, local, home, &proxy_retries);
  }
  ccm::CcmCluster cluster(cfg, storage, hosting);
  transport->set_summary_source(
      [&cluster, local] { return cluster.published_summary(local); });

  // --- seed (home), fence, run this process's driver slice, fence ---
  if (is_home) wl.seed_files(cluster, {home});
  cluster.barrier(local, kPhaseSeeded);
  cluster.reset_stats();

  // Arm wall-clock span recording for the measured phase only (the seed
  // phase would flood the bounded log). Every process must get the flag or
  // remote handler slices are missing from the merged trace.
  const bool trace_on = flags.has("runtime-trace-out");
  if (trace_on) cluster.enable_runtime_trace();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::size_t local_drivers = 0;
  for (std::size_t d = 0; d < drivers; ++d) {
    if (d % nodes != local) continue;
    ++local_drivers;
    threads.emplace_back([&, d] { wl.run_driver(cluster, d, local); });
  }
  for (auto& t : threads) t.join();
  cluster.barrier(local, kPhaseDone);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Cluster-wide scrape, fenced so no process tears down mid-pull: the home
  // merges its own registry with one kStatsPull per remote node (deduped by
  // process), then everyone releases through the kPhaseScraped barrier.
  const bool scrape_on =
      flags.get_bool("scrape", false) || flags.has("scrape-out");
  if (scrape_on) {
    if (is_home && flags.has("scrape-out")) {
      const obs::MetricsSnapshot cluster_wide = cluster.scrape_cluster();
      util::JsonWriter j;
      j.begin_object();
      j.key("bench").value("ccm_node-scrape");
      j.key("nodes").value(static_cast<std::uint64_t>(nodes));
      ccm_bench::metrics_block(j, "metrics", cluster_wide);
      j.end_object();
      const std::string path = flags.get("scrape-out");
      std::ofstream out(path);
      out << j.str() << "\n";
      if (!out) {
        std::cerr << "ccm_node: cannot write cluster metrics to " << path
                  << "\n";
      } else {
        std::cout << "  cluster metrics (" << cluster_wide.processes
                  << " of " << nodes << " processes) -> " << path << "\n";
      }
    }
    cluster.barrier(local, kPhaseScraped);
  }

  const auto s = cluster.stats();
  const auto ts = transport->stats();
  const double batching =
      ts.flushes ? static_cast<double>(ts.sent) /
                       static_cast<double>(ts.flushes)
                 : 0.0;
  const double local_ops =
      static_cast<double>(local_drivers) * static_cast<double>(wl.iters);
  std::cout << "ccm_node " << local << ": " << local_drivers << " drivers x "
            << wl.iters << " ops, elapsed " << util::fixed(secs, 3) << " s, "
            << util::fixed(secs > 0 ? local_ops / secs : 0.0, 0)
            << " ops/s\n"
            << "  hits: local " << s.local_hits << ", remote "
            << s.remote_hits << ", disk " << s.disk_reads << ", writes "
            << s.writes << "\n"
            << "  transport: rpcs " << ts.rpcs << ", frames sent " << ts.sent
            << " in " << ts.flushes << " flushes ("
            << util::fixed(batching, 2) << " msgs/syscall), bytes tx "
            << ts.bytes_sent << " rx " << ts.bytes_received
            << ", frame errors " << ts.frame_errors << ", payload copies "
            << ts.payload_copies << "\n"
            << "  directory client: " << s.dir_client.trips() << " trips ("
            << s.dir_client.singles << " singles + " << s.dir_client.batches
            << " batches carrying " << s.dir_client.batched_ops
            << " ops), hints: " << s.hint_hits << " hits, " << s.hint_stale
            << " stale\n";
  if (faults_on) {
    std::cout << "  faults: drops " << s.transport.injected_drops
              << ", delays " << s.transport.injected_delays << ", duplicates "
              << s.transport.injected_duplicates << ", reorders "
              << s.transport.injected_reorders << "; rpc retries "
              << s.transport.rpc_retries << ", timeouts "
              << s.transport.rpc_timeouts << ", failures "
              << s.transport.rpc_failures << ", proxy retries "
              << proxy_retries.retries.load() << "\n";
  }

  int rc = 0;
  bool consistent = true;
  if (is_home) {
    // Let the peers finish their final barrier polls and disconnect before
    // tearing the services down under them.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (transport->connected_peers() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (flags.has("dump-storage")) {
      const std::string path = flags.get("dump-storage");
      if (!ccm_bench::dump_storage(*storage, path)) {
        std::cerr << "ccm_node: cannot write storage dump to " << path
                  << "\n";
        rc = 1;
      } else {
        std::cout << "  storage dump -> " << path << "\n";
      }
    }
    consistent = cluster.check_consistency();
    if (!consistent) {
      std::cerr << "ccm_node: home shard consistency BROKEN\n";
      rc = 1;
    }
  }

  if (flags.has("json")) {
    util::JsonWriter j;
    j.begin_object();
    j.key("bench").value("ccm_node");
    j.key("node").value(static_cast<std::uint64_t>(local));
    j.key("nodes").value(static_cast<std::uint64_t>(nodes));
    j.key("drivers_local").value(static_cast<std::uint64_t>(local_drivers));
    j.key("iters").value(static_cast<std::int64_t>(wl.iters));
    j.key("elapsed_seconds").value(secs);
    j.key("ops_per_second").value(secs > 0 ? local_ops / secs : 0.0);
    j.key("batch").value(cfg.batch_directory);
    j.key("consistent").value(consistent);
    j.key("totals").begin_object();
    j.key("local_hits").value(s.local_hits);
    j.key("remote_hits").value(s.remote_hits);
    j.key("disk_reads").value(s.disk_reads);
    j.key("writes").value(s.writes);
    j.key("invalidations").value(s.invalidations);
    j.end_object();
    j.key("directory_ops").begin_object();
    j.key("lookups").value(s.directory.lookups);
    j.key("claims").value(s.directory.claims);
    j.key("masters_purged").value(s.directory.masters_purged);
    j.end_object();
    j.key("directory_client").begin_object();
    j.key("singles").value(s.dir_client.singles);
    j.key("batches").value(s.dir_client.batches);
    j.key("batched_ops").value(s.dir_client.batched_ops);
    j.key("trips").value(s.dir_client.trips());
    j.end_object();
    j.key("hints").begin_object();
    j.key("hits").value(s.hint_hits);
    j.key("stale").value(s.hint_stale);
    j.end_object();
    j.key("transport").begin_object();
    j.key("rpcs").value(ts.rpcs);
    j.key("frames_sent").value(ts.sent);
    j.key("flushes").value(ts.flushes);
    j.key("payload_copies").value(ts.payload_copies);
    j.key("bytes_sent").value(ts.bytes_sent);
    j.key("bytes_received").value(ts.bytes_received);
    j.key("frame_errors").value(ts.frame_errors);
    j.key("injected_drops").value(s.transport.injected_drops);
    j.key("injected_delays").value(s.transport.injected_delays);
    j.key("injected_duplicates").value(s.transport.injected_duplicates);
    j.key("injected_reorders").value(s.transport.injected_reorders);
    j.key("rpc_timeouts").value(s.transport.rpc_timeouts);
    j.key("rpc_retries").value(s.transport.rpc_retries);
    j.key("rpc_failures").value(s.transport.rpc_failures);
    j.key("proxy_retries").value(proxy_retries.retries.load());
    j.key("proxy_failures").value(proxy_retries.failures.load());
    j.end_object();
    // Same schema as ccm_stress's "metrics" block, scoped to this process.
    ccm_bench::metrics_block(j, "metrics", cluster.metrics().snapshot());
    if (faults_on) {
      j.key("fault_schedule").begin_object();
      j.key("seed").value(faulty->schedule().seed);
      j.key("spec").value(faulty->schedule().to_string());
      j.key("injected_events")
          .value(static_cast<std::uint64_t>(faulty->events().size()));
      j.end_object();
    }
    j.end_object();
    const std::string path = flags.get("json");
    if (path.empty() || path == "true") {
      std::cout << j.str() << "\n";
    } else {
      std::ofstream out(path);
      out << j.str() << "\n";
      std::cout << "  json report -> " << path << "\n";
    }
  }

  if (faults_on && flags.has("fault-log")) {
    const std::string path = flags.get("fault-log");
    if (!faulty->dump_events(path)) {
      std::cerr << "ccm_node: cannot write fault log to " << path << "\n";
      rc = 1;
    } else {
      std::cout << "  fault log (" << faulty->events().size()
                << " events) -> " << path << "\n";
    }
  }

  if (flags.has("metrics-out")) {
    const std::string path = flags.get("metrics-out");
    if (!ccm_bench::dump_metrics(cluster.metrics().snapshot(), path)) {
      std::cerr << "ccm_node: cannot write metrics snapshot to " << path
                << "\n";
      rc = 1;
    } else {
      std::cout << "  metrics snapshot -> " << path << "\n";
    }
  }

  if (trace_on) {
    const std::string path = flags.get("runtime-trace-out");
    const auto spans = cluster.runtime_spans().snapshot();
    std::ofstream out(path);
    out << obs::span_log_lines(spans);
    if (!out) {
      std::cerr << "ccm_node: cannot write span log to " << path << "\n";
      rc = 1;
    } else {
      std::cout << "  runtime trace (" << spans.size() << " spans, "
                << cluster.runtime_spans().dropped() << " dropped) -> "
                << path << "\n";
    }
  }

  if (lockcheck_on) {
    const std::size_t lock_cycles =
        util::lockcheck::audit("ccm_node-final");
    std::cout << "  lockcheck: " << util::lockcheck::cycles_detected()
              << " cycle(s) detected; final graph "
              << (lock_cycles == 0 ? "acyclic" : "CYCLIC") << "\n";
    if (lock_cycles != 0) rc = 1;
  }
  return rc;
}
