// Shared telemetry-report plumbing for the bench drivers: ccm_stress and
// ccm_node emit the identical "metrics" JSON block (obs::metrics_json over a
// MetricsSnapshot) so scripts/compare_bench.py and the loopback harness can
// diff either driver's report against a pinned baseline with one schema.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "proto/message.hpp"
#include "util/json.hpp"

namespace ccm_bench {

/// obs is proto-agnostic: its RPC slots are raw kind bytes. This adapter
/// gives the report human names, shrugging at out-of-vocabulary slots (a
/// newer peer's snapshot can carry kinds this build does not know).
inline const char* rpc_kind_name(std::uint8_t kind) {
  if (kind >= coop::proto::kMsgKindCount) return "unknown-kind";
  return coop::proto::kind_name(static_cast<coop::proto::MsgKind>(kind));
}

/// Appends `key: {metrics...}` to an object the caller has open.
inline void metrics_block(coop::util::JsonWriter& j, const char* key,
                          const coop::obs::MetricsSnapshot& s) {
  j.key(key);
  coop::obs::metrics_json(j, s, &rpc_kind_name);
}

/// Writes a snapshot's binary form (MetricsSnapshot::encode) to `path` for
/// offline aggregation by tools/ccm_metrics. False if the file won't open.
inline bool dump_metrics(const coop::obs::MetricsSnapshot& s,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto wire = s.encode();
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
  return static_cast<bool>(out);
}

}  // namespace ccm_bench
