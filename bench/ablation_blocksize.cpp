// Ablation A3 (§6: "whether CCM can easily be adapted for servers that
// always use whole files"): block-size sensitivity. Larger blocks amortize
// per-block CPU costs and approach whole-file granularity; smaller blocks
// waste CPU but cache partial files more precisely.
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 64));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A3: cache block size (CC-NEM)",
      trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) + " MB/node.");

  util::TextTable t;
  t.set_header({"block", "throughput (req/s)", "global hit", "remote fetches",
                "disk reads", "mean resp (ms)"});
  util::CsvWriter csv;
  csv.set_header({"block_kb", "throughput_rps", "global_hit",
                  "remote_fetches", "disk_reads", "mean_response_ms"});
  for (const std::uint32_t kb : {8u, 16u, 32u, 64u}) {
    auto cfg = harness::figure_config(server::SystemKind::kCcNem, nodes,
                                      mem_mb * 1024 * 1024);
    cfg.params.block_bytes = kb * 1024;
    const auto m = server::run_simulation(cfg, tr);
    t.add_row({std::to_string(kb) + " KB", util::fixed(m.throughput_rps, 0),
               util::percent(m.global_hit_rate(), 1),
               std::to_string(m.remote_block_fetches),
               std::to_string(m.disk_block_reads),
               util::fixed(m.mean_response_ms, 2)});
    csv.add_row({std::to_string(kb), util::fixed(m.throughput_rps, 2),
                 util::fixed(m.global_hit_rate(), 4),
                 std::to_string(m.remote_block_fetches),
                 std::to_string(m.disk_block_reads),
                 util::fixed(m.mean_response_ms, 3)});
    std::cerr << "  " << kb << " KB done\n";
  }
  t.print();
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
