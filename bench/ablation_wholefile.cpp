// Ablation A7 (§6: "we will investigate whether [CCM] can easily be adapted
// for servers that always use whole files (e.g., a web server) and whether
// such an adaptation would improve performance"): block-grain CC-NEM vs the
// whole-file adaptation vs L2S.
//
// The whole-file variant saves per-block directory/protocol work and fetches
// a file with one peer round trip, but loses partial-file caching and evicts
// in coarser units.
//
// Flags: --trace=NAME --nodes=N --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A7: block-grain vs whole-file CCM (vs L2S)",
      trace_name + ", " + std::to_string(nodes) + " nodes.");

  util::TextTable t;
  t.set_header({"mem/node", "CC-NEM blk (req/s)", "CC-NEM file (req/s)",
                "L2S (req/s)", "file/blk"});
  util::CsvWriter csv;
  csv.set_header({"memory_mb", "ccnem_block_rps", "ccnem_file_rps", "l2s_rps",
                  "ratio_file_over_block"});
  for (const std::uint64_t mem_mb : {16ull, 64ull, 256ull}) {
    double block_rps = 0.0, file_rps = 0.0, l2s_rps = 0.0;
    {
      const auto cfg = harness::figure_config(server::SystemKind::kCcNem,
                                              nodes, mem_mb << 20);
      block_rps = server::run_simulation(cfg, tr).throughput_rps;
    }
    {
      auto cfg = harness::figure_config(server::SystemKind::kCcNem, nodes,
                                        mem_mb << 20);
      cfg.ccm_whole_file = true;
      file_rps = server::run_simulation(cfg, tr).throughput_rps;
    }
    {
      const auto cfg = harness::figure_config(server::SystemKind::kL2S, nodes,
                                              mem_mb << 20);
      l2s_rps = server::run_simulation(cfg, tr).throughput_rps;
    }
    t.add_row({std::to_string(mem_mb) + " MiB", util::fixed(block_rps, 0),
               util::fixed(file_rps, 0), util::fixed(l2s_rps, 0),
               util::fixed(block_rps > 0 ? file_rps / block_rps : 0.0, 2)});
    csv.add_row({std::to_string(mem_mb), util::fixed(block_rps, 2),
                 util::fixed(file_rps, 2), util::fixed(l2s_rps, 2),
                 util::fixed(block_rps > 0 ? file_rps / block_rps : 0.0, 3)});
    std::cerr << "  " << mem_mb << " MiB done\n";
  }
  t.print();
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
