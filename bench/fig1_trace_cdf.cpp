// Reproduces Table 2 (trace characteristics) and Figure 1 (cumulative
// request-frequency / file-set-size distribution, shown for Rutgers in the
// paper; we print all four presets).
//
// Flags: --trace=NAME (only that preset) --points=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string only = flags.get("trace", "");
  const auto points = static_cast<std::size_t>(flags.get_int("points", 20));

  harness::print_heading(
      "Table 2: characteristics of the WWW traces used",
      "Synthetic presets calibrated to the paper's traces (see DESIGN.md).");

  util::TextTable t2;
  t2.set_header({"Trace", "Num. of files", "Avg file size", "Num. of requests",
                 "Avg request size", "File set size", "99% working set"});

  std::vector<trace::Trace> traces;
  for (const auto& spec : trace::all_presets()) {
    if (!only.empty() && spec.name != only) continue;
    traces.push_back(trace::generate(spec));
  }

  std::vector<trace::TraceStats> stats;
  stats.reserve(traces.size());
  for (const auto& tr : traces) {
    const auto s = trace::compute_stats(tr, points);
    t2.add_row({tr.name, std::to_string(s.num_files),
                util::fixed(s.avg_file_kb, 2) + " KB",
                std::to_string(s.num_requests),
                util::fixed(s.avg_request_kb, 2) + " KB",
                util::fixed(s.file_set_mb, 2) + " MB",
                util::fixed(static_cast<double>(s.working_set_bytes_99) /
                                (1024.0 * 1024.0),
                            1) +
                    " MB"});
    stats.push_back(s);
  }
  t2.print();

  util::CsvWriter csv;
  csv.set_header({"trace", "file_fraction", "request_fraction", "cum_mb"});

  for (std::size_t i = 0; i < traces.size(); ++i) {
    harness::print_heading(
        "Figure 1: " + traces[i].name +
            " cumulative request frequency and file set size",
        "Files sorted by decreasing request frequency.");
    util::TextTable fig;
    fig.set_header({"files (top %)", "requests covered", "cum. size (MB)"});
    for (const auto& p : stats[i].cdf) {
      fig.add_row({util::percent(p.file_fraction, 1),
                   util::percent(p.request_fraction, 1),
                   util::fixed(static_cast<double>(p.cum_bytes) /
                                   (1024.0 * 1024.0),
                               1)});
      csv.add_row({traces[i].name, util::fixed(p.file_fraction, 4),
                   util::fixed(p.request_fraction, 4),
                   util::fixed(static_cast<double>(p.cum_bytes) /
                                   (1024.0 * 1024.0),
                               2)});
    }
    fig.print();
    std::cout << "=> caching " << util::percent(0.99, 0) << " of requests needs "
              << util::fixed(static_cast<double>(stats[i].working_set_bytes_99) /
                                 (1024.0 * 1024.0),
                             0)
              << " MB (paper cites 494 MB for Rutgers)\n";
  }

  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
