// Microbenchmarks (google-benchmark) for the core data structures and the
// end-to-end simulator: event queue throughput, LRU operations, directory
// lookups, Zipf sampling, policy transitions, and simulated requests/sec.
#include <benchmark/benchmark.h>

#include "cache/coop_cache.hpp"
#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "cache/directory.hpp"
#include "cache/lru.hpp"
#include "server/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/service_center.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace coop;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(static_cast<double>(i % 17), [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_EngineNestedChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) e.schedule_in(1.0, chain);
    };
    e.schedule_in(1.0, chain);
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineNestedChain);

void BM_ServiceCenterThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::ServiceCenter sc(e, "cpu");
    for (int i = 0; i < 1000; ++i) sc.submit(0.1, nullptr);
    e.run();
    benchmark::DoNotOptimize(sc.completed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ServiceCenterThroughput);

void BM_LruTouch(benchmark::State& state) {
  cache::LruList lru;
  cache::LogicalClock clock;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    lru.insert(cache::BlockId{i, 0}, clock.next());
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    lru.touch(cache::BlockId{i++ & 4095, 0}, clock.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruTouch);

void BM_DirectoryLookup(benchmark::State& state) {
  cache::PerfectDirectory dir;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    dir.set_master(cache::BlockId{i, i % 8}, static_cast<cache::NodeId>(i % 8));
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.lookup(cache::BlockId{i++ % 100000, i % 8}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryLookup);

void BM_ZipfSample(benchmark::State& state) {
  const sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.75);
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(30000);

void BM_ClusterCacheAccess(benchmark::State& state) {
  cache::CoopCacheConfig cfg;
  cfg.nodes = 8;
  cfg.capacity_bytes = 8ull * 1024 * 1024;
  cfg.policy = state.range(0) ? cache::Policy::kNeverEvictMaster
                              : cache::Policy::kBasic;
  cache::ClusterCache cc(cfg);
  sim::Rng rng(2);
  const sim::ZipfSampler zipf(20000, 0.75);
  for (auto _ : state) {
    const auto node = static_cast<cache::NodeId>(rng.uniform_int(8));
    const auto file = static_cast<cache::FileId>(zipf.sample(rng));
    benchmark::DoNotOptimize(cc.access(node, file, 16 * 1024));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterCacheAccess)->Arg(0)->Arg(1)->ArgNames({"nem"});

void BM_MiddlewareRead(benchmark::State& state) {
  // End-to-end read latency through the threaded runtime (warm cache:
  // policy transition + byte copy; the mutex and mailbox are on the path).
  std::vector<std::uint32_t> sizes(64, 16 * 1024);
  auto storage = std::make_shared<ccm::MemStorage>(std::move(sizes));
  ccm::CcmConfig cfg;
  cfg.nodes = 4;
  cfg.capacity_bytes = 8ull << 20;
  ccm::CcmCluster cluster(cfg, storage);
  for (cache::FileId f = 0; f < 64; ++f) cluster.read(0, f);  // warm
  sim::Rng rng(3);
  for (auto _ : state) {
    const auto f = static_cast<cache::FileId>(rng.uniform_int(64));
    const auto via = static_cast<cache::NodeId>(rng.uniform_int(4));
    benchmark::DoNotOptimize(cluster.read(via, f));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_MiddlewareRead);

void BM_SimulatedRequests(benchmark::State& state) {
  trace::SyntheticSpec spec;
  spec.num_files = 2000;
  spec.num_requests = 10000;
  spec.zipf_alpha = 0.75;
  spec.seed = 5;
  const auto tr = trace::generate(spec);
  server::ClusterConfig cfg;
  cfg.system = state.range(0) ? server::SystemKind::kCcNem
                              : server::SystemKind::kL2S;
  cfg.nodes = 8;
  cfg.memory_per_node = 16ull * 1024 * 1024;
  cfg.clients.clients = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server::run_simulation(cfg, tr));
  }
  state.SetItemsProcessed(state.iterations() * spec.num_requests);
  state.SetLabel("simulated requests/sec");
}
BENCHMARK(BM_SimulatedRequests)->Arg(0)->Arg(1)->ArgNames({"ccm"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
