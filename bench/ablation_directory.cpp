// Ablation A1 (§6 future work): hint-based directory vs the paper's
// optimistic perfect directory.
//
// Sarkar & Hartman [18] report ~98% hint accuracy with negligible overhead;
// the paper argues its optimistic assumptions therefore cost little. This
// bench quantifies that: CC-NEM throughput with a perfect directory vs the
// hint-based one at several staleness settings.
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 64));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A1: perfect vs hint-based master directory",
      "CC-NEM, " + trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) + " MB/node.");

  struct Variant {
    std::string label;
    cache::DirectoryMode mode;
    std::uint32_t staleness;
  };
  const Variant variants[] = {
      {"perfect", cache::DirectoryMode::kPerfect, 0},
      {"hints (lag 1)", cache::DirectoryMode::kHinted, 1},
      {"hints (lag 4)", cache::DirectoryMode::kHinted, 4},
      {"hints (lag 16)", cache::DirectoryMode::kHinted, 16},
  };

  util::TextTable t;
  t.set_header({"directory", "throughput (req/s)", "vs perfect", "global hit",
                "disk reads", "misdirects"});
  double base = 0.0;
  util::CsvWriter csv;
  csv.set_header({"directory", "throughput_rps", "global_hit", "disk_reads",
                  "misdirects"});
  for (const auto& v : variants) {
    auto cfg = harness::figure_config(server::SystemKind::kCcNem, nodes,
                                      mem_mb * 1024 * 1024);
    cfg.directory = v.mode;
    cfg.hint_staleness = v.staleness;
    const auto m = server::run_simulation(cfg, tr);
    if (base == 0.0) base = m.throughput_rps;
    t.add_row({v.label, util::fixed(m.throughput_rps, 0),
               util::fixed(m.throughput_rps / base, 2),
               util::percent(m.global_hit_rate(), 1),
               std::to_string(m.disk_block_reads),
               std::to_string(m.hint_misdirects)});
    csv.add_row({v.label, util::fixed(m.throughput_rps, 2),
                 util::fixed(m.global_hit_rate(), 4),
                 std::to_string(m.disk_block_reads),
                 std::to_string(m.hint_misdirects)});
    std::cerr << "  " << v.label << " done\n";
  }
  t.print();
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
