// Reproduces Figure 3: CC throughput normalized against L2S for the two
// representative panels the paper shows — (a) Calgary on 4 nodes and
// (b) Rutgers on 8 nodes.
//
// Expected shape: CC-NEM/L2S >= 0.8 almost everywhere, >= 0.9 or ~1.0 in
// most configurations; CC-Basic/L2S often ~0.2.
//
// Flags: --requests=N (default 80000)  --csv=PATH  --quiet
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 60000));
  const bool quiet = flags.get_bool("quiet", false);

  const auto systems = harness::all_systems();
  const auto memories = harness::memory_sweep_bytes();

  struct Panel {
    const char* trace;
    std::size_t nodes;
  };
  const Panel panels[] = {{"calgary", 4}, {"rutgers", 8}};

  util::CsvWriter csv;
  for (const auto& panel : panels) {
    const auto tr = harness::load_trace(panel.trace, requests);
    harness::print_heading(
        std::string("Figure 3: throughput normalized against L2S — ") +
            panel.trace + ", " + std::to_string(panel.nodes) + " nodes",
        "Values are CC/L2S throughput ratios (1.00 = matching L2S).");

    const auto points = harness::run_memory_sweep(
        tr, systems, panel.nodes, memories, {},
        [&](std::size_t done, std::size_t total, const harness::SweepPoint& p) {
          if (quiet) return;
          std::cerr << "  [" << done << "/" << total << "] "
                    << server::to_string(p.system) << " "
                    << util::human_bytes(p.memory_per_node) << "\n";
        });

    harness::normalized_table(points, systems, memories,
                              harness::Metric::kThroughput)
        .print();
    harness::append_sweep_csv(csv, points, panel.trace);
  }
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
