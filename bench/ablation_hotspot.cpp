// Ablation A5 (§5: "It would be interesting to observe [CC-NEM]'s
// performance under a forced concentration of hot files on a single node"):
// concentrate every file's *home disk* on one node and compare against the
// default modulo placement. Round-robin DNS still spreads requests, but all
// misses hammer one disk.
//
// Flags: --trace=NAME --nodes=N --mem-mb=M --requests=N --csv=PATH
#include <iostream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace coop;
  const util::Flags flags(argc, argv);
  const std::string trace_name = flags.get("trace", "rutgers");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto mem_mb = static_cast<std::uint64_t>(flags.get_int("mem-mb", 64));
  const auto requests =
      static_cast<std::size_t>(flags.get_int("requests", 80000));

  const auto tr = harness::load_trace(trace_name, requests);

  harness::print_heading(
      "Ablation A5: forced file-placement concentration (CC-NEM)",
      trace_name + ", " + std::to_string(nodes) + " nodes, " +
          std::to_string(mem_mb) + " MB/node.");

  struct Variant {
    std::string label;
    std::function<std::uint16_t(trace::FileId)> home;
  };
  const auto n = static_cast<std::uint16_t>(nodes);
  const Variant variants[] = {
      {"spread (file % nodes)", {}},
      {"half cluster", [n](trace::FileId f) {
         return static_cast<std::uint16_t>(f % (n / 2 ? n / 2 : 1));
       }},
      {"single node", [](trace::FileId) { return std::uint16_t{0}; }},
  };

  util::TextTable t;
  t.set_header({"placement", "throughput (req/s)", "global hit",
                "disk util avg", "disk util max"});
  util::CsvWriter csv;
  csv.set_header({"placement", "throughput_rps", "global_hit", "disk_util",
                  "max_disk_util"});
  for (const auto& v : variants) {
    auto cfg = harness::figure_config(server::SystemKind::kCcNem, nodes,
                                      mem_mb * 1024 * 1024);
    cfg.home_of = v.home;
    const auto m = server::run_simulation(cfg, tr);
    t.add_row({v.label, util::fixed(m.throughput_rps, 0),
               util::percent(m.global_hit_rate(), 1),
               util::percent(m.disk_utilization, 1),
               util::percent(m.max_disk_utilization, 1)});
    csv.add_row({v.label, util::fixed(m.throughput_rps, 2),
                 util::fixed(m.global_hit_rate(), 4),
                 util::fixed(m.disk_utilization, 4),
                 util::fixed(m.max_disk_utilization, 4)});
    std::cerr << "  " << v.label << " done\n";
  }
  t.print();
  harness::maybe_write_csv(csv, flags.get("csv", ""));
  return 0;
}
