// Generic front-end over the experiment registry: runs any registered spec
// by name (`experiments fig2_throughput --requests=6000`), or lists the
// registry when invoked without a positional argument.
#include <iostream>

#include "harness/spec.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const coop::util::Flags flags(argc, argv);
  if (flags.positionals().empty()) {
    std::cout << "usage: experiments NAME [--flags]\nRegistered experiments:\n";
    for (const auto& s : coop::harness::all_experiments()) {
      std::cout << "  " << s.name << " — " << s.title << "\n";
    }
    return 0;
  }
  return coop::harness::run_experiment(flags.positionals().front(), argc,
                                       argv);
}
