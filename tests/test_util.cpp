// Tests for formatting, CSV, CLI, and JSON helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace coop::util {
namespace {

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.0 KiB");
  EXPECT_EQ(human_bytes(64ull * 1024 * 1024), "64.0 MiB");
  EXPECT_EQ(human_bytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.14159, 0), "3");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.834, 1), "83.4%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // All lines have the same width.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTable, ShortRowsTolerated) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_FALSE(t.to_string().empty());
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter w;
  w.set_header({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"with\"quote", "with\nnewline"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RoundTripFile) {
  CsvWriter w;
  w.set_header({"x", "y"});
  w.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "/coop_csv_test.csv";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Flags, ParsesKeyValues) {
  const char* argv[] = {"prog", "--nodes=8", "--trace=rutgers", "--verbose",
                        "positional"};
  const Flags f(5, argv);
  EXPECT_EQ(f.get_int("nodes", 0), 8);
  EXPECT_EQ(f.get("trace"), "rutgers");
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positionals().size(), 1u);
  EXPECT_EQ(f.positionals()[0], "positional");
}

TEST(Flags, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  const Flags f(1, argv);
  EXPECT_FALSE(f.has("nodes"));
  EXPECT_EQ(f.get_int("nodes", 4), 4);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.8), 0.8);
  EXPECT_TRUE(f.get_bool("flag", true));
  EXPECT_EQ(f.get("trace", "calgary"), "calgary");
}

TEST(Flags, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  const Flags f(5, argv);
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, KeysLists) {
  const char* argv[] = {"prog", "--b=2", "--a=1"};
  const Flags f(3, argv);
  const auto keys = f.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(Json, NestedObjectsAndArrays) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("run");
  json.key("cells").begin_array();
  json.begin_object();
  json.key("index").value(0);
  json.key("ok").value(true);
  json.end_object();
  json.value(2);
  json.end_array();
  json.key("extra").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"run\",\"cells\":[{\"index\":0,\"ok\":true},2],"
            "\"extra\":null}");
  EXPECT_TRUE(json.complete());
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  JsonWriter json;
  json.begin_object();
  json.key("s").value("a\"b\\c\n\t\x01");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(Json, DoublesRoundTripWithShortestForm) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.value(1.0);
  json.value(1234.5678);
  json.value(1.0 / 3.0);
  json.end_array();
  const std::string out = json.str();
  EXPECT_NE(out.find("0.1,"), std::string::npos) << out;
  // Every emitted double must parse back to the exact original value.
  double a = 0, b = 0, c = 0, d = 0;
  ASSERT_EQ(std::sscanf(out.c_str(), "[%lf,%lf,%lf,%lf]", &a, &b, &c, &d), 4);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, 1.0);
  EXPECT_EQ(c, 1234.5678);
  EXPECT_EQ(d, 1.0 / 3.0);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, LargeUnsignedValuesAreExact) {
  JsonWriter json;
  json.begin_object();
  json.key("hash").value(std::uint64_t{18446744073709551615ull});
  json.end_object();
  EXPECT_EQ(json.str(), "{\"hash\":18446744073709551615}");
}

}  // namespace
}  // namespace coop::util
