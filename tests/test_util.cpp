// Tests for formatting, CSV, and CLI helpers.
#include <gtest/gtest.h>

#include <fstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"

namespace coop::util {
namespace {

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.0 KiB");
  EXPECT_EQ(human_bytes(64ull * 1024 * 1024), "64.0 MiB");
  EXPECT_EQ(human_bytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.14159, 0), "3");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.834, 1), "83.4%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // All lines have the same width.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTable, ShortRowsTolerated) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_FALSE(t.to_string().empty());
}

TEST(Csv, EscapesSpecialCells) {
  CsvWriter w;
  w.set_header({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"with\"quote", "with\nnewline"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RoundTripFile) {
  CsvWriter w;
  w.set_header({"x", "y"});
  w.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "/coop_csv_test.csv";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Flags, ParsesKeyValues) {
  const char* argv[] = {"prog", "--nodes=8", "--trace=rutgers", "--verbose",
                        "positional"};
  const Flags f(5, argv);
  EXPECT_EQ(f.get_int("nodes", 0), 8);
  EXPECT_EQ(f.get("trace"), "rutgers");
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positionals().size(), 1u);
  EXPECT_EQ(f.positionals()[0], "positional");
}

TEST(Flags, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  const Flags f(1, argv);
  EXPECT_FALSE(f.has("nodes"));
  EXPECT_EQ(f.get_int("nodes", 4), 4);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.8), 0.8);
  EXPECT_TRUE(f.get_bool("flag", true));
  EXPECT_EQ(f.get("trace", "calgary"), "calgary");
}

TEST(Flags, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  const Flags f(5, argv);
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, KeysLists) {
  const char* argv[] = {"prog", "--b=2", "--a=1"};
  const Flags f(3, argv);
  const auto keys = f.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace coop::util
