// Tests for the parallel sweep executor: bit-identical results regardless of
// thread count, ordered progress reporting, and the compatibility wrappers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "harness/executor.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "trace/synthetic.hpp"

namespace coop::harness {
namespace {

trace::Trace small_trace() {
  trace::SyntheticSpec spec;
  spec.num_files = 200;
  spec.num_requests = 3000;
  spec.seed = 42;
  return trace::generate(spec);
}

std::vector<SweepCell> small_grid(const trace::Trace& tr) {
  std::vector<SweepCell> cells;
  for (const auto system :
       {server::SystemKind::kL2S, server::SystemKind::kCcNem}) {
    for (const std::uint64_t mem : {8ull << 20, 32ull << 20, 128ull << 20}) {
      cells.push_back({figure_config(system, 4, mem), &tr, {}});
    }
  }
  return cells;
}

TEST(Executor, ParallelMatchesSerialBitForBit) {
  const auto tr = small_trace();
  const auto cells = small_grid(tr);
  const auto serial = execute_cells(cells, {1});
  const auto parallel = execute_cells(cells, {4});
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i], parallel.points[i]) << "cell " << i;
  }
  EXPECT_EQ(serial.threads, 1u);
  EXPECT_EQ(parallel.threads, 4u);
}

TEST(Executor, ProgressInvokedExactlyOncePerCell) {
  const auto tr = small_trace();
  const auto cells = small_grid(tr);
  std::atomic<std::size_t> calls{0};
  std::set<std::size_t> done_values;
  const auto report = execute_cells(
      cells, {4},
      [&](std::size_t done, std::size_t total, const SweepPoint&) {
        calls.fetch_add(1);
        EXPECT_EQ(total, cells.size());
        done_values.insert(done);  // serialized by the executor's mutex
      });
  EXPECT_EQ(calls.load(), cells.size());
  // `done` is a running count: each value 1..total seen exactly once.
  EXPECT_EQ(done_values.size(), cells.size());
  EXPECT_EQ(*done_values.begin(), 1u);
  EXPECT_EQ(*done_values.rbegin(), cells.size());
  EXPECT_EQ(report.cell_wall_ms.size(), cells.size());
}

TEST(Executor, SingleThreadRunsInSubmissionOrder) {
  const auto tr = small_trace();
  const auto cells = small_grid(tr);
  std::vector<std::uint64_t> seen_memories;
  std::vector<std::string> seen_systems;
  execute_cells(cells, {1},
                [&](std::size_t, std::size_t, const SweepPoint& p) {
                  seen_memories.push_back(p.memory_per_node);
                  seen_systems.push_back(server::to_string(p.system));
                });
  ASSERT_EQ(seen_memories.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(seen_memories[i], cells[i].config.memory_per_node) << i;
    EXPECT_EQ(seen_systems[i], server::to_string(cells[i].config.system))
        << i;
  }
}

TEST(Executor, EmptyCellListYieldsEmptyReport) {
  const auto report = execute_cells({}, {4});
  EXPECT_TRUE(report.points.empty());
  EXPECT_TRUE(report.cell_wall_ms.empty());
}

TEST(Executor, NullTraceThrows) {
  std::vector<SweepCell> cells;
  cells.push_back({figure_config(server::SystemKind::kL2S, 2, 8 << 20),
                   nullptr,
                   {}});
  EXPECT_THROW(execute_cells(cells, {1}), std::invalid_argument);
  EXPECT_THROW(execute_cells(cells, {4}), std::invalid_argument);
}

TEST(Executor, ResolveThreadsClampsToCells) {
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(2, 3), 2u);
  EXPECT_EQ(resolve_threads(1, 100), 1u);
  EXPECT_GE(resolve_threads(0, 100), 1u);  // hardware concurrency, >= 1
  EXPECT_EQ(resolve_threads(5, 0), 1u);
}

TEST(RunnerWrappers, MemorySweepMatchesManualCells) {
  const auto tr = small_trace();
  const std::vector<server::SystemKind> systems{server::SystemKind::kL2S,
                                               server::SystemKind::kCcNem};
  const std::vector<std::uint64_t> memories{8ull << 20, 32ull << 20,
                                            128ull << 20};
  const auto wrapped = run_memory_sweep(tr, systems, 4, memories);
  const auto manual = execute_cells(small_grid(tr), {1}).points;
  ASSERT_EQ(wrapped.size(), manual.size());
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    EXPECT_EQ(wrapped[i], manual[i]) << "cell " << i;
  }
}

TEST(RunnerWrappers, FindPointErrorNamesTheMissingPair) {
  const auto tr = small_trace();
  const auto points = run_memory_sweep(
      tr, {server::SystemKind::kL2S}, 2, {8ull << 20});
  try {
    find_point(points, server::SystemKind::kCcNem, 64ull << 20);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CC-NEM"), std::string::npos) << what;
    EXPECT_NE(what.find("64"), std::string::npos) << what;
    EXPECT_NE(what.find("1 points searched"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace coop::harness
