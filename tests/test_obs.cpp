// Observability tests: span nesting and commit semantics, ring-buffer
// eviction, deterministic sampling, timeline bucketing, a golden-file check
// of the Perfetto JSON exporter, and end-to-end guarantees — tracing leaves
// metrics untouched and trace bytes are identical at any --threads.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/executor.hpp"
#include "harness/experiment.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "trace/synthetic.hpp"

namespace coop::obs {
namespace {

// -------------------------------------------------------------- spans ---

TEST(Tracer, NestsSpansAndCommitsWhenAllClose) {
  sim::Engine e;
  Tracer tracer(e, {1, 8});
  SpanCtx root = tracer.begin_request(0, 7, 2, 3);
  ASSERT_TRUE(root.active());
  EXPECT_EQ(tracer.in_flight(), 1u);

  SpanCtx child;
  e.schedule_at(1.0, [&] {
    child = root.begin("cpu.parse", Resource::kCpu, 2, 0.25);
  });
  e.schedule_at(2.0, [&] { child.end(); });
  e.schedule_at(4.0, [&] { root.end(); });
  e.run();

  EXPECT_EQ(tracer.in_flight(), 0u);
  EXPECT_EQ(tracer.committed(), 1u);
  ASSERT_EQ(tracer.completed().size(), 1u);
  const RequestTrace& req = tracer.completed().front();
  EXPECT_EQ(req.id, 0u);
  EXPECT_EQ(req.file, 7u);
  EXPECT_EQ(req.landing, 2u);
  EXPECT_EQ(req.client, 3u);
  ASSERT_EQ(req.spans.size(), 2u);
  EXPECT_EQ(req.spans[0].parent, kNoSpan);
  EXPECT_DOUBLE_EQ(req.spans[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(req.spans[0].end, 4.0);
  EXPECT_EQ(req.spans[1].parent, 0u);
  EXPECT_STREQ(req.spans[1].op, "cpu.parse");
  EXPECT_DOUBLE_EQ(req.spans[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(req.spans[1].end, 2.0);
  EXPECT_DOUBLE_EQ(req.spans[1].demand, 0.25);
}

TEST(Tracer, CommitWaitsForAsyncTailSpans) {
  // An async span (master forward) outlives the root: the request must stay
  // in flight until the tail closes.
  sim::Engine e;
  Tracer tracer(e, {1, 8});
  SpanCtx root = tracer.begin_request(0, 1, 0, 0);
  SpanCtx tail = root.branch("forward.master", Resource::kNicTx, 0, 4096);
  e.schedule_at(1.0, [&] { root.end(); });
  e.schedule_at(3.0, [&] { tail.end(); });
  e.schedule_at(2.0, [&] { EXPECT_EQ(tracer.in_flight(), 1u); });
  e.run();
  EXPECT_EQ(tracer.committed(), 1u);
  const RequestTrace& req = tracer.completed().front();
  ASSERT_EQ(req.spans.size(), 2u);
  EXPECT_EQ(req.spans[1].track, 1u);  // branch got its own render track
  EXPECT_EQ(req.tracks, 2u);
  EXPECT_DOUBLE_EQ(req.spans[1].end, 3.0);
}

TEST(Tracer, EndIsIdempotentAndNoteAttaches) {
  sim::Engine e;
  Tracer tracer(e, {1, 8});
  SpanCtx root = tracer.begin_request(0, 1, 0, 0);
  SpanCtx child = root.begin("disk.read", Resource::kDisk, 0, 0.0, 8192);
  child.note("home=0 blocks=1");
  e.schedule_at(1.0, [&] { child.end(); });
  e.schedule_at(2.0, [&] {
    child.end();  // double-close must not reopen or shift the span
    root.end();
  });
  e.run();
  ASSERT_EQ(tracer.completed().size(), 1u);
  const auto& spans = tracer.completed().front().spans;
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[1].end, 1.0);
  EXPECT_EQ(spans[1].detail, "home=0 blocks=1");
  EXPECT_EQ(spans[1].bytes, 8192u);
}

TEST(Tracer, InactiveHandlesAreNoOps) {
  SpanCtx none;
  EXPECT_FALSE(none.active());
  SpanCtx child = none.begin("x", Resource::kCpu, 0);
  EXPECT_FALSE(child.active());
  child.end();
  none.note("ignored");  // must not crash
}

// ------------------------------------------------- sampling + eviction ---

TEST(Tracer, SamplesDeterministicallyByRequestId) {
  sim::Engine e;
  Tracer tracer(e, {/*sample_every=*/3, /*ring_capacity=*/64});
  std::vector<bool> sampled;
  for (std::uint64_t id = 0; id < 9; ++id) {
    SpanCtx root = tracer.begin_request(id, 0, 0, 0);
    sampled.push_back(root.active());
    root.end();
  }
  const std::vector<bool> expect{true, false, false, true, false,
                                 false, true, false, false};
  EXPECT_EQ(sampled, expect);
  EXPECT_EQ(tracer.started(), 3u);
  EXPECT_EQ(tracer.committed(), 3u);
  ASSERT_EQ(tracer.completed().size(), 3u);
  EXPECT_EQ(tracer.completed()[0].id, 0u);
  EXPECT_EQ(tracer.completed()[1].id, 3u);
  EXPECT_EQ(tracer.completed()[2].id, 6u);
}

TEST(Tracer, RingEvictsOldestCompleted) {
  sim::Engine e;
  Tracer tracer(e, {1, /*ring_capacity=*/2});
  for (std::uint64_t id = 0; id < 5; ++id) {
    SpanCtx root = tracer.begin_request(id, 0, 0, 0);
    root.end();
  }
  EXPECT_EQ(tracer.committed(), 5u);
  EXPECT_EQ(tracer.evicted(), 3u);
  ASSERT_EQ(tracer.completed().size(), 2u);
  EXPECT_EQ(tracer.completed()[0].id, 3u);
  EXPECT_EQ(tracer.completed()[1].id, 4u);

  Tracer drained(e, {1, 2});
  { auto r = drained.begin_request(0, 0, 0, 0); r.end(); }
  auto taken = drained.take_completed();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_TRUE(drained.completed().empty());
}

TEST(Tracer, DumpInFlightListsOpenSpans) {
  sim::Engine e;
  Tracer tracer(e, {1, 8});
  SpanCtx root = tracer.begin_request(4, 9, 1, 0);
  SpanCtx child = root.begin("disk.read", Resource::kDisk, 1);
  (void)child;
  std::ostringstream os;
  tracer.dump_in_flight(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("request 4"), std::string::npos);
  EXPECT_NE(dump.find("disk.read"), std::string::npos);
  // Node-filtered variant: node 1 matches, node 0 does not.
  std::ostringstream hit, miss;
  tracer.dump_in_flight(hit, 1);
  tracer.dump_in_flight(miss, 0);
  EXPECT_NE(hit.str().find("request 4"), std::string::npos);
  EXPECT_EQ(miss.str().find("request 4"), std::string::npos);
}

// ----------------------------------------------------------- timeline ---

TEST(Timeline, SplitsBusyIntervalsAcrossBuckets) {
  Timeline tl(2, 1.0);
  tl.add_busy(0, Resource::kDisk, 0.5, 2.5);  // 0.5 + 1.0 + 0.5
  EXPECT_DOUBLE_EQ(tl.lane(0, Resource::kDisk)[0].busy_ms, 0.5);
  EXPECT_DOUBLE_EQ(tl.lane(0, Resource::kDisk)[1].busy_ms, 1.0);
  EXPECT_DOUBLE_EQ(tl.lane(0, Resource::kDisk)[2].busy_ms, 0.5);
}

TEST(Timeline, TracksMaxQueueDepthAndCounts) {
  Timeline tl(1, 10.0);
  tl.note_queue_depth(0, Resource::kCpu, 1.0, 3);
  tl.note_queue_depth(0, Resource::kCpu, 2.0, 7);
  tl.note_queue_depth(0, Resource::kCpu, 3.0, 5);
  tl.add_cache_access(0, 1.0, 2, 1);
  tl.add_bytes(0, Resource::kNicTx, 5.0, 4096);
  EXPECT_EQ(tl.lane(0, Resource::kCpu)[0].max_queue, 7u);
  EXPECT_EQ(tl.lane(0, Resource::kCache)[0].hits, 2u);
  EXPECT_EQ(tl.lane(0, Resource::kCache)[0].misses, 1u);
  EXPECT_EQ(tl.lane(0, Resource::kNicTx)[0].bytes, 4096u);
}

TEST(Timeline, RebaseDiscardsWarmupAndShiftsOrigin) {
  Timeline tl(1, 1.0);
  tl.add_busy(0, Resource::kCpu, 0.0, 1.0);  // warm-up activity
  tl.rebase(100.0);
  EXPECT_TRUE(tl.lane(0, Resource::kCpu).empty());
  tl.add_busy(0, Resource::kCpu, 100.25, 100.75);
  ASSERT_EQ(tl.lane(0, Resource::kCpu).size(), 1u);
  EXPECT_DOUBLE_EQ(tl.lane(0, Resource::kCpu)[0].busy_ms, 0.5);

  util::CsvWriter csv;
  tl.append_csv(csv);
  const std::string text = csv.to_string();
  EXPECT_NE(
      text.find(
          "bucket_start_ms,node,resource,busy_ms,max_queue,hits,misses,bytes"),
      std::string::npos);
  EXPECT_NE(text.find("100.000,0,cpu,0.500,0,0,0,0"), std::string::npos);
}

TEST(Timeline, ClusterLaneIsLabelled) {
  Timeline tl(1, 1.0);
  tl.add_busy(kClusterNode, Resource::kRouter, 0.0, 0.5);
  util::CsvWriter csv;
  tl.append_csv(csv);
  EXPECT_NE(csv.to_string().find("0.000,cluster,router,0.500,0,0,0,0"),
            std::string::npos);
}

// ------------------------------------------------------ Perfetto JSON ---

/// Golden check: the exporter's bytes for a tiny fixed TraceData. Times are
/// powers of two so every double formats exactly; if the exporter's layout
/// changes intentionally, regenerate this string (the test failure prints
/// the full actual output).
TEST(PerfettoExport, GoldenTinyTrace) {
  TraceData data;
  data.config.enabled = true;
  data.config.sample_every = 2;
  data.config.timeline_bucket_ms = 1.0;
  data.config.ring_capacity = 4;
  data.nodes = 2;
  data.requests_sampled = 1;
  data.requests_committed = 1;
  data.requests_evicted = 0;
  data.measure_start_ms = 0.0;
  data.end_ms = 4.0;

  RequestTrace req;
  req.id = 2;
  req.file = 7;
  req.landing = 1;
  req.client = 3;
  req.tracks = 2;
  {
    SpanRecord root;
    root.parent = kNoSpan;
    root.op = "request";
    root.node = 1;
    root.resource = Resource::kPhase;
    root.begin = 0.5;
    root.end = 3.5;
    req.spans.push_back(root);
  }
  {
    SpanRecord cpu;
    cpu.parent = 0;
    cpu.op = "cpu.parse";
    cpu.node = 1;
    cpu.resource = Resource::kCpu;
    cpu.begin = 0.5;
    cpu.end = 0.75;
    cpu.demand = 0.25;
    req.spans.push_back(cpu);
  }
  {
    SpanRecord fetch;
    fetch.parent = 0;
    fetch.op = "fetch.remote";
    fetch.detail = "provider=0 blocks=1";
    fetch.node = 1;
    fetch.resource = Resource::kNicRx;
    fetch.track = 1;
    fetch.begin = 1.0;
    fetch.end = 2.0;
    fetch.bytes = 8192;
    req.spans.push_back(fetch);
  }
  data.requests.push_back(req);

  data.timeline = Timeline(2, 1.0);
  data.timeline.add_busy(1, Resource::kCpu, 0.5, 0.75);
  data.timeline.add_bytes(1, Resource::kNicRx, 1.5, 8192);
  data.timeline.add_cache_access(1, 0.5, 0, 1);
  data.timeline.note_queue_depth(1, Resource::kCpu, 0.5, 2);

  const std::string kGolden =
      R"({"displayTimeUnit":"ms","otherData":{"sample_every":2,"ring_capacity":4,"timeline_bucket_ms":1,"requests_sampled":1,"requests_committed":1,"requests_evicted":0,"measure_start_ms":0,"end_ms":4},"traceEvents":[{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"node0"}},{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"cpu"}},{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"bus"}},{"ph":"M","pid":0,"tid":2,"name":"thread_name","args":{"name":"nic-tx"}},{"ph":"M","pid":0,"tid":3,"name":"thread_name","args":{"name":"nic-rx"}},{"ph":"M","pid":0,"tid":4,"name":"thread_name","args":{"name":"disk"}},{"ph":"M","pid":0,"tid":6,"name":"thread_name","args":{"name":"cache"}},{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"node1"}},{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"cpu"}},{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"bus"}},{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"nic-tx"}},{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"nic-rx"}},{"ph":"M","pid":1,"tid":4,"name":"thread_name","args":{"name":"disk"}},{"ph":"M","pid":1,"tid":6,"name":"thread_name","args":{"name":"cache"}},{"ph":"M","pid":2,"tid":0,"name":"process_name","args":{"name":"cluster"}},{"ph":"M","pid":2,"tid":5,"name":"thread_name","args":{"name":"router"}},{"ph":"M","pid":1,"tid":1192,"name":"thread_name","args":{"name":"req client3"}},{"ph":"M","pid":1,"tid":1193,"name":"thread_name","args":{"name":"req client3 branch1"}},{"ph":"X","pid":1,"tid":1192,"cat":"request","name":"request","ts":5e+02,"dur":3e+03,"args":{"request":2,"node":1,"resource":"phase","file":7,"client":3}},{"ph":"X","pid":1,"tid":1192,"cat":"request","name":"cpu.parse","ts":5e+02,"dur":2.5e+02,"args":{"request":2,"node":1,"resource":"cpu","service_ms":0.25,"queued_ms":0}},{"ph":"X","pid":1,"tid":1193,"cat":"request","name":"fetch.remote","ts":1e+03,"dur":1e+03,"args":{"request":2,"node":1,"resource":"nic-rx","bytes":8192,"detail":"provider=0 blocks=1"}},{"ph":"X","pid":1,"tid":0,"cat":"resource","name":"cpu.parse","ts":5e+02,"dur":2.5e+02,"args":{"request":2}},{"ph":"C","pid":1,"tid":0,"name":"cpu","ts":0,"args":{"busy_ms":0.25,"max_queue":2}},{"ph":"C","pid":1,"tid":0,"name":"nic-rx","ts":1e+03,"args":{"busy_ms":0,"max_queue":0,"bytes":8192}},{"ph":"C","pid":1,"tid":0,"name":"cache","ts":0,"args":{"hits":0,"misses":1}}]})";
  EXPECT_EQ(chrome_trace_json(data), kGolden);
}

}  // namespace
}  // namespace coop::obs

// --------------------------------------------- end-to-end guarantees ---

namespace coop::harness {
namespace {

trace::Trace tiny_trace() {
  trace::SyntheticSpec spec;
  spec.num_files = 200;
  spec.num_requests = 2000;
  spec.seed = 42;
  return trace::generate(spec);
}

std::vector<SweepCell> traced_cells(const trace::Trace& tr,
                                    const obs::TraceConfig& oc) {
  std::vector<SweepCell> cells;
  for (const auto system :
       {server::SystemKind::kL2S, server::SystemKind::kCcNem}) {
    cells.push_back({figure_config(system, 4, 32ull << 20), &tr, oc});
  }
  return cells;
}

TEST(TracedRuns, MetricsAreUntouchedByTracing) {
  const auto tr = tiny_trace();
  obs::TraceConfig oc;
  oc.enabled = true;
  oc.sample_every = 7;
  oc.timeline_bucket_ms = 50.0;
  const auto base = execute_cells(traced_cells(tr, obs::TraceConfig{}), {1});
  const auto traced = execute_cells(traced_cells(tr, oc), {1});
  ASSERT_EQ(base.points.size(), traced.points.size());
  for (std::size_t i = 0; i < base.points.size(); ++i) {
    EXPECT_EQ(base.points[i], traced.points[i]) << "cell " << i;
  }
  EXPECT_TRUE(base.traces.empty());
  ASSERT_EQ(traced.traces.size(), traced.points.size());
  EXPECT_GT(traced.traces[0].requests_committed, 0u);
  EXPECT_FALSE(traced.traces[0].requests.empty());
}

TEST(TracedRuns, TraceBytesIdenticalAcrossThreadCounts) {
  const auto tr = tiny_trace();
  obs::TraceConfig oc;
  oc.enabled = true;
  oc.sample_every = 3;
  const auto t1 = execute_cells(traced_cells(tr, oc), {1});
  const auto t4 = execute_cells(traced_cells(tr, oc), {4});
  ASSERT_EQ(t1.traces.size(), t4.traces.size());
  for (std::size_t i = 0; i < t1.traces.size(); ++i) {
    EXPECT_EQ(obs::chrome_trace_json(t1.traces[i]),
              obs::chrome_trace_json(t4.traces[i]))
        << "cell " << i;
    util::CsvWriter c1, c4;
    t1.traces[i].timeline.append_csv(c1);
    t4.traces[i].timeline.append_csv(c4);
    EXPECT_EQ(c1.to_string(), c4.to_string()) << "cell " << i;
  }
}

}  // namespace
}  // namespace coop::harness
