// Runtime-telemetry tests: log2 histogram geometry, percentile extraction,
// snapshot merge algebra, the binary wire form of MetricsSnapshot, the span
// log's text round-trip, and — under TSan — that the relaxed-atomic record
// path really is data-race free while a snapshotter races the recorders.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/runtime_trace.hpp"

namespace coop::obs {
namespace {

// ------------------------------------------------------ histogram geometry ---

TEST(HistBuckets, Log2BoundariesAreExact) {
  EXPECT_EQ(hist_bucket(0), 0u);
  EXPECT_EQ(hist_bucket(1), 1u);
  // Bucket b >= 1 holds [2^(b-1), 2^b): both edges of every power of two.
  for (std::size_t b = 1; b < kHistBuckets - 1; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    EXPECT_EQ(hist_bucket(lo), b) << "lower edge of bucket " << b;
    EXPECT_EQ(hist_bucket(2 * lo - 1), b) << "upper edge of bucket " << b;
    EXPECT_EQ(hist_bucket_floor(b), lo);
  }
  EXPECT_EQ(hist_bucket(~std::uint64_t{0}), kHistBuckets - 1);
  EXPECT_EQ(hist_bucket_floor(0), 0u);
}

TEST(HistSnapshot, PercentilesInterpolateAndCapAtMax) {
  MetricsRegistry r;
  for (std::uint64_t v = 1; v <= 100; ++v) r.record_lock_wait(v);
  const HistSnapshot h = r.snapshot().lock_wait_ns;
  ASSERT_EQ(h.count, 100u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.sum, 5050u);
  // Log2 buckets bound the error to the bucket width; the true p50 of
  // 1..100 is ~50, inside bucket [32,64).
  EXPECT_GE(h.percentile(0.5), 32.0);
  EXPECT_LE(h.percentile(0.5), 64.0);
  // The top bucket is [64,128) but nothing above 100 was recorded: the
  // interpolated tail must clamp to the observed max, not the bucket edge.
  EXPECT_LE(h.percentile(0.99), 100.0);
  EXPECT_LE(h.percentile(1.0), 100.0);
  EXPECT_GE(h.percentile(1.0), h.percentile(0.5));
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistSnapshot, EmptyAndSingletonPercentiles) {
  const HistSnapshot empty{};
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);

  MetricsRegistry r;
  r.record_op_read(42);
  const HistSnapshot one = r.snapshot().op_read_ns;
  EXPECT_LE(one.percentile(0.5), 42.0);
  EXPECT_GT(one.percentile(0.5), 0.0);
  EXPECT_LE(one.percentile(0.99), 42.0);
}

// ------------------------------------------------------------ merge algebra ---

MetricsSnapshot sample(std::uint32_t host, std::uint64_t salt) {
  MetricsRegistry r;
  r.set_host(host);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    r.record_rpc(static_cast<std::uint8_t>(i % 5),
                 salt * i % 5000 + 1, 64 * i);
    r.record_lock_wait(salt + i);
    r.incr(static_cast<RtCounter>(i % kRtCounterCount));
  }
  r.record_rpc_error(2, salt + 7);
  r.record_retry(3);
  r.record_op_read(salt + 11);
  r.record_op_write(salt + 13);
  return r.snapshot();
}

bool equal(const HistSnapshot& a, const HistSnapshot& b) {
  return a.buckets == b.buckets && a.count == b.count && a.sum == b.sum &&
         a.max == b.max;
}

bool equal(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  if (a.version != b.version || a.host != b.host ||
      a.processes != b.processes || a.counters != b.counters) {
    return false;
  }
  for (std::size_t k = 0; k < kMaxRpcKinds; ++k) {
    const auto& x = a.rpc[k];
    const auto& y = b.rpc[k];
    if (x.calls != y.calls || x.bytes != y.bytes || x.retries != y.retries ||
        x.errors != y.errors || !equal(x.latency_ns, y.latency_ns)) {
      return false;
    }
  }
  return equal(a.lock_wait_ns, b.lock_wait_ns) &&
         equal(a.op_read_ns, b.op_read_ns) &&
         equal(a.op_write_ns, b.op_write_ns);
}

TEST(MetricsSnapshot, MergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = sample(3, 17);
  const MetricsSnapshot b = sample(1, 101);
  const MetricsSnapshot c = sample(7, 977);

  MetricsSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  MetricsSnapshot a_bc = b;
  a_bc.merge(c);
  MetricsSnapshot left = a;
  left.merge(a_bc);
  EXPECT_TRUE(equal(ab_c, left));

  MetricsSnapshot ba = b;
  ba.merge(a);
  MetricsSnapshot ab = a;
  ab.merge(b);
  EXPECT_TRUE(equal(ab, ba));

  EXPECT_EQ(ab_c.processes, 3u);
  EXPECT_EQ(ab_c.host, 1u);  // lowest reporting host wins
  EXPECT_EQ(ab_c.lock_wait_ns.count,
            a.lock_wait_ns.count + b.lock_wait_ns.count +
                c.lock_wait_ns.count);
}

// -------------------------------------------------------------- wire format ---

TEST(MetricsSnapshot, BinaryRoundTrip) {
  const MetricsSnapshot s = sample(5, 271);
  const auto wire = s.encode();
  const auto back = MetricsSnapshot::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(equal(s, *back));
}

TEST(MetricsSnapshot, DecodeRejectsGarbage) {
  const auto wire = sample(0, 1).encode();
  for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                wire.size() - 1}) {
    EXPECT_FALSE(
        MetricsSnapshot::decode({wire.data(), len}).has_value()) << len;
  }
  auto bad_magic = wire;
  bad_magic[0] = std::byte{0x00};
  EXPECT_FALSE(MetricsSnapshot::decode(bad_magic).has_value());
  auto bad_version = wire;
  bad_version[4] = std::byte{0xEE};  // version word follows the magic
  EXPECT_FALSE(MetricsSnapshot::decode(bad_version).has_value());
}

// ---------------------------------------------------------------- span log ---

TEST(RuntimeSpanLog, TextFormRoundTripsAndSaltsIds) {
  RuntimeSpanLog log;
  EXPECT_FALSE(log.enabled());
  log.enable(/*id_node=*/3);
  ASSERT_TRUE(log.enabled());
  const std::uint64_t id = log.next_id();
  EXPECT_EQ(id >> 48, 3u);  // node salt keeps cross-process ids disjoint

  log.record({id, log.next_id(), 0, 1000, 2000, 3, kLaneOp, "read"});
  log.record({id, log.next_id(), id, 1100, 1900, 1, kLaneHandler,
              "peer-fetch"});
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 2u);

  std::vector<RuntimeSpan> parsed;
  ASSERT_TRUE(parse_span_log(span_log_lines(spans), parsed));
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].trace, spans[i].trace);
    EXPECT_EQ(parsed[i].span, spans[i].span);
    EXPECT_EQ(parsed[i].parent, spans[i].parent);
    EXPECT_EQ(parsed[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(parsed[i].end_ns, spans[i].end_ns);
    EXPECT_EQ(parsed[i].node, spans[i].node);
    EXPECT_EQ(parsed[i].lane, spans[i].lane);
    EXPECT_EQ(parsed[i].name, spans[i].name);
  }

  std::vector<RuntimeSpan> bad;
  EXPECT_FALSE(parse_span_log("1 2 not-a-number 4 5 6 7 x", bad));
}

TEST(RuntimeTraceJson, EmitsSlicesAndFlowArrows) {
  std::vector<RuntimeSpan> spans;
  spans.push_back({42, 1, 0, 1000, 9000, 0, kLaneOp, "read"});
  spans.push_back({42, 2, 1, 2000, 6000, 0, kLaneRpcClient, "peer-fetch"});
  spans.push_back({42, 3, 2, 2500, 5500, 1, kLaneHandler, "peer-fetch"});
  const std::string json = runtime_trace_json(spans);
  EXPECT_NE(json.find("\"runtime-wall-clock\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow out
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow in
  EXPECT_NE(json.find("node0 (runtime)"), std::string::npos);
  EXPECT_NE(json.find("node1 (runtime)"), std::string::npos);
}

// ------------------------------------------------------- concurrent records ---

// The point of this test is what TSan says about it: recorders on every
// shard racing a snapshotter must produce zero reports (relaxed atomics all
// the way down). The final totals are exact once the writers have joined.
TEST(MetricsRegistry, ConcurrentRecordersAreRaceFreeAndSumExactly) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&r, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        r.record_rpc(static_cast<std::uint8_t>(t % 4), i + 1, 8);
        r.incr(RtCounter::kLocalHit);
        r.record_lock_wait(i);
      }
    });
  }
  // Race a few snapshots against the writers; values are torn-tolerant but
  // must be readable without a data race.
  for (int i = 0; i < 10; ++i) {
    const MetricsSnapshot mid = r.snapshot();
    EXPECT_LE(mid.lock_wait_ns.count, kThreads * kPerThread);
  }
  for (auto& w : writers) w.join();

  const MetricsSnapshot s = r.snapshot();
  std::uint64_t calls = 0;
  for (const auto& slot : s.rpc) calls += slot.calls;
  EXPECT_EQ(calls, kThreads * kPerThread);
  EXPECT_EQ(s.counters[static_cast<std::size_t>(RtCounter::kLocalHit)],
            kThreads * kPerThread);
  EXPECT_EQ(s.lock_wait_ns.count, kThreads * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : s.lock_wait_ns.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, s.lock_wait_ns.count);

  r.reset();
  const MetricsSnapshot z = r.snapshot();
  EXPECT_EQ(z.lock_wait_ns.count, 0u);
  EXPECT_EQ(z.counters[static_cast<std::size_t>(RtCounter::kLocalHit)], 0u);
}

}  // namespace
}  // namespace coop::obs
