// Behavioral tests for ClusterCache: each rule from §3/§5 of the paper gets a
// deterministic micro-scenario, and parameterized random sweeps check the
// cross-node invariants after every access.
#include <gtest/gtest.h>

#include <tuple>

#include "cache/coop_cache.hpp"
#include "sim/random.hpp"

namespace coop::cache {
namespace {

constexpr std::uint32_t kBlock = 8 * 1024;

CoopCacheConfig small_config(std::size_t nodes, std::uint64_t blocks_per_node,
                             Policy policy) {
  CoopCacheConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks_per_node * kBlock;
  c.block_bytes = kBlock;
  c.policy = policy;
  return c;
}

/// Shorthand: access one whole file of `blocks` blocks.
AccessResult touch_file(ClusterCache& cc, NodeId node, FileId file,
                        std::uint32_t blocks = 1) {
  return cc.access(node, file, static_cast<std::uint64_t>(blocks) * kBlock);
}

// ------------------------------------------------------- basic protocol ---

TEST(CoopCache, FirstAccessIsDiskReadAtHome) {
  ClusterCache cc(small_config(4, 8, Policy::kBasic));
  const auto r = touch_file(cc, /*node=*/2, /*file=*/5);
  ASSERT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(r.fetches[0].source, Source::kDiskRead);
  EXPECT_EQ(r.fetches[0].provider, cc.home_of(5));
  EXPECT_EQ(cc.home_of(5), 1);  // 5 % 4
  EXPECT_TRUE(cc.node(2).is_master(BlockId{5, 0}));
  EXPECT_EQ(cc.directory().lookup(BlockId{5, 0}), 2);
}

TEST(CoopCache, SecondAccessSameNodeIsLocalHit) {
  ClusterCache cc(small_config(4, 8, Policy::kBasic));
  touch_file(cc, 2, 5);
  const auto r = touch_file(cc, 2, 5);
  ASSERT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(r.fetches[0].source, Source::kLocalHit);
  EXPECT_EQ(r.fetches[0].provider, 2);
}

TEST(CoopCache, OtherNodeGetsRemoteHitAndKeepsCopy) {
  ClusterCache cc(small_config(4, 8, Policy::kBasic));
  touch_file(cc, 2, 5);
  const auto r = touch_file(cc, 0, 5);
  ASSERT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(r.fetches[0].source, Source::kRemoteHit);
  EXPECT_EQ(r.fetches[0].provider, 2);
  // Requester keeps a non-master copy; master stays where it was.
  EXPECT_TRUE(cc.node(0).contains(BlockId{5, 0}));
  EXPECT_FALSE(cc.node(0).is_master(BlockId{5, 0}));
  EXPECT_TRUE(cc.node(2).is_master(BlockId{5, 0}));
}

TEST(CoopCache, MultiBlockFileFetchesEveryBlock) {
  ClusterCache cc(small_config(4, 16, Policy::kBasic));
  const auto r = touch_file(cc, 0, 8, /*blocks=*/5);
  EXPECT_EQ(r.fetches.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(cc.node(0).is_master(BlockId{8, i}));
  }
  EXPECT_EQ(cc.stats().disk_reads, 5u);
}

TEST(CoopCache, ZeroByteFileOccupiesOneBlock) {
  ClusterCache cc(small_config(2, 4, Policy::kBasic));
  const auto r = cc.access(0, 9, 0);
  EXPECT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(cc.node(0).used_blocks(), 1u);
}

TEST(CoopCache, MasterReadRefreshesItsAge) {
  // Remote hits touch the master, protecting hot masters from eviction.
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 0, 0);  // master f0 at node 0
  touch_file(cc, 0, 2);  // master f2 at node 0 (home 0); node 0 full
  touch_file(cc, 1, 0);  // remote hit: touches f0's master
  // Node 0 must now evict when caching something new; the oldest is f2.
  touch_file(cc, 0, 4);
  EXPECT_TRUE(cc.node(0).contains(BlockId{0, 0}));
  EXPECT_FALSE(cc.node(0).contains(BlockId{2, 0}));
}

// ------------------------------------------------------------ eviction ---

TEST(CoopCache, NonMasterEvictedSilently) {
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 1, 0);  // f0 master @1, age 1
  touch_file(cc, 0, 0);  // remote hit (master age 2), copy @0 age 3
  touch_file(cc, 0, 1);  // f1 master @0, age 4; node 0 full
  // Node 0's oldest is the f0 copy (age 3): dropped, never forwarded.
  const auto r = touch_file(cc, 0, 3);
  ASSERT_GE(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{0, 0}));
  EXPECT_EQ(r.drops[0].node, 0);
  EXPECT_FALSE(r.drops[0].was_master);
  EXPECT_TRUE(r.forwards.empty());
  EXPECT_TRUE(cc.node(1).is_master(BlockId{0, 0}));  // master untouched
}

TEST(CoopCache, MasterForwardedWhenNotGloballyOldest) {
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 1, 0);  // f0 master @1, age 1 (the globally oldest)
  touch_file(cc, 0, 1);  // f1 master @0, age 2
  touch_file(cc, 0, 3);  // f3 master @0, age 3; node 0 full
  // Node 0 evicts f1 (age 2): node 1 holds age 1, so f1 is not globally
  // oldest -> forwarded to node 1 (which even has a free slot).
  const auto r = touch_file(cc, 0, 5);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_EQ(r.forwards[0].block, (BlockId{1, 0}));
  EXPECT_EQ(r.forwards[0].from, 0);
  EXPECT_EQ(r.forwards[0].to, 1);
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.node(1).is_master(BlockId{1, 0}));
  EXPECT_EQ(cc.directory().lookup(BlockId{1, 0}), 1);
}

TEST(CoopCache, GloballyOldestMasterIsDropped) {
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 0, 0);  // f0 master @0, age 1 (globally oldest)
  touch_file(cc, 0, 2);  // f2 master @0, age 2; node 0 full
  touch_file(cc, 1, 1);  // f1 master @1, age 3
  const auto r = touch_file(cc, 0, 4);  // node 0 must evict f0
  ASSERT_GE(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{0, 0}));
  EXPECT_TRUE(r.drops[0].was_master);
  EXPECT_TRUE(r.forwards.empty());
  EXPECT_EQ(cc.directory().lookup(BlockId{0, 0}), kInvalidNode);
}

TEST(CoopCache, ForwardedMasterKeepsItsAge) {
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 1, 1);  // age 1 @1
  touch_file(cc, 1, 3);  // age 2 @1; node 1 full
  touch_file(cc, 0, 0);  // age 3 @0
  touch_file(cc, 0, 2);  // age 4 @0; node 0 full
  // Node 0 evicts f0 (age 3): node 1 has older blocks -> forward to node 1.
  // Node 1 drops its oldest (f1, age 1); f3 (age 2) remains, which is older
  // than the forwarded block (age 3)... so the forwarded block is youngest at
  // dest? No: remaining f3 age 2 < 3, so forward IS accepted and the list at
  // node 1 is [f3(2), f0(3)].
  const auto r = touch_file(cc, 0, 4);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.node(1).is_master(BlockId{0, 0}));
  EXPECT_EQ(cc.node(1).masters().age_of(BlockId{0, 0}), 3u);
}

TEST(CoopCache, ForwardedBlockDroppedIfYoungestAtDestination) {
  ClusterCache cc(small_config(2, 1, Policy::kBasic));
  touch_file(cc, 0, 0);  // f0 master @0 age 1
  touch_file(cc, 1, 1);  // f1 master @1 age 2
  // Node 1 accesses f3: must evict f1 (master, age 2). Node 0 holds age 1,
  // so f1 is not globally oldest -> forward to node 0. Node 0 drops f0
  // (age 1) to make room; now node 0 is empty, so the forwarded block is
  // accepted (no younger blocks remain). Then node 1 caches f3.
  auto r = touch_file(cc, 1, 3);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.node(0).is_master(BlockId{1, 0}));

  // Now construct the rejected case: node 0 holds f1 (age 2). Node 1 holds
  // f3 (age 3). Access f5 at node 0: evict f1 (not globally oldest? node 1
  // has age 3 > 2, so f1 IS globally oldest -> dropped, no forward).
  r = touch_file(cc, 0, 5);
  EXPECT_TRUE(r.forwards.empty());
  EXPECT_EQ(cc.directory().lookup(BlockId{1, 0}), kInvalidNode);
}

TEST(CoopCache, RejectedForwardWhenAllDestBlocksYounger) {
  // 3 nodes, capacity 2. Arrange: node 0 evicts a master of age A; the peer
  // with the oldest block ends up holding only blocks younger than A after
  // its make-room drop.
  ClusterCache cc(small_config(3, 2, Policy::kBasic));
  touch_file(cc, 1, 1);   // f1@1 age 1
  touch_file(cc, 0, 0);   // f0@0 age 2
  touch_file(cc, 1, 4);   // f4@1 age 3 (node 1 full: ages 1,3)
  touch_file(cc, 0, 3);   // f3@0 age 4 (node 0 full: ages 2,4)
  touch_file(cc, 2, 2);   // f2@2 age 5 (node 2 has one free slot)
  touch_file(cc, 2, 5);   // f5@2 age 6 (node 2 full: ages 5,6)
  // Node 0 accesses f6 -> evicts f0 (age 2, master, not globally oldest since
  // node 1 holds age 1) -> forward to node 1 (oldest peer, all full).
  // Node 1 drops f1 (age 1); remaining f4 (age 3) is younger than 2 -> the
  // forwarded master is dropped too.
  const auto r = touch_file(cc, 0, 6);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_FALSE(r.forwards[0].accepted);
  EXPECT_EQ(cc.directory().lookup(BlockId{0, 0}), kInvalidNode);
  // And the destination did NOT cascade: exactly its one oldest was dropped.
  EXPECT_TRUE(cc.node(1).contains(BlockId{4, 0}));
  EXPECT_FALSE(cc.node(1).contains(BlockId{1, 0}));
}

TEST(CoopCache, ForwardToNodeHoldingCopyPromotesIt) {
  ClusterCache cc(small_config(2, 2, Policy::kBasic));
  touch_file(cc, 1, 1);  // f1 master @1, age 1
  touch_file(cc, 0, 0);  // f0 master @0, age 2
  touch_file(cc, 1, 0);  // remote hit: master touched (age 3), copy @1 age 4
  touch_file(cc, 0, 2);  // f2 master @0, age 5; node 0 full (f0:3, f2:5)
  // Node 0 evicts f0's master (age 3; node 1 holds age 1, so not globally
  // oldest) -> forwarded to node 1, which holds a non-master copy of the
  // same block: the copy is promoted in place, nothing is dropped.
  const auto r = touch_file(cc, 0, 4);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_EQ(r.forwards[0].block, (BlockId{0, 0}));
  EXPECT_EQ(r.forwards[0].to, 1);
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.node(1).is_master(BlockId{0, 0}));
  EXPECT_EQ(cc.directory().lookup(BlockId{0, 0}), 1);
  for (const auto& d : r.drops) EXPECT_NE(d.node, 1);
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCache, SingleNodeClusterDropsInsteadOfForwarding) {
  // With one node, the local oldest is always the globally oldest, so
  // masters are dropped outright and no forward is ever attempted.
  ClusterCache cc(small_config(1, 2, Policy::kBasic));
  touch_file(cc, 0, 0);
  touch_file(cc, 0, 1);
  const auto r = touch_file(cc, 0, 2);
  EXPECT_TRUE(r.forwards.empty());
  ASSERT_EQ(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{0, 0}));
  EXPECT_TRUE(r.drops[0].was_master);
  EXPECT_TRUE(cc.node(0).contains(BlockId{2, 0}));
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCache, ForwardPrefersPeerWithFreeSpace) {
  ClusterCache cc(small_config(3, 2, Policy::kBasic));
  touch_file(cc, 1, 1);  // node 1: one block, one free slot
  touch_file(cc, 0, 0);
  touch_file(cc, 0, 3);  // node 0 full
  const auto r = touch_file(cc, 0, 6);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_TRUE(r.forwards[0].accepted);
  // No drop should have occurred at the destination (it had space).
  for (const auto& d : r.drops) EXPECT_NE(d.node, r.forwards[0].to);
}

// --------------------------------------------------------------- CC-NEM ---

TEST(CoopCacheNem, EvictsOldestCopyBeforeAnyMaster) {
  ClusterCache cc(small_config(2, 3, Policy::kNeverEvictMaster));
  touch_file(cc, 1, 1);  // master f1@1
  touch_file(cc, 0, 1);  // copy f1@0 (oldest thing at node 0 afterwards)
  touch_file(cc, 0, 0);  // master f0@0
  touch_file(cc, 0, 2);  // master f2@0; node 0 full: copy f1, masters f0,f2
  const auto r = touch_file(cc, 0, 4);
  // The copy of f1 must be the victim even though it is NOT the oldest
  // (master f0 has an older age? no: copy inserted before f0, so the copy is
  // oldest anyway). The discriminating case: make a master the oldest.
  ASSERT_GE(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{1, 0}));
  EXPECT_FALSE(r.drops[0].was_master);

  // Discriminating case: copy younger than a master.
  ClusterCache cc2(small_config(2, 3, Policy::kNeverEvictMaster));
  touch_file(cc2, 0, 0);  // master f0@0 age 1 (oldest)
  touch_file(cc2, 1, 1);  // master f1@1
  touch_file(cc2, 0, 1);  // copy f1@0 (younger than master f0)
  touch_file(cc2, 0, 2);  // master f2@0; node 0 full
  const auto r2 = touch_file(cc2, 0, 4);
  ASSERT_GE(r2.drops.size(), 1u);
  EXPECT_EQ(r2.drops[0].block, (BlockId{1, 0}));
  EXPECT_FALSE(r2.drops[0].was_master);
  EXPECT_TRUE(cc2.node(0).is_master(BlockId{0, 0}));  // old master survives
}

TEST(CoopCacheNem, FallsBackToGlobalLruWhenOnlyMasters) {
  // Node 0 holds only masters and its oldest is the globally oldest block:
  // the Basic rule applies and the master is dropped outright.
  ClusterCache cc(small_config(2, 2, Policy::kNeverEvictMaster));
  touch_file(cc, 0, 0);  // age 1 (globally oldest)
  touch_file(cc, 0, 2);  // age 2; node 0 full of masters
  touch_file(cc, 1, 1);  // age 3
  const auto r = touch_file(cc, 0, 4);
  EXPECT_TRUE(r.forwards.empty());
  ASSERT_GE(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{0, 0}));
  EXPECT_TRUE(r.drops[0].was_master);

  // And when the oldest master is NOT globally oldest, it is forwarded.
  ClusterCache cc2(small_config(2, 2, Policy::kNeverEvictMaster));
  touch_file(cc2, 1, 1);  // age 1 @1 (globally oldest)
  touch_file(cc2, 0, 0);  // age 2 @0
  touch_file(cc2, 0, 2);  // age 3 @0; node 0 full of masters
  const auto r2 = touch_file(cc2, 0, 4);
  ASSERT_EQ(r2.forwards.size(), 1u);
  EXPECT_EQ(r2.forwards[0].block, (BlockId{0, 0}));
  EXPECT_TRUE(r2.forwards[0].accepted);
}

TEST(CoopCacheNem, MemoryFillsWithMastersUnderPressure) {
  // The paper: CC-NEM "leads to all memories holding only master copies"
  // when the working set exceeds cluster memory.
  ClusterCache cc(small_config(4, 8, Policy::kNeverEvictMaster));
  sim::Rng rng(7);
  const sim::ZipfSampler zipf(64, 0.8);  // 64 one-block files >> 32 blocks
  for (int i = 0; i < 4000; ++i) {
    const auto node = static_cast<NodeId>(i % 4);
    touch_file(cc, node, static_cast<FileId>(zipf.sample(rng)));
  }
  std::size_t copies = 0, masters = 0;
  for (NodeId n = 0; n < 4; ++n) {
    copies += cc.node(n).copy_count();
    masters += cc.node(n).master_count();
  }
  EXPECT_GT(masters, 25u);
  // Only a handful of freshly-fetched replicas survive at any instant.
  EXPECT_LE(copies, 6u);
  EXPECT_GT(masters, copies * 4);
  EXPECT_TRUE(cc.check_invariants());
}

// --------------------------------------------------------------- stats ---

TEST(CoopCache, StatsAreConsistent) {
  ClusterCache cc(small_config(4, 16, Policy::kNeverEvictMaster));
  sim::Rng rng(11);
  const sim::ZipfSampler zipf(200, 0.9);
  std::uint64_t fetches = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = touch_file(cc, static_cast<NodeId>(rng.uniform_int(4)),
                              static_cast<FileId>(zipf.sample(rng)),
                              1 + static_cast<std::uint32_t>(rng.uniform_int(3)));
    fetches += r.fetches.size();
  }
  const auto& s = cc.stats();
  EXPECT_EQ(s.block_accesses(), fetches);
  EXPECT_LE(s.forwards_accepted, s.forwards_attempted);
  EXPECT_NEAR(s.local_hit_rate() + s.remote_hit_rate(), s.global_hit_rate(),
              1e-12);
  EXPECT_GT(s.global_hit_rate(), 0.0);
  EXPECT_LE(s.global_hit_rate(), 1.0);
}

TEST(CoopCache, ResetStatsClearsCounters) {
  ClusterCache cc(small_config(2, 4, Policy::kBasic));
  touch_file(cc, 0, 0);
  EXPECT_GT(cc.stats().disk_reads, 0u);
  cc.reset_stats();
  EXPECT_EQ(cc.stats().disk_reads, 0u);
  EXPECT_EQ(cc.stats().block_accesses(), 0u);
}

TEST(CoopCache, CustomHomeMapping) {
  CoopCacheConfig cfg = small_config(4, 8, Policy::kBasic);
  ClusterCache cc(cfg, [](FileId) { return NodeId{3}; });
  const auto r = touch_file(cc, 0, 17);
  EXPECT_EQ(r.fetches[0].provider, 3);
  EXPECT_EQ(cc.home_of(0), 3);
}

// -------------------------------------------------------- hinted mode -----

TEST(CoopCacheHinted, MissingHintChainsViaHome) {
  CoopCacheConfig cfg = small_config(3, 8, Policy::kNeverEvictMaster);
  cfg.directory = DirectoryMode::kHinted;
  cfg.hint_staleness = 100;  // hints only refresh on use
  ClusterCache cc(cfg);
  touch_file(cc, 0, 0);  // master f0@0; nodes 1,2 have no hints
  const auto r = touch_file(cc, 1, 0);
  // Node 1 had no hint: the request chains via the home node to the real
  // master — a remote hit with an extra (misdirected) hop, not a disk read.
  ASSERT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(r.fetches[0].source, Source::kRemoteHit);
  EXPECT_TRUE(r.fetches[0].misdirected);
  EXPECT_EQ(r.fetches[0].provider, 0);
  EXPECT_EQ(cc.stats().hint_misdirects, 1u);
  // Node 1 learned the location: the next access pays no extra hop.
  touch_file(cc, 2, 0);  // another cold node
  const auto r2 = touch_file(cc, 1, 1);  // different file, fresh
  (void)r2;
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheHinted, StaleHintCostsExtraHopButHits) {
  CoopCacheConfig cfg = small_config(3, 8, Policy::kNeverEvictMaster);
  cfg.directory = DirectoryMode::kHinted;
  cfg.hint_staleness = 100;
  ClusterCache cc(cfg);
  touch_file(cc, 0, 0);   // master f0@0
  touch_file(cc, 1, 0);   // node 1: no hint -> chained remote hit, copy @1
  const auto r = touch_file(cc, 0, 0);  // owner: plain local hit
  EXPECT_EQ(r.fetches[0].source, Source::kLocalHit);
  EXPECT_GE(cc.hint_accuracy(), 0.0);
  EXPECT_TRUE(cc.check_invariants());
}

// ------------------------------------------- whole-file adaptation (§6) ---

CoopCacheConfig whole_file_config(std::size_t nodes,
                                  std::uint64_t blocks_per_node) {
  auto c = small_config(nodes, blocks_per_node, Policy::kNeverEvictMaster);
  c.whole_file = true;
  return c;
}

TEST(CoopCacheWholeFile, FileIsOneEntrySpanningItsBlocks) {
  ClusterCache cc(whole_file_config(2, 16));
  const auto r = cc.access(0, 5, 3 * kBlock + 10);  // 4 blocks
  ASSERT_EQ(r.fetches.size(), 1u);  // a single fetch covers the file
  EXPECT_EQ(r.fetches[0].source, Source::kDiskRead);
  EXPECT_EQ(cc.node(0).used_blocks(), 4u);   // but it occupies 4 slots
  EXPECT_EQ(cc.node(0).entry_count(), 1u);
  EXPECT_TRUE(cc.node(0).is_master(BlockId{5, 0}));
}

TEST(CoopCacheWholeFile, EvictionFreesWholeFiles) {
  ClusterCache cc(whole_file_config(1, 8));
  cc.access(0, 1, 4 * kBlock);  // 4 slots
  cc.access(0, 2, 4 * kBlock);  // 8 slots: full
  const auto r = cc.access(0, 3, 2 * kBlock);  // needs 2 -> evict file 1
  ASSERT_GE(r.drops.size(), 1u);
  EXPECT_EQ(r.drops[0].block, (BlockId{1, 0}));
  EXPECT_FALSE(cc.node(0).contains(BlockId{1, 0}));
  EXPECT_EQ(cc.node(0).used_blocks(), 6u);  // 4 (file 2) + 2 (file 3)
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWholeFile, RemoteHitCopiesWholeFile) {
  ClusterCache cc(whole_file_config(2, 16));
  cc.access(0, 5, 4 * kBlock);
  const auto r = cc.access(1, 5, 4 * kBlock);
  ASSERT_EQ(r.fetches.size(), 1u);
  EXPECT_EQ(r.fetches[0].source, Source::kRemoteHit);
  EXPECT_EQ(cc.node(1).used_blocks(), 4u);  // the copy is also 4 slots
  EXPECT_FALSE(cc.node(1).is_master(BlockId{5, 0}));
}

TEST(CoopCacheWholeFile, ForwardCarriesFullFootprint) {
  ClusterCache cc(whole_file_config(2, 8));
  cc.access(1, 1, 2 * kBlock);  // node 1: 2 slots, age 1
  cc.access(0, 2, 4 * kBlock);  // node 0: 4 slots, age 2
  cc.access(0, 4, 4 * kBlock);  // node 0 full (8 slots), age 3
  // Node 0 accesses another file: evicts file 2 (oldest master, not
  // globally oldest because node 1 holds age 1) -> forward to node 1.
  const auto r = cc.access(0, 6, 2 * kBlock);
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_EQ(r.forwards[0].block, (BlockId{2, 0}));
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.node(1).is_master(BlockId{2, 0}));
  EXPECT_EQ(cc.node(1).used_blocks(), 6u);  // 2 (file 1) + 4 (file 2)
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWholeFile, OversizedFileAdmittedDegenerately) {
  ClusterCache cc(whole_file_config(2, 4));
  cc.access(0, 1, kBlock);
  const auto r = cc.access(0, 2, 10 * kBlock);  // wider than capacity
  (void)r;
  EXPECT_TRUE(cc.node(0).contains(BlockId{2, 0}));
  EXPECT_FALSE(cc.node(0).contains(BlockId{1, 0}));  // evicted for room
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWholeFile, InvariantsUnderRandomWorkload) {
  ClusterCache cc(whole_file_config(4, 32));
  sim::Rng rng(0xF00D);
  const sim::ZipfSampler zipf(80, 0.8);
  for (int i = 0; i < 3000; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(4));
    const auto file = static_cast<FileId>(zipf.sample(rng));
    const auto bytes = (1 + rng.uniform_int(6)) * kBlock;
    cc.access(node, file, bytes);
    if (i % 250 == 0) {
      ASSERT_TRUE(cc.check_invariants()) << i;
    }
  }
  ASSERT_TRUE(cc.check_invariants());
}

// ----------------------------------------------- write protocol (§6 ext) ---

TEST(CoopCacheWrite, WriteAllocateCreatesMaster) {
  ClusterCache cc(small_config(4, 8, Policy::kNeverEvictMaster));
  AccessResult r;
  cc.write_block(1, BlockId{7, 0}, r);
  EXPECT_TRUE(cc.node(1).is_master(BlockId{7, 0}));
  EXPECT_EQ(cc.directory().lookup(BlockId{7, 0}), 1);
  EXPECT_EQ(cc.stats().writes, 1u);
  EXPECT_EQ(cc.stats().invalidations, 0u);
  EXPECT_EQ(cc.stats().disk_reads, 0u);  // no disk read for write-allocate
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, InvalidatesAllPeerCopies) {
  ClusterCache cc(small_config(4, 8, Policy::kNeverEvictMaster));
  touch_file(cc, 0, 5);  // master @0
  touch_file(cc, 1, 5);  // copy @1
  touch_file(cc, 2, 5);  // copy @2
  AccessResult r;
  cc.write_block(0, BlockId{5, 0}, r);  // owner writes
  EXPECT_EQ(cc.stats().invalidations, 2u);
  EXPECT_FALSE(cc.node(1).contains(BlockId{5, 0}));
  EXPECT_FALSE(cc.node(2).contains(BlockId{5, 0}));
  EXPECT_TRUE(cc.node(0).is_master(BlockId{5, 0}));
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, OwnershipMigratesToWriter) {
  ClusterCache cc(small_config(4, 8, Policy::kNeverEvictMaster));
  touch_file(cc, 0, 5);  // master @0
  AccessResult r;
  cc.write_block(3, BlockId{5, 0}, r);
  EXPECT_EQ(cc.stats().ownership_migrations, 1u);
  EXPECT_FALSE(cc.node(0).contains(BlockId{5, 0}));
  EXPECT_TRUE(cc.node(3).is_master(BlockId{5, 0}));
  EXPECT_EQ(cc.directory().lookup(BlockId{5, 0}), 3);
  // The migration is reported as an accepted forward (data moves with it).
  ASSERT_EQ(r.forwards.size(), 1u);
  EXPECT_EQ(r.forwards[0].from, 0);
  EXPECT_EQ(r.forwards[0].to, 3);
  EXPECT_TRUE(r.forwards[0].accepted);
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, WriterCopyPromotedInPlace) {
  ClusterCache cc(small_config(4, 8, Policy::kNeverEvictMaster));
  touch_file(cc, 0, 5);  // master @0
  touch_file(cc, 1, 5);  // copy @1
  AccessResult r;
  cc.write_block(1, BlockId{5, 0}, r);  // writer held a copy
  EXPECT_TRUE(cc.node(1).is_master(BlockId{5, 0}));
  EXPECT_FALSE(cc.node(0).contains(BlockId{5, 0}));
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, RepeatedOwnerWriteIsCheap) {
  ClusterCache cc(small_config(2, 8, Policy::kNeverEvictMaster));
  AccessResult r;
  cc.write_block(0, BlockId{9, 0}, r);
  const auto migrations = cc.stats().ownership_migrations;
  cc.write_block(0, BlockId{9, 0}, r);
  cc.write_block(0, BlockId{9, 0}, r);
  EXPECT_EQ(cc.stats().ownership_migrations, migrations);
  EXPECT_EQ(cc.stats().writes, 3u);
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, MultiBlockWriteOwnsEveryBlock) {
  ClusterCache cc(small_config(2, 16, Policy::kNeverEvictMaster));
  touch_file(cc, 1, 4, /*blocks=*/3);  // masters @1
  const auto r = cc.write(0, 4, 3 * kBlock);
  (void)r;
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(cc.node(0).is_master(BlockId{4, i}));
    EXPECT_FALSE(cc.node(1).contains(BlockId{4, i}));
  }
  EXPECT_EQ(cc.stats().ownership_migrations, 3u);
  EXPECT_TRUE(cc.check_invariants());
}

TEST(CoopCacheWrite, WritesUnderPressureKeepInvariants) {
  ClusterCache cc(small_config(4, 4, Policy::kNeverEvictMaster));
  sim::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(4));
    const auto file = static_cast<FileId>(rng.uniform_int(40));
    if (rng.uniform() < 0.3) {
      AccessResult r;
      cc.write_block(node, BlockId{file, 0}, r);
    } else {
      touch_file(cc, node, file);
    }
    if (i % 200 == 0) {
      ASSERT_TRUE(cc.check_invariants()) << i;
    }
  }
  EXPECT_TRUE(cc.check_invariants());
  EXPECT_GT(cc.stats().writes, 0u);
  EXPECT_GT(cc.stats().invalidations, 0u);
}

TEST(CoopCacheWrite, InvalidateFileDropsEverywhere) {
  ClusterCache cc(small_config(3, 8, Policy::kNeverEvictMaster));
  touch_file(cc, 0, 5, /*blocks=*/2);
  touch_file(cc, 1, 5, /*blocks=*/2);  // copies at node 1
  const auto r = cc.invalidate_file(5, 2 * kBlock);
  EXPECT_EQ(r.drops.size(), 4u);  // 2 masters + 2 copies
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_FALSE(cc.node(n).contains(BlockId{5, 0}));
    EXPECT_FALSE(cc.node(n).contains(BlockId{5, 1}));
  }
  EXPECT_EQ(cc.directory().lookup(BlockId{5, 0}), kInvalidNode);
  EXPECT_EQ(cc.stats().invalidations, 4u);
  EXPECT_TRUE(cc.check_invariants());
  // Idempotent.
  const auto r2 = cc.invalidate_file(5, 2 * kBlock);
  EXPECT_TRUE(r2.drops.empty());
}

// -------------------------------------------- randomized property sweep ---

struct SweepParam {
  std::size_t nodes;
  std::uint64_t blocks;
  Policy policy;
  DirectoryMode dir;
};

class CoopCacheSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(CoopCacheSweep, InvariantsHoldUnderRandomWorkload) {
  const auto p = GetParam();
  CoopCacheConfig cfg = small_config(p.nodes, p.blocks, p.policy);
  cfg.directory = p.dir;
  ClusterCache cc(cfg);
  sim::Rng rng(0xC0FFEE ^ (p.nodes * 131) ^ p.blocks);
  const sim::ZipfSampler zipf(100, 0.8);
  for (int i = 0; i < 3000; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(p.nodes));
    const auto file = static_cast<FileId>(zipf.sample(rng));
    const auto blocks = 1 + static_cast<std::uint32_t>(rng.uniform_int(4));
    const auto r = touch_file(cc, node, file, blocks);
    // Per-access sanity: every fetch names a valid provider; accepted
    // forwards landed as masters.
    for (const auto& f : r.fetches) {
      if (f.source == Source::kLocalHit) {
        EXPECT_EQ(f.provider, node);
      }
      EXPECT_LT(f.provider, p.nodes);
    }
    for (const auto& fw : r.forwards) {
      if (fw.accepted) {
        EXPECT_TRUE(cc.directory().lookup(fw.block) == fw.to ||
                    !cc.node(fw.to).contains(fw.block))
            << "accepted forward must land at destination (unless later "
               "evicted within the same access)";
      }
    }
    if (i % 100 == 0) {
      ASSERT_TRUE(cc.check_invariants()) << "iteration " << i;
    }
  }
  ASSERT_TRUE(cc.check_invariants());
  // The requested blocks of the final access must be present locally.
  const auto& s = cc.stats();
  EXPECT_EQ(s.block_accesses(), s.local_hits + s.remote_hits + s.disk_reads);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoopCacheSweep,
    testing::Values(SweepParam{1, 4, Policy::kBasic, DirectoryMode::kPerfect},
                    SweepParam{2, 2, Policy::kBasic, DirectoryMode::kPerfect},
                    SweepParam{2, 2, Policy::kNeverEvictMaster,
                               DirectoryMode::kPerfect},
                    SweepParam{4, 8, Policy::kBasic, DirectoryMode::kPerfect},
                    SweepParam{4, 8, Policy::kNeverEvictMaster,
                               DirectoryMode::kPerfect},
                    SweepParam{8, 16, Policy::kBasic, DirectoryMode::kPerfect},
                    SweepParam{8, 16, Policy::kNeverEvictMaster,
                               DirectoryMode::kPerfect},
                    SweepParam{4, 8, Policy::kBasic, DirectoryMode::kHinted},
                    SweepParam{4, 8, Policy::kNeverEvictMaster,
                               DirectoryMode::kHinted},
                    SweepParam{3, 1, Policy::kNeverEvictMaster,
                               DirectoryMode::kPerfect}));

TEST(CoopCachePolicy, NemBeatsBasicOnOverflowingWorkingSet) {
  // The paper's headline: protecting masters raises the global hit rate when
  // the working set exceeds cluster memory.
  const auto run = [](Policy policy) {
    ClusterCache cc(small_config(8, 32, policy));
    sim::Rng rng(42);
    const sim::ZipfSampler zipf(2000, 0.75);  // 2000 blocks >> 256 blocks
    for (int i = 0; i < 30000; ++i) {
      const auto node = static_cast<NodeId>(i % 8);
      cc.access(node, static_cast<FileId>(zipf.sample(rng)), kBlock);
    }
    return cc.stats().global_hit_rate();
  };
  const double basic = run(Policy::kBasic);
  const double nem = run(Policy::kNeverEvictMaster);
  EXPECT_GT(nem, basic);
}

}  // namespace
}  // namespace coop::cache
