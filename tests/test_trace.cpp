// Tests for trace representation, synthetic generation, presets, statistics,
// and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hpp"
#include "trace/io.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace coop::trace {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec s;
  s.name = "small";
  s.num_files = 500;
  s.num_requests = 20000;
  s.zipf_alpha = 0.8;
  s.mean_file_bytes = 16 * 1024;
  s.seed = 99;
  return s;
}

// ---------------------------------------------------------------- Trace ---

TEST(Trace, FileSetTotals) {
  const FileSet fs({100, 200, 300});
  EXPECT_EQ(fs.count(), 3u);
  EXPECT_EQ(fs.total_bytes(), 600u);
  EXPECT_EQ(fs.size_bytes(1), 200u);
}

TEST(Trace, TotalRequestedBytes) {
  Trace t;
  t.files = FileSet({100, 200});
  t.requests = {0, 1, 1};
  EXPECT_EQ(t.total_requested_bytes(), 500u);
}

// ------------------------------------------------------------ Synthetic ---

TEST(Synthetic, DeterministicForSeed) {
  const Trace a = generate(small_spec());
  const Trace b = generate(small_spec());
  EXPECT_EQ(a.files.sizes(), b.files.sizes());
  EXPECT_EQ(a.requests, b.requests);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto spec = small_spec();
  const Trace a = generate(spec);
  spec.seed = 100;
  const Trace b = generate(spec);
  EXPECT_NE(a.requests, b.requests);
}

TEST(Synthetic, RespectsCounts) {
  const Trace t = generate(small_spec());
  EXPECT_EQ(t.files.count(), 500u);
  EXPECT_EQ(t.requests.size(), 20000u);
}

TEST(Synthetic, AllRequestsInRange) {
  const Trace t = generate(small_spec());
  for (const auto r : t.requests) EXPECT_LT(r, t.files.count());
}

TEST(Synthetic, MeanFileSizeNearTarget) {
  auto spec = small_spec();
  spec.num_files = 20000;
  const Trace t = generate(spec);
  const double mean = static_cast<double>(t.files.total_bytes()) /
                      static_cast<double>(t.files.count());
  EXPECT_NEAR(mean, spec.mean_file_bytes, spec.mean_file_bytes * 0.25);
}

TEST(Synthetic, MinFileSizeEnforced) {
  auto spec = small_spec();
  spec.min_file_bytes = 1024;
  const Trace t = generate(spec);
  for (const auto s : t.files.sizes()) EXPECT_GE(s, 1024u);
}

TEST(Synthetic, PopularityIsSkewed) {
  const Trace t = generate(small_spec());
  std::vector<std::uint64_t> counts(t.files.count(), 0);
  for (const auto r : t.requests) ++counts[r];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Top 10% of files should absorb far more than 10% of requests.
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < counts.size() / 10; ++i) top += counts[i];
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(t.requests.size()),
            0.35);
}

TEST(Synthetic, SizeAndPopularityIndependent) {
  // The most popular file should not systematically be the largest: check
  // that the hottest 10 files are not all in the top size decile.
  const Trace t = generate(small_spec());
  std::vector<std::uint64_t> counts(t.files.count(), 0);
  for (const auto r : t.requests) ++counts[r];
  std::vector<std::size_t> by_pop(t.files.count());
  for (std::size_t i = 0; i < by_pop.size(); ++i) by_pop[i] = i;
  std::sort(by_pop.begin(), by_pop.end(),
            [&](std::size_t a, std::size_t b) { return counts[a] > counts[b]; });
  std::vector<std::uint32_t> sizes = t.files.sizes();
  std::sort(sizes.begin(), sizes.end());
  const std::uint32_t p90 = sizes[sizes.size() * 9 / 10];
  int huge = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (t.files.size_bytes(static_cast<FileId>(by_pop[i])) >= p90) ++huge;
  }
  EXPECT_LT(huge, 8);
}

// -------------------------------------------------------------- Presets ---

TEST(Presets, AllFourExist) {
  const auto presets = all_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "calgary");
  EXPECT_EQ(presets[1].name, "clarknet");
  EXPECT_EQ(presets[2].name, "nasa");
  EXPECT_EQ(presets[3].name, "rutgers");
}

TEST(Presets, LookupByName) {
  EXPECT_EQ(preset_by_name("nasa").name, "nasa");
  EXPECT_THROW(preset_by_name("bogus"), std::out_of_range);
}

TEST(Presets, RutgersHasLargestFileSet) {
  // DESIGN.md: rutgers is the widest working set (~500 MB), so that per-node
  // memories of 4-512 MB span the under- to over-provisioned regimes.
  const Trace rutgers = generate(rutgers_spec());
  const double mb =
      static_cast<double>(rutgers.files.total_bytes()) / (1024.0 * 1024.0);
  EXPECT_GT(mb, 350.0);
  EXPECT_LT(mb, 800.0);
  for (const auto& spec : {calgary_spec(), clarknet_spec(), nasa_spec()}) {
    const Trace t = generate(spec);
    EXPECT_LT(t.files.total_bytes(), rutgers.files.total_bytes())
        << spec.name;
  }
}

TEST(Presets, FileSetsExceedSmallClusterMemory) {
  // At 4 MB/node x 8 nodes = 32 MB aggregate, every trace's working set must
  // overflow memory (the paper's premise for simulating small memories).
  for (const auto& spec : all_presets()) {
    const Trace t = generate(spec);
    EXPECT_GT(working_set_bytes(t, 0.99), 32ull * 1024 * 1024) << spec.name;
  }
}

// ---------------------------------------------------------------- Stats ---

TEST(Stats, CountsAndAverages) {
  Trace t;
  t.name = "t";
  t.files = FileSet({10 * 1024, 30 * 1024});
  t.requests = {0, 0, 1, 0};
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.num_files, 2u);
  EXPECT_EQ(s.num_requests, 4u);
  EXPECT_DOUBLE_EQ(s.avg_file_kb, 20.0);
  EXPECT_DOUBLE_EQ(s.avg_request_kb, 15.0);
  EXPECT_NEAR(s.file_set_mb, 40.0 / 1024.0, 1e-9);
}

TEST(Stats, CdfIsMonotone) {
  const Trace t = generate(small_spec());
  const TraceStats s = compute_stats(t);
  ASSERT_FALSE(s.cdf.empty());
  for (std::size_t i = 1; i < s.cdf.size(); ++i) {
    EXPECT_GE(s.cdf[i].request_fraction, s.cdf[i - 1].request_fraction);
    EXPECT_GE(s.cdf[i].cum_bytes, s.cdf[i - 1].cum_bytes);
    EXPECT_GE(s.cdf[i].file_fraction, s.cdf[i - 1].file_fraction);
  }
  EXPECT_NEAR(s.cdf.back().request_fraction, 1.0, 1e-9);
  EXPECT_EQ(s.cdf.back().cum_bytes, t.files.total_bytes());
}

TEST(Stats, WorkingSetMonotoneInFraction) {
  const Trace t = generate(small_spec());
  const auto w50 = working_set_bytes(t, 0.5);
  const auto w90 = working_set_bytes(t, 0.9);
  const auto w99 = working_set_bytes(t, 0.99);
  EXPECT_LE(w50, w90);
  EXPECT_LE(w90, w99);
  EXPECT_LE(w99, t.files.total_bytes());
  EXPECT_GT(w50, 0u);
}

TEST(Stats, WorkingSetSmallerThanFileSetForSkewedTrace) {
  const Trace t = generate(small_spec());
  // 90% of requests should concentrate on well under the full file set.
  EXPECT_LT(working_set_bytes(t, 0.9),
            t.files.total_bytes() * 9 / 10);
}

TEST(Stats, StatsWorkingSetFieldsMatchHelper) {
  const Trace t = generate(small_spec());
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.working_set_bytes_90, working_set_bytes(t, 0.9));
  EXPECT_EQ(s.working_set_bytes_99, working_set_bytes(t, 0.99));
}

TEST(Stats, EmptyTraceIsSafe) {
  const Trace t;
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.num_files, 0u);
  EXPECT_EQ(s.num_requests, 0u);
}

// ------------------------------------------------------------------- IO ---

TEST(Io, RoundTripStream) {
  auto spec = small_spec();
  spec.num_files = 50;
  spec.num_requests = 500;
  const Trace t = generate(spec);
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, t));
  const auto back = read_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, t.name);
  EXPECT_EQ(back->files.sizes(), t.files.sizes());
  EXPECT_EQ(back->requests, t.requests);
}

TEST(Io, RoundTripFile) {
  auto spec = small_spec();
  spec.num_files = 20;
  spec.num_requests = 100;
  const Trace t = generate(spec);
  const std::string path = testing::TempDir() + "/coop_trace_test.trace";
  ASSERT_TRUE(write_trace_file(path, t));
  const auto back = read_trace_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requests, t.requests);
}

TEST(Io, RejectsBadMagic) {
  std::stringstream ss("not-a-trace 1\nx\n0 0\n");
  EXPECT_FALSE(read_trace(ss).has_value());
}

TEST(Io, RejectsOutOfRangeRequest) {
  std::stringstream ss("coopcache-trace 1\nt\n2 1\n100 200\n7\n");
  EXPECT_FALSE(read_trace(ss).has_value());
}

TEST(Io, RejectsTruncated) {
  std::stringstream ss("coopcache-trace 1\nt\n3 2\n100 200\n");
  EXPECT_FALSE(read_trace(ss).has_value());
}

TEST(Io, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_trace_file("/nonexistent/path.trace").has_value());
}

TEST(Io, FuzzGarbageNeverCrashes) {
  sim::Rng rng(0xBAD);
  for (int i = 0; i < 200; ++i) {
    std::string junk;
    const auto len = rng.uniform_int(200);
    for (std::uint64_t j = 0; j < len; ++j) {
      junk += static_cast<char>(rng.uniform_int(256));
    }
    std::stringstream ss(junk);
    (void)read_trace(ss);  // must not crash; usually nullopt
  }
  // Mutated valid traces must either parse consistently or be rejected.
  auto spec = small_spec();
  spec.num_files = 20;
  spec.num_requests = 50;
  const Trace t = generate(spec);
  std::stringstream good;
  ASSERT_TRUE(write_trace(good, t));
  const std::string base = good.str();
  for (int i = 0; i < 100; ++i) {
    std::string mutated = base;
    mutated[rng.uniform_int(mutated.size())] =
        static_cast<char>(rng.uniform_int(256));
    std::stringstream ss(mutated);
    const auto back = read_trace(ss);
    if (back.has_value()) {
      // Whatever parsed must be internally consistent.
      for (const auto r : back->requests) EXPECT_LT(r, back->files.count());
    }
  }
}

TEST(Io, LargeTraceRoundTrip) {
  auto spec = small_spec();
  spec.num_files = 5000;
  spec.num_requests = 50000;
  const Trace t = generate(spec);
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, t));
  const auto back = read_trace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requests, t.requests);
  EXPECT_EQ(back->files.sizes(), t.files.sizes());
}

}  // namespace
}  // namespace coop::trace
