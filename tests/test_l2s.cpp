// Unit tests for the L2S baseline server, driving it directly (no client
// pool) so migration, replication, and de-replication decisions can be
// observed against the cache state.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "server/l2s_server.hpp"

namespace coop::server {
namespace {

struct L2sFixture {
  sim::Engine engine;
  hw::ModelParams params;
  hw::Network network{engine, params};
  std::vector<std::unique_ptr<hw::Node>> nodes;
  trace::FileSet files;
  std::unique_ptr<L2sServer> server;

  explicit L2sFixture(std::size_t n, std::vector<std::uint32_t> sizes,
                      L2sConfig config = {})
      : files(std::move(sizes)) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          engine, params, hw::DiskSched::kSeekAware,
          static_cast<std::uint16_t>(i)));
    }
    config.cache.nodes = n;
    if (config.cache.capacity_bytes == 0) {
      config.cache.capacity_bytes = 8ull << 20;
    }
    server = std::make_unique<L2sServer>(engine, network, nodes, files,
                                         config, params);
  }

  /// Issues a request and runs the engine until it is served.
  void request(NodeId node, trace::FileId file) {
    bool done = false;
    server->handle(node, file, [&] { done = true; });
    engine.run();
    EXPECT_TRUE(done);
  }
};

TEST(L2sServer, FirstTouchCachesAtLandingNode) {
  L2sFixture f(4, {16 * 1024, 16 * 1024});
  f.request(2, 0);
  EXPECT_TRUE(f.server->cache().cached(2, 0));
  EXPECT_EQ(f.server->cache().copy_count(0), 1u);
  EXPECT_EQ(f.server->handoffs(), 0u);
  // It came from disk, not memory.
  EXPECT_DOUBLE_EQ(f.server->local_hit_rate() + f.server->remote_hit_rate(),
                   0.0);
}

TEST(L2sServer, SecondTouchFromElsewhereMigrates) {
  L2sFixture f(4, {16 * 1024});
  f.request(2, 0);
  f.request(0, 0);  // lands on node 0, hands off to holder 2
  EXPECT_EQ(f.server->handoffs(), 1u);
  EXPECT_GT(f.server->remote_hit_rate(), 0.0);
  // Still exactly one copy: migration, not replication.
  EXPECT_EQ(f.server->cache().copy_count(0), 1u);
}

TEST(L2sServer, LandingOnHolderIsALocalHit) {
  L2sFixture f(4, {16 * 1024});
  f.request(1, 0);
  f.request(1, 0);
  EXPECT_GT(f.server->local_hit_rate(), 0.0);
  EXPECT_EQ(f.server->handoffs(), 0u);
}

TEST(L2sServer, OverloadedHolderTriggersReplication) {
  L2sConfig cfg;
  cfg.overload_threshold = 2;
  cfg.replication_margin = 1;
  L2sFixture f(2, {16 * 1024}, cfg);
  f.request(0, 0);  // cached at node 0

  // Pile synthetic CPU work on the holder so it looks overloaded, then let a
  // request land on the idle node 1: it must replicate instead of migrating.
  for (int i = 0; i < 8; ++i) f.nodes[0]->cpu().submit(50.0, nullptr);
  bool done = false;
  f.server->handle(1, 0, [&] { done = true; });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server->replications(), 1u);
  EXPECT_EQ(f.server->cache().copy_count(0), 2u);
  EXPECT_TRUE(f.server->cache().cached(1, 0));
}

TEST(L2sServer, ReplicationCopiesFromMemoryNotDisk) {
  L2sConfig cfg;
  cfg.overload_threshold = 2;
  cfg.replication_margin = 1;
  L2sFixture f(2, {64 * 1024}, cfg);
  f.request(0, 0);
  const auto disk_reads_before = f.nodes[1]->disk().completed();
  for (int i = 0; i < 8; ++i) f.nodes[0]->cpu().submit(50.0, nullptr);
  bool done = false;
  f.server->handle(1, 0, [&] { done = true; });
  f.engine.run();
  EXPECT_TRUE(done);
  // The replica came over the LAN: node 1's disk did no work.
  EXPECT_EQ(f.nodes[1]->disk().completed(), disk_reads_before);
  EXPECT_GT(f.nodes[1]->nic_rx().completed(), 0u);
}

TEST(L2sServer, MissReadsWholeFileFromLocalDisk) {
  L2sFixture f(2, {48 * 1024});  // 6 blocks
  f.request(1, 0);
  EXPECT_EQ(f.nodes[1]->disk().completed(), 6u);
  EXPECT_EQ(f.nodes[0]->disk().completed(), 0u);
}

TEST(L2sServer, ResetStatsKeepsCacheContents) {
  L2sFixture f(2, {16 * 1024});
  f.request(0, 0);
  f.server->reset_stats();
  EXPECT_EQ(f.server->handoffs(), 0u);
  EXPECT_TRUE(f.server->cache().cached(0, 0));  // contents preserved
  f.request(0, 0);
  EXPECT_GT(f.server->local_hit_rate(), 0.0);
}

TEST(L2sServer, NoHandoffRelaysThroughLandingNode) {
  L2sConfig cfg;
  cfg.tcp_handoff = false;
  cfg.overload_threshold = 1u << 30;  // replication off
  L2sFixture f(2, {32 * 1024}, cfg);
  f.request(0, 0);  // cached at 0
  const auto tx_before = f.nodes[0]->nic_tx().completed();
  f.request(1, 0);  // lands at 1, served at 0, relayed through 1
  EXPECT_EQ(f.server->handoffs(), 1u);
  // The holder shipped the payload to the landing node (not the client).
  EXPECT_GT(f.nodes[0]->nic_tx().completed(), tx_before);
  EXPECT_GT(f.nodes[1]->nic_rx().completed(), 0u);
  // The landing node paid a serve cost too.
  EXPECT_GT(f.nodes[1]->cpu().completed(), 1u);
}

}  // namespace
}  // namespace coop::server
