// CCM_AUDIT invariant tests: deliberately corrupt each layer's private state
// through test-peer friends and prove the matching audit invariant trips —
// and that healthy states audit clean. The corruptions simulate the bug
// classes the audits exist to catch (duplicate masters, directory drift,
// accounting leaks, time travel); several violate documented preconditions
// on purpose, which is safe here because the mutated objects are only
// audited, never run further. In asserts-enabled builds some precondition
// asserts would fire first — the tier-1/audit/TSan builds all use NDEBUG.
#include <gtest/gtest.h>

#include <memory>

#include "cache/coop_cache.hpp"
#include "cache/whole_file_cache.hpp"
#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "server/l2s_server.hpp"
#include "sim/engine.hpp"
#include "util/audit.hpp"

namespace coop::cache {

struct ClusterCacheTestPeer {
  static std::vector<NodeCache>& nodes(ClusterCache& cc) { return cc.nodes_; }
  static PerfectDirectory& directory(ClusterCache& cc) {
    return cc.directory_;
  }
  static HintedDirectory& hints(ClusterCache& cc) { return cc.hints_; }
};

struct HintedDirectoryTestPeer {
  static auto& truth(HintedDirectory& d) { return d.truth_; }
  static auto& last_broadcast(HintedDirectory& d) { return d.last_broadcast_; }
};

struct WholeFileCacheTestPeer {
  static auto& node_state(WholeFileCache& wc, NodeId n) {
    return wc.nodes_[n];
  }
  static auto& copy_counts(WholeFileCache& wc) { return wc.copy_counts_; }
};

}  // namespace coop::cache

namespace coop::sim {

struct EngineTestPeer {
  static void set_now(Engine& e, SimTime t) { e.now_ = t; }
  static void set_live(Engine& e, std::size_t v) { e.live_ = v; }
  static std::size_t live(const Engine& e) { return e.live_; }
};

}  // namespace coop::sim

namespace coop::ccm {

struct CcmClusterTestPeer {
  static auto& store(CcmCluster& c, std::size_t n) {
    return c.shards_[n]->store;
  }
};

}  // namespace coop::ccm

namespace coop::cache {
namespace {

using audit_ns = coop::audit::Recorder;

constexpr std::uint32_t kBlock = 8 * 1024;

CoopCacheConfig cc_config(std::size_t nodes, std::uint64_t blocks_per_node,
                          DirectoryMode dir = DirectoryMode::kPerfect) {
  CoopCacheConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks_per_node * kBlock;
  c.block_bytes = kBlock;
  c.directory = dir;
  return c;
}

// ------------------------------------------------------ handler plumbing ---

TEST(AuditRuntime, RecorderCollectsAndRestores) {
  {
    coop::audit::Recorder rec;
    coop::audit::report("test-invariant", "detail");
    ASSERT_EQ(rec.count(), 1u);
    EXPECT_TRUE(rec.saw("test-invariant"));
    EXPECT_FALSE(rec.saw("other"));
    EXPECT_EQ(rec.violations()[0].detail, "detail");
    rec.clear();
    EXPECT_EQ(rec.count(), 0u);
  }
  // Nested recorders: inner collects, outer untouched until inner dies.
  coop::audit::Recorder outer;
  {
    coop::audit::Recorder inner;
    coop::audit::report("inner-only", "");
    EXPECT_EQ(inner.count(), 1u);
    EXPECT_EQ(outer.count(), 0u);
  }
  coop::audit::report("outer-now", "");
  EXPECT_TRUE(outer.saw("outer-now"));
}

// --------------------------------------------------- ClusterCache audits ---

TEST(ClusterCacheAudit, HealthyWorkloadAuditsClean) {
  for (const auto dir : {DirectoryMode::kPerfect, DirectoryMode::kHinted}) {
    ClusterCache cc(cc_config(4, 8, dir));
    for (FileId f = 0; f < 12; ++f) {
      cc.access(static_cast<NodeId>(f % 4), f, 3 * kBlock);
    }
    coop::audit::Recorder rec;
    EXPECT_EQ(cc.audit("healthy"), 0u);
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_TRUE(cc.check_invariants());
  }
}

TEST(ClusterCacheAudit, DuplicateMasterTrips) {
  ClusterCache cc(cc_config(2, 8));
  cc.access(0, 1, kBlock);  // node 0 becomes master holder of {1, 0}
  ASSERT_TRUE(cc.node(0).is_master(BlockId{1, 0}));
  // A second master copy of the same block appears at node 1 — the protocol
  // must never allow this (at most one master per block cluster-wide).
  ClusterCacheTestPeer::nodes(cc)[1].insert(BlockId{1, 0}, /*master=*/true,
                                            /*age=*/99);
  coop::audit::Recorder rec;
  EXPECT_GT(cc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("cache-master-registered"));  // node 1 not registered
  EXPECT_TRUE(rec.saw("cache-single-master"));      // 2 masters, 1 entry
  EXPECT_FALSE(cc.check_invariants());
}

TEST(ClusterCacheAudit, DanglingDirectoryEntryTrips) {
  ClusterCache cc(cc_config(2, 8));
  cc.access(0, 1, kBlock);
  // Directory claims a master that no node caches.
  ClusterCacheTestPeer::directory(cc).set_master(BlockId{7, 3}, 1);
  coop::audit::Recorder rec;
  EXPECT_EQ(cc.audit("corrupt"), 1u);
  EXPECT_TRUE(rec.saw("cache-single-master"));
  EXPECT_FALSE(rec.saw("cache-master-registered"));
}

TEST(ClusterCacheAudit, OverOccupancyTrips) {
  ClusterCache cc(cc_config(2, 2));
  cc.access(0, 1, kBlock);
  cc.access(0, 2, kBlock);  // node 0 now full (2 of 2 blocks)
  // Two more copies leak in without eviction — an accounting overflow.
  ClusterCacheTestPeer::nodes(cc)[0].insert(BlockId{8, 0}, /*master=*/false,
                                            /*age=*/50);
  ClusterCacheTestPeer::nodes(cc)[0].insert(BlockId{9, 0}, /*master=*/false,
                                            /*age=*/51);
  coop::audit::Recorder rec;
  EXPECT_GT(cc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("cache-occupancy"));
}

TEST(ClusterCacheAudit, SlotAccountingDriftTrips) {
  ClusterCache cc(cc_config(2, 8));
  cc.access(0, 1, 2 * kBlock);
  // Erasing a block that was never cached silently decrements the used-slot
  // book (the assert guarding the precondition is compiled out) — the books
  // no longer cover the entries.
  ClusterCacheTestPeer::nodes(cc)[0].erase(BlockId{42, 0});
  coop::audit::Recorder rec;
  EXPECT_GT(cc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("cache-slot-accounting"));
}

TEST(ClusterCacheAudit, HintTruthDivergenceTrips) {
  ClusterCache cc(cc_config(2, 8, DirectoryMode::kHinted));
  cc.access(0, 1, kBlock);
  ASSERT_TRUE(cc.node(0).is_master(BlockId{1, 0}));
  // The hint layer's authoritative record drifts to the wrong (valid) node.
  HintedDirectoryTestPeer::truth(ClusterCacheTestPeer::hints(cc))[BlockId{1, 0}]
      .node = 1;
  coop::audit::Recorder rec;
  EXPECT_GT(cc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("cache-hint-truth"));
  EXPECT_FALSE(rec.saw("dir-truth-node-valid"));  // node 1 is a valid node
}

// ------------------------------------------------- HintedDirectory audits ---

TEST(HintedDirectoryAudit, InvalidTruthNodeTrips) {
  HintedDirectory dir(2);
  dir.set_master(BlockId{1, 0}, 0, 0);
  HintedDirectoryTestPeer::truth(dir)[BlockId{1, 0}].node = kInvalidNode;
  coop::audit::Recorder rec;
  EXPECT_GT(dir.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("dir-truth-node-valid"));
}

TEST(HintedDirectoryAudit, BroadcastBookkeepingTrips) {
  HintedDirectory dir(2);
  dir.set_master(BlockId{1, 0}, 0, 0);
  // Broadcast record for a block with no authoritative entry...
  HintedDirectoryTestPeer::last_broadcast(dir)[BlockId{9, 9}] = 1;
  // ...and a broadcast version from the future for a live one.
  HintedDirectoryTestPeer::last_broadcast(dir)[BlockId{1, 0}] = 1000;
  coop::audit::Recorder rec;
  EXPECT_EQ(dir.audit("corrupt"), 2u);
  EXPECT_TRUE(rec.saw("dir-broadcast-live"));
  EXPECT_TRUE(rec.saw("dir-broadcast-version"));
}

// ------------------------------------------------- WholeFileCache audits ---

WholeFileCacheConfig wfc_config(std::size_t nodes, std::uint64_t blocks) {
  WholeFileCacheConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks * kBlock;
  c.block_bytes = kBlock;
  return c;
}

TEST(WholeFileCacheAudit, HealthyStateAuditsClean) {
  WholeFileCache wc(wfc_config(2, 8));
  wc.insert(0, 1, 2 * kBlock);
  wc.insert(1, 1, 2 * kBlock);
  wc.insert(0, 2, kBlock);
  coop::audit::Recorder rec;
  EXPECT_EQ(wc.audit("healthy"), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST(WholeFileCacheAudit, UsedBlocksDriftTrips) {
  WholeFileCache wc(wfc_config(2, 8));
  wc.insert(0, 1, 2 * kBlock);
  WholeFileCacheTestPeer::node_state(wc, 0).used_blocks += 5;
  coop::audit::Recorder rec;
  EXPECT_GT(wc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("wfc-used-blocks"));
}

TEST(WholeFileCacheAudit, IndexLruMismatchTrips) {
  WholeFileCache wc(wfc_config(2, 8));
  wc.insert(0, 1, kBlock);
  WholeFileCacheTestPeer::node_state(wc, 0).index.clear();
  coop::audit::Recorder rec;
  EXPECT_GT(wc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("wfc-index-lru"));
}

TEST(WholeFileCacheAudit, OccupancyOverflowTrips) {
  WholeFileCache wc(wfc_config(2, 4));
  wc.insert(0, 1, kBlock);
  wc.insert(0, 2, kBlock);
  // Forge the books: claim far more used blocks than the capacity with
  // multiple entries resident (the lone-oversized-file exemption must not
  // apply).
  auto& ns = WholeFileCacheTestPeer::node_state(wc, 0);
  ns.lru.front().blocks += 10;
  ns.used_blocks += 10;
  coop::audit::Recorder rec;
  EXPECT_GT(wc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("wfc-occupancy"));
  EXPECT_FALSE(rec.saw("wfc-used-blocks"));  // books agree with entries
}

TEST(WholeFileCacheAudit, CopyCountDriftTrips) {
  WholeFileCache wc(wfc_config(2, 8));
  wc.insert(0, 1, kBlock);
  WholeFileCacheTestPeer::copy_counts(wc)[1] = 3;
  coop::audit::Recorder rec;
  EXPECT_GT(wc.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("wfc-copy-counts"));
}

}  // namespace
}  // namespace coop::cache

namespace coop::sim {
namespace {

TEST(EngineAudit, HealthyQueueAuditsClean) {
  Engine e;
  e.schedule_in(1.0, [] {});
  e.schedule_in(2.0, [] {});
  coop::audit::Recorder rec;
  EXPECT_EQ(e.audit_state(), 0u);
  e.run();
  EXPECT_EQ(e.audit_state(), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST(EngineAudit, TimeTravelTrips) {
  Engine e;
  e.schedule_at(5.0, [] {});
  EngineTestPeer::set_now(e, 10.0);  // clock jumped past a pending event
  coop::audit::Recorder rec;
  EXPECT_EQ(e.audit_state(), 1u);
  EXPECT_TRUE(rec.saw("engine-monotonic-time"));
  EngineTestPeer::set_now(e, 0.0);  // restore: event is in the future again
  EXPECT_EQ(e.audit_state(), 0u);
}

TEST(EngineAudit, LiveCountLeakTrips) {
  Engine e;
  e.schedule_in(1.0, [] {});
  const std::size_t real_live = EngineTestPeer::live(e);
  EngineTestPeer::set_live(e, real_live + 7);
  coop::audit::Recorder rec;
  EXPECT_EQ(e.audit_state(), 1u);
  EXPECT_TRUE(rec.saw("engine-live-count"));
  EngineTestPeer::set_live(e, real_live);  // restore before the dtor runs
  EXPECT_EQ(e.audit_state(), 0u);
}

}  // namespace
}  // namespace coop::sim

namespace coop::ccm {
namespace {

constexpr std::uint32_t kBlock = 8 * 1024;

CcmConfig ccm_config(std::size_t nodes, std::uint64_t blocks_per_node) {
  CcmConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks_per_node * kBlock;
  c.block_bytes = kBlock;
  c.workers_per_node = 1;
  return c;
}

std::shared_ptr<MemStorage> tiny_storage() {
  return std::make_shared<MemStorage>(
      std::vector<std::uint32_t>{3 * kBlock, 2 * kBlock, kBlock});
}

TEST(CcmClusterAudit, HealthyClusterAuditsClean) {
  CcmCluster cluster(ccm_config(2, 16), tiny_storage());
  (void)cluster.read(0, 0);
  (void)cluster.read(1, 1);
  coop::audit::Recorder rec;
  EXPECT_EQ(cluster.audit("healthy"), 0u);
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmClusterAudit, MissingStoreEntryTrips) {
  CcmCluster cluster(ccm_config(2, 16), tiny_storage());
  (void)cluster.read(0, 0);
  // Drop one cached block's bytes while the policy still lists it.
  auto& store = CcmClusterTestPeer::store(cluster, 0);
  ASSERT_FALSE(store.empty());
  store.erase(store.begin());  // ccm-lint: allow(unordered-iter)
  coop::audit::Recorder rec;
  EXPECT_GT(cluster.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("ccm-store-policy-size"));
}

TEST(CcmClusterAudit, OrphanedBytesTrip) {
  CcmCluster cluster(ccm_config(2, 16), tiny_storage());
  (void)cluster.read(0, 0);
  // Bytes appear for a block the policy has never heard of.
  auto& store = CcmClusterTestPeer::store(cluster, 0);
  const auto ghost = cache::BlockId{2, 0};
  store[ghost] = store.begin()->second;  // ccm-lint: allow(unordered-iter)
  coop::audit::Recorder rec;
  EXPECT_GT(cluster.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("ccm-store-orphan"));
}

TEST(CcmClusterAudit, NullBlockPointerTrips) {
  CcmCluster cluster(ccm_config(2, 16), tiny_storage());
  (void)cluster.read(0, 0);
  auto& store = CcmClusterTestPeer::store(cluster, 0);
  ASSERT_FALSE(store.empty());
  store.begin()->second = nullptr;  // ccm-lint: allow(unordered-iter)
  coop::audit::Recorder rec;
  EXPECT_GT(cluster.audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("ccm-store-null"));
}

// In audited builds (-DCOOPCACHE_AUDIT=ON) every protocol event re-audits
// the shard it ran on; a corrupt shard is then caught by the very next event
// touching that shard without anyone calling audit() explicitly.
TEST(CcmClusterAudit, AutoHooksCatchCorruptionOnNextEvent) {
  if (!coop::audit::hooks_compiled_in()) {
    GTEST_SKIP() << "CCM_AUDIT hooks not compiled in this build";
  }
  CcmCluster cluster(ccm_config(2, 16), tiny_storage());
  (void)cluster.read(0, 0);
  auto& store = CcmClusterTestPeer::store(cluster, 0);
  ASSERT_FALSE(store.empty());
  store.begin()->second = nullptr;  // ccm-lint: allow(unordered-iter)
  coop::audit::Recorder rec;
  (void)cluster.read(0, 1);  // unrelated event on the same shard
  EXPECT_TRUE(rec.saw("ccm-store-null"));
}

}  // namespace
}  // namespace coop::ccm

namespace coop::server {

struct L2sServerTestPeer {
  static std::uint64_t& serves(L2sServer& s) { return s.serves_; }
  static std::uint64_t& handoffs(L2sServer& s) { return s.handoffs_; }
  static std::uint64_t& requests(L2sServer& s) { return s.requests_; }
};

namespace {

struct L2sAuditFixture {
  sim::Engine engine;
  hw::ModelParams params;
  hw::Network network{engine, params};
  std::vector<std::unique_ptr<hw::Node>> nodes;
  trace::FileSet files{{16 * 1024, 16 * 1024, 16 * 1024}};
  std::unique_ptr<L2sServer> server;

  explicit L2sAuditFixture(std::size_t n = 4) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<hw::Node>(
          engine, params, hw::DiskSched::kSeekAware,
          static_cast<std::uint16_t>(i)));
    }
    L2sConfig config;
    config.cache.nodes = n;
    config.cache.capacity_bytes = 8ull << 20;
    server = std::make_unique<L2sServer>(engine, network, nodes, files,
                                         config, params);
  }

  void request(NodeId node, trace::FileId file) {
    bool done = false;
    server->handle(node, file, [&] { done = true; });
    engine.run();
    ASSERT_TRUE(done);
  }
};

TEST(L2sServerAudit, HealthyWorkloadAuditsClean) {
  L2sAuditFixture f;
  f.request(0, 0);
  f.request(1, 0);  // hand-off to the holder
  f.request(2, 1);
  coop::audit::Recorder rec;
  EXPECT_EQ(f.server->audit("healthy"), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST(L2sServerAudit, ServeAccountingDriftTrips) {
  L2sAuditFixture f;
  f.request(0, 0);
  f.request(2, 1);
  // Forge the books: a serve that never recorded its hit-or-miss outcome.
  L2sServerTestPeer::serves(*f.server) += 1;
  coop::audit::Recorder rec;
  EXPECT_GT(f.server->audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("l2s-serve-accounting"));
}

TEST(L2sServerAudit, HandoffAccountingDriftTrips) {
  L2sAuditFixture f;
  f.request(0, 0);
  // More hand-offs than requests is impossible (at most one per request).
  L2sServerTestPeer::handoffs(*f.server) =
      L2sServerTestPeer::requests(*f.server) + 1;
  coop::audit::Recorder rec;
  EXPECT_GT(f.server->audit("corrupt"), 0u);
  EXPECT_TRUE(rec.saw("l2s-handoff-accounting"));
}

// In audited builds every L2S request re-audits automatically; corrupted
// accounting is caught by the next handle() without an explicit audit call.
TEST(L2sServerAudit, AutoHooksCatchCorruptionOnNextRequest) {
  if (!coop::audit::hooks_compiled_in()) {
    GTEST_SKIP() << "CCM_AUDIT hooks not compiled in this build";
  }
  L2sAuditFixture f;
  f.request(0, 0);
  L2sServerTestPeer::serves(*f.server) += 1;
  coop::audit::Recorder rec;
  f.request(1, 1);
  EXPECT_TRUE(rec.saw("l2s-serve-accounting"));
}

}  // namespace
}  // namespace coop::server
