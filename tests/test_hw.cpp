// Tests for the hardware models: Table 1 parameters, the disk (contiguity,
// metadata seeks, interleaving, scheduling), node composition, and the LAN.
#include <gtest/gtest.h>

#include <vector>

#include "hw/disk.hpp"
#include "hw/network.hpp"
#include "hw/node.hpp"
#include "hw/params.hpp"
#include "sim/random.hpp"

namespace coop::hw {
namespace {

// --------------------------------------------------------------- Params ---

TEST(Params, DefaultsValidate) { EXPECT_TRUE(validate(ModelParams{})); }

TEST(Params, Table1Formulas) {
  const ModelParams p;
  // Serving time .1 + Size/115 (Size in KB).
  EXPECT_NEAR(p.serve_ms(115 * 1024), 1.1, 1e-9);
  // Process a file request: 0.03 + NBlocks * 0.01 (see params.hpp on the
  // leading-zero reconstruction).
  EXPECT_NEAR(p.process_request_ms(4), 0.07, 1e-9);
  // Contiguous disk read: transfer only (30 MB/s).
  EXPECT_NEAR(p.disk_block_ms(8 * 1024, true), 8.0 / 30.0, 1e-9);
  // Non-contiguous adds two seeks (positioning + metadata).
  EXPECT_NEAR(p.disk_block_ms(8 * 1024, false), 13.0 + 8.0 / 30.0, 1e-9);
  // NIC: Gb/s = 125 KB/ms.
  EXPECT_NEAR(p.nic_ms(125 * 1024), 1.0, 1e-9);
  EXPECT_EQ(p.blocks_per_unit(), 8u);
}

TEST(Params, ValidationCatchesBadGeometry) {
  ModelParams p;
  p.block_bytes = 0;
  EXPECT_FALSE(validate(p));
  p = ModelParams{};
  p.disk_unit_bytes = 24 * 1024;  // not divisible by 8 KB? it is; use 20 KB
  p.disk_unit_bytes = 20 * 1024;
  EXPECT_FALSE(validate(p));
  p = ModelParams{};
  p.disk_per_kb_ms = 0.0;
  EXPECT_FALSE(validate(p));
}

// ----------------------------------------------------------------- Disk ---

TEST(Disk, SequentialUnitCostsTwoSeeks) {
  // The paper's example: one 64 KB unit served uninterrupted = 2 seeks.
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  int done = 0;
  for (std::uint32_t b = 0; b < 8; ++b) {
    d.read_block(1, b, p.block_bytes, [&] { ++done; });
  }
  e.run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(d.seeks(), 2u);  // only the first block of the unit seeks
  EXPECT_EQ(d.completed(), 8u);
}

TEST(Disk, UnitCrossingPaysMetadataSeekAgain) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  for (std::uint32_t b = 0; b < 16; ++b) {  // two 64 KB units
    d.read_block(1, b, p.block_bytes, nullptr);
  }
  e.run();
  EXPECT_EQ(d.seeks(), 4u);  // the paper's "4 seeks" for two clean units
}

TEST(Disk, InterleavedStreamsTripleTheSeeks) {
  // The paper's example: two interleaved streams x,a,y,b,... -> 12 seeks
  // instead of 4 under FIFO.
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  for (std::uint32_t b = 0; b < 6; ++b) {
    d.read_block(/*file=*/1, b, p.block_bytes, nullptr);
    d.read_block(/*file=*/2, b, p.block_bytes, nullptr);
  }
  e.run();
  EXPECT_EQ(d.completed(), 12u);
  EXPECT_EQ(d.seeks(), 24u);  // every access seeks under perfect interleaving
}

TEST(Disk, SeekAwareSchedulerRegroupsStreams) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kSeekAware);
  for (std::uint32_t b = 0; b < 6; ++b) {
    d.read_block(1, b, p.block_bytes, nullptr);
    d.read_block(2, b, p.block_bytes, nullptr);
  }
  e.run();
  EXPECT_EQ(d.completed(), 12u);
  // The scheduler serves file 1 fully, then file 2: 2 seeks each. (The very
  // first dispatch happens before the queue fills, so allow one extra
  // interleave at the start.)
  EXPECT_LE(d.seeks(), 8u);
  EXPECT_LT(d.seeks(), 24u);
}

TEST(Disk, SeekAwareFollowsFileBeforeFifo) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kSeekAware);
  // Head lands on file 7 block 0; queue then holds: file 9 block 0, file 7
  // block 3 (same file, not contiguous). The scheduler must pick file 7.
  std::vector<int> order;
  d.read_block(7, 0, p.block_bytes, [&] { order.push_back(70); });
  d.read_block(9, 0, p.block_bytes, [&] { order.push_back(90); });
  d.read_block(7, 3, p.block_bytes, [&] { order.push_back(73); });
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 70);
  EXPECT_EQ(order[1], 73);
  EXPECT_EQ(order[2], 90);
}

TEST(Disk, TimingMatchesFormulas) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  sim::SimTime t1 = -1, t2 = -1;
  d.read_block(1, 0, p.block_bytes, [&] { t1 = e.now(); });
  d.read_block(1, 1, p.block_bytes, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, p.disk_block_ms(p.block_bytes, false), 1e-9);
  EXPECT_NEAR(t2, t1 + p.disk_block_ms(p.block_bytes, true), 1e-9);
}

TEST(Disk, UtilizationSaturatedAndIdle) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  d.read_block(1, 0, p.block_bytes, nullptr);
  e.run();
  EXPECT_NEAR(d.utilization(e.now()), 1.0, 1e-9);
  const auto busy_until = e.now();
  e.run_until(busy_until * 2);
  EXPECT_NEAR(d.utilization(e.now()), 0.5, 1e-9);
}

TEST(Disk, ResetStatsClearsCounters) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  d.read_block(1, 0, p.block_bytes, nullptr);
  e.run();
  d.reset_stats();
  EXPECT_EQ(d.completed(), 0u);
  EXPECT_EQ(d.seeks(), 0u);
}

TEST(Disk, SchedulersCompleteTheSameWorkWithFewerSeeks) {
  // Property: for an identical preloaded queue of interleaved streams, the
  // seek-aware scheduler completes the same block multiset with no more
  // seeks than FIFO.
  sim::Rng rng(31);
  struct Op {
    std::uint32_t file, block;
  };
  std::vector<Op> ops;
  std::uint32_t next_block[4] = {0, 0, 0, 0};
  for (int i = 0; i < 64; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.uniform_int(4));
    ops.push_back(Op{f, next_block[f]++});
  }

  std::uint64_t seeks[2];
  std::uint64_t completed[2];
  int idx = 0;
  for (const auto sched : {DiskSched::kFifo, DiskSched::kSeekAware}) {
    sim::Engine e;
    const ModelParams p;
    Disk d(e, p, sched);
    for (const auto& op : ops) {
      d.read_block(op.file, op.block, p.block_bytes, nullptr);
    }
    e.run();
    seeks[idx] = d.seeks();
    completed[idx] = d.completed();
    ++idx;
  }
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(completed[0], 64u);
  EXPECT_LE(seeks[1], seeks[0]);
  EXPECT_LT(seeks[1], seeks[0]);  // with 4 interleaved streams it must win
}

TEST(Disk, ReadSequenceStreamsInOrder) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  std::vector<std::uint32_t> done;
  std::vector<BlockRead> seq;
  for (std::uint32_t b = 0; b < 5; ++b) {
    seq.push_back(BlockRead{3, b, p.block_bytes});
  }
  bool finished = false;
  read_sequence(d, std::move(seq), [&] { finished = true; });
  // Blocks are issued one at a time: after the first completes, the queue
  // holds at most the next one.
  e.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(d.completed(), 5u);
  EXPECT_EQ(d.seeks(), 2u);  // uninterrupted stream: one seek pair
}

TEST(Disk, ReadSequenceEmptyCompletesImmediately) {
  sim::Engine e;
  const ModelParams p;
  Disk d(e, p, DiskSched::kFifo);
  bool finished = false;
  read_sequence(d, {}, [&] { finished = true; });
  EXPECT_TRUE(finished);
  EXPECT_EQ(e.pending(), 0u);
}

// ----------------------------------------------------------------- Node ---

TEST(Node, ComposesComponents) {
  sim::Engine e;
  const ModelParams p;
  Node n(e, p, DiskSched::kFifo, 3);
  EXPECT_EQ(n.id(), 3);
  EXPECT_EQ(n.load(), 0u);
  n.cpu().submit(1.0, nullptr);
  n.disk().read_block(1, 0, p.block_bytes, nullptr);
  EXPECT_EQ(n.load(), 2u);
  e.run();
  EXPECT_EQ(n.load(), 0u);
  EXPECT_GT(n.cpu_utilization(e.now()), 0.0);
  EXPECT_GT(n.disk_utilization(e.now()), 0.0);
}

TEST(Node, NicUtilizationIsBusierDirection) {
  sim::Engine e;
  const ModelParams p;
  Node n(e, p, DiskSched::kFifo, 0);
  n.nic_tx().submit(4.0, nullptr);
  n.nic_rx().submit(1.0, nullptr);
  e.run();
  EXPECT_NEAR(n.nic_utilization(e.now()), 1.0, 1e-9);  // tx busy whole time
}

TEST(Node, ResetStats) {
  sim::Engine e;
  const ModelParams p;
  Node n(e, p, DiskSched::kFifo, 0);
  n.cpu().submit(1.0, nullptr);
  e.run();
  n.reset_stats();
  EXPECT_EQ(n.cpu().completed(), 0u);
  EXPECT_NEAR(n.cpu_utilization(e.now() + 1.0), 0.0, 1e-9);
}

// -------------------------------------------------------------- Network ---

TEST(Network, SendTraversesAllHops) {
  sim::Engine e;
  const ModelParams p;
  Network net(e, p);
  Node a(e, p, DiskSched::kFifo, 0), b(e, p, DiskSched::kFifo, 1);
  sim::SimTime delivered = -1;
  net.send(a, b, 8 * 1024, [&] { delivered = e.now(); });
  e.run();
  const double expect = p.bus_ms(8 * 1024) + p.nic_ms(8 * 1024) +
                        p.net_latency_ms + p.nic_ms(8 * 1024) +
                        p.bus_ms(8 * 1024);
  EXPECT_NEAR(delivered, expect, 1e-9);
  EXPECT_EQ(a.nic_tx().completed(), 1u);
  EXPECT_EQ(b.nic_rx().completed(), 1u);
}

TEST(Network, ControlMessageIsCheap) {
  sim::Engine e;
  const ModelParams p;
  Network net(e, p);
  Node a(e, p, DiskSched::kFifo, 0), b(e, p, DiskSched::kFifo, 1);
  sim::SimTime t = -1;
  net.send_control(a, b, [&] { t = e.now(); });
  e.run();
  EXPECT_LT(t, 0.1);  // well under a disk seek
  EXPECT_NEAR(t, 2 * p.nic_control_ms() + p.net_latency_ms, 1e-9);
}

TEST(Network, ClientRequestGoesThroughRouter) {
  sim::Engine e;
  const ModelParams p;
  Network net(e, p);
  Node a(e, p, DiskSched::kFifo, 0);
  bool arrived = false;
  net.client_request(a, [&] { arrived = true; });
  e.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(net.router().completed(), 1u);
  EXPECT_EQ(a.nic_rx().completed(), 1u);
}

TEST(Network, ResponseUsesTxPath) {
  sim::Engine e;
  const ModelParams p;
  Network net(e, p);
  Node a(e, p, DiskSched::kFifo, 0);
  sim::SimTime t = -1;
  net.respond_to_client(a, 64 * 1024, [&] { t = e.now(); });
  e.run();
  EXPECT_NEAR(t, p.bus_ms(64 * 1024) + p.nic_ms(64 * 1024) + p.net_latency_ms,
              1e-9);
}

TEST(Network, ConcurrentTransfersQueueAtNic) {
  sim::Engine e;
  const ModelParams p;
  Network net(e, p);
  Node a(e, p, DiskSched::kFifo, 0), b(e, p, DiskSched::kFifo, 1);
  std::vector<sim::SimTime> times;
  net.send(a, b, 125 * 1024, [&] { times.push_back(e.now()); });
  net.send(a, b, 125 * 1024, [&] { times.push_back(e.now()); });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  // Second transfer serializes behind the first at a's NIC (1 ms each).
  EXPECT_GT(times[1], times[0] + 0.9);
}

}  // namespace
}  // namespace coop::hw
