// Tests for the threaded middleware runtime: byte-exact reads, policy/store
// consistency, concurrency stress, and the storage backends.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <cstring>
#include <thread>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "ccm/transport.hpp"
#include "sim/random.hpp"

namespace coop::ccm {
namespace {

constexpr std::uint32_t kBlock = 8 * 1024;

std::vector<std::uint32_t> make_sizes(std::size_t n, std::uint64_t seed = 11) {
  sim::Rng rng(seed);
  std::vector<std::uint32_t> sizes(n);
  for (auto& s : sizes) {
    s = static_cast<std::uint32_t>(512 + rng.uniform_int(4 * kBlock));
  }
  return sizes;
}

CcmConfig small_config(std::size_t nodes, std::uint64_t blocks_per_node) {
  CcmConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks_per_node * kBlock;
  c.block_bytes = kBlock;
  return c;
}

bool matches_storage(const std::vector<std::byte>& got, cache::FileId file,
                     std::uint64_t offset = 0) {
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != MemStorage::content_at(file, offset + i)) return false;
  }
  return true;
}

// -------------------------------------------------------------- Mailbox ---

TEST(Mailbox, SendReceiveOrder) {
  Mailbox<int> mb;
  mb.send(1);
  mb.send(2);
  EXPECT_EQ(mb.size(), 2u);
  EXPECT_EQ(mb.receive().value(), 1);
  EXPECT_EQ(mb.try_receive().value(), 2);
  EXPECT_FALSE(mb.try_receive().has_value());
}

TEST(Mailbox, CloseDrainsThenEnds) {
  Mailbox<int> mb;
  mb.send(7);
  mb.close();
  EXPECT_FALSE(mb.send(8));
  EXPECT_EQ(mb.receive().value(), 7);
  EXPECT_FALSE(mb.receive().has_value());
}

TEST(Mailbox, CrossThreadHandoff) {
  Mailbox<int> mb(4);
  std::atomic<int> sum{0};
  std::thread consumer([&] {
    while (auto v = mb.receive()) sum += *v;
  });
  for (int i = 1; i <= 100; ++i) mb.send(i);
  mb.close();
  consumer.join();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(Mailbox, BoundedCapacityBlocksProducer) {
  Mailbox<int> mb(1);
  mb.send(1);
  std::atomic<bool> second_sent{false};
  std::thread producer([&] {
    mb.send(2);
    second_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  EXPECT_EQ(mb.receive().value(), 1);
  producer.join();
  EXPECT_TRUE(second_sent.load());
}

// -------------------------------------------------------------- Storage ---

TEST(MemStorage, DeterministicContent) {
  const MemStorage s({1000, 2000});
  EXPECT_EQ(s.file_count(), 2u);
  EXPECT_EQ(s.file_size(1), 2000u);
  std::vector<std::byte> a(100), b(100);
  s.read(1, 50, a);
  s.read(1, 50, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], MemStorage::content_at(1, 50));
}

TEST(MemStorage, DifferentFilesDiffer) {
  const MemStorage s({1000, 1000});
  std::vector<std::byte> a(64), b(64);
  s.read(0, 0, a);
  s.read(1, 0, b);
  EXPECT_NE(a, b);
}

TEST(FileStorage, ServesRealFiles) {
  namespace fs = std::filesystem;
  const auto dir = fs::path(testing::TempDir()) / "coop_fs_test";
  fs::create_directories(dir / "sub");
  {
    std::ofstream(dir / "a.txt") << "hello world";
    std::ofstream(dir / "sub" / "b.txt") << "cooperative caching";
  }
  const FileStorage s(dir.string());
  ASSERT_EQ(s.file_count(), 2u);
  // Sorted order: a.txt before sub/b.txt.
  EXPECT_EQ(s.file_size(0), 11u);
  std::vector<std::byte> buf(5);
  s.read(0, 6, buf);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()), 5),
            "world");
  fs::remove_all(dir);
}

TEST(FileStorage, RejectsMissingDirectory) {
  EXPECT_THROW(FileStorage("/nonexistent/nowhere"), std::runtime_error);
}

// -------------------------------------------------------------- Cluster ---

TEST(CcmCluster, ReadsAreByteExact) {
  auto storage = std::make_shared<MemStorage>(make_sizes(20));
  CcmCluster cluster(small_config(4, 64), storage);
  for (cache::FileId f = 0; f < 20; ++f) {
    const auto data = cluster.read(static_cast<cache::NodeId>(f % 4), f);
    EXPECT_EQ(data.size(), storage->file_size(f));
    EXPECT_TRUE(matches_storage(data, f)) << "file " << f;
  }
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmCluster, RemoteHitsReturnSameBytes) {
  auto storage = std::make_shared<MemStorage>(make_sizes(5));
  CcmCluster cluster(small_config(4, 64), storage);
  const auto first = cluster.read(0, 3);
  const auto second = cluster.read(2, 3);  // remote hit from node 0
  EXPECT_EQ(first, second);
  const auto s = cluster.stats();
  EXPECT_GT(s.remote_hits, 0u);
}

TEST(CcmCluster, RangeReads) {
  auto storage = std::make_shared<MemStorage>(
      std::vector<std::uint32_t>{3 * kBlock + 100});
  CcmCluster cluster(small_config(2, 16), storage);
  // Span a block boundary.
  const auto range = cluster.read_range(0, 0, kBlock - 10, 50);
  EXPECT_EQ(range.size(), 50u);
  EXPECT_TRUE(matches_storage(range, 0, kBlock - 10));
  // Zero-length read.
  EXPECT_TRUE(cluster.read_range(0, 0, 0, 0).empty());
  // Tail of the file.
  const auto tail = cluster.read_range(1, 0, 3 * kBlock, 100);
  EXPECT_TRUE(matches_storage(tail, 0, 3 * kBlock));
}

TEST(CcmCluster, RejectsBadArguments) {
  auto storage = std::make_shared<MemStorage>(make_sizes(3));
  CcmCluster cluster(small_config(2, 16), storage);
  EXPECT_THROW(cluster.read(5, 0), std::out_of_range);
  EXPECT_THROW(cluster.read(0, 99), std::out_of_range);
  EXPECT_THROW(cluster.read_range(0, 0, storage->file_size(0), 1),
               std::out_of_range);
  EXPECT_THROW(CcmCluster(small_config(0, 16), storage),
               std::invalid_argument);
  EXPECT_THROW(CcmCluster(small_config(2, 16), nullptr),
               std::invalid_argument);
}

TEST(CcmCluster, EvictionKeepsDataConsistent) {
  // Capacity far below the file set: constant eviction + forwarding churn.
  auto storage = std::make_shared<MemStorage>(make_sizes(100, /*seed=*/3));
  CcmCluster cluster(small_config(3, 8), storage);
  sim::Rng rng(17);
  const sim::ZipfSampler zipf(100, 0.8);
  for (int i = 0; i < 2000; ++i) {
    const auto f = static_cast<cache::FileId>(zipf.sample(rng));
    const auto via = static_cast<cache::NodeId>(rng.uniform_int(3));
    const auto data = cluster.read(via, f);
    ASSERT_TRUE(matches_storage(data, f)) << "iteration " << i;
    if (i % 250 == 0) {
      ASSERT_TRUE(cluster.check_consistency()) << i;
    }
  }
  EXPECT_TRUE(cluster.check_consistency());
  const auto s = cluster.stats();
  EXPECT_GT(s.master_drops + s.copy_drops, 0u);
}

class CcmPolicyParam
    : public testing::TestWithParam<std::tuple<cache::Policy, std::size_t>> {};

TEST_P(CcmPolicyParam, ConcurrentStressIsByteExactAndConsistent) {
  const auto [policy, nodes] = GetParam();
  auto storage = std::make_shared<MemStorage>(make_sizes(60, /*seed=*/5));
  CcmConfig cfg = small_config(nodes, 16);
  cfg.policy = policy;
  cfg.workers_per_node = 3;
  CcmCluster cluster(cfg, storage);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      sim::Rng rng(100 + c);
      const sim::ZipfSampler zipf(60, 0.9);
      for (int i = 0; i < 300; ++i) {
        const auto f = static_cast<cache::FileId>(zipf.sample(rng));
        const auto via = static_cast<cache::NodeId>(rng.uniform_int(nodes));
        const auto data = cluster.read(via, f);
        if (data.size() != storage->file_size(f) ||
            !matches_storage(data, f)) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(cluster.check_consistency());
  const auto s = cluster.stats();
  EXPECT_EQ(s.block_accesses(), s.local_hits + s.remote_hits + s.disk_reads);
}

INSTANTIATE_TEST_SUITE_P(
    Stress, CcmPolicyParam,
    testing::Combine(testing::Values(cache::Policy::kBasic,
                                     cache::Policy::kNeverEvictMaster),
                     testing::Values(std::size_t{1}, std::size_t{2},
                                     std::size_t{4})));

TEST(CcmCluster, RandomRangeReadsAreByteExact) {
  auto storage = std::make_shared<MemStorage>(
      std::vector<std::uint32_t>{5 * kBlock + 123, 3 * kBlock, 700});
  CcmCluster cluster(small_config(3, 8), storage);
  sim::Rng rng(0x7A46E);
  for (int i = 0; i < 400; ++i) {
    const auto f = static_cast<cache::FileId>(rng.uniform_int(3));
    const std::uint64_t size = storage->file_size(f);
    const std::uint64_t off = rng.uniform_int(size);
    const std::uint64_t len = rng.uniform_int(size - off + 1);
    const auto via = static_cast<cache::NodeId>(rng.uniform_int(3));
    const auto got = cluster.read_range(via, f, off, len);
    ASSERT_EQ(got.size(), len);
    ASSERT_TRUE(matches_storage(got, f, off)) << "iter " << i;
  }
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmCluster, AsyncReadsResolve) {
  auto storage = std::make_shared<MemStorage>(make_sizes(10));
  CcmCluster cluster(small_config(2, 32), storage);
  std::vector<std::future<std::vector<std::byte>>> futures;
  for (cache::FileId f = 0; f < 10; ++f) {
    futures.push_back(cluster.read_async(static_cast<cache::NodeId>(f % 2), f));
  }
  for (cache::FileId f = 0; f < 10; ++f) {
    const auto data = futures[f].get();
    EXPECT_TRUE(matches_storage(data, f));
  }
}

TEST(CcmCluster, StatsAndReset) {
  auto storage = std::make_shared<MemStorage>(make_sizes(5));
  CcmCluster cluster(small_config(2, 32), storage);
  cluster.read(0, 0);
  EXPECT_GT(cluster.stats().disk_reads, 0u);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().disk_reads, 0u);
  cluster.read(1, 0);  // remote hit now
  EXPECT_GT(cluster.stats().remote_hits, 0u);
  EXPECT_GT(cluster.cached_bytes(0), 0u);
}

TEST(CcmCluster, HintedDirectoryModeWorks) {
  auto storage = std::make_shared<MemStorage>(make_sizes(30, /*seed=*/7));
  CcmConfig cfg = small_config(3, 16);
  cfg.directory = cache::DirectoryMode::kHinted;
  CcmCluster cluster(cfg, storage);
  sim::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const auto f = static_cast<cache::FileId>(rng.uniform_int(30));
    const auto via = static_cast<cache::NodeId>(rng.uniform_int(3));
    ASSERT_TRUE(matches_storage(cluster.read(via, f), f)) << i;
  }
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmCluster, PolicyParityWithBareClusterCache) {
  // Cross-layer validation: a sequential workload must drive the middleware
  // through exactly the policy transitions the bare engine performs — the
  // simulator-validated behaviors carry over to the runtime verbatim.
  const auto sizes = make_sizes(40, /*seed=*/21);
  CcmConfig mc = small_config(3, 16);
  mc.workers_per_node = 1;
  // Parity is against the bare engine's strictly per-block transitions; the
  // batched read path amortizes them (one local-hit pass, grouped claims),
  // which is equivalent in content but not in LRU trace. The singles
  // protocol is the one that must stay step-identical.
  mc.batch_directory = false;
  CcmCluster cluster(mc, std::make_shared<MemStorage>(sizes));

  cache::CoopCacheConfig cc;
  cc.nodes = 3;
  cc.capacity_bytes = 16 * kBlock;
  cc.block_bytes = kBlock;
  cc.policy = mc.policy;
  cache::ClusterCache bare(cc);

  sim::Rng rng(33);
  const sim::ZipfSampler zipf(40, 0.8);
  for (int i = 0; i < 1500; ++i) {
    const auto f = static_cast<cache::FileId>(zipf.sample(rng));
    const auto via = static_cast<cache::NodeId>(rng.uniform_int(3));
    cluster.read(via, f);
    bare.access(via, f, sizes[f]);
  }
  const auto a = cluster.stats();
  const auto& b = bare.stats();
  EXPECT_EQ(a.local_hits, b.local_hits);
  EXPECT_EQ(a.remote_hits, b.remote_hits);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.forwards_attempted, b.forwards_attempted);
  EXPECT_EQ(a.forwards_accepted, b.forwards_accepted);
  EXPECT_EQ(a.master_drops, b.master_drops);
  EXPECT_EQ(a.copy_drops, b.copy_drops);
  for (cache::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.cached_bytes(n), bare.node(n).used_blocks() * kBlock);
  }
}

// ------------------------------------------------------ write protocol ---

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

TEST(CcmWrite, WriteThenReadAnywhereSeesNewData) {
  auto storage =
      std::make_shared<BufferStorage>(std::vector<std::uint32_t>{3 * kBlock});
  CcmCluster cluster(small_config(4, 32), storage);
  cluster.read(0, 0);  // cache it at node 0
  cluster.read(1, 0);  // copy at node 1

  const auto data = pattern(2 * kBlock, 9);
  cluster.write(2, 0, kBlock / 2, data);  // spans three blocks, via node 2

  for (cache::NodeId via = 0; via < 4; ++via) {
    const auto got = cluster.read_range(via, 0, kBlock / 2, data.size());
    EXPECT_EQ(got, data) << "via node " << via;
  }
  const auto s = cluster.stats();
  EXPECT_GT(s.writes, 0u);
  EXPECT_GT(s.invalidations + s.ownership_migrations, 0u);
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmWrite, ReadModifyWritePreservesSurroundings) {
  auto storage =
      std::make_shared<BufferStorage>(std::vector<std::uint32_t>{2 * kBlock});
  CcmCluster cluster(small_config(2, 16), storage);
  const auto before = cluster.read(0, 0);

  const auto patch = pattern(100, 3);
  cluster.write(1, 0, kBlock - 50, patch);  // straddles the block boundary

  auto expected = before;
  std::copy(patch.begin(), patch.end(),
            expected.begin() + (kBlock - 50));
  EXPECT_EQ(cluster.read(0, 0), expected);
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmWrite, WriteThroughReachesStorage) {
  auto storage =
      std::make_shared<BufferStorage>(std::vector<std::uint32_t>{kBlock});
  CcmCluster cluster(small_config(2, 16), storage);
  const auto data = pattern(256, 5);
  cluster.write(0, 0, 128, data);
  std::vector<std::byte> raw(256);
  storage->read(0, 128, raw);
  EXPECT_EQ(raw, data);
}

TEST(CcmWrite, ColdWriteNeedsNoStorageRead) {
  auto storage =
      std::make_shared<BufferStorage>(std::vector<std::uint32_t>{kBlock});
  CcmCluster cluster(small_config(2, 16), storage);
  std::vector<std::byte> whole(kBlock);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    whole[i] = static_cast<std::byte>(i & 0xFF);
  }
  cluster.write(0, 0, 0, whole);  // full-block overwrite, nothing cached
  EXPECT_EQ(cluster.stats().disk_reads, 0u);
  EXPECT_EQ(cluster.read(1, 0), whole);
}

TEST(CcmWrite, RejectsReadOnlyStorageAndBadRanges) {
  auto ro = std::make_shared<MemStorage>(make_sizes(2));
  CcmCluster ro_cluster(small_config(2, 16), ro);
  const auto data = pattern(10, 1);
  EXPECT_THROW(ro_cluster.write(0, 0, 0, data), std::logic_error);

  auto rw = std::make_shared<BufferStorage>(std::vector<std::uint32_t>{100});
  CcmCluster rw_cluster(small_config(2, 16), rw);
  EXPECT_THROW(rw_cluster.write(0, 0, 95, data), std::out_of_range);
  EXPECT_THROW(rw_cluster.write(5, 0, 0, data), std::out_of_range);
}

TEST(CcmWrite, ConcurrentDisjointWritersStayConsistent) {
  const std::size_t files = 8;
  std::vector<std::uint32_t> sizes(files, 4 * kBlock);
  auto storage = std::make_shared<BufferStorage>(sizes);
  CcmConfig cfg = small_config(4, 16);
  cfg.workers_per_node = 2;
  CcmCluster cluster(cfg, storage);

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < files; ++w) {
    writers.emplace_back([&, w] {
      const auto file = static_cast<cache::FileId>(w);
      for (int round = 0; round < 20; ++round) {
        const auto data =
            pattern(kBlock, static_cast<std::uint8_t>(w * 16 + round));
        cluster.write(static_cast<cache::NodeId>(w % 4), file,
                      (round % 3) * kBlock, data);
        const auto got = cluster.read_range(
            static_cast<cache::NodeId>((w + 1) % 4), file,
            (round % 3) * kBlock, kBlock);
        ASSERT_EQ(got, data) << "writer " << w << " round " << round;
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(CcmStress, MixedReadersWritersInvalidatorsStayConsistent) {
  // The read-only and disjoint-writer stresses above each cover one verb;
  // this one races all three on shared files. Each file has exactly one
  // owner thread (so a file's writes and invalidations never race each
  // other and its owner always knows the true bytes), but every thread
  // reads every file — so reads cross in flight with writes, invalidations,
  // evictions, and master forwards.
  const std::size_t files = 12;
  const std::size_t nodes = 4;
  std::vector<std::uint32_t> sizes(files, 4 * kBlock);
  auto storage = std::make_shared<BufferStorage>(sizes);
  CcmConfig cfg = small_config(nodes, 8);  // 32 cache blocks for 48 on disk
  cfg.workers_per_node = 2;
  CcmCluster cluster(cfg, storage);

  std::vector<std::vector<std::byte>> mirrors(files);
  std::atomic<int> failures{0};
  std::vector<std::thread> owners;
  for (std::size_t t = 0; t < nodes; ++t) {
    owners.emplace_back([&, t] {
      sim::Rng rng(40 + t);
      // Seed this thread's files (and their owner-side mirrors).
      for (cache::FileId f = static_cast<cache::FileId>(t); f < files;
           f += nodes) {
        auto full = pattern(4 * kBlock, static_cast<std::uint8_t>(0xA0 + f));
        cluster.write(static_cast<cache::NodeId>(t), f, 0, full);
        mirrors[f] = std::move(full);
      }
      for (int i = 0; i < 250; ++i) {
        const auto f = static_cast<cache::FileId>(
            t + nodes * rng.uniform_int(files / nodes));
        const auto via = static_cast<cache::NodeId>(rng.uniform_int(nodes));
        switch (rng.uniform_int(8)) {
          case 0:
          case 1:
          case 2: {  // verified read of an owned file
            if (cluster.read(via, f) != mirrors[f]) ++failures;
            break;
          }
          case 3:
          case 4: {  // write-through, mirrored locally
            const std::uint64_t off =
                rng.uniform_int(3) * kBlock + rng.uniform_int(kBlock / 2);
            const auto data =
                pattern(kBlock, static_cast<std::uint8_t>(f * 8 + i));
            cluster.write(via, f, off, data);
            std::copy(data.begin(), data.end(),
                      mirrors[f].begin() + static_cast<std::ptrdiff_t>(off));
            break;
          }
          case 5:  // drop every cached copy; storage still holds the truth
            cluster.invalidate(f);
            break;
          default: {  // unverified read of somebody else's file (it may be
                      // mid-write: only the size is guaranteed)
            const auto other =
                static_cast<cache::FileId>(rng.uniform_int(files));
            const auto got = cluster.read_range(via, other, kBlock, kBlock);
            if (got.size() != kBlock) ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& t : owners) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(cluster.check_consistency());
  // Every file's final bytes are exactly its owner's last writes.
  for (cache::FileId f = 0; f < files; ++f) {
    EXPECT_EQ(cluster.read(static_cast<cache::NodeId>(f % nodes), f),
              mirrors[f])
        << "file " << f;
  }
  const auto s = cluster.stats();
  EXPECT_GT(s.writes, 0u);
  EXPECT_GT(s.invalidations, 0u);
}

TEST(CcmCluster, InvalidateDropsEveryCopy) {
  auto storage =
      std::make_shared<BufferStorage>(std::vector<std::uint32_t>{2 * kBlock});
  CcmCluster cluster(small_config(3, 16), storage);
  cluster.read(0, 0);
  cluster.read(1, 0);
  cluster.read(2, 0);
  EXPECT_GT(cluster.cached_bytes(0) + cluster.cached_bytes(1) +
                cluster.cached_bytes(2),
            0u);
  cluster.invalidate(0);
  for (cache::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.cached_bytes(n), 0u) << "node " << n;
  }
  EXPECT_TRUE(cluster.check_consistency());

  // Out-of-band content change becomes visible after invalidation.
  std::vector<std::byte> fresh(64, std::byte{0x5A});
  storage->write(0, 0, fresh);
  const auto got = cluster.read_range(0, 0, 0, 64);
  EXPECT_EQ(got, fresh);
  EXPECT_THROW(cluster.invalidate(99), std::out_of_range);
}

TEST(CcmCluster, WorksOnRealFiles) {
  namespace fs = std::filesystem;
  const auto dir = fs::path(testing::TempDir()) / "coop_ccm_files";
  fs::create_directories(dir);
  std::string big(20000, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  {
    std::ofstream(dir / "one.bin") << big;
    std::ofstream(dir / "two.bin") << "tiny";
  }
  auto storage = std::make_shared<FileStorage>(dir.string());
  CcmCluster cluster(small_config(2, 16), storage);
  const auto data = cluster.read(0, 0);
  ASSERT_EQ(data.size(), big.size());
  EXPECT_EQ(std::memcmp(data.data(), big.data(), big.size()), 0);
  const auto tiny = cluster.read(1, 1);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(tiny.data()),
                        tiny.size()),
            "tiny");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace coop::ccm
