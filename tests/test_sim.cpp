// Tests for the discrete-event engine, service centers, RNG, and stats.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/service_center.hpp"
#include "sim/stats.hpp"

namespace coop::sim {
namespace {

// ---------------------------------------------------------------- Engine ---

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleInUsesCurrentTime) {
  Engine e;
  SimTime seen = -1.0;
  e.schedule_at(2.0, [&] { e.schedule_in(1.5, [&] { seen = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST(Engine, NestedSchedulingDuringRun) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) e.schedule_in(1.0, chain);
  };
  e.schedule_in(1.0, chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelInvalidIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventId{}));
  EXPECT_FALSE(e.cancel(EventId{12345}));
}

TEST(Engine, CancelAfterExecutionIsANoOp) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  e.run_until(1.5);  // `a` has fired
  EXPECT_FALSE(e.cancel(a));
  EXPECT_EQ(e.pending(), 1u);  // count not corrupted
  e.run();
  EXPECT_EQ(e.events_processed(), 2u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, PendingTracksLiveEvents) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(3.0, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();  // resumes
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilAdvancesTimeWithoutEvents) {
  Engine e;
  EXPECT_FALSE(e.run_until(42.0));
  EXPECT_DOUBLE_EQ(e.now(), 42.0);
}

TEST(Engine, RunUntilExecutesOnlyDueEvents) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(e.run_until(3.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Engine, EventAtExactBoundaryRuns) {
  Engine e;
  bool ran = false;
  e.schedule_at(3.0, [&] { ran = true; });
  e.run_until(3.0);
  EXPECT_TRUE(ran);
}

// -------------------------------------------------------- ServiceCenter ---

TEST(ServiceCenter, ServesOneJob) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  SimTime done_at = -1.0;
  sc.submit(2.5, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
  EXPECT_EQ(sc.completed(), 1u);
}

TEST(ServiceCenter, FifoQueueing) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  std::vector<std::pair<int, SimTime>> done;
  for (int i = 0; i < 3; ++i) {
    sc.submit(1.0, [&done, i, &e] { done.emplace_back(i, e.now()); });
  }
  EXPECT_EQ(sc.load(), 3u);
  e.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 0);
  EXPECT_DOUBLE_EQ(done[0].second, 1.0);
  EXPECT_DOUBLE_EQ(done[1].second, 2.0);
  EXPECT_DOUBLE_EQ(done[2].second, 3.0);
}

TEST(ServiceCenter, MultipleServersRunInParallel) {
  Engine e;
  ServiceCenter sc(e, "dual", /*servers=*/2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    sc.submit(1.0, [&] { done.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(ServiceCenter, FiniteQueueDropsWhenFull) {
  Engine e;
  ServiceCenter sc(e, "bounded", /*servers=*/1, /*queue_capacity=*/1);
  int completions = 0;
  EXPECT_TRUE(sc.submit(1.0, [&] { ++completions; }));   // in service
  EXPECT_TRUE(sc.submit(1.0, [&] { ++completions; }));   // queued
  EXPECT_FALSE(sc.submit(1.0, [&] { ++completions; }));  // dropped
  EXPECT_EQ(sc.dropped(), 1u);
  e.run();
  EXPECT_EQ(completions, 2);
}

TEST(ServiceCenter, UtilizationOfSaturatedServerIsOne) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  for (int i = 0; i < 10; ++i) sc.submit(1.0, nullptr);
  e.run();
  EXPECT_NEAR(sc.utilization(e.now()), 1.0, 1e-12);
}

TEST(ServiceCenter, UtilizationOfHalfIdleServer) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  sc.submit(1.0, nullptr);
  e.schedule_at(3.0, [&] { sc.submit(1.0, nullptr); });
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
  EXPECT_NEAR(sc.utilization(e.now()), 0.5, 1e-12);
}

TEST(ServiceCenter, MeanWaitExcludesService) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  sc.submit(2.0, nullptr);  // waits 0
  sc.submit(2.0, nullptr);  // waits 2
  e.run();
  EXPECT_DOUBLE_EQ(sc.mean_wait(), 1.0);
  EXPECT_DOUBLE_EQ(sc.mean_service(), 2.0);
}

TEST(ServiceCenter, ResetStatsClearsWindow) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  sc.submit(1.0, nullptr);
  e.run();
  sc.reset_stats();
  EXPECT_EQ(sc.completed(), 0u);
  e.schedule_in(1.0, [&] { sc.submit(1.0, nullptr); });
  e.run();
  EXPECT_EQ(sc.completed(), 1u);
  EXPECT_NEAR(sc.utilization(e.now()), 0.5, 1e-12);
}

TEST(ServiceCenter, ZeroServiceTimeCompletesImmediately) {
  Engine e;
  ServiceCenter sc(e, "cpu");
  bool done = false;
  sc.submit(0.0, [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

// ------------------------------------------------------------------ Rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(7);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[r.uniform_int(10)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng r(13);
  const double mu = 2.0, sigma = 0.5;
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.lognormal(mu, sigma));
  EXPECT_NEAR(acc.mean(), std::exp(mu + sigma * sigma / 2.0), 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 0.25, 0.01);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.bounded_pareto(1.2, 10.0, 1000.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0);
  }
}

// --------------------------------------------------------------- Zipf -----

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler z(100, 0.8);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostPopular) {
  const ZipfSampler z(1000, 0.8);
  for (std::size_t k = 1; k < 1000; ++k) EXPECT_GT(z.pmf(0), z.pmf(k));
}

TEST(Zipf, EmpiricalMatchesPmf) {
  const ZipfSampler z(50, 1.0);
  Rng r(23);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (std::size_t k = 0; k < 50; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.005)
        << "rank " << k;
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(Zipf, SingleElementAlwaysSampled) {
  const ZipfSampler z(1, 0.8);
  Rng r(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(r), 0u);
}

// ----------------------------------------------------------- fuzz/prop ---

TEST(EngineFuzz, RandomScheduleAndCancelIsDeterministic) {
  // Two identical random schedules must execute the same event multiset in
  // the same order; time must be monotone throughout.
  const auto run = [](std::uint64_t seed) {
    Engine e;
    Rng rng(seed);
    std::vector<int> order;
    std::vector<EventId> ids;
    SimTime last = 0.0;
    for (int i = 0; i < 500; ++i) {
      const auto t = rng.uniform(0.0, 100.0);
      ids.push_back(e.schedule_at(t, [&order, &e, &last, i] {
        EXPECT_GE(e.now(), last);
        last = e.now();
        order.push_back(i);
      }));
    }
    for (int i = 0; i < 100; ++i) {
      e.cancel(ids[rng.uniform_int(ids.size())]);
    }
    e.run();
    return order;
  };
  const auto a = run(1234);
  const auto b = run(1234);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 350u);  // at most 100 distinct cancellations
}

TEST(EngineFuzz, NestedChainsInterleaveStably) {
  Engine e;
  std::vector<int> order;
  for (int chain = 0; chain < 4; ++chain) {
    std::shared_ptr<std::function<void()>> step =
        std::make_shared<std::function<void()>>();
    *step = [&e, &order, chain, step, n = std::make_shared<int>(0)]() {
      order.push_back(chain);
      if (++*n < 25) e.schedule_in(1.0, *step);
    };
    e.schedule_in(1.0, *step);
  }
  e.run();
  ASSERT_EQ(order.size(), 100u);
  // At every tick, chains fire in their scheduling order 0,1,2,3.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 4));
  }
}

TEST(ServiceCenterProp, WorkConservation) {
  // Total busy time equals total submitted service demand when nothing is
  // dropped (single server).
  Engine e;
  ServiceCenter sc(e, "cpu");
  Rng rng(7);
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(0.01, 1.0);
    total += s;
    const double at = rng.uniform(0.0, 50.0);
    e.schedule_at(at, [&sc, s] { sc.submit(s, nullptr); });
  }
  e.run();
  EXPECT_EQ(sc.completed(), 200u);
  EXPECT_NEAR(sc.busy_ms(e.now()), total, 1e-6);
  EXPECT_GE(e.now(), total);  // one server cannot finish faster than the work
}

TEST(ServiceCenterProp, LoadCountsQueueAndService) {
  Engine e;
  ServiceCenter sc(e, "cpu", /*servers=*/2);
  for (int i = 0; i < 5; ++i) sc.submit(1.0, nullptr);
  EXPECT_EQ(sc.in_service(), 2u);
  EXPECT_EQ(sc.queue_length(), 3u);
  EXPECT_EQ(sc.load(), 5u);
  e.run();
  EXPECT_EQ(sc.load(), 0u);
}

TEST(ServiceCenterProp, MM1QueueMatchesAnalyticWait) {
  // Validation against queueing theory: Poisson arrivals (lambda = 0.5/ms),
  // exponential service (mu = 1/ms) => M/M/1 with rho = 0.5; the analytic
  // mean queueing delay is Wq = rho / (mu - lambda) = 1 ms.
  Engine e;
  ServiceCenter sc(e, "mm1");
  Rng rng(99);
  SimTime t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    t += rng.exponential(0.5);
    const double service = rng.exponential(1.0);
    e.schedule_at(t, [&sc, service] { sc.submit(service, nullptr); });
  }
  e.run();
  EXPECT_EQ(sc.completed(), 200000u);
  EXPECT_NEAR(sc.mean_wait(), 1.0, 0.1);
  EXPECT_NEAR(sc.utilization(e.now()), 0.5, 0.02);
}

// -------------------------------------------------------------- Stats -----

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(BusyTracker, AccumulatesBusyTime) {
  BusyTracker b;
  b.reset(0.0);
  b.set_busy(true, 1.0);
  b.set_busy(false, 3.0);
  b.set_busy(true, 5.0);
  b.set_busy(false, 6.0);
  EXPECT_NEAR(b.utilization(10.0), 0.3, 1e-12);
}

TEST(BusyTracker, RedundantTransitionsIgnored) {
  BusyTracker b;
  b.reset(0.0);
  b.set_busy(true, 1.0);
  b.set_busy(true, 2.0);  // no-op
  b.set_busy(false, 3.0);
  EXPECT_NEAR(b.busy_time(3.0), 2.0, 1e-12);
}

TEST(BusyTracker, OpenIntervalCountsUpToNow) {
  BusyTracker b;
  b.reset(0.0);
  b.set_busy(true, 2.0);
  EXPECT_NEAR(b.utilization(4.0), 0.5, 1e-12);
}

TEST(LatencyHistogram, PercentilesBracketData) {
  LatencyHistogram h(0.01, 100.0, 256);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) / 100.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 5.005, 0.01);
  EXPECT_NEAR(h.percentile(50), 5.0, 0.5);
  EXPECT_NEAR(h.percentile(95), 9.5, 0.7);
  EXPECT_GE(h.percentile(100), 9.9);
}

TEST(LatencyHistogram, EmptyPercentileIsZero) {
  const LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

}  // namespace
}  // namespace coop::sim
