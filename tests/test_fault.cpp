// Deterministic fault injection and the recovery paths it exercises.
//
// Three layers, bottom up: FaultSchedule parsing/generation, FaultyTransport
// perturbations against a live InProcTransport (drop / reply-drop /
// duplicate / reorder / crash / timeout, plus event-log determinism), and
// the epoch fences in DirectoryService (purge_node, rebuild_masters,
// idempotent claims). The closing tests run a whole in-process CcmCluster
// under generated schedules and through a crash/rejoin, asserting the
// paper-level invariant the CI fault sweep re-checks end to end: storage
// bytes converge to the fault-free run and CCM_AUDIT stays green.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/types.hpp"
#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "proto/directory_service.hpp"
#include "proto/message.hpp"
#include "sim/random.hpp"

namespace coop {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------- schedule grammar ------

TEST(FaultSchedule, ParseRoundTripsThroughToString) {
  const std::string spec =
      "drop:kind=peer-fetch,every=7;"
      "delay:kind=dir-reply,start=2,count=9,every=3,ms=5;"
      "duplicate:kind=invalidate-block,from=1,to=2;"
      "drop:kind=barrier,reply=1,every=5";
  const net::FaultSchedule schedule = net::FaultSchedule::parse(spec, 17);
  EXPECT_EQ(schedule.seed, 17u);
  ASSERT_EQ(schedule.rules.size(), 4u);

  EXPECT_EQ(schedule.rules[0].action, net::FaultAction::kDrop);
  EXPECT_EQ(schedule.rules[0].kind, proto::MsgKind::kPeerFetch);
  EXPECT_EQ(schedule.rules[0].every, 7u);
  EXPECT_FALSE(schedule.rules[0].on_reply);

  EXPECT_EQ(schedule.rules[1].action, net::FaultAction::kDelay);
  EXPECT_EQ(schedule.rules[1].start, 2u);
  EXPECT_EQ(schedule.rules[1].count, 9u);
  EXPECT_EQ(schedule.rules[1].delay, 5ms);

  EXPECT_EQ(schedule.rules[2].action, net::FaultAction::kDuplicate);
  ASSERT_TRUE(schedule.rules[2].from.has_value());
  EXPECT_EQ(*schedule.rules[2].from, 1u);
  ASSERT_TRUE(schedule.rules[2].to.has_value());
  EXPECT_EQ(*schedule.rules[2].to, 2u);

  EXPECT_TRUE(schedule.rules[3].on_reply);

  // to_string() is parse()'s inverse: one more round trip is a fixpoint.
  const std::string rendered = schedule.to_string();
  EXPECT_EQ(net::FaultSchedule::parse(rendered).to_string(), rendered);
}

TEST(FaultSchedule, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)net::FaultSchedule::parse("explode:kind=barrier"),
               std::invalid_argument);
  EXPECT_THROW((void)net::FaultSchedule::parse("drop:kind=no-such-kind"),
               std::invalid_argument);
  EXPECT_THROW((void)net::FaultSchedule::parse("drop:frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)net::FaultSchedule::parse("drop:kind"),
               std::invalid_argument);
  EXPECT_THROW((void)net::FaultSchedule::parse("drop:every=0"),
               std::invalid_argument);
}

TEST(FaultSchedule, GeneratedIsDeterministicAndRetrySafe) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    const net::FaultSchedule a = net::FaultSchedule::generated(seed);
    const net::FaultSchedule b = net::FaultSchedule::generated(seed);
    EXPECT_EQ(a.to_string(), b.to_string()) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
    ASSERT_GE(a.rules.size(), 3u);
    ASSERT_LE(a.rules.size(), 6u);
    for (const net::FaultRule& rule : a.rules) {
      // every >= 3 guarantees two consecutive retry attempts of one call
      // can never both be consumed by the same rule.
      EXPECT_GE(rule.every, 3u);
      EXPECT_NE(rule.action, net::FaultAction::kReorder);
    }
  }
}

// ------------------------------------------- transport perturbations -----

/// Serves node 1: echoes every request as a barrier-reply, counting them.
class CountingEchoServer {
 public:
  explicit CountingEchoServer(net::Transport& transport)
      : thread_([this, &transport] {
          while (auto env = transport.receive(1)) {
            handled_.fetch_add(1, std::memory_order_relaxed);
            net::Envelope out;
            out.msg = proto::Message::barrier_reply(1, env->msg.from,
                                                    env->msg.count, true);
            out.seq = env->seq;
            transport.post(std::move(out));
          }
        }) {}
  ~CountingEchoServer() { thread_.join(); }

  [[nodiscard]] std::uint64_t handled() const {
    return handled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> handled_{0};
  std::thread thread_;
};

net::Envelope barrier_to_1(std::uint32_t phase) {
  net::Envelope env;
  env.msg = proto::Message::barrier(0, 1, phase);
  return env;
}

TEST(FaultyTransport, DroppedRequestFailsCallAndRetryHeals) {
  net::FaultyTransport t(std::make_shared<net::InProcTransport>(2),
                         net::FaultSchedule::parse("drop:kind=barrier,count=1"));
  {
    CountingEchoServer server(t);
    net::RetryStats retries;
    const net::Envelope reply =
        net::call_with_retry(t, barrier_to_1(7), net::RetryPolicy{}, &retries);
    EXPECT_EQ(reply.msg.kind, proto::MsgKind::kBarrierReply);
    EXPECT_EQ(reply.msg.count, 7u);
    // First attempt consumed by the rule pre-send, second went through.
    EXPECT_EQ(retries.retries.load(), 1u);
    EXPECT_EQ(retries.failures.load(), 0u);
    // The dropped attempt never reached the server; only the retry did.
    EXPECT_EQ(server.handled(), 1u);
    t.close();
  }
  EXPECT_EQ(t.stats().injected_drops, 1u);
  const std::vector<net::FaultEvent> events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, net::FaultAction::kDrop);
  EXPECT_EQ(events[0].kind, proto::MsgKind::kBarrier);
  EXPECT_FALSE(events[0].on_reply);
  EXPECT_EQ(events[0].rule, 0u);
}

TEST(FaultyTransport, ReplyDropModelsAtLeastOnceExecution) {
  net::FaultyTransport t(
      std::make_shared<net::InProcTransport>(2),
      net::FaultSchedule::parse("drop:kind=barrier,reply=1,count=1"));
  std::uint64_t handled = 0;
  {
    CountingEchoServer server(t);
    net::RetryStats retries;
    const net::Envelope reply =
        net::call_with_retry(t, barrier_to_1(3), net::RetryPolicy{}, &retries);
    EXPECT_EQ(reply.msg.count, 3u);
    EXPECT_EQ(retries.retries.load(), 1u);
    t.close();
    handled = server.handled();
  }
  // The server executed the request twice for one successful call: exactly
  // the at-least-once case every retried kind must be idempotent against.
  EXPECT_EQ(handled, 2u);
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_TRUE(t.events()[0].on_reply);
}

TEST(FaultyTransport, DuplicateDeliversRequestTwice) {
  net::FaultyTransport t(
      std::make_shared<net::InProcTransport>(2),
      net::FaultSchedule::parse("duplicate:kind=barrier,count=1"));
  std::uint64_t handled = 0;
  {
    CountingEchoServer server(t);
    const net::Envelope reply = t.call(barrier_to_1(9));
    EXPECT_EQ(reply.msg.count, 9u);
    t.close();
    handled = server.handled();
  }
  EXPECT_EQ(handled, 2u);
  EXPECT_EQ(t.stats().injected_duplicates, 1u);
}

TEST(FaultyTransport, ReorderReleasesParkedPostBehindTheNext) {
  net::FaultyTransport t(
      std::make_shared<net::InProcTransport>(2),
      net::FaultSchedule::parse("reorder:kind=barrier,count=1"));
  ASSERT_TRUE(t.post(barrier_to_1(1)));  // parked by the rule
  ASSERT_TRUE(t.post(barrier_to_1(2)));  // ships first, releases #1 behind it
  const auto first = t.receive(1);
  const auto second = t.receive(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->msg.count, 2u);
  EXPECT_EQ(second->msg.count, 1u);
  EXPECT_EQ(t.stats().injected_reorders, 1u);
  t.close();
}

TEST(FaultyTransport, CrashedNodeFailsFastAndRevives) {
  net::FaultyTransport t(std::make_shared<net::InProcTransport>(2),
                         net::FaultSchedule{});
  std::uint64_t handled = 0;
  {
    CountingEchoServer server(t);
    t.crash_node(1);
    EXPECT_TRUE(t.crashed(1));
    try {
      (void)t.call(barrier_to_1(1));
      FAIL() << "call into a crashed node must not succeed";
    } catch (const net::TransportError& e) {
      EXPECT_EQ(e.kind(), net::TransportError::Kind::kPeerDown);
      EXPECT_TRUE(e.transient());  // crashed != shut down: a rejoin heals it
    }
    EXPECT_TRUE(t.post(barrier_to_1(2)));  // blackholed, sender can't tell

    t.revive_node(1);
    EXPECT_FALSE(t.crashed(1));
    const net::Envelope reply = t.call(barrier_to_1(3));
    EXPECT_EQ(reply.msg.count, 3u);
    t.close();
    handled = server.handled();
  }
  EXPECT_EQ(handled, 1u);  // only the post-revive call reached the server
  // Crash swallows are logged as events with no rule attached.
  bool saw_crash = false;
  for (const net::FaultEvent& e : t.events()) {
    if (e.action == net::FaultAction::kCrash) {
      saw_crash = true;
      EXPECT_EQ(e.rule, net::FaultEvent::kNoRule);
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(FaultyTransport, RetryGivesUpAfterBudgetAndCountsFailure) {
  // Every request dropped: all four attempts are consumed pre-send.
  net::FaultyTransport t(std::make_shared<net::InProcTransport>(2),
                         net::FaultSchedule::parse("drop:kind=barrier"));
  net::RetryStats retries;
  try {
    (void)net::call_with_retry(t, barrier_to_1(1), net::RetryPolicy{},
                               &retries);
    FAIL() << "exhausted retry budget must propagate the last error";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kInjected);
  }
  EXPECT_EQ(retries.retries.load(), 3u);   // attempts - 1
  EXPECT_EQ(retries.failures.load(), 1u);
  EXPECT_EQ(t.stats().injected_drops, 4u);
  t.close();
}

TEST(InProcTransport, CallTimesOutInsteadOfHangingForever) {
  // Serve node 1 with a sink that never answers: the call must fail on its
  // deadline, not block — the "no call may hang on a dead peer" guarantee.
  net::InProcTransport t(2, 16, /*call_timeout=*/50ms);
  std::thread sink([&t] {
    while (t.receive(1).has_value()) {
    }
  });
  try {
    (void)t.call(barrier_to_1(1));
    FAIL() << "unanswered call must time out";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kTimeout);
    EXPECT_TRUE(e.transient());
  }
  EXPECT_EQ(t.stats().rpc_timeouts, 1u);
  t.close();
  sink.join();
}

TEST(FaultyTransport, EventLogIsByteIdenticalAcrossRuns) {
  const net::FaultSchedule schedule = net::FaultSchedule::parse(
      "drop:kind=barrier,start=2,every=3,count=2;"
      "duplicate:kind=barrier,start=1,every=4,count=2;"
      "delay:kind=barrier,start=3,every=5,ms=1");
  const auto run = [&schedule] {
    net::FaultyTransport t(std::make_shared<net::InProcTransport>(2),
                           schedule);
    {
      CountingEchoServer server(t);
      for (std::uint32_t i = 0; i < 12; ++i) {
        try {
          (void)t.call(barrier_to_1(i));
        } catch (const net::TransportError&) {
          // dropped by the schedule — expected
        }
      }
      t.close();
    }
    std::string log;
    for (const net::FaultEvent& e : t.events()) {
      log += net::event_line(e);
      log += '\n';
    }
    return log;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --------------------------------------------- directory crash fences ----

cache::BlockId blk(cache::FileId file, std::uint32_t index) {
  return cache::BlockId{file, index};
}

TEST(DirectoryFence, PurgeNodeUnregistersFencesAndIsIdempotent) {
  proto::DirectoryService dir(3, cache::DirectoryMode::kPerfect, 0);
  ASSERT_TRUE(dir.try_claim(blk(1, 0), 1));
  ASSERT_TRUE(dir.try_claim(blk(2, 0), 1));
  ASSERT_TRUE(dir.try_claim(blk(3, 0), 2));
  const std::uint64_t epoch1 = dir.file_epoch(1);
  const std::uint64_t epoch3 = dir.file_epoch(3);

  EXPECT_EQ(dir.purge_node(1), 2u);
  EXPECT_EQ(dir.lookup(blk(1, 0)), cache::kInvalidNode);
  EXPECT_EQ(dir.lookup(blk(2, 0)), cache::kInvalidNode);
  EXPECT_EQ(dir.lookup(blk(3, 0)), 2u);      // survivor untouched
  EXPECT_GT(dir.file_epoch(1), epoch1);      // fenced
  EXPECT_EQ(dir.file_epoch(3), epoch3);      // not fenced
  EXPECT_EQ(dir.ops().masters_purged, 2u);

  // Re-asking (a retried purge whose reply was lost) purges nothing more.
  EXPECT_EQ(dir.purge_node(1), 0u);
  EXPECT_EQ(dir.ops().masters_purged, 2u);
}

TEST(DirectoryFence, PurgeRejectsTheDeadNodesInFlightForward) {
  proto::DirectoryService dir(3, cache::DirectoryMode::kPerfect, 0);
  const cache::BlockId b = blk(5, 1);
  ASSERT_TRUE(dir.try_claim(b, 1));
  // Node 1 starts forwarding the master away, then dies mid-flight; its
  // destination's claim carries the pre-crash epoch and must lose.
  const auto epoch = dir.begin_forward(b, 1);
  ASSERT_TRUE(epoch.has_value());
  ASSERT_TRUE(dir.try_claim(b, 1));  // re-register so the purge fences file 5
  (void)dir.purge_node(1);
  EXPECT_FALSE(dir.claim_forwarded(b, /*to=*/2, /*from=*/1, *epoch));
  EXPECT_EQ(dir.lookup(b), cache::kInvalidNode);
}

TEST(DirectoryFence, RebuildMastersReplacesMapAndFencesBothSides) {
  proto::DirectoryService dir(3, cache::DirectoryMode::kPerfect, 0);
  ASSERT_TRUE(dir.try_claim(blk(1, 0), 1));
  ASSERT_TRUE(dir.try_claim(blk(2, 0), 2));
  const std::uint64_t old1 = dir.file_epoch(1);
  const std::uint64_t old2 = dir.file_epoch(2);
  const std::uint64_t old7 = dir.file_epoch(7);

  dir.rebuild_masters({{blk(7, 0), 2}, {blk(1, 0), 2}});
  EXPECT_EQ(dir.lookup(blk(1, 0)), 2u);                  // re-homed
  EXPECT_EQ(dir.lookup(blk(2, 0)), cache::kInvalidNode);  // not re-reported
  EXPECT_EQ(dir.lookup(blk(7, 0)), 2u);
  EXPECT_EQ(dir.master_count(), 2u);
  // Every file on either side of the rebuild is epoch-fenced.
  EXPECT_GT(dir.file_epoch(1), old1);
  EXPECT_GT(dir.file_epoch(2), old2);
  EXPECT_GT(dir.file_epoch(7), old7);
}

TEST(DirectoryFence, ClaimsAreIdempotentForTheRetryingClaimant) {
  proto::DirectoryService dir(3, cache::DirectoryMode::kPerfect, 0);
  const cache::BlockId b = blk(4, 0);
  EXPECT_TRUE(dir.try_claim(b, 1));
  EXPECT_TRUE(dir.try_claim(b, 1));   // retried claim, first reply lost
  EXPECT_FALSE(dir.try_claim(b, 2));  // a rival still loses

  const auto epoch = dir.begin_forward(b, 1);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_TRUE(dir.claim_forwarded(b, 2, 1, *epoch));
  EXPECT_TRUE(dir.claim_forwarded(b, 2, 1, *epoch));  // retried: still ours
  EXPECT_EQ(dir.lookup(b), 2u);
}

// ------------------------------------- whole-cluster fault tolerance -----
// The helpers below mirror tests/test_net.cpp's equality harness: write
// targets are partitioned per driver and every write is write-through, so
// final storage bytes depend only on the RNG streams — independently of how
// the fault schedule perturbs the cache traffic in between.

std::vector<std::byte> fill_pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

constexpr std::size_t kEqNodes = 3;
constexpr std::size_t kEqFiles = 12;
constexpr std::uint32_t kEqBlockBytes = 1024;
constexpr std::uint32_t kEqFileBlocks = 2;
constexpr std::uint32_t kEqFileBytes = kEqBlockBytes * kEqFileBlocks;
constexpr int kEqIters = 120;

ccm::CcmConfig equality_config() {
  ccm::CcmConfig cfg;
  cfg.nodes = kEqNodes;
  cfg.block_bytes = kEqBlockBytes;
  cfg.capacity_bytes = 8 * kEqBlockBytes;
  cfg.workers_per_node = 2;
  return cfg;
}

void equality_driver(ccm::CcmCluster& cluster, std::size_t d) {
  sim::Rng rng(7000 + d);
  const auto via = static_cast<cache::NodeId>(d);
  for (int i = 0; i < kEqIters; ++i) {
    const auto f = static_cast<cache::FileId>(rng.uniform_int(kEqFiles));
    const auto roll = rng.uniform_int(100);
    if (roll < 30) {
      constexpr std::size_t kPerDriver = kEqFiles / kEqNodes;
      const auto wf =
          static_cast<cache::FileId>((f % kPerDriver) * kEqNodes + d);
      const std::uint64_t off = rng.uniform_int(kEqFileBlocks) * kEqBlockBytes;
      cluster.write(via, wf, off,
                    fill_pattern(kEqBlockBytes,
                                 static_cast<std::uint8_t>(f + i)));
    } else if (roll < 34) {
      cluster.invalidate(f);
    } else {
      cluster.read(via, f);
    }
  }
}

std::vector<std::byte> storage_bytes(const ccm::Storage& storage) {
  std::vector<std::byte> all;
  for (std::size_t f = 0; f < storage.file_count(); ++f) {
    const auto file = static_cast<cache::FileId>(f);
    std::vector<std::byte> buf(storage.file_size(file));
    storage.read(file, 0, buf);
    all.insert(all.end(), buf.begin(), buf.end());
  }
  return all;
}

void seed_all(ccm::CcmCluster& cluster) {
  for (std::size_t f = 0; f < kEqFiles; ++f) {
    cluster.write(0, static_cast<cache::FileId>(f), 0,
                  fill_pattern(kEqFileBytes, static_cast<std::uint8_t>(f)));
  }
}

std::shared_ptr<ccm::BufferStorage> make_eq_storage() {
  return std::make_shared<ccm::BufferStorage>(
      std::vector<std::uint32_t>(kEqFiles, kEqFileBytes));
}

/// seed_all + all three drivers concurrently; returns final storage bytes.
std::vector<std::byte> run_equality_workload(ccm::CcmCluster& cluster,
                                             const ccm::Storage& storage) {
  seed_all(cluster);
  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < kEqNodes; ++d) {
    drivers.emplace_back([&cluster, d] { equality_driver(cluster, d); });
  }
  for (auto& t : drivers) t.join();
  return storage_bytes(storage);
}

TEST(ClusterUnderFaults, GeneratedSchedulesLeaveStorageConverged) {
  std::vector<std::byte> expected;
  {
    auto storage = make_eq_storage();
    ccm::CcmCluster cluster(equality_config(), storage);
    expected = run_equality_workload(cluster, *storage);
  }
  for (const std::uint64_t seed : {1ull, 2ull, 11ull}) {
    auto storage = make_eq_storage();
    auto faulty = std::make_shared<net::FaultyTransport>(
        std::make_shared<net::InProcTransport>(kEqNodes),
        net::FaultSchedule::generated(seed));
    ccm::CcmHosting hosting;
    hosting.transport = faulty;
    ccm::CcmCluster cluster(equality_config(), storage, hosting);
    const std::vector<std::byte> got = run_equality_workload(cluster, *storage);
    EXPECT_EQ(got, expected) << "fault seed " << seed;
    EXPECT_TRUE(cluster.check_consistency()) << "fault seed " << seed;
  }
}

TEST(ClusterUnderFaults, CrashAndRejoinMidWorkloadConverges) {
  // Reference: same driver sequencing (0 and 2 concurrently, then 1),
  // fault-free. Write partitioning makes the storage outcome identical.
  std::vector<std::byte> expected;
  {
    auto storage = make_eq_storage();
    ccm::CcmCluster cluster(equality_config(), storage);
    seed_all(cluster);
    std::thread d0([&cluster] { equality_driver(cluster, 0); });
    std::thread d2([&cluster] { equality_driver(cluster, 2); });
    d0.join();
    d2.join();
    equality_driver(cluster, 1);
    expected = storage_bytes(*storage);
  }

  auto storage = make_eq_storage();
  auto faulty = std::make_shared<net::FaultyTransport>(
      std::make_shared<net::InProcTransport>(kEqNodes), net::FaultSchedule{});
  ccm::CcmHosting hosting;
  hosting.transport = faulty;
  ccm::CcmCluster cluster(equality_config(), storage, hosting);
  seed_all(cluster);

  // Node 1 dies: the transport blackholes it and the cluster wipes its
  // shard + fences its directory entries. Survivors keep working.
  faulty->crash_node(1);
  (void)cluster.crash_node(1);
  std::thread d0([&cluster] { equality_driver(cluster, 0); });
  std::thread d2([&cluster] { equality_driver(cluster, 2); });
  d0.join();
  d2.join();
  EXPECT_TRUE(cluster.check_consistency()) << "while node 1 is down";

  // Node 1 rejoins cold and serves its share of the workload.
  faulty->revive_node(1);
  cluster.rejoin_node(1);
  equality_driver(cluster, 1);

  EXPECT_EQ(storage_bytes(*storage), expected);
  EXPECT_TRUE(cluster.check_consistency());
}

TEST(ClusterUnderFaults, DirectoryReconstructionKeepsClusterConsistent) {
  auto storage = make_eq_storage();
  ccm::CcmCluster cluster(equality_config(), storage);
  seed_all(cluster);
  equality_driver(cluster, 0);

  // Rebuild the master map from the surviving per-node caches (the
  // directory holder restarting) and keep operating on it.
  cluster.reconstruct_directory();
  EXPECT_TRUE(cluster.check_consistency());
  equality_driver(cluster, 1);
  for (std::size_t f = 0; f < kEqFiles; ++f) {
    const auto file = static_cast<cache::FileId>(f);
    std::vector<std::byte> disk(storage->file_size(file));
    storage->read(file, 0, disk);
    EXPECT_EQ(cluster.read(0, file), disk) << "file " << f;
  }
  EXPECT_TRUE(cluster.check_consistency());
}

}  // namespace
}  // namespace coop
