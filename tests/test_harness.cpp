// Tests for the experiment harness: configs, sweep driver, reporting.
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace coop::harness {
namespace {

trace::Trace tiny() {
  trace::SyntheticSpec s;
  s.name = "tiny";
  s.num_files = 40;
  s.num_requests = 600;
  s.seed = 4;
  return trace::generate(s);
}

TEST(Experiment, MemorySweepMatchesPaper) {
  const auto mems = memory_sweep_bytes();
  ASSERT_EQ(mems.size(), 8u);
  EXPECT_EQ(mems.front(), 4ull * 1024 * 1024);
  EXPECT_EQ(mems.back(), 512ull * 1024 * 1024);
  for (std::size_t i = 1; i < mems.size(); ++i) {
    EXPECT_EQ(mems[i], mems[i - 1] * 2);  // doubling scale
  }
}

TEST(Experiment, AllSystemsInPlottingOrder) {
  const auto systems = all_systems();
  ASSERT_EQ(systems.size(), 4u);
  EXPECT_EQ(systems[0], server::SystemKind::kL2S);
  EXPECT_EQ(systems[3], server::SystemKind::kCcNem);
}

TEST(Experiment, LoadTraceTruncates) {
  const auto full = load_trace("calgary", 0);
  const auto cut = load_trace("calgary", 1000);
  EXPECT_GT(full.requests.size(), 1000u);
  EXPECT_EQ(cut.requests.size(), 1000u);
  EXPECT_EQ(cut.files.count(), full.files.count());
  EXPECT_THROW(load_trace("bogus"), std::out_of_range);
}

TEST(Experiment, FigureConfigScalesClients) {
  const auto c4 = figure_config(server::SystemKind::kCcNem, 4, 1 << 20);
  const auto c16 = figure_config(server::SystemKind::kCcNem, 16, 1 << 20);
  EXPECT_EQ(c4.clients.clients * 4, c16.clients.clients);
  EXPECT_EQ(c4.nodes, 4u);
  EXPECT_EQ(c16.memory_per_node, 1u << 20);
}

TEST(Runner, MemorySweepProducesEveryCell) {
  const auto tr = tiny();
  const std::vector<std::uint64_t> mems{1 << 20, 2 << 20};
  const auto points = run_memory_sweep(
      tr, {server::SystemKind::kL2S, server::SystemKind::kCcNem}, 2, mems);
  ASSERT_EQ(points.size(), 4u);
  for (const auto sys :
       {server::SystemKind::kL2S, server::SystemKind::kCcNem}) {
    for (const auto mem : mems) {
      const auto& p = find_point(points, sys, mem);
      EXPECT_GT(p.metrics.throughput_rps, 0.0);
      EXPECT_EQ(p.nodes, 2u);
    }
  }
  EXPECT_THROW(find_point(points, server::SystemKind::kCcBasic, 1 << 20),
               std::out_of_range);
}

TEST(Runner, MutateHookApplies) {
  const auto tr = tiny();
  bool mutated = false;
  run_memory_sweep(tr, {server::SystemKind::kCcNem}, 2, {1 << 20},
                   [&](server::ClusterConfig& cfg) {
                     mutated = true;
                     cfg.clients.clients = 4;
                   });
  EXPECT_TRUE(mutated);
}

TEST(Runner, ProgressReportsEveryCell) {
  const auto tr = tiny();
  std::size_t calls = 0, last_total = 0;
  run_memory_sweep(tr, {server::SystemKind::kCcNem}, 2,
                   {1 << 20, 2 << 20}, {},
                   [&](std::size_t done, std::size_t total,
                       const SweepPoint&) {
                     ++calls;
                     EXPECT_EQ(done, calls);
                     last_total = total;
                   });
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(last_total, 2u);
}

TEST(Runner, NodeSweep) {
  const auto tr = tiny();
  const auto points = run_node_sweep(tr, server::SystemKind::kCcNem, {1, 2},
                                     1 << 20);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].nodes, 1u);
  EXPECT_EQ(points[1].nodes, 2u);
}

TEST(Report, ThroughputTableShape) {
  const auto tr = tiny();
  const std::vector<std::uint64_t> mems{1 << 20};
  const auto systems = std::vector<server::SystemKind>{
      server::SystemKind::kL2S, server::SystemKind::kCcNem};
  const auto points = run_memory_sweep(tr, systems, 2, mems);
  const auto table = throughput_table(points, systems, mems);
  EXPECT_EQ(table.rows(), 1u);
  const auto s = table.to_string();
  EXPECT_NE(s.find("L2S"), std::string::npos);
  EXPECT_NE(s.find("CC-NEM"), std::string::npos);
  EXPECT_NE(s.find("1.0 MiB"), std::string::npos);
}

TEST(Report, NormalizedTableExcludesBaseline) {
  const auto tr = tiny();
  const std::vector<std::uint64_t> mems{1 << 20};
  const auto systems = all_systems();
  const auto points = run_memory_sweep(tr, systems, 2, mems);
  const auto table =
      normalized_table(points, systems, mems, Metric::kThroughput);
  const auto s = table.to_string();
  EXPECT_NE(s.find("CC-NEM/L2S"), std::string::npos);
  EXPECT_EQ(s.find("L2S/L2S"), std::string::npos);
}

TEST(Report, MetricValueSelectors) {
  SweepPoint p;
  p.metrics.throughput_rps = 10.0;
  p.metrics.mean_response_ms = 2.0;
  p.metrics.local_hit_rate = 0.25;
  p.metrics.remote_hit_rate = 0.5;
  EXPECT_DOUBLE_EQ(metric_value(p, Metric::kThroughput), 10.0);
  EXPECT_DOUBLE_EQ(metric_value(p, Metric::kResponseTime), 2.0);
  EXPECT_DOUBLE_EQ(metric_value(p, Metric::kGlobalHitRate), 0.75);
}

TEST(Report, SweepCsvHasHeaderAndRows) {
  const auto tr = tiny();
  const auto points = run_memory_sweep(
      tr, {server::SystemKind::kCcNem}, 2, {1 << 20});
  const auto csv = sweep_csv(points, "tiny");
  EXPECT_EQ(csv.rows(), 1u);
  const auto s = csv.to_string();
  EXPECT_EQ(s.substr(0, 5), "trace");
  EXPECT_NE(s.find("tiny,CC-NEM,2,1"), std::string::npos);
}

TEST(Report, AppendSweepCsvMergesUnderOneHeader) {
  const auto tr = tiny();
  const auto a = run_memory_sweep(tr, {server::SystemKind::kCcNem}, 2,
                                  {1 << 20});
  const auto b = run_memory_sweep(tr, {server::SystemKind::kL2S}, 2,
                                  {1 << 20});
  util::CsvWriter csv;
  append_sweep_csv(csv, a, "first");
  append_sweep_csv(csv, b, "second");
  EXPECT_EQ(csv.rows(), 2u);
  const auto s = csv.to_string();
  // Exactly one header line.
  EXPECT_EQ(s.find("trace,"), 0u);
  EXPECT_EQ(s.find("trace,", 1), std::string::npos);
}

}  // namespace
}  // namespace coop::harness
