// Tests for the lock-order watchdog (src/util/lockcheck) and the
// instrumented mutex wrappers (src/util/mutex.hpp): an ABBA inversion must
// be detected the moment the second edge is recorded, a consistently
// ordered workload must stay silent, and the real CcmCluster runtime must
// keep its acquisition graph acyclic end to end.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/storage.hpp"
#include "util/audit.hpp"
#include "util/lockcheck.hpp"
#include "util/mutex.hpp"

namespace coop::util::lockcheck {
namespace {

// Every test starts from an empty acquisition graph with the watchdog on,
// and leaves the process-wide state as the build default found it.
class LockcheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(audit::hooks_compiled_in());
    reset();
  }
};

TEST_F(LockcheckTest, MutexRegistersItsDisplayName) {
  Mutex m("test.named");
  EXPECT_EQ(lock_name(m.lock_id()), "test.named");
  CountingMutex c("test.counting");
  EXPECT_EQ(lock_name(c.lock_id()), "test.counting");
}

TEST_F(LockcheckTest, AbbaInversionIsDetectedAtAcquireTime) {
  audit::Recorder rec;
  Mutex a("test.abba.A");
  Mutex b("test.abba.B");

  // Two threads take the pair in opposite orders, sequenced by joins so the
  // inversion is recorded in the graph without ever really deadlocking —
  // which is the point of the watchdog: the A->B edge from thread 1 plus
  // the B->A edge from thread 2 close a cycle even though this particular
  // interleaving got lucky.
  std::thread t1([&] {
    ScopedLock la(a);
    ScopedLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    ScopedLock lb(b);
    ScopedLock la(a);
  });
  t2.join();

  EXPECT_TRUE(rec.saw("lock-order-acyclic"));
  EXPECT_GE(cycles_detected(), 1u);
  const std::string cycle = last_cycle();
  EXPECT_NE(cycle.find("test.abba.A"), std::string::npos);
  EXPECT_NE(cycle.find("test.abba.B"), std::string::npos);
  EXPECT_NE(cycle.find("lock-order cycle"), std::string::npos);
}

TEST_F(LockcheckTest, ConsistentOrderAcrossThreadsStaysSilent) {
  audit::Recorder rec;
  Mutex a("test.ordered.A");
  Mutex b("test.ordered.B");

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        ScopedLock la(a);
        ScopedLock lb(b);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(cycles_detected(), 0u);
  EXPECT_EQ(audit("ordered-pair"), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST_F(LockcheckTest, SameThreadRelockIsTheDegenerateCycle) {
  audit::Recorder rec;
  const LockId a = register_lock("test.relock.A");
  note_acquired(a);
  // A second blocking acquire of a lock this thread already holds is a
  // self-edge A -> A: certain deadlock, reported immediately.
  note_acquire(a);
  EXPECT_TRUE(rec.saw("lock-order-acyclic"));
  EXPECT_GE(cycles_detected(), 1u);
  note_release(a);
}

TEST_F(LockcheckTest, AuditFullScanFindsCycleLeftInTheGraph) {
  audit::Recorder rec;
  const LockId a = register_lock("test.scan.A");
  const LockId b = register_lock("test.scan.B");

  // Record A -> B, drop both, then record B -> A. The acquire-time check
  // fires once; audit()'s whole-graph scan must also find the cycle and
  // tag the dump with its context string.
  note_acquired(a);
  note_acquire(b);
  note_acquired(b);
  note_release(b);
  note_release(a);
  note_acquired(b);
  note_acquire(a);
  note_acquired(a);
  note_release(a);
  note_release(b);

  rec.clear();
  EXPECT_EQ(audit("scan-context"), 1u);
  EXPECT_TRUE(rec.saw("lock-order-acyclic"));
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_NE(rec.violations()[0].detail.find("[scan-context]"),
            std::string::npos);
}

TEST_F(LockcheckTest, KnownEdgesAreCheckedOnceAndResetClearsEverything) {
  audit::Recorder rec;
  Mutex a("test.reset.A");
  Mutex b("test.reset.B");
  {
    ScopedLock la(a);
    ScopedLock lb(b);
  }
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  EXPECT_EQ(cycles_detected(), 1u);
  // Re-walking the same inverted pair re-traverses known edges only — the
  // cycle was already reported once and is not re-reported.
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  EXPECT_EQ(cycles_detected(), 1u);
  EXPECT_EQ(rec.count(), 1u);

  reset();
  EXPECT_EQ(cycles_detected(), 0u);
  EXPECT_TRUE(last_cycle().empty());
  EXPECT_EQ(audit("post-reset"), 0u);
}

TEST_F(LockcheckTest, DisabledWatchdogRecordsNothing) {
  audit::Recorder rec;
  set_enabled(false);
  Mutex a("test.off.A");
  Mutex b("test.off.B");
  {
    ScopedLock la(a);
    ScopedLock lb(b);
  }
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  EXPECT_EQ(cycles_detected(), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST_F(LockcheckTest, CountingMutexCountersAreMonotoneAndResettable) {
  CountingMutex m("test.counters");
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    ScopedLock lock(m);
    EXPECT_GE(m.acquired(), last);
    last = m.acquired();
  }
  EXPECT_EQ(m.acquired(), 100u);
  EXPECT_EQ(m.contended(), 0u);  // single thread: never contended
  m.reset_counts();
  EXPECT_EQ(m.acquired(), 0u);
  EXPECT_EQ(m.contended(), 0u);
}

// The acceptance test for the runtime's lock discipline: a multi-node
// CcmCluster workload with evictions, forwards, and a write-through, with
// every named lock watched — the acquisition graph must come out acyclic
// and the watchdog must never fire.
TEST_F(LockcheckTest, CcmClusterWorkloadKeepsTheLockGraphAcyclic) {
  audit::Recorder rec;

  ccm::CcmConfig cfg;
  cfg.nodes = 3;
  cfg.capacity_bytes = 8 * 8 * 1024;  // 8 blocks per node -> evictions
  cfg.block_bytes = 8 * 1024;
  cfg.workers_per_node = 2;
  const std::vector<std::uint32_t> sizes(12, 4 * 8 * 1024);
  auto storage = std::make_shared<ccm::BufferStorage>(sizes);
  {
    ccm::CcmCluster cluster(cfg, storage);
    for (int pass = 0; pass < 3; ++pass) {
      for (cache::NodeId via = 0; via < 3; ++via) {
        for (cache::FileId f = 0; f < 12; ++f) {
          (void)cluster.read(via, f);
        }
      }
    }
    std::vector<std::byte> bytes(100, std::byte{0x5a});
    cluster.write(1, 0, 0, bytes);
    cluster.invalidate(3);
    (void)cluster.read(2, 3);

    // Quiesced: the cluster's own audit sweep takes every shard lock in
    // index order (adding only the documented shard[i] -> shard[j] chain
    // edges), then the watchdog sweeps the whole graph.
    EXPECT_EQ(cluster.audit("lockcheck-quiesce"), 0u);
    EXPECT_EQ(audit("ccm-workload"), 0u);
  }
  EXPECT_EQ(cycles_detected(), 0u);
  EXPECT_EQ(rec.count(), 0u);
}

}  // namespace
}  // namespace coop::util::lockcheck
