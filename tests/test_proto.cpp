// Protocol-layer tests: wire round-trips, plan lowering, and — the load-
// bearing one — serial parity between the sharded building blocks
// (proto::NodeState + proto::DirectoryService) and the monolithic
// cache::ClusterCache policy engine. The runtime (ccm::CcmCluster) is these
// pieces plus locks; if the pieces match the oracle action for action, the
// runtime's policy decisions are ClusterCache's.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/coop_cache.hpp"
#include "proto/dir_batch.hpp"
#include "proto/directory_service.hpp"
#include "proto/message.hpp"
#include "proto/node_state.hpp"
#include "proto/plan.hpp"

namespace coop::proto {
namespace {

constexpr std::uint32_t kBlock = 8 * 1024;

// ------------------------------------------------------------ wire format ---

std::vector<Message> all_message_kinds() {
  const BlockId b{7, 3};
  return {
      Message::block_lookup(1, b),
      Message::lookup_reply(1, b, 2, /*misdirected=*/true),
      Message::lookup_reply(1, b, cache::kInvalidNode, false),
      Message::master_claim(0, b),
      Message::claim_reply(0, b, /*granted=*/true, 0),
      Message::claim_reply(0, b, /*granted=*/false, 3),
      Message::peer_fetch(0, 2, b, /*misdirected=*/true),
      Message::peer_fetch_reply(2, 0, b, /*hit=*/true, 8192),
      Message::redirect(2, 0, b),
      Message::home_read(0, 1, b, 4),
      Message::block_data(1, 0, b, 4, 4 * 8192),
      Message::master_forward(0, 3, b, /*age=*/99, /*slots=*/2, 8192),
      Message::forward_ack(3, 0, b, /*accepted=*/true, /*promoted=*/true),
      Message::eviction_notice(3, b),
      Message::invalidate_file(0, 1, b.file, 6),
      Message::invalidate_block(0, 1, b, /*drop_master=*/true),
      Message::invalidate_ack(1, 0),
      Message::write_ownership(0, 2, b),
      Message::write_ownership_reply(2, 0, b, /*transferred=*/true, 8192),
      Message::stats_pull(1, 0),
      Message::stats_reply(0, 1, 512),
      Message::dir_batch_request(1, 0, /*items=*/3, /*bytes=*/58),
      Message::dir_batch_reply(0, 1, /*items=*/3, /*bytes=*/38),
  };
}

TEST(WireFormat, EveryNamedConstructorRoundTrips) {
  for (const Message& m : all_message_kinds()) {
    const WireBytes wire = encode(m);
    const auto back = decode(wire);
    ASSERT_TRUE(back.has_value()) << kind_name(m.kind);
    EXPECT_EQ(*back, m) << kind_name(m.kind);
  }
}

TEST(WireFormat, DecodeRejectsShortInput) {
  const WireBytes wire = encode(Message::block_lookup(0, {1, 2}));
  for (std::size_t len = 0; len < kWireSize; ++len) {
    EXPECT_FALSE(decode({wire.data(), len}).has_value()) << len;
  }
}

TEST(WireFormat, DecodeRejectsUnknownKind) {
  WireBytes wire = encode(Message::block_lookup(0, {1, 2}));
  wire[0] = static_cast<std::byte>(kMsgKindCount);
  EXPECT_FALSE(decode(wire).has_value());
  wire[0] = static_cast<std::byte>(0xFF);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(WireFormat, DecodeRejectsReservedFlagBits) {
  WireBytes wire = encode(Message::peer_fetch(0, 1, {1, 2}, false));
  // The flags byte sits just before the trailing trace/span ids.
  wire[kWireSize - 17] = static_cast<std::byte>(1u << 7);  // reserved bit
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(WireFormat, TraceIdsRoundTripAndDefaultToZero) {
  // Named constructors never stamp trace identity: the ids stay zero (the
  // runtime's "tracing off" value) unless the sender sets them explicitly.
  Message m = Message::peer_fetch(0, 2, {7, 3}, false);
  EXPECT_EQ(m.trace, 0u);
  EXPECT_EQ(m.span, 0u);
  const auto zero_back = decode(encode(m));
  ASSERT_TRUE(zero_back.has_value());
  EXPECT_EQ(zero_back->trace, 0u);
  EXPECT_EQ(zero_back->span, 0u);

  m.trace = 0x0123'4567'89AB'CDEFull;
  m.span = 0xFEDC'BA98'7654'3210ull;
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace, m.trace);
  EXPECT_EQ(back->span, m.span);
  EXPECT_EQ(*back, m);
}

TEST(WireFormat, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(MsgKind::kPeerFetch), "peer-fetch");
  EXPECT_STREQ(kind_name(MsgKind::kStatsPull), "stats-pull");
  EXPECT_STREQ(kind_name(MsgKind::kStatsReply), "stats-reply");
  EXPECT_STREQ(kind_name(MsgKind::kMasterForward), "master-forward");
  EXPECT_STREQ(kind_name(MsgKind::kWriteOwnershipReply),
               "write-ownership-reply");
}

// -------------------------------------------------------- dir batch codec ---

std::vector<DirBatchItem> sample_batch_items() {
  return {
      {DirBatchOp::kLookupRead, {7, 0}, 0},
      {DirBatchOp::kTryClaim, {7, 1}, 0},
      {DirBatchOp::kMasterDropped, {0xFFFF'FFFFu, 0xFFFF'FFFFu}, 0},
      {DirBatchOp::kValidate, {3, 9}, 0xDEAD'BEEF'CAFE'F00Dull},
  };
}

TEST(DirBatchCodec, RequestRoundTripsEveryOp) {
  const auto items = sample_batch_items();
  const auto wire = encode_dir_batch_request(2, items);
  EXPECT_EQ(wire.size(),
            kDirBatchRequestHeader + items.size() * kDirBatchItemWire);
  const auto back = decode_dir_batch_request(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, 2);
  EXPECT_EQ(back->items, items);

  // The empty batch is well-formed (the client never sends one, but the
  // decoder must not treat count == 0 as malformed).
  const auto empty = encode_dir_batch_request(1, {});
  const auto empty_back = decode_dir_batch_request(empty);
  ASSERT_TRUE(empty_back.has_value());
  EXPECT_TRUE(empty_back->items.empty());
}

TEST(DirBatchCodec, ReplyRoundTripsFlagsAndEpochExtremes) {
  const std::vector<DirBatchResult> results = {
      {3, 0, 0},
      {cache::kInvalidNode, ~0ull, kFlagGranted},
      {0, 1, static_cast<std::uint8_t>(kFlagGranted | kFlagMisdirected)},
  };
  const auto wire = encode_dir_batch_reply(results);
  EXPECT_EQ(wire.size(),
            kDirBatchReplyHeader + results.size() * kDirBatchResultWire);
  const auto back = decode_dir_batch_reply(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, results);
  EXPECT_TRUE((*back)[1].has(kFlagGranted));
  EXPECT_FALSE((*back)[0].has(kFlagGranted));
}

TEST(DirBatchCodec, RequestDecodeIsStrict) {
  const auto wire = encode_dir_batch_request(2, sample_batch_items());
  // Every truncation fails — the length must match the count exactly...
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_dir_batch_request({wire.data(), len}).has_value())
        << len;
  }
  // ...and so do trailing bytes (reject, never guess).
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_dir_batch_request(padded).has_value());

  auto bad_version = wire;
  bad_version[0] = static_cast<std::byte>(kDirBatchVersion + 1);
  EXPECT_FALSE(decode_dir_batch_request(bad_version).has_value());

  auto bad_op = wire;
  bad_op[kDirBatchRequestHeader] = static_cast<std::byte>(kDirBatchOpCount);
  EXPECT_FALSE(decode_dir_batch_request(bad_op).has_value());

  // An inflated count disagrees with the byte length.
  auto bad_count = wire;
  bad_count[3] = static_cast<std::byte>(
      std::to_integer<std::uint8_t>(bad_count[3]) + 1);
  EXPECT_FALSE(decode_dir_batch_request(bad_count).has_value());

  // A count past the allocation bound is rejected before any item parsing.
  std::vector<std::byte> huge(kDirBatchRequestHeader, std::byte{0});
  huge[0] = static_cast<std::byte>(kDirBatchVersion);
  const std::uint32_t over = kDirBatchMaxItems + 1;
  for (int i = 0; i < 4; ++i) {
    huge[3 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((over >> (8 * i)) & 0xFF);
  }
  EXPECT_FALSE(decode_dir_batch_request(huge).has_value());
}

TEST(DirBatchCodec, ReplyDecodeIsStrict) {
  const std::vector<DirBatchResult> results = {{1, 7, kFlagGranted}};
  const auto wire = encode_dir_batch_reply(results);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_dir_batch_reply({wire.data(), len}).has_value())
        << len;
  }
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_dir_batch_reply(padded).has_value());

  auto bad_version = wire;
  bad_version[0] = static_cast<std::byte>(kDirBatchVersion + 1);
  EXPECT_FALSE(decode_dir_batch_reply(bad_version).has_value());

  // Reserved flag bits in a result byte poison the whole reply.
  auto bad_flags = wire;
  bad_flags[kDirBatchReplyHeader + kDirBatchResultWire - 1] =
      std::byte{0x80};
  EXPECT_FALSE(decode_dir_batch_reply(bad_flags).has_value());
}

// ---------------------------------------------------------- plan lowering ---

TEST(PlanLowering, BlockPayloadBytesHandlesTailsAndEmptyFiles) {
  EXPECT_EQ(block_payload_bytes(0, 0, kBlock), 0u);          // zero-byte file
  EXPECT_EQ(block_payload_bytes(kBlock, 0, kBlock), kBlock);
  EXPECT_EQ(block_payload_bytes(kBlock + 100, 1, kBlock), 100u);
  EXPECT_EQ(block_payload_bytes(kBlock + 100, 5, kBlock), 0u);  // past end
}

cache::AccessResult mixed_plan() {
  cache::AccessResult plan;
  plan.fetches = {
      {{9, 0}, cache::Source::kLocalHit, 0, false},
      {{9, 1}, cache::Source::kRemoteHit, 2, false},
      {{9, 2}, cache::Source::kRemoteHit, 1, false},
      {{9, 3}, cache::Source::kRemoteHit, 2, false},
      {{9, 4}, cache::Source::kDiskRead, 3, false},
      {{9, 5}, cache::Source::kDiskRead, 0, false},  // requester's own disk
  };
  return plan;
}

PlanContext block_ctx(std::uint64_t file_bytes) {
  PlanContext ctx;
  ctx.block_bytes = kBlock;
  ctx.whole_file = false;
  ctx.file_bytes_of = [file_bytes](FileId) { return file_bytes; };
  return ctx;
}

TEST(PlanLowering, GroupsByProviderInAscendingOrder) {
  const std::uint64_t file_bytes = 6 * kBlock - 1000;  // short tail block
  const TransferPlan tp =
      build_transfer_plan(0, mixed_plan(), block_ctx(file_bytes));

  ASSERT_EQ(tp.remote.size(), 2u);
  EXPECT_EQ(tp.remote[0].provider, 1);
  EXPECT_EQ(tp.remote[1].provider, 2);
  ASSERT_EQ(tp.remote[1].blocks.size(), 2u);  // blocks 1 and 3 share provider
  EXPECT_EQ(tp.remote[1].bytes, 2ull * kBlock);

  ASSERT_EQ(tp.disk.size(), 2u);
  EXPECT_EQ(tp.disk[0].provider, 0);
  EXPECT_EQ(tp.disk[1].provider, 3);
}

TEST(PlanLowering, CleanRemoteFetchCostsOneControlHop) {
  const TransferPlan tp =
      build_transfer_plan(0, mixed_plan(), block_ctx(6 * kBlock));
  const TransferGroup& g = tp.remote[1];
  ASSERT_EQ(g.control.size(), 1u);
  EXPECT_EQ(g.control[0].kind, MsgKind::kPeerFetch);
  EXPECT_FALSE(g.control[0].has(kFlagMisdirected));
  ASSERT_TRUE(g.bulk.has_value());
  EXPECT_EQ(g.bulk->kind, MsgKind::kPeerFetchReply);
  EXPECT_EQ(g.bulk->bytes, g.bytes);
}

TEST(PlanLowering, StaleHintCostsThreeControlHops) {
  cache::AccessResult plan;
  plan.fetches = {{{4, 0}, cache::Source::kRemoteHit, 2, true}};
  const TransferPlan tp = build_transfer_plan(0, plan, block_ctx(kBlock));
  ASSERT_EQ(tp.remote.size(), 1u);
  const TransferGroup& g = tp.remote[0];
  EXPECT_TRUE(g.misdirected);
  ASSERT_EQ(g.control.size(), 3u);
  EXPECT_EQ(g.control[0].kind, MsgKind::kPeerFetch);   // stale probe
  EXPECT_TRUE(g.control[0].has(kFlagMisdirected));
  EXPECT_EQ(g.control[1].kind, MsgKind::kRedirect);    // bounce
  EXPECT_EQ(g.control[2].kind, MsgKind::kPeerFetch);   // re-sent fetch
  EXPECT_FALSE(g.control[2].has(kFlagMisdirected));
}

TEST(PlanLowering, LocalDiskMovesNoWireBytes) {
  const TransferPlan tp =
      build_transfer_plan(0, mixed_plan(), block_ctx(6 * kBlock));
  const TransferGroup& local = tp.disk[0];  // home == requester
  EXPECT_TRUE(local.control.empty());
  EXPECT_FALSE(local.bulk.has_value());
  const TransferGroup& remote = tp.disk[1];
  ASSERT_EQ(remote.control.size(), 1u);
  EXPECT_EQ(remote.control[0].kind, MsgKind::kHomeRead);
  ASSERT_TRUE(remote.bulk.has_value());
  EXPECT_EQ(remote.bulk->kind, MsgKind::kBlockData);
}

TEST(PlanLowering, ForwardsCarryMessagesOnlyWithATarget) {
  cache::AccessResult plan;
  plan.forwards = {{{5, 0}, 0, 2, true},
                   {{5, 1}, 0, cache::kInvalidNode, false}};
  const TransferPlan tp = build_transfer_plan(0, plan, block_ctx(2 * kBlock));
  ASSERT_EQ(tp.forwards.size(), 2u);
  ASSERT_TRUE(tp.forwards[0].message.has_value());
  EXPECT_EQ(tp.forwards[0].message->kind, MsgKind::kMasterForward);
  EXPECT_FALSE(tp.forwards[1].message.has_value());
}

TEST(PlanLowering, ChargeBlocksCountsTheGroupedBlocks) {
  // Regression: charge_blocks drives the per-block CPU costs the simulator
  // charges (serve_peer_block_ms, cache_block_ms). An early version computed
  // it from a moved-from group and silently charged zero.
  const TransferPlan tp =
      build_transfer_plan(0, mixed_plan(), block_ctx(6 * kBlock));
  ASSERT_EQ(tp.remote.size(), 2u);
  EXPECT_EQ(tp.remote[0].charge_blocks, 1u);  // provider 1: block 2
  EXPECT_EQ(tp.remote[1].charge_blocks, 2u);  // provider 2: blocks 1 and 3
  ASSERT_EQ(tp.disk.size(), 2u);
  EXPECT_EQ(tp.disk[0].charge_blocks, 1u);
  EXPECT_EQ(tp.disk[1].charge_blocks, 1u);

  // Whole-file mode charges the file's full block footprint regardless of
  // how many fetch entries stood in for it.
  auto ctx = block_ctx(6 * kBlock);
  ctx.whole_file = true;
  const TransferPlan wf = build_transfer_plan(0, mixed_plan(), ctx);
  ASSERT_FALSE(wf.remote.empty());
  EXPECT_EQ(wf.remote[0].charge_blocks, 6u);
}

TEST(PlanLowering, LoweringIsDeterministic) {
  const auto ctx = block_ctx(6 * kBlock - 1000);
  const TransferPlan a = build_transfer_plan(0, mixed_plan(), ctx);
  const TransferPlan b = build_transfer_plan(0, mixed_plan(), ctx);
  ASSERT_EQ(a.remote.size(), b.remote.size());
  for (std::size_t i = 0; i < a.remote.size(); ++i) {
    EXPECT_EQ(a.remote[i].control, b.remote[i].control);
    EXPECT_EQ(a.remote[i].bulk, b.remote[i].bulk);
  }
}

// ------------------------------------------------- forward-target policy ---

struct FakeView final : PeerView {
  std::vector<std::uint64_t> ages;
  std::vector<bool> full;
  [[nodiscard]] std::uint64_t peer_oldest_age(cache::NodeId n) const override {
    return ages[n];
  }
  [[nodiscard]] bool peer_full(cache::NodeId n) const override {
    return full[n];
  }
};

TEST(ForwardTarget, PrefersFreePeerInIndexOrderThenOldest) {
  FakeView view;
  view.ages = {5, 10, 3, 8};
  view.full = {true, false, true, false};
  EXPECT_EQ(pick_forward_target(0, 4, view), 1);  // first non-full peer
  view.full = {true, true, true, true};
  EXPECT_EQ(pick_forward_target(0, 4, view), 2);  // oldest block wins
  EXPECT_EQ(pick_forward_target(2, 4, view), 0);  // never forwards to self
  EXPECT_EQ(pick_forward_target(0, 1, view), cache::kInvalidNode);
}

TEST(ForwardTarget, GloballyOldestMasterGetsNoSecondChance) {
  FakeView view;
  view.ages = {4, 10, kNoAge, 8};
  view.full = {true, true, false, true};
  EXPECT_TRUE(holds_globally_oldest(0, 4, 4, view));
  EXPECT_FALSE(holds_globally_oldest(1, 10, 4, view));
}

// -------------------------------------------- NodeState vs ClusterCache ---

/// Serial re-implementation of the runtime's orchestration over the shared
/// protocol pieces: the same transitions CcmCluster runs under shard locks,
/// minus the locks and messages. Drives NodeState + DirectoryService with
/// the runtime's tick conventions (local hit 1 tick; remote hit 2 ticks —
/// holder touch then requester insert; miss 1 tick; evictions/forwards tick
/// nothing) so the outcome must equal ClusterCache on the same script.
class SerialHarness {
 public:
  explicit SerialHarness(const cache::CoopCacheConfig& config)
      : config_(config),
        dir_(config.nodes, config.directory, config.hint_staleness) {
    for (std::size_t n = 0; n < config.nodes; ++n) {
      nodes_.push_back(std::make_unique<NodeState>(
          static_cast<cache::NodeId>(n), config));
    }
    view_.harness = this;
  }

  void access(cache::NodeId node, cache::FileId file,
              std::uint64_t file_bytes) {
    const std::uint32_t blocks =
        cache::blocks_for(file_bytes, config_.block_bytes);
    for (std::uint32_t i = 0; i < blocks; ++i) {
      access_block(node, BlockId{file, i});
    }
  }

  [[nodiscard]] cache::CacheStats summed_stats() const {
    cache::CacheStats total;
    for (const auto& n : nodes_) {
      const cache::CacheStats& s = n->stats();
      total.local_hits += s.local_hits;
      total.remote_hits += s.remote_hits;
      total.disk_reads += s.disk_reads;
      total.forwards_attempted += s.forwards_attempted;
      total.forwards_accepted += s.forwards_accepted;
      total.master_drops += s.master_drops;
      total.copy_drops += s.copy_drops;
    }
    total.hint_misdirects = dir_.ops().hint_misdirects;
    return total;
  }

  [[nodiscard]] const NodeState& node(cache::NodeId n) const {
    return *nodes_[n];
  }
  [[nodiscard]] const DirectoryService& directory() const { return dir_; }

 private:
  struct View final : PeerView {
    const SerialHarness* harness = nullptr;
    [[nodiscard]] std::uint64_t peer_oldest_age(
        cache::NodeId n) const override {
      return harness->nodes_[n]->published_oldest_age();
    }
    [[nodiscard]] bool peer_full(cache::NodeId n) const override {
      return harness->nodes_[n]->published_full();
    }
  };

  std::uint64_t tick() { return ++clock_; }

  void apply_drops(const std::vector<cache::Drop>& drops) {
    for (const auto& d : drops) {
      if (d.was_master) dir_.master_dropped(d.block, d.node);
    }
  }

  void make_room(NodeState& st, std::uint32_t slots = 1) {
    std::vector<cache::Drop> drops;
    for (;;) {
      drops.clear();
      const auto pf = st.make_room(slots, view_, drops);
      apply_drops(drops);
      st.publish();
      if (!pf) return;
      forward(st, *pf);
    }
  }

  void forward(NodeState& st, const PendingForward& pf) {
    const cache::NodeId to =
        pick_forward_target(st.id(), nodes_.size(), view_);
    if (to == cache::kInvalidNode) {
      dir_.master_dropped(pf.block, st.id());
      ++st.stats().master_drops;
      return;
    }
    const auto epoch = dir_.begin_forward(pf.block, st.id());
    ASSERT_TRUE(epoch.has_value()) << "serial forward cannot be superseded";
    NodeState& dest = *nodes_[to];
    std::vector<cache::Drop> dest_drops;
    const ForwardOutcome outcome = dest.handle_forward(pf, dest_drops);
    apply_drops(dest_drops);
    bool accepted = false;
    if (outcome != ForwardOutcome::kRejected &&
        dir_.claim_forwarded(pf.block, to, st.id(), *epoch)) {
      accepted = true;
    } else if (outcome == ForwardOutcome::kAccepted) {
      dest.erase_entry(pf.block);  // claim lost: undo the insert
    } else if (outcome == ForwardOutcome::kPromoted) {
      dest.demote_to_copy(pf.block);
    }
    dest.publish();
    if (accepted) {
      ++st.stats().forwards_accepted;
    } else {
      dir_.forward_rejected(pf.block, st.id());
      ++st.stats().master_drops;
    }
  }

  void access_block(cache::NodeId node, const BlockId& b) {
    NodeState& st = *nodes_[node];
    if (st.contains(b)) {
      st.touch(b, tick());
      ++st.stats().local_hits;
      st.publish();
      return;
    }
    const auto lk = dir_.lookup_for_read(node, b);
    if (lk.master != cache::kInvalidNode && lk.master != node) {
      NodeState& holder = *nodes_[lk.master];
      ASSERT_TRUE(holder.is_master(b)) << "serial directory must be exact";
      holder.touch(b, tick());
      holder.publish();
      ++st.stats().remote_hits;
      make_room(st);
      st.insert_copy(b, tick());
      st.publish();
      return;
    }
    make_room(st);
    ASSERT_TRUE(dir_.try_claim(b, node)) << "serial claim cannot conflict";
    ++st.stats().disk_reads;
    st.insert_master(b, tick());
    st.publish();
  }

  cache::CoopCacheConfig config_;
  DirectoryService dir_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  View view_;
  std::uint64_t clock_ = 0;
};

class ProtoParityParam : public testing::TestWithParam<cache::Policy> {};

TEST_P(ProtoParityParam, SerialScriptMatchesClusterCacheOracle) {
  cache::CoopCacheConfig config;
  config.nodes = 4;
  config.capacity_bytes = 8 * kBlock;  // tiny: constant eviction churn
  config.block_bytes = kBlock;
  config.policy = GetParam();

  const std::size_t kFiles = 10;
  const auto file_bytes = [](cache::FileId f) -> std::uint64_t {
    return (f % 3 + 1) * kBlock - (f % 2) * 700;
  };

  cache::ClusterCache oracle(config);
  SerialHarness harness(config);

  // Deterministic churn script: enough accesses to exercise hits, misses,
  // evictions, master forwards, promotions, and rejections on both sides.
  for (int i = 0; i < 400; ++i) {
    const auto node = static_cast<cache::NodeId>((7 * i + i * i) % 4);
    const auto file = static_cast<cache::FileId>((13 * i + 5) % kFiles);
    oracle.access(node, file, file_bytes(file));
    harness.access(node, file, file_bytes(file));
  }

  // Identical statistics...
  const cache::CacheStats& want = oracle.stats();
  const cache::CacheStats got = harness.summed_stats();
  EXPECT_EQ(got.local_hits, want.local_hits);
  EXPECT_EQ(got.remote_hits, want.remote_hits);
  EXPECT_EQ(got.disk_reads, want.disk_reads);
  EXPECT_EQ(got.forwards_attempted, want.forwards_attempted);
  EXPECT_EQ(got.forwards_accepted, want.forwards_accepted);
  EXPECT_EQ(got.master_drops, want.master_drops);
  EXPECT_EQ(got.copy_drops, want.copy_drops);

  // ...and identical cache contents, mastership, and directory census.
  std::size_t masters = 0;
  for (cache::NodeId n = 0; n < 4; ++n) {
    const cache::NodeCache& a = harness.node(n).cache();
    const cache::NodeCache& b = oracle.node(n);
    EXPECT_EQ(a.used_blocks(), b.used_blocks()) << "node " << n;
    EXPECT_EQ(a.master_count(), b.master_count()) << "node " << n;
    EXPECT_EQ(a.copy_count(), b.copy_count()) << "node " << n;
    for (cache::FileId f = 0; f < kFiles; ++f) {
      const std::uint32_t blocks =
          cache::blocks_for(file_bytes(f), config.block_bytes);
      for (std::uint32_t idx = 0; idx < blocks; ++idx) {
        const BlockId b_id{f, idx};
        EXPECT_EQ(a.contains(b_id), b.contains(b_id))
            << "node " << n << " block " << f << "/" << idx;
        EXPECT_EQ(a.is_master(b_id), b.is_master(b_id))
            << "node " << n << " block " << f << "/" << idx;
      }
    }
    masters += a.master_count();
  }
  EXPECT_EQ(harness.directory().master_count(), masters);
}

INSTANTIATE_TEST_SUITE_P(Policies, ProtoParityParam,
                         testing::Values(cache::Policy::kBasic,
                                         cache::Policy::kNeverEvictMaster));

// -------------------------------------------------- directory conditions ---

TEST(DirectoryService, ClaimIsSetIfAbsent) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{1, 0};
  EXPECT_TRUE(dir.try_claim(b, 2));
  EXPECT_FALSE(dir.try_claim(b, 3));  // somebody was faster
  EXPECT_EQ(dir.lookup(b), 2);
  EXPECT_EQ(dir.ops().claims, 1u);
  EXPECT_EQ(dir.ops().claim_conflicts, 1u);
}

TEST(DirectoryService, MasterDroppedIsConditionalOnHolder) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{1, 0};
  ASSERT_TRUE(dir.try_claim(b, 2));
  dir.master_dropped(b, 3);  // a rival's stale notice must not erase node 2
  EXPECT_EQ(dir.lookup(b), 2);
  dir.master_dropped(b, 2);
  EXPECT_EQ(dir.lookup(b), cache::kInvalidNode);
}

TEST(DirectoryService, InvalidationEpochFencesInFlightForwards) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{5, 0};
  ASSERT_TRUE(dir.try_claim(b, 0));
  const auto epoch = dir.begin_forward(b, 0);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(dir.lookup(b), cache::kInvalidNode);  // in flight: unregistered
  dir.invalidate_file(b.file);                    // crosses the forward
  EXPECT_FALSE(dir.claim_forwarded(b, 1, 0, *epoch));
  EXPECT_EQ(dir.lookup(b), cache::kInvalidNode);
}

TEST(DirectoryService, ForwardClaimLosesToRivalDiskRead) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{5, 0};
  ASSERT_TRUE(dir.try_claim(b, 0));
  const auto epoch = dir.begin_forward(b, 0);
  ASSERT_TRUE(epoch.has_value());
  ASSERT_TRUE(dir.try_claim(b, 2));  // rival misses and claims while in flight
  EXPECT_FALSE(dir.claim_forwarded(b, 1, 0, *epoch));
  EXPECT_EQ(dir.lookup(b), 2);
}

TEST(DirectoryService, BeginForwardRefusesASupersededMaster) {
  // Regression: a writer's write_claim can overtake an eviction's forward.
  // begin_forward must refuse to unregister the writer — otherwise the
  // forwarded (pre-write) bytes re-register as master and readers serve
  // stale data. Found by CcmStress.MixedReadersWritersInvalidatorsStay-
  // Consistent in tests/test_ccm.cpp.
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{5, 0};
  ASSERT_TRUE(dir.try_claim(b, 0));
  EXPECT_EQ(dir.write_claim(b, 3), 0);          // writer overtakes node 0
  EXPECT_FALSE(dir.begin_forward(b, 0).has_value());
  EXPECT_EQ(dir.lookup(b), 3);                  // the writer stays registered
  EXPECT_EQ(dir.ops().forwards_begun, 0u);

  // Regression: an in-place re-write (previous holder == writer) keeps the
  // lookup pointing at the writer, so only the write span reveals that the
  // holder's cached bytes are being superseded. A forward begun inside the
  // span would ship them to a peer as a live master.
  dir.write_begin(b.file);
  EXPECT_EQ(dir.write_claim(b, 3), 3);          // holder re-write
  EXPECT_FALSE(dir.begin_forward(b, 3).has_value());
  EXPECT_EQ(dir.lookup(b), 3);
  dir.write_end(b.file);
  EXPECT_TRUE(dir.begin_forward(b, 3).has_value());  // quiescent again
}

TEST(DirectoryService, WriteClaimIsUnconditionalAndReturnsPrevious) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{2, 1};
  EXPECT_EQ(dir.write_claim(b, 1), cache::kInvalidNode);  // cold write
  EXPECT_EQ(dir.write_claim(b, 3), 1);                    // migrates from 1
  EXPECT_EQ(dir.write_claim(b, 3), 3);                    // holder re-write
  EXPECT_EQ(dir.lookup(b), 3);
  // Every write bumps the file epoch — including the holder re-write, whose
  // content change is invisible through the master lookup alone. Readers
  // compare it against ReadLookup::epoch before caching fetched bytes.
  EXPECT_EQ(dir.file_epoch(b.file), 3u);
  EXPECT_EQ(dir.lookup_for_read(0, b).epoch, 3u);
}

TEST(DirectoryService, WriteSpanBlocksReadCachingUntilItCloses) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{5, 2};
  ASSERT_TRUE(dir.try_claim(b, 0));

  const auto before = dir.lookup_for_read(1, b);
  EXPECT_TRUE(dir.read_cacheable(b.file, before.epoch));

  // A write span opens: nothing fetched under any epoch may be cached, even
  // under an epoch observed *inside* the span (after the per-block claim).
  dir.write_begin(b.file);
  EXPECT_FALSE(dir.read_cacheable(b.file, before.epoch));
  dir.write_claim(b, 0);  // holder re-write: lookup alone shows no change
  const auto inside = dir.lookup_for_read(1, b);
  EXPECT_EQ(inside.master, 0);
  EXPECT_FALSE(dir.read_cacheable(b.file, inside.epoch));

  // Closing the span bumps the epoch once more, so the in-span snapshot
  // stays uncacheable forever; only a fresh lookup is trusted again.
  dir.write_end(b.file);
  EXPECT_FALSE(dir.read_cacheable(b.file, before.epoch));
  EXPECT_FALSE(dir.read_cacheable(b.file, inside.epoch));
  const auto after = dir.lookup_for_read(1, b);
  EXPECT_TRUE(dir.read_cacheable(b.file, after.epoch));

  // Overlapping spans: cacheability returns only when the last one closes.
  dir.write_begin(b.file);
  dir.write_begin(b.file);
  dir.write_end(b.file);
  EXPECT_FALSE(dir.read_cacheable(b.file, dir.file_epoch(b.file)));
  dir.write_end(b.file);
  EXPECT_TRUE(dir.read_cacheable(b.file, dir.file_epoch(b.file)));
}

TEST(DirectoryService, MessageAdapterAnswersLookupAndClaim) {
  DirectoryService dir(4, cache::DirectoryMode::kPerfect, 1);
  const BlockId b{3, 0};
  const Message miss = dir.handle(Message::block_lookup(1, b));
  EXPECT_EQ(miss.kind, MsgKind::kBlockLookupReply);
  EXPECT_FALSE(miss.has(kFlagHit));

  const Message granted = dir.handle(Message::master_claim(1, b));
  EXPECT_EQ(granted.kind, MsgKind::kMasterClaimReply);
  EXPECT_TRUE(granted.has(kFlagGranted));

  const Message hit = dir.handle(Message::block_lookup(2, b));
  EXPECT_TRUE(hit.has(kFlagHit));
  EXPECT_EQ(hit.from, 1);  // reply names the master holder
}

// -------------------------------------- batched vs singles equivalence ---

/// Applies one batch item through the singles protocol — the exact calls
/// RemoteDirectory's no-batch fallback and the pre-batch runtime made — and
/// returns the result the batch op must match.
DirBatchResult apply_single(DirectoryService& dir, cache::NodeId node,
                            const DirBatchItem& it) {
  DirBatchResult r;
  switch (it.op) {
    case DirBatchOp::kLookupRead: {
      const auto lk = dir.lookup_for_read(node, it.block);
      r.node = lk.master;
      r.epoch = lk.epoch;
      if (lk.misdirected) r.flags |= kFlagMisdirected;
      break;
    }
    case DirBatchOp::kTryClaim:
      if (dir.try_claim(it.block, node)) r.flags |= kFlagGranted;
      break;
    case DirBatchOp::kMasterDropped:
      dir.master_dropped(it.block, node);
      break;
    case DirBatchOp::kValidate:
      r.node = dir.lookup(it.block);
      r.epoch = dir.file_epoch(it.block.file);
      if (dir.read_cacheable(it.block.file, r.epoch)) r.flags |= kFlagGranted;
      break;
  }
  return r;
}

TEST(DirBatchEquivalence, BatchedScriptMatchesSinglesStateExactly) {
  // Two directories fed the same deterministic mixed script: one through
  // apply_batch (with every batch routed through the wire codec, the way the
  // runtime ships it), one op at a time through the singles entry points.
  // Every per-item result and the complete final state must be identical —
  // the batch path is an amortization, never a semantic change.
  constexpr std::size_t kNodes = 4;
  constexpr cache::FileId kFiles = 6;
  constexpr std::uint32_t kIndexes = 4;
  DirectoryService batched(kNodes, cache::DirectoryMode::kPerfect, 1);
  DirectoryService singles(kNodes, cache::DirectoryMode::kPerfect, 1);

  std::vector<DirBatchItem> pending;
  std::vector<cache::FileId> open_spans;
  auto flush = [&](cache::NodeId node) {
    if (pending.empty()) return;
    const auto wire = encode_dir_batch_request(node, pending);
    const auto req = decode_dir_batch_request(wire);
    ASSERT_TRUE(req.has_value());
    ASSERT_EQ(req->node, node);
    std::vector<DirBatchResult> got;
    batched.apply_batch(req->node, req->items, got);
    const auto reply = decode_dir_batch_reply(encode_dir_batch_reply(got));
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->size(), pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const DirBatchResult want = apply_single(singles, node, pending[i]);
      EXPECT_EQ((*reply)[i], want)
          << "item " << i << " op "
          << static_cast<int>(pending[i].op) << " block "
          << pending[i].block.file << "/" << pending[i].block.index;
    }
    pending.clear();
  };

  cache::NodeId node = 0;
  for (int i = 0; i < 600; ++i) {
    const auto next = static_cast<cache::NodeId>((i * 5 + i / 7) % kNodes);
    if (next != node) flush(node);  // a batch carries one requester
    node = next;
    const BlockId b{static_cast<cache::FileId>((i * 7 + 3) % kFiles),
                    static_cast<std::uint32_t>((i * 3) % kIndexes)};
    pending.push_back({static_cast<DirBatchOp>(i % kDirBatchOpCount), b, 0});
    if (pending.size() == static_cast<std::size_t>(1 + i % 8)) flush(node);
    if (i % 31 == 0) {
      // Write spans are not batched ops; drive them identically on both
      // sides so epochs and in-flight write state diverge if batching leaks.
      flush(node);
      batched.write_begin(b.file);
      singles.write_begin(b.file);
      EXPECT_EQ(batched.write_claim(b, node), singles.write_claim(b, node));
      if (i % 62 == 0) {
        batched.write_end(b.file);
        singles.write_end(b.file);
      } else {
        open_spans.push_back(b.file);  // stays open across the next batches
      }
    }
    if (i % 93 == 1 && !open_spans.empty()) {
      flush(node);
      batched.write_end(open_spans.back());
      singles.write_end(open_spans.back());
      open_spans.pop_back();
    }
  }
  flush(node);
  for (const cache::FileId f : open_spans) {
    batched.write_end(f);
    singles.write_end(f);
  }

  // Final state: master map, per-file epochs, census, and every counter.
  for (cache::FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(batched.file_epoch(f), singles.file_epoch(f)) << "file " << f;
    for (std::uint32_t idx = 0; idx < kIndexes; ++idx) {
      const BlockId b{f, idx};
      EXPECT_EQ(batched.lookup(b), singles.lookup(b))
          << "block " << f << "/" << idx;
    }
  }
  EXPECT_EQ(batched.master_count(), singles.master_count());
  const auto& bo = batched.ops();
  const auto& so = singles.ops();
  EXPECT_EQ(bo.lookups, so.lookups);
  EXPECT_EQ(bo.claims, so.claims);
  EXPECT_EQ(bo.claim_conflicts, so.claim_conflicts);
  EXPECT_EQ(bo.masters_dropped, so.masters_dropped);
  EXPECT_EQ(bo.write_claims, so.write_claims);
  EXPECT_EQ(bo.hint_misdirects, so.hint_misdirects);
}

}  // namespace
}  // namespace coop::proto
