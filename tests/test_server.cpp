// Integration tests: the full simulated cluster (clients -> router -> server
// -> caches/disks -> response) for both architectures.
#include <gtest/gtest.h>

#include "server/cluster.hpp"
#include "trace/presets.hpp"
#include "trace/synthetic.hpp"

namespace coop::server {
namespace {

trace::Trace tiny_trace(std::size_t files, std::size_t requests,
                        std::uint64_t seed = 3,
                        double mean_bytes = 16.0 * 1024) {
  trace::SyntheticSpec s;
  s.name = "tiny";
  s.num_files = files;
  s.num_requests = requests;
  s.zipf_alpha = 0.8;
  s.mean_file_bytes = mean_bytes;
  s.seed = seed;
  return trace::generate(s);
}

ClusterConfig base_config(SystemKind system, std::size_t nodes,
                          std::uint64_t mem_mb) {
  ClusterConfig c;
  c.system = system;
  c.nodes = nodes;
  c.memory_per_node = mem_mb * 1024 * 1024;
  c.clients.clients = 16;
  c.clients.warmup_fraction = 0.3;
  return c;
}

// ------------------------------------------------------------ lifecycle ---

TEST(SimCluster, CcmServesEveryRequest) {
  const auto trace = tiny_trace(50, 2000);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 4, 4), trace);
  EXPECT_EQ(m.requests, 1400u);  // 70% of 2000 measured
  EXPECT_GT(m.throughput_rps, 0.0);
  EXPECT_GT(m.bytes_served, 0u);
  EXPECT_GT(m.duration_ms, 0.0);
}

TEST(SimCluster, L2sServesEveryRequest) {
  const auto trace = tiny_trace(50, 2000);
  const auto m = run_simulation(base_config(SystemKind::kL2S, 4, 4), trace);
  EXPECT_EQ(m.requests, 1400u);
  EXPECT_GT(m.throughput_rps, 0.0);
}

TEST(SimCluster, DeterministicAcrossRuns) {
  const auto trace = tiny_trace(50, 1500);
  const auto cfg = base_config(SystemKind::kCcNem, 4, 8);
  const auto a = run_simulation(cfg, trace);
  const auto b = run_simulation(cfg, trace);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.disk_block_reads, b.disk_block_reads);
  EXPECT_EQ(a.remote_block_fetches, b.remote_block_fetches);
}

TEST(SimCluster, RejectsBadConfig) {
  const auto trace = tiny_trace(10, 100);
  auto cfg = base_config(SystemKind::kCcNem, 0, 4);
  EXPECT_THROW(run_simulation(cfg, trace), std::invalid_argument);
  cfg = base_config(SystemKind::kCcNem, 2, 4);
  cfg.params.disk_per_kb_ms = 0.0;
  EXPECT_THROW(run_simulation(cfg, trace), std::invalid_argument);
}

// -------------------------------------------------------------- behavior ---

TEST(SimCluster, WarmCacheMeansFewDiskReads) {
  // Working set (50 files * ~16 KB = ~1 MB) far below 4 nodes * 32 MB: after
  // warm-up, essentially everything is cached.
  const auto trace = tiny_trace(50, 3000);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 4, 32), trace);
  EXPECT_GT(m.global_hit_rate(), 0.98);
  // A trickle of disk reads can remain (cold files first touched after
  // warm-up), but well under 1% of requests.
  EXPECT_LT(static_cast<double>(m.disk_block_reads),
            0.02 * static_cast<double>(m.requests));
}

TEST(SimCluster, TinyMemoryMeansDiskBound) {
  // Working set of ~8 MB against 2 nodes * 1 MB: the disks must work.
  const auto trace = tiny_trace(500, 3000, /*seed=*/9);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 2, 1), trace);
  EXPECT_LT(m.global_hit_rate(), 0.9);
  EXPECT_GT(m.disk_block_reads, 100u);
  EXPECT_GT(m.disk_utilization, 0.3);
}

TEST(SimCluster, CcmHitsAreMostlyRemoteAtModerateMemory) {
  // The paper (§5): CC-NEM local hit rates 12-21%, remote 60-75% when memory
  // is scarce relative to the working set.
  const auto trace = tiny_trace(2000, 8000, /*seed=*/17);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 8, 2), trace);
  EXPECT_GT(m.remote_hit_rate, m.local_hit_rate);
}

TEST(SimCluster, L2sMigratesRequestsToHolders) {
  const auto trace = tiny_trace(200, 4000);
  const auto m = run_simulation(base_config(SystemKind::kL2S, 4, 32), trace);
  // With RR DNS, ~3/4 of requests land on a non-caching node and hand off.
  EXPECT_GT(m.handoffs, 1000u);
  EXPECT_GT(m.remote_hit_rate, m.local_hit_rate);
  EXPECT_GT(m.global_hit_rate(), 0.9);
}

TEST(SimCluster, L2sKeepsOneCopySoAggregateCacheIsLarge) {
  // L2S with migration should beat naive behavior: its global hit rate must
  // be high even when per-node memory is a quarter of the working set.
  const auto trace = tiny_trace(800, 8000, /*seed=*/23);  // ~12 MB working set
  const auto m = run_simulation(base_config(SystemKind::kL2S, 4, 4), trace);
  EXPECT_GT(m.global_hit_rate(), 0.75);
}

TEST(SimCluster, SchedBeatsBasicOnThroughput) {
  // The paper's first finding: disk scheduling alone improves CC-Basic.
  // Needs a disk-saturated setup (deep disk queues) for reordering to
  // matter: large files, tiny memories, many concurrent clients.
  const auto trace = tiny_trace(2000, 6000, /*seed=*/29, /*mean=*/48.0 * 1024);
  auto cfg_basic = base_config(SystemKind::kCcBasic, 4, 1);
  auto cfg_sched = base_config(SystemKind::kCcSched, 4, 1);
  cfg_basic.clients.clients = 64;
  cfg_sched.clients.clients = 64;
  const auto basic = run_simulation(cfg_basic, trace);
  const auto sched = run_simulation(cfg_sched, trace);
  EXPECT_GT(sched.throughput_rps, basic.throughput_rps);
  // Fewer seeks per disk read is the mechanism.
  EXPECT_LT(static_cast<double>(sched.disk_seeks) /
                static_cast<double>(sched.disk_block_reads),
            static_cast<double>(basic.disk_seeks) /
                static_cast<double>(basic.disk_block_reads));
}

TEST(SimCluster, NemBeatsSchedOnOverflowingWorkingSet) {
  // The paper's second finding: protecting masters buys the big win.
  const auto trace = tiny_trace(1500, 8000, /*seed=*/31);
  const auto sched =
      run_simulation(base_config(SystemKind::kCcSched, 4, 2), trace);
  const auto nem =
      run_simulation(base_config(SystemKind::kCcNem, 4, 2), trace);
  EXPECT_GT(nem.throughput_rps, sched.throughput_rps);
  EXPECT_GT(nem.global_hit_rate(), sched.global_hit_rate());
}

TEST(SimCluster, ResponseTimesArePositiveAndOrdered) {
  const auto trace = tiny_trace(100, 2000);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 4, 16), trace);
  EXPECT_GT(m.mean_response_ms, 0.0);
  EXPECT_LE(m.p50_response_ms, m.p95_response_ms);
  EXPECT_LE(m.p95_response_ms, m.p99_response_ms);
}

TEST(SimCluster, UtilizationsAreFractions) {
  const auto trace = tiny_trace(300, 3000);
  const auto m = run_simulation(base_config(SystemKind::kCcNem, 4, 2), trace);
  for (const double u : {m.cpu_utilization, m.disk_utilization,
                         m.nic_utilization, m.max_disk_utilization,
                         m.router_utilization}) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GE(m.max_disk_utilization, m.disk_utilization);
}

TEST(SimCluster, HandoffAblationCostsL2sThroughput) {
  // The hand-off advantage (Bianchini & Carrera measured ~7%) shows when
  // requests actually migrate and the cluster is CPU/NIC-bound. Replication
  // is pinned off so 3/4 of requests hand off, everything is cached (no
  // disk noise), and the no-hand-off relay pays a second serve + transfer.
  const auto trace = tiny_trace(50, 12000, /*seed=*/37, /*mean=*/64.0 * 1024);
  auto with = base_config(SystemKind::kL2S, 4, 32);
  with.clients.clients = 64;
  with.clients.warmup_fraction = 0.5;
  with.overload_threshold = 1u << 30;  // replication off
  auto without = with;
  without.tcp_handoff = false;
  const auto m_with = run_simulation(with, trace);
  const auto m_without = run_simulation(without, trace);
  EXPECT_GT(m_with.throughput_rps, m_without.throughput_rps);
  EXPECT_LT(m_with.mean_response_ms, m_without.mean_response_ms);
  EXPECT_GT(m_with.handoffs, 4000u);
}

TEST(SimCluster, HintedDirectoryCloseToPerfect) {
  const auto trace = tiny_trace(300, 5000, /*seed=*/41);
  auto perfect = base_config(SystemKind::kCcNem, 4, 8);
  auto hinted = perfect;
  hinted.directory = cache::DirectoryMode::kHinted;
  const auto mp = run_simulation(perfect, trace);
  const auto mh = run_simulation(hinted, trace);
  EXPECT_GT(mh.throughput_rps, 0.5 * mp.throughput_rps);
}

TEST(SimCluster, CustomHomePlacementWorks) {
  const auto trace = tiny_trace(100, 2000);
  auto cfg = base_config(SystemKind::kCcNem, 4, 8);
  cfg.home_of = [](trace::FileId) { return std::uint16_t{0}; };
  const auto m = run_simulation(cfg, trace);
  EXPECT_EQ(m.requests, 1400u);
  EXPECT_GT(m.throughput_rps, 0.0);
}

TEST(SimCluster, MoreNodesMoreThroughputWhenDiskBound) {
  const auto trace = tiny_trace(1200, 6000, /*seed=*/43);
  const auto small =
      run_simulation(base_config(SystemKind::kCcNem, 2, 2), trace);
  const auto large =
      run_simulation(base_config(SystemKind::kCcNem, 8, 2), trace);
  EXPECT_GT(large.throughput_rps, small.throughput_rps);
}

// One smoke cell per (preset, system): everything serves, metrics sane.
struct PresetParam {
  const char* preset;
  SystemKind system;
};

class PresetSmoke : public testing::TestWithParam<PresetParam> {};

TEST_P(PresetSmoke, ServesTruncatedPreset) {
  const auto p = GetParam();
  trace::SyntheticSpec spec;
  // Miniaturized preset: keep the name-selected popularity/size character
  // but only 4000 requests so the whole matrix stays fast.
  for (const auto& full : trace::all_presets()) {
    if (full.name == p.preset) spec = full;
  }
  spec.num_files = 1500;
  spec.num_requests = 4000;
  const auto tr = trace::generate(spec);
  auto cfg = base_config(p.system, 4, 4);
  const auto m = run_simulation(cfg, tr);
  EXPECT_EQ(m.requests, 2800u) << p.preset;
  EXPECT_GT(m.throughput_rps, 0.0);
  EXPECT_GE(m.global_hit_rate(), 0.0);
  EXPECT_LE(m.global_hit_rate(), 1.0);
  EXPECT_LE(m.local_hit_rate, 1.0);
  EXPECT_GT(m.mean_response_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetSmoke,
    testing::Values(PresetParam{"calgary", SystemKind::kL2S},
                    PresetParam{"calgary", SystemKind::kCcNem},
                    PresetParam{"clarknet", SystemKind::kL2S},
                    PresetParam{"clarknet", SystemKind::kCcNem},
                    PresetParam{"nasa", SystemKind::kCcBasic},
                    PresetParam{"nasa", SystemKind::kCcNem},
                    PresetParam{"rutgers", SystemKind::kCcSched},
                    PresetParam{"rutgers", SystemKind::kCcNem}));

TEST(SimCluster, WholeFileModeServesAndStaysClose) {
  const auto trace = tiny_trace(400, 4000, /*seed=*/51);
  auto block_cfg = base_config(SystemKind::kCcNem, 4, 8);
  auto file_cfg = block_cfg;
  file_cfg.ccm_whole_file = true;
  const auto block_m = run_simulation(block_cfg, trace);
  const auto file_m = run_simulation(file_cfg, trace);
  EXPECT_EQ(file_m.requests, block_m.requests);
  // §6's question: the adaptation should be in the same performance class.
  EXPECT_GT(file_m.throughput_rps, 0.5 * block_m.throughput_rps);
  EXPECT_LT(file_m.throughput_rps, 2.0 * block_m.throughput_rps);
}

TEST(SimCluster, HintedMisdirectsAreCountedButCheap) {
  const auto trace = tiny_trace(300, 5000, /*seed=*/53);
  auto cfg = base_config(SystemKind::kCcNem, 4, 16);
  cfg.directory = cache::DirectoryMode::kHinted;
  const auto m = run_simulation(cfg, trace);
  EXPECT_GT(m.hint_misdirects, 0u);
  auto perfect = base_config(SystemKind::kCcNem, 4, 16);
  const auto mp = run_simulation(perfect, trace);
  EXPECT_GT(m.throughput_rps, 0.85 * mp.throughput_rps);
}

TEST(SimCluster, SystemKindNames) {
  EXPECT_STREQ(to_string(SystemKind::kL2S), "L2S");
  EXPECT_STREQ(to_string(SystemKind::kCcBasic), "CC-Basic");
  EXPECT_STREQ(to_string(SystemKind::kCcSched), "CC-Sched");
  EXPECT_STREQ(to_string(SystemKind::kCcNem), "CC-NEM");
}

}  // namespace
}  // namespace coop::server
