// The transport layer: Mailbox backpressure primitives, wire framing
// robustness (truncation, corruption, reassembly), the InProc/Tcp Transport
// implementations, and the end-to-end check that a CcmCluster split across
// three TCP transports computes byte-identical storage to the in-process
// runtime. Frame-corruption tests assert the failure contract: malformed
// input poisons the stream (drop the connection) and never crashes or
// delivers a partial message.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "ccm/cluster.hpp"
#include "ccm/directory_client.hpp"
#include "ccm/remote_storage.hpp"
#include "ccm/storage.hpp"
#include "ccm/transport.hpp"
#include "net/frame.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "proto/dir_batch.hpp"
#include "sim/random.hpp"

namespace coop {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------- Mailbox ----

TEST(Mailbox, TrySendFailsWhenFullThenRecoversAfterDrain) {
  ccm::Mailbox<int> mb(2);
  EXPECT_TRUE(mb.try_send(1));
  EXPECT_TRUE(mb.try_send(2));
  EXPECT_FALSE(mb.try_send(3));  // full: dropped, not blocked
  EXPECT_EQ(mb.receive(), 1);
  EXPECT_TRUE(mb.try_send(4));
  mb.close();
  EXPECT_FALSE(mb.try_send(5));  // closed: dropped
}

TEST(Mailbox, SendForTimesOutAgainstAFullMailbox) {
  ccm::Mailbox<int> mb(1);
  ASSERT_TRUE(mb.try_send(1));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.send_for(2, 30ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST(Mailbox, SendForSucceedsOnceAConsumerMakesRoom) {
  ccm::Mailbox<int> mb(1);
  ASSERT_TRUE(mb.try_send(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(mb.receive(), 1);
  });
  EXPECT_TRUE(mb.send_for(2, 5s));  // unblocks well before the deadline
  consumer.join();
  EXPECT_EQ(mb.receive(), 2);
}

TEST(Mailbox, ReceiveForTimesOutEmptyAndDeliversWhenFed) {
  ccm::Mailbox<int> mb;
  EXPECT_EQ(mb.receive_for(20ms), std::nullopt);
  ASSERT_TRUE(mb.try_send(7));
  EXPECT_EQ(mb.receive_for(20ms), 7);
  mb.close();
  EXPECT_EQ(mb.receive_for(20ms), std::nullopt);  // closed and drained
}

// ------------------------------------------------------------- framing ----

net::Envelope make_envelope(std::uint64_t seq, std::size_t payload = 0) {
  net::Envelope env;
  env.msg = proto::Message::barrier(/*from=*/1, /*home=*/0, /*phase=*/3);
  env.seq = seq;
  env.epoch = 42;
  if (payload > 0) {
    std::vector<std::byte> bytes(payload);
    for (std::size_t i = 0; i < payload; ++i) {
      bytes[i] = static_cast<std::byte>(i & 0xFF);
    }
    env.data = net::make_ready_block(std::move(bytes));
  }
  return env;
}

TEST(Frame, HandshakeRoundtripAndRejection) {
  const auto hs = net::encode_handshake(5);
  ASSERT_EQ(hs.size(), net::kHandshakeSize);
  const auto peer = net::decode_handshake(hs);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(*peer, 5);

  auto bad_magic = hs;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_FALSE(net::decode_handshake(bad_magic).has_value());

  auto bad_version = hs;
  bad_version[4] = std::byte{0xEE};
  EXPECT_FALSE(net::decode_handshake(bad_version).has_value());
}

TEST(Frame, RoundtripWithAndWithoutPayload) {
  net::FrameReader reader;
  const auto a = net::encode_frame(make_envelope(9), 1234, true);
  const auto b = net::encode_frame(make_envelope(10, 96), proto::kNoAge,
                                   false);
  ASSERT_TRUE(reader.feed(a));
  ASSERT_TRUE(reader.feed(b));

  auto fa = reader.next();
  ASSERT_TRUE(fa.has_value());
  EXPECT_EQ(fa->env.msg.kind, proto::MsgKind::kBarrier);
  EXPECT_EQ(fa->env.msg.from, 1);
  EXPECT_EQ(fa->env.msg.count, 3u);
  EXPECT_EQ(fa->env.seq, 9u);
  EXPECT_EQ(fa->env.epoch, 42u);
  EXPECT_EQ(fa->env.data, nullptr);
  EXPECT_EQ(fa->sender_age, 1234u);
  EXPECT_TRUE(fa->sender_full);

  auto fb = reader.next();
  ASSERT_TRUE(fb.has_value());
  ASSERT_NE(fb->env.data, nullptr);
  EXPECT_TRUE(fb->env.data->is_ready());  // wire decodes are always ready
  ASSERT_EQ(fb->env.data->bytes.size(), 96u);
  EXPECT_EQ(fb->env.data->bytes[95], std::byte{95});
  EXPECT_EQ(fb->sender_age, proto::kNoAge);
  EXPECT_FALSE(fb->sender_full);

  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.poisoned());
}

TEST(Frame, ReassemblesAcrossArbitraryReadBoundaries) {
  std::vector<std::byte> stream;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    const auto f =
        net::encode_frame(make_envelope(s, (s % 2) ? 33 : 0), s * 10, false);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  // Every chunk size from pathological (1 byte) past the header size.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}}) {
    net::FrameReader reader;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      ASSERT_TRUE(reader.feed({stream.data() + off, n}));
    }
    for (std::uint64_t s = 1; s <= 6; ++s) {
      auto f = reader.next();
      ASSERT_TRUE(f.has_value()) << "chunk=" << chunk << " frame=" << s;
      EXPECT_EQ(f->env.seq, s);
      EXPECT_EQ(f->sender_age, s * 10);
    }
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(Frame, TruncatedFrameIsHeldNotDelivered) {
  const auto f = net::encode_frame(make_envelope(1, 50), 0, false);
  net::FrameReader reader;
  ASSERT_TRUE(reader.feed({f.data(), f.size() - 10}));
  EXPECT_FALSE(reader.next().has_value());  // no partial delivery
  EXPECT_FALSE(reader.poisoned());          // just incomplete, not malformed
  EXPECT_GT(reader.buffered(), 0u);
  ASSERT_TRUE(reader.feed({f.data() + f.size() - 10, 10}));
  EXPECT_TRUE(reader.next().has_value());
}

TEST(Frame, CorruptLengthPrefixPoisons) {
  // Too-short length: below the fixed header size.
  {
    auto f = net::encode_frame(make_envelope(1), 0, false);
    f[0] = std::byte{1};
    f[1] = f[2] = f[3] = std::byte{0};
    net::FrameReader reader;
    EXPECT_FALSE(reader.feed(f));
    EXPECT_TRUE(reader.poisoned());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_FALSE(reader.feed(f));  // stays poisoned
  }
  // Absurd length: past the frame ceiling.
  {
    auto f = net::encode_frame(make_envelope(1), 0, false);
    f[0] = f[1] = f[2] = f[3] = std::byte{0xFF};
    net::FrameReader reader(/*max_frame_bytes=*/1 << 16);
    EXPECT_FALSE(reader.feed(f));
    EXPECT_TRUE(reader.poisoned());
    EXPECT_FALSE(reader.next().has_value());
  }
}

TEST(Frame, PayloadLengthDisagreementPoisons) {
  auto f = net::encode_frame(make_envelope(1, 16), 0, false);
  // payload_len lives at the end of the fixed header: after the u32 length
  // prefix, flags/age/seq/epoch and the proto message.
  const std::size_t payload_len_off = 4 + net::kFrameFixedSize - 4;
  f[payload_len_off] ^= std::byte{0x01};
  net::FrameReader reader;
  EXPECT_FALSE(reader.feed(f));
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Frame, GarbageMessageBytesPoisonWithoutDroppingEarlierFrames) {
  const auto good = net::encode_frame(make_envelope(1), 0, false);
  auto bad = net::encode_frame(make_envelope(2), 0, false);
  for (std::size_t i = 4 + 25; i < 4 + 25 + proto::kWireSize; ++i) {
    bad[i] = std::byte{0xFF};  // trash the proto message bytes
  }
  std::vector<std::byte> stream(good.begin(), good.end());
  stream.insert(stream.end(), bad.begin(), bad.end());
  net::FrameReader reader;
  EXPECT_FALSE(reader.feed(stream));
  // The valid frame ahead of the corruption still comes out; nothing after.
  auto f = reader.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->env.seq, 1u);
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.next().has_value());
}

/// A kDirBatchRequest envelope whose payload is a real encoded batch, the
/// way RemoteDirectory ships one.
net::Envelope make_batch_envelope(std::uint64_t seq, std::size_t items_n) {
  std::vector<proto::DirBatchItem> items;
  for (std::size_t i = 0; i < items_n; ++i) {
    items.push_back({static_cast<proto::DirBatchOp>(i %
                         proto::kDirBatchOpCount),
                     {static_cast<cache::FileId>(i / 4),
                      static_cast<std::uint32_t>(i % 4)},
                     0});
  }
  auto payload = proto::encode_dir_batch_request(2, items);
  net::Envelope env;
  env.msg = proto::Message::dir_batch_request(
      2, 0, static_cast<std::uint32_t>(items.size()), payload.size());
  env.seq = seq;
  env.epoch = 42;
  env.data = net::make_ready_block(std::move(payload));
  return env;
}

TEST(Frame, DirBatchPayloadSurvivesFraming) {
  net::FrameReader reader;
  ASSERT_TRUE(reader.feed(net::encode_frame(make_batch_envelope(5, 9), 0,
                                            false)));
  auto f = reader.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->env.msg.kind, proto::MsgKind::kDirBatchRequest);
  ASSERT_NE(f->env.data, nullptr);
  const auto req = proto::decode_dir_batch_request(f->env.data->bytes);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->node, 2);
  ASSERT_EQ(req->items.size(), 9u);
  EXPECT_EQ(req->items[3].op, proto::DirBatchOp::kValidate);
  EXPECT_EQ(req->items[5].block.file, 1u);
}

// Deterministic seeded fuzz of the reassembler: whatever arrives — bit
// flips, truncation, duplicated chunks, spliced garbage, arbitrary slice
// boundaries — the reader either delivers well-formed frames or poisons the
// stream. It never crashes, never loops, and never delivers past a poison.
// Dir-batch frames ride in the mix: whenever one survives reassembly, its
// payload goes through the strict batch decoder, which must reject or parse
// — never crash — whatever the mutations left behind.
TEST(Frame, SeededFuzzPoisonsButNeverCrashes) {
  sim::Rng rng(20260808);
  std::size_t poisoned_streams = 0;
  std::size_t delivered_frames = 0;
  std::size_t decoded_batches = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::byte> stream;
    const std::size_t frames = 1 + rng.uniform_int(4);
    for (std::size_t i = 0; i < frames; ++i) {
      net::Envelope env;
      if (rng.uniform_int(3) == 0) {
        env = make_batch_envelope(i + 1, 1 + rng.uniform_int(12));
      } else {
        const std::size_t payload =
            rng.uniform_int(3) == 0 ? 1 + rng.uniform_int(64) : 0;
        env = make_envelope(i + 1, payload);
      }
      const auto f = net::encode_frame(env, rng.uniform_int(1000),
                                       rng.uniform_int(2) == 1);
      stream.insert(stream.end(), f.begin(), f.end());
    }
    switch (rng.uniform_int(4)) {
      case 0:  // flip a few bytes anywhere (headers included)
        for (int k = 0; k < 3; ++k) {
          stream[rng.uniform_int(stream.size())] ^=
              static_cast<std::byte>(1 + rng.uniform_int(255));
        }
        break;
      case 1:  // truncate mid-frame
        stream.resize(1 + rng.uniform_int(stream.size()));
        break;
      case 2: {  // duplicate a chunk in place
        const std::size_t at = rng.uniform_int(stream.size());
        const std::size_t len =
            std::min(stream.size() - at,
                     static_cast<std::size_t>(1 + rng.uniform_int(40)));
        const std::vector<std::byte> chunk(
            stream.begin() + static_cast<std::ptrdiff_t>(at),
            stream.begin() + static_cast<std::ptrdiff_t>(at + len));
        stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(at),
                      chunk.begin(), chunk.end());
        break;
      }
      default: {  // splice garbage bytes
        std::vector<std::byte> junk(1 + rng.uniform_int(64));
        for (auto& b : junk) {
          b = static_cast<std::byte>(rng.uniform_int(256));
        }
        const std::size_t at = rng.uniform_int(stream.size() + 1);
        stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(at),
                      junk.begin(), junk.end());
        break;
      }
    }
    net::FrameReader reader;
    std::size_t off = 0;
    bool ok = true;
    while (off < stream.size() && ok) {
      const std::size_t n =
          std::min(stream.size() - off,
                   static_cast<std::size_t>(1 + rng.uniform_int(48)));
      ok = reader.feed(std::span<const std::byte>(stream).subspan(off, n));
      off += n;
      while (auto f = reader.next()) {
        ++delivered_frames;
        if (f->env.msg.kind == proto::MsgKind::kDirBatchRequest &&
            f->env.data != nullptr) {
          // Strict payload decode under fuzz: nullopt or a parse whose item
          // count matches its own header — never a crash or over-read.
          if (const auto req =
                  proto::decode_dir_batch_request(f->env.data->bytes)) {
            ++decoded_batches;
            EXPECT_LE(req->items.size(), proto::kDirBatchMaxItems);
          }
        }
      }
    }
    if (reader.poisoned()) {
      ++poisoned_streams;
      EXPECT_FALSE(reader.feed(stream));          // stays poisoned
      EXPECT_FALSE(reader.next().has_value());    // delivers nothing more
    }
  }
  // The sweep must exercise both outcomes, or it is not testing anything —
  // and some batch payloads must survive intact to prove the decode ran.
  EXPECT_GT(poisoned_streams, 0u);
  EXPECT_GT(delivered_frames, 0u);
  EXPECT_GT(decoded_batches, 0u);
}

// ---------------------------------------------------------- transports ----

/// Serves `transport`'s inbound queue, answering kBarrier with a granted
/// barrier_reply (echoing seq), until the transport closes.
void echo_server(net::Transport& transport, cache::NodeId node) {
  while (auto env = transport.receive(node)) {
    net::Envelope out;
    out.msg = proto::Message::barrier_reply(node, env->msg.from,
                                            env->msg.count, true);
    out.seq = env->seq;
    out.data = env->data;  // bounce any payload back
    transport.post(std::move(out));
  }
}

TEST(InProcTransport, CallRoundtripAndStats) {
  net::InProcTransport t(2);
  std::thread server([&] { echo_server(t, 1); });
  net::Envelope req;
  req.msg = proto::Message::barrier(0, 1, 7);
  const net::Envelope reply = t.call(std::move(req));
  EXPECT_EQ(reply.msg.kind, proto::MsgKind::kBarrierReply);
  EXPECT_EQ(reply.msg.count, 7u);
  EXPECT_EQ(t.stats().rpcs, 1u);
  t.close();
  server.join();
}

TEST(TcpTransport, PairConnectCallAndPayloadRoundtrip) {
  net::TcpConfig c0;
  c0.local_node = 0;
  c0.nodes = 2;
  net::TcpConfig c1 = c0;
  c1.local_node = 1;
  net::TcpTransport t0(c0), t1(c1);
  const std::vector<net::TcpPeer> peers = {{"127.0.0.1", t0.listen_port()},
                                           {"127.0.0.1", t1.listen_port()}};
  std::thread mesh0([&] { t0.connect_peers(peers); });
  t1.connect_peers(peers);
  mesh0.join();
  EXPECT_EQ(t0.connected_peers(), 1u);

  std::thread server([&] { echo_server(t1, 1); });
  net::Envelope req;
  req.msg = proto::Message::barrier(0, 1, 9);
  req.data = net::make_ready_block(
      std::vector<std::byte>(500, std::byte{0xAB}));
  const net::Envelope reply = t0.call(std::move(req));
  EXPECT_EQ(reply.msg.kind, proto::MsgKind::kBarrierReply);
  ASSERT_NE(reply.data, nullptr);
  EXPECT_EQ(reply.data->bytes.size(), 500u);
  EXPECT_EQ(reply.data->bytes[499], std::byte{0xAB});
  EXPECT_GE(t0.stats().bytes_sent, 500u);
  EXPECT_GE(t1.stats().bytes_received, 500u);

  t0.close();
  t1.close();
  server.join();
}

// Regression: an envelope whose payload latch is still closed must not stall
// the connection. The old writer waited wait_ready() inline, so traffic
// queued behind an unready block — including the very storage RPC that
// would fill it — deadlocked the connection.
TEST(TcpTransport, UnreadyPayloadDefersWithoutBlockingLaterTraffic) {
  net::TcpConfig c0;
  c0.local_node = 0;
  c0.nodes = 2;
  net::TcpConfig c1 = c0;
  c1.local_node = 1;
  net::TcpTransport t0(c0), t1(c1);
  const std::vector<net::TcpPeer> peers = {{"127.0.0.1", t0.listen_port()},
                                           {"127.0.0.1", t1.listen_port()}};
  std::thread mesh0([&] { t0.connect_peers(peers); });
  t1.connect_peers(peers);
  mesh0.join();
  std::thread server([&] { echo_server(t1, 1); });

  // Queue a one-way envelope whose payload is NOT ready yet...
  auto slow = std::make_shared<net::BlockData>();
  net::Envelope oneway;
  oneway.msg = proto::Message::barrier(0, 1, 1);
  oneway.data = slow;
  ASSERT_TRUE(t0.post(std::move(oneway)));

  // ...then an RPC behind it. It must complete while `slow` is still shut.
  net::Envelope req;
  req.msg = proto::Message::barrier(0, 1, 2);
  const net::Envelope reply = t0.call(std::move(req));
  EXPECT_EQ(reply.msg.count, 2u);
  EXPECT_FALSE(slow->is_ready());

  // Open the latch; the deferred envelope ships and echoes back.
  {
    std::scoped_lock lock(slow->m);
    slow->bytes.assign(64, std::byte{0x5C});
    slow->ready = true;
  }
  slow->cv.notify_all();
  net::Envelope req2;
  req2.msg = proto::Message::barrier(0, 1, 3);
  (void)t0.call(std::move(req2));  // any later RPC proves the writer lives

  t0.close();
  t1.close();
  server.join();
}

// Regression: a call pending on a connection that dies must fail with a
// transport error as soon as the death is detected — not sit out the full
// 30 s call deadline. The old call() parked the waiter with no wakeup when
// the peer closed (or its stream poisoned) underneath it.
TEST(TcpTransport, PendingCallFailsWhenPeerShutsDown) {
  net::TcpConfig c0;
  c0.local_node = 0;
  c0.nodes = 2;
  net::TcpConfig c1 = c0;
  c1.local_node = 1;
  net::TcpTransport t0(c0), t1(c1);
  const std::vector<net::TcpPeer> peers = {{"127.0.0.1", t0.listen_port()},
                                           {"127.0.0.1", t1.listen_port()}};
  std::thread mesh0([&] { t0.connect_peers(peers); });
  t1.connect_peers(peers);
  mesh0.join();

  // Nobody serves t1's queue; kill it while the call is in flight.
  std::thread killer([&t1] {
    std::this_thread::sleep_for(50ms);
    t1.close();
  });
  const auto t_start = std::chrono::steady_clock::now();
  try {
    net::Envelope req;
    req.msg = proto::Message::barrier(0, 1, 1);
    (void)t0.call(std::move(req));
    FAIL() << "a call into a dying peer must not succeed";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kPeerDown);
    EXPECT_TRUE(e.transient());  // the peer may come back — retryable
  }
  // Failed via connection-death detection, not the 30 s deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - t_start, 10s);
  killer.join();
  t0.close();
}

// An alive-but-silent peer is bounded by the call deadline instead.
TEST(TcpTransport, UnansweredCallTimesOutAndCounts) {
  net::TcpConfig c0;
  c0.local_node = 0;
  c0.nodes = 2;
  c0.call_timeout = 100ms;
  net::TcpConfig c1 = c0;
  c1.local_node = 1;
  net::TcpTransport t0(c0), t1(c1);
  const std::vector<net::TcpPeer> peers = {{"127.0.0.1", t0.listen_port()},
                                           {"127.0.0.1", t1.listen_port()}};
  std::thread mesh0([&] { t0.connect_peers(peers); });
  t1.connect_peers(peers);
  mesh0.join();

  // t1 accepts the request but never answers it.
  try {
    net::Envelope req;
    req.msg = proto::Message::barrier(0, 1, 1);
    (void)t0.call(std::move(req));
    FAIL() << "an unanswered call must time out";
  } catch (const net::TransportError& e) {
    EXPECT_EQ(e.kind(), net::TransportError::Kind::kTimeout);
  }
  EXPECT_EQ(t0.stats().rpc_timeouts, 1u);
  t0.close();
  t1.close();
}

// ------------------------------------ cluster equality across runtimes ----

std::vector<std::byte> fill_pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

constexpr std::size_t kEqNodes = 3;
constexpr std::size_t kEqFiles = 12;
constexpr std::uint32_t kEqBlockBytes = 1024;
constexpr std::uint32_t kEqFileBlocks = 2;
constexpr std::uint32_t kEqFileBytes = kEqBlockBytes * kEqFileBlocks;
constexpr int kEqIters = 120;

ccm::CcmConfig equality_config() {
  ccm::CcmConfig cfg;
  cfg.nodes = kEqNodes;
  cfg.block_bytes = kEqBlockBytes;
  cfg.capacity_bytes = 8 * kEqBlockBytes;
  cfg.workers_per_node = 2;
  return cfg;
}

/// Driver `d` pinned to node `d`: mixed ops whose write targets are
/// partitioned per driver, so final storage bytes depend only on the RNG
/// streams (same determinism argument as bench/ccm_workload.hpp).
void equality_driver(ccm::CcmCluster& cluster, std::size_t d) {
  sim::Rng rng(7000 + d);
  const auto via = static_cast<cache::NodeId>(d);
  for (int i = 0; i < kEqIters; ++i) {
    const auto f = static_cast<cache::FileId>(rng.uniform_int(kEqFiles));
    const auto roll = rng.uniform_int(100);
    if (roll < 30) {
      constexpr std::size_t kPerDriver = kEqFiles / kEqNodes;
      const auto wf =
          static_cast<cache::FileId>((f % kPerDriver) * kEqNodes + d);
      const std::uint64_t off =
          rng.uniform_int(kEqFileBlocks) * kEqBlockBytes;
      cluster.write(via, wf, off,
                    fill_pattern(kEqBlockBytes,
                                 static_cast<std::uint8_t>(f + i)));
    } else if (roll < 34) {
      cluster.invalidate(f);
    } else {
      cluster.read(via, f);
    }
  }
}

std::vector<std::byte> storage_bytes(const ccm::Storage& storage) {
  std::vector<std::byte> all;
  for (std::size_t f = 0; f < storage.file_count(); ++f) {
    const auto file = static_cast<cache::FileId>(f);
    std::vector<std::byte> buf(storage.file_size(file));
    storage.read(file, 0, buf);
    all.insert(all.end(), buf.begin(), buf.end());
  }
  return all;
}

void seed_all(ccm::CcmCluster& cluster) {
  for (std::size_t f = 0; f < kEqFiles; ++f) {
    cluster.write(0, static_cast<cache::FileId>(f), 0,
                  fill_pattern(kEqFileBytes, static_cast<std::uint8_t>(f)));
  }
}

TEST(ClusterOverTcp, StorageBytesMatchInProcessRun) {
  // Reference: the whole cluster in-process on the InProcTransport.
  std::vector<std::byte> expected;
  {
    auto storage = std::make_shared<ccm::BufferStorage>(
        std::vector<std::uint32_t>(kEqFiles, kEqFileBytes));
    ccm::CcmCluster cluster(equality_config(), storage);
    seed_all(cluster);
    std::vector<std::thread> drivers;
    for (std::size_t d = 0; d < kEqNodes; ++d) {
      drivers.emplace_back([&, d] { equality_driver(cluster, d); });
    }
    for (auto& t : drivers) t.join();
    expected = storage_bytes(*storage);
  }

  // Same workload on three TCP transports, one hosted node each (the
  // loopback-cluster topology, minus the process boundaries).
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::vector<net::TcpPeer> peers;
  for (std::size_t n = 0; n < kEqNodes; ++n) {
    net::TcpConfig tc;
    tc.local_node = static_cast<cache::NodeId>(n);
    tc.nodes = kEqNodes;
    transports.push_back(std::make_unique<net::TcpTransport>(tc));
    peers.push_back({"127.0.0.1", transports.back()->listen_port()});
  }
  {
    std::vector<std::thread> mesh;
    for (auto& t : transports) {
      mesh.emplace_back([&peers, &t] { t->connect_peers(peers); });
    }
    for (auto& t : mesh) t.join();
  }

  auto home_storage = std::make_shared<ccm::BufferStorage>(
      std::vector<std::uint32_t>(kEqFiles, kEqFileBytes));
  std::vector<std::unique_ptr<ccm::CcmCluster>> clusters(kEqNodes);
  for (std::size_t n = 0; n < kEqNodes; ++n) {
    const auto node = static_cast<cache::NodeId>(n);
    std::shared_ptr<net::Transport> transport(transports[n].get(),
                                              [](net::Transport*) {});
    ccm::CcmHosting hosting;
    hosting.transport = transport;
    hosting.local_nodes = {node};
    hosting.home = 0;
    std::shared_ptr<ccm::Storage> storage;
    if (n == 0) {
      storage = home_storage;
    } else {
      storage = std::make_shared<ccm::RemoteStorage>(
          transport, node, 0,
          std::vector<std::uint32_t>(kEqFiles, kEqFileBytes));
      hosting.directory =
          std::make_shared<ccm::RemoteDirectory>(transport, node, 0);
    }
    clusters[n] = std::make_unique<ccm::CcmCluster>(equality_config(),
                                                    storage, hosting);
  }

  seed_all(*clusters[0]);
  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < kEqNodes; ++d) {
    drivers.emplace_back([&, d] {
      const auto node = static_cast<cache::NodeId>(d);
      clusters[d]->barrier(node, 0);
      equality_driver(*clusters[d], d);
      clusters[d]->barrier(node, 1);
    });
  }
  for (auto& t : drivers) t.join();

  // Peers down first (their shutdown RPCs need home alive), then home.
  clusters[2].reset();
  clusters[1].reset();
  clusters[0].reset();

  EXPECT_EQ(storage_bytes(*home_storage), expected);

  // The zero-copy contract: every payload left each node as an iovec over
  // the shared BlockData — nothing was staged through an intermediate copy.
  for (std::size_t n = 0; n < kEqNodes; ++n) {
    EXPECT_EQ(transports[n]->stats().payload_copies, 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace coop
