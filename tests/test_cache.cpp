// Tests for the caching building blocks: types, LruList, NodeCache, and the
// two directory implementations.
#include <gtest/gtest.h>

#include "cache/directory.hpp"
#include "cache/lru.hpp"
#include "cache/node_cache.hpp"
#include "cache/types.hpp"

namespace coop::cache {
namespace {

// ---------------------------------------------------------------- Types ---

TEST(Types, BlocksFor) {
  EXPECT_EQ(blocks_for(0, 8192), 1u);
  EXPECT_EQ(blocks_for(1, 8192), 1u);
  EXPECT_EQ(blocks_for(8192, 8192), 1u);
  EXPECT_EQ(blocks_for(8193, 8192), 2u);
  EXPECT_EQ(blocks_for(65536, 8192), 8u);
}

TEST(Types, BlockIdOrderingAndEquality) {
  const BlockId a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (BlockId{1, 0}));
}

TEST(Types, BlockIdHashSpreads) {
  BlockIdHash h;
  EXPECT_NE(h(BlockId{1, 0}), h(BlockId{0, 1}));
  EXPECT_NE(h(BlockId{1, 2}), h(BlockId{2, 1}));
}

TEST(Types, LogicalClockMonotone) {
  LogicalClock c;
  const auto a = c.next();
  const auto b = c.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(c.now(), b);
}

// ------------------------------------------------------------- LruList ---

TEST(LruList, InsertAndOldest) {
  LruList l;
  l.insert(BlockId{1, 0}, 10);
  l.insert(BlockId{1, 1}, 20);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.oldest_age(), 10u);
  EXPECT_EQ(l.oldest().block, (BlockId{1, 0}));
}

TEST(LruList, InsertWithOldAgeKeepsOrder) {
  LruList l;
  l.insert(BlockId{1, 0}, 10);
  l.insert(BlockId{1, 1}, 30);
  l.insert(BlockId{1, 2}, 20);  // forwarded block with an intermediate age
  EXPECT_EQ(l.pop_oldest().age, 10u);
  EXPECT_EQ(l.pop_oldest().age, 20u);
  EXPECT_EQ(l.pop_oldest().age, 30u);
}

TEST(LruList, InsertOlderThanEverything) {
  LruList l;
  l.insert(BlockId{1, 1}, 50);
  l.insert(BlockId{1, 0}, 5);
  EXPECT_EQ(l.oldest_age(), 5u);
}

TEST(LruList, TouchMovesToYoungest) {
  LruList l;
  l.insert(BlockId{1, 0}, 10);
  l.insert(BlockId{1, 1}, 20);
  l.touch(BlockId{1, 0}, 30);
  EXPECT_EQ(l.oldest().block, (BlockId{1, 1}));
  EXPECT_EQ(l.age_of(BlockId{1, 0}), 30u);
}

TEST(LruList, EraseAndContains) {
  LruList l;
  l.insert(BlockId{1, 0}, 10);
  EXPECT_TRUE(l.contains(BlockId{1, 0}));
  EXPECT_TRUE(l.erase(BlockId{1, 0}));
  EXPECT_FALSE(l.contains(BlockId{1, 0}));
  EXPECT_FALSE(l.erase(BlockId{1, 0}));
  EXPECT_TRUE(l.empty());
}

TEST(LruList, PopOldestRemoves) {
  LruList l;
  l.insert(BlockId{1, 0}, 10);
  l.insert(BlockId{1, 1}, 20);
  const auto e = l.pop_oldest();
  EXPECT_EQ(e.block, (BlockId{1, 0}));
  EXPECT_EQ(l.size(), 1u);
  EXPECT_FALSE(l.contains(BlockId{1, 0}));
}

TEST(LruList, IterationIsAgeOrdered) {
  LruList l;
  l.insert(BlockId{0, 3}, 3);
  l.insert(BlockId{0, 1}, 1);
  l.insert(BlockId{0, 2}, 2);
  std::uint64_t prev = 0;
  for (const auto& e : l) {
    EXPECT_GE(e.age, prev);
    prev = e.age;
  }
}

// ----------------------------------------------------------- NodeCache ---

TEST(NodeCache, CapacityInBlocks) {
  const NodeCache c(10 * 8192, 8192);
  EXPECT_EQ(c.capacity_blocks(), 10u);
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.full());
}

TEST(NodeCache, AtLeastOneBlockOfCapacity) {
  const NodeCache c(100, 8192);  // less than one block
  EXPECT_EQ(c.capacity_blocks(), 1u);
}

TEST(NodeCache, InsertContainsMasterFlag) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  c.insert(BlockId{1, 1}, false, 2);
  EXPECT_TRUE(c.contains(BlockId{1, 0}));
  EXPECT_TRUE(c.is_master(BlockId{1, 0}));
  EXPECT_FALSE(c.is_master(BlockId{1, 1}));
  EXPECT_EQ(c.master_count(), 1u);
  EXPECT_EQ(c.copy_count(), 1u);
  EXPECT_EQ(c.used_blocks(), 2u);
}

TEST(NodeCache, OldestAcrossBothLists) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 5);
  c.insert(BlockId{1, 1}, false, 3);
  ASSERT_TRUE(c.oldest_age().has_value());
  EXPECT_EQ(*c.oldest_age(), 3u);
  EXPECT_FALSE(c.oldest_is_master());
  EXPECT_EQ(c.oldest()->block, (BlockId{1, 1}));
}

TEST(NodeCache, OldestCopyIgnoresMasters) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  EXPECT_FALSE(c.oldest_copy().has_value());
  c.insert(BlockId{1, 1}, false, 9);
  ASSERT_TRUE(c.oldest_copy().has_value());
  EXPECT_EQ(c.oldest_copy()->block, (BlockId{1, 1}));
}

TEST(NodeCache, EraseReportsMastership) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  c.insert(BlockId{1, 1}, false, 2);
  EXPECT_TRUE(c.erase(BlockId{1, 0}));
  EXPECT_FALSE(c.erase(BlockId{1, 1}));
  EXPECT_TRUE(c.empty());
}

TEST(NodeCache, TouchRefreshesAge) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  c.insert(BlockId{1, 1}, false, 2);
  c.touch(BlockId{1, 0}, 10);
  EXPECT_EQ(c.oldest()->block, (BlockId{1, 1}));
}

TEST(NodeCache, PromoteToMasterKeepsAge) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, false, 7);
  c.promote_to_master(BlockId{1, 0});
  EXPECT_TRUE(c.is_master(BlockId{1, 0}));
  EXPECT_EQ(c.masters().age_of(BlockId{1, 0}), 7u);
  EXPECT_EQ(c.copy_count(), 0u);
}

TEST(NodeCache, FullDetection) {
  NodeCache c(2 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  EXPECT_FALSE(c.full());
  c.insert(BlockId{1, 1}, true, 2);
  EXPECT_TRUE(c.full());
}

TEST(NodeCache, WideEntriesAccountSlots) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1, /*slots=*/3);
  EXPECT_EQ(c.used_blocks(), 3u);
  EXPECT_EQ(c.entry_count(), 1u);
  EXPECT_EQ(c.slots_of(BlockId{1, 0}), 3u);
  EXPECT_FALSE(c.full());
  EXPECT_TRUE(c.lacks_room_for(6));
  EXPECT_FALSE(c.lacks_room_for(5));
  c.insert(BlockId{2, 0}, false, 2, /*slots=*/5);
  EXPECT_TRUE(c.full());
  c.erase(BlockId{1, 0});
  EXPECT_EQ(c.used_blocks(), 5u);
  EXPECT_EQ(c.slots_of(BlockId{2, 0}), 5u);
}

TEST(NodeCache, DefaultEntriesAreOneSlot) {
  NodeCache c(4 * 8192, 8192);
  c.insert(BlockId{1, 0}, true, 1);
  EXPECT_EQ(c.slots_of(BlockId{1, 0}), 1u);
  EXPECT_EQ(c.used_blocks(), 1u);
}

TEST(NodeCache, PromotionPreservesSlotFootprint) {
  NodeCache c(8 * 8192, 8192);
  c.insert(BlockId{1, 0}, false, 1, /*slots=*/4);
  c.promote_to_master(BlockId{1, 0});
  EXPECT_EQ(c.slots_of(BlockId{1, 0}), 4u);
  EXPECT_EQ(c.used_blocks(), 4u);
  c.demote_to_copy(BlockId{1, 0});
  EXPECT_EQ(c.slots_of(BlockId{1, 0}), 4u);
  EXPECT_EQ(c.used_blocks(), 4u);
}

// ---------------------------------------------------- PerfectDirectory ---

TEST(PerfectDirectory, LookupSetErase) {
  PerfectDirectory d;
  EXPECT_EQ(d.lookup(BlockId{1, 0}), kInvalidNode);
  EXPECT_FALSE(d.has_master(BlockId{1, 0}));
  d.set_master(BlockId{1, 0}, 3);
  EXPECT_EQ(d.lookup(BlockId{1, 0}), 3);
  EXPECT_TRUE(d.has_master(BlockId{1, 0}));
  d.set_master(BlockId{1, 0}, 5);  // relocation overwrites
  EXPECT_EQ(d.lookup(BlockId{1, 0}), 5);
  d.erase_master(BlockId{1, 0});
  EXPECT_EQ(d.lookup(BlockId{1, 0}), kInvalidNode);
  EXPECT_EQ(d.size(), 0u);
}

// ----------------------------------------------------- HintedDirectory ---

TEST(HintedDirectory, PlacementInformsPlacerAndHolder) {
  HintedDirectory d(4, /*staleness_lag=*/10);
  d.set_master(BlockId{1, 0}, /*n=*/2, /*observer=*/0);
  EXPECT_EQ(d.lookup(0, BlockId{1, 0}), 2);
  EXPECT_EQ(d.lookup(2, BlockId{1, 0}), 2);
  // Node 3 was not involved and has no hint.
  EXPECT_EQ(d.lookup(3, BlockId{1, 0}), kInvalidNode);
  EXPECT_EQ(d.truth(BlockId{1, 0}), 2);
}

TEST(HintedDirectory, StaleHintAfterRelocation) {
  HintedDirectory d(4, /*staleness_lag=*/10);
  d.set_master(BlockId{1, 0}, 2, 0);
  d.refresh(3, BlockId{1, 0});  // node 3 learns the truth
  d.set_master(BlockId{1, 0}, 1, 2);  // master moves 2 -> 1
  EXPECT_EQ(d.lookup(3, BlockId{1, 0}), 2);  // stale
  EXPECT_EQ(d.truth(BlockId{1, 0}), 1);
  d.refresh(3, BlockId{1, 0});
  EXPECT_EQ(d.lookup(3, BlockId{1, 0}), 1);
}

TEST(HintedDirectory, BroadcastAfterLagExceeded) {
  HintedDirectory d(3, /*staleness_lag=*/1);
  d.set_master(BlockId{1, 0}, 0, 0);  // version 1
  d.set_master(BlockId{1, 0}, 1, 0);  // version 2: lag 2 > 1 -> broadcast
  EXPECT_EQ(d.lookup(2, BlockId{1, 0}), 1);  // bystander was refreshed
}

TEST(HintedDirectory, AccuracyTracksCorrectLookups) {
  HintedDirectory d(2, /*staleness_lag=*/100);
  d.set_master(BlockId{1, 0}, 0, 0);
  (void)d.lookup(0, BlockId{1, 0});  // correct
  (void)d.lookup(1, BlockId{1, 0});  // no hint: incorrect
  EXPECT_NEAR(d.accuracy(), 0.5, 1e-12);
  EXPECT_EQ(d.lookups(), 2u);
}

TEST(HintedDirectory, EraseLeavesDanglingHintsForOthers) {
  HintedDirectory d(3, /*staleness_lag=*/100);
  d.set_master(BlockId{1, 0}, 1, 0);
  d.erase_master(BlockId{1, 0}, 1);
  EXPECT_EQ(d.truth(BlockId{1, 0}), kInvalidNode);
  EXPECT_EQ(d.lookup(0, BlockId{1, 0}), 1);  // node 0 still believes node 1
  d.refresh(0, BlockId{1, 0});
  EXPECT_EQ(d.lookup(0, BlockId{1, 0}), kInvalidNode);
}

}  // namespace
}  // namespace coop::cache
