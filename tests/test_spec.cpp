// Tests for the experiment registry and the shared driver: lookups, CSV
// byte-identity across thread counts, and the JSON run report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/spec.hpp"

namespace coop::harness {
namespace {

int drive(const std::string& name, const std::vector<std::string>& extra) {
  std::vector<std::string> args{"test_spec"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return run_experiment(name, static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Registry, ContainsEveryFigureAndAblation) {
  const auto& specs = all_experiments();
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), specs.size()) << "duplicate names";
  for (const char* expected :
       {"fig2_throughput", "fig3_normalized", "fig4_hitrates",
        "fig5_response_time", "fig6a_utilization", "fig6b_scalability",
        "ablation_blocksize", "ablation_directory", "ablation_handoff",
        "ablation_scheduler", "ablation_hotspot", "ablation_wholefile",
        "ablation_hardware"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Registry, FindExperimentByName) {
  const auto* spec = find_experiment("fig2_throughput");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "fig2_throughput");
  EXPECT_EQ(find_experiment("no_such_experiment"), nullptr);
}

TEST(Driver, UnknownNameReturnsError) {
  EXPECT_EQ(drive("no_such_experiment", {"--quiet"}), 2);
}

TEST(Driver, CsvIsByteIdenticalAcrossThreadCounts) {
  const std::string serial_path = testing::TempDir() + "spec_serial.csv";
  const std::string parallel_path = testing::TempDir() + "spec_parallel.csv";
  ASSERT_EQ(drive("ablation_handoff",
                  {"--requests=2000", "--quiet", "--threads=1",
                   "--csv=" + serial_path}),
            0);
  ASSERT_EQ(drive("ablation_handoff",
                  {"--requests=2000", "--quiet", "--threads=4",
                   "--csv=" + parallel_path}),
            0);
  const std::string serial = slurp(serial_path);
  const std::string parallel = slurp(parallel_path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("variant,throughput_rps"), std::string::npos)
      << serial;
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST(Driver, JsonRunReportCarriesPerCellMetadata) {
  const std::string path = testing::TempDir() + "spec_report.json";
  ASSERT_EQ(drive("ablation_handoff",
                  {"--requests=2000", "--quiet", "--json=" + path}),
            0);
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  for (const char* needle :
       {"\"experiment\":\"ablation_handoff\"", "\"trace\":\"calgary\"",
        "\"trace_seed\"", "\"config_hash\"", "\"wall_ms\"",
        "\"throughput_rps\"", "\"handoffs\"", "\"total_wall_ms\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  std::remove(path.c_str());
}

TEST(Driver, MemFlagOverridesTheMemoryAxis) {
  const std::string path = testing::TempDir() + "spec_mem.csv";
  ASSERT_EQ(drive("ablation_scheduler",
                  {"--requests=2000", "--quiet", "--mem-mb=8",
                   "--csv=" + path}),
            0);
  const std::string csv = slurp(path);
  // Four variants => header + 4 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace coop::harness
