// ccm-lint engine tests: every rule must catch its seeded violation, the
// taint machinery must see through aliases / containers-of / auto bindings,
// and both suppression mechanisms (file entries and inline allows) must work.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using ccmlint::Finding;
using ccmlint::lint;
using ccmlint::parse_suppressions;
using ccmlint::Result;
using ccmlint::SourceFile;
using ccmlint::strip_code;
using ccmlint::Suppression;

Result lint_one(const std::string& path, const std::string& content) {
  std::vector<Suppression> none;
  return lint({{path, content}}, none);
}

std::vector<const Finding*> findings_for_rule(const Result& r,
                                              const std::string& rule) {
  std::vector<const Finding*> out;
  for (const auto& f : r.findings) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

// ----------------------------------------------------------- strip_code ---

TEST(StripCode, RemovesCommentsAndStringsPreservingLines) {
  const std::string src =
      "int a; // rand() in comment\n"
      "const char* s = \"rand() in string\";\n"
      "/* rand() in\n"
      "   block comment */ int b;\n";
  const std::string out = strip_code(src);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCode, HandlesRawStringsAndCharLiterals) {
  const std::string src =
      "auto r = R\"(time() \" still a string)\";\n"
      "char c = ':'; int after = 1;\n";
  const std::string out = strip_code(src);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

// -------------------------------------------------------- unordered-iter ---

TEST(LintRules, CatchesRangeForOverUnorderedMember) {
  const auto r = lint_one("src/x.cpp",
                          "#include <unordered_map>\n"
                          "std::unordered_map<int, int> counts_;\n"
                          "int sum() {\n"
                          "  int s = 0;\n"
                          "  for (const auto& [k, v] : counts_) s += v;\n"
                          "  return s;\n"
                          "}\n");
  const auto hits = findings_for_rule(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 5u);
  EXPECT_EQ(hits[0]->token, "counts_");
}

TEST(LintRules, CatchesIterationThroughAliasAndContainerOf) {
  // Mirrors ccm/cluster.hpp: using Store = unordered_map, vector<Store>,
  // auto& binding — the taint must survive all three hops.
  const auto r = lint_one("src/x.cpp",
                          "using Store = std::unordered_map<int, int>;\n"
                          "std::vector<Store> stores_;\n"
                          "void f(int n) {\n"
                          "  auto& store = stores_[n];\n"
                          "  for (const auto& [k, v] : store) {}\n"
                          "}\n");
  const auto hits = findings_for_rule(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 5u);
  EXPECT_EQ(hits[0]->token, "store");
}

TEST(LintRules, CatchesExplicitBeginWalk) {
  const auto r = lint_one("src/x.cpp",
                          "std::unordered_set<int> seen_;\n"
                          "int f() { return *seen_.begin(); }\n");
  const auto hits = findings_for_rule(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->token, "seen_");
}

TEST(LintRules, HeaderMemberTaintsIterationInOtherFile) {
  std::vector<Suppression> none;
  const auto r = lint(
      {{"src/cache/thing.hpp", "std::unordered_map<int, int> index_;\n"},
       {"src/cache/thing.cpp", "void f() { for (auto& [k, v] : index_) {} }\n"}},
      none);
  ASSERT_EQ(findings_for_rule(r, "unordered-iter").size(), 1u);
  EXPECT_EQ(r.findings[0].path, "src/cache/thing.cpp");
}

TEST(LintRules, CppLocalsDoNotTaintOtherFiles) {
  // A test-local `r` in one file must not flag iteration over an ordinary
  // struct named `r` elsewhere (this was a real false-positive class).
  std::vector<Suppression> none;
  const auto r = lint(
      {{"tests/a.cpp", "void f() { std::unordered_map<int, int> m; }\n"},
       {"tests/b.cpp",
        "struct R { std::vector<int> v; };\n"
        "void g() { R m; for (int x : m.v) {} }\n"}},
      none);
  EXPECT_TRUE(findings_for_rule(r, "unordered-iter").empty());
}

TEST(LintRules, FunctionReturningUnorderedTaintsItsResults) {
  // A helper returning an unordered map *by value* taints the helper's name:
  // both an auto binding of the result and direct iteration over a call
  // expression are unordered walks.
  std::vector<Suppression> none;
  const auto r = lint(
      {{"src/cache/helpers.hpp",
        "std::unordered_map<int, int> make_index();\n"},
       {"src/cache/user.cpp",
        "void f() {\n"
        "  auto idx = make_index();\n"
        "  for (auto& [k, v] : idx) {}\n"
        "}\n"
        "void g() { for (auto& [k, v] : make_index()) {} }\n"}},
      none);
  const auto hits = findings_for_rule(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->token, "idx");
  EXPECT_EQ(hits[1]->token, "make_index");
}

TEST(LintRules, FunctionReturningOrderedStaysClean) {
  std::vector<Suppression> none;
  const auto r = lint(
      {{"src/cache/helpers.hpp", "std::map<int, int> make_index();\n"},
       {"src/cache/user.cpp",
        "void f() { auto idx = make_index(); for (auto& [k, v] : idx) {} }\n"}},
      none);
  EXPECT_TRUE(findings_for_rule(r, "unordered-iter").empty());
}

TEST(LintRules, OrderedContainersAreClean) {
  const auto r = lint_one("src/x.cpp",
                          "std::map<int, int> counts_;\n"
                          "void f() { for (auto& [k, v] : counts_) {} }\n");
  EXPECT_TRUE(findings_for_rule(r, "unordered-iter").empty());
}

// ------------------------------------------------------------ raw-random ---

TEST(LintRules, CatchesRawRandAndStdEngines) {
  const auto r = lint_one("src/x.cpp",
                          "int f() { return rand() % 6; }\n"
                          "std::mt19937 gen_;\n");
  const auto hits = findings_for_rule(r, "raw-random");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->token, "rand");
  EXPECT_EQ(hits[1]->token, "mt19937");
}

TEST(LintRules, RngModuleIsExemptAndMembersDontTrip) {
  // src/sim/random.* implements the sanctioned Rng — exempt. A member
  // *call* named rand (rng.rand()) is not the libc symbol.
  const auto exempt =
      lint_one("src/sim/random.cpp", "int f() { return rand(); }\n");
  EXPECT_TRUE(findings_for_rule(exempt, "raw-random").empty());
  const auto member =
      lint_one("src/x.cpp", "int f(Rng& rng) { return rng.rand(); }\n");
  EXPECT_TRUE(findings_for_rule(member, "raw-random").empty());
}

// ------------------------------------------------------------ wall-clock ---

TEST(LintRules, CatchesClockReads) {
  const auto r = lint_one(
      "src/x.cpp",
      "auto t0 = std::chrono::steady_clock::now();\n"
      "long stamp() { return time(nullptr); }\n");
  const auto hits = findings_for_rule(r, "wall-clock");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->token, "steady_clock");
  EXPECT_EQ(hits[1]->token, "time");
}

TEST(LintRules, SimTimeMethodsAreNotWallClock) {
  const auto r = lint_one("src/x.cpp",
                          "double f(const Engine& e) { return e.time(); }\n");
  EXPECT_TRUE(findings_for_rule(r, "wall-clock").empty());
}

// ---------------------------------------------------- fp-accum-unordered ---

TEST(LintRules, CatchesFloatAccumulationInUnorderedLoop) {
  const auto r = lint_one("src/x.cpp",
                          "std::unordered_map<int, double> weights_;\n"
                          "double total() {\n"
                          "  double sum = 0.0;\n"
                          "  for (const auto& [k, w] : weights_) {\n"
                          "    sum += w;\n"
                          "  }\n"
                          "  return sum;\n"
                          "}\n");
  const auto hits = findings_for_rule(r, "fp-accum-unordered");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 5u);
  EXPECT_EQ(hits[0]->token, "sum");
}

TEST(LintRules, IntegerAccumulationInUnorderedLoopOnlyFlagsIteration) {
  // Integer sums are order-independent: unordered-iter still fires (the
  // loop may feed ordered output) but fp-accum must not.
  const auto r = lint_one("src/x.cpp",
                          "std::unordered_map<int, int> counts_;\n"
                          "int total() {\n"
                          "  int sum = 0;\n"
                          "  for (const auto& [k, v] : counts_) sum += v;\n"
                          "  return sum;\n"
                          "}\n");
  EXPECT_TRUE(findings_for_rule(r, "fp-accum-unordered").empty());
  EXPECT_EQ(findings_for_rule(r, "unordered-iter").size(), 1u);
}

// ---------------------------------------------------------- cout-library ---

TEST(LintRules, CatchesCoutInLibraryButNotInToolsOrTests) {
  const auto lib =
      lint_one("src/cache/lru.cpp", "void f() { std::cout << 1; }\n");
  ASSERT_EQ(findings_for_rule(lib, "cout-library").size(), 1u);
  const auto tool =
      lint_one("tools/lint/main.cpp", "void f() { std::cout << 1; }\n");
  EXPECT_TRUE(findings_for_rule(tool, "cout-library").empty());
  const auto test =
      lint_one("tests/t.cpp", "void f() { std::cout << 1; }\n");
  EXPECT_TRUE(findings_for_rule(test, "cout-library").empty());
}

// ------------------------------------------------------ cout-library fix ---

TEST(Fixer, RewritesCoutToReportSinkAndInsertsInclude) {
  const std::string src =
      "#include <iostream>\n"
      "void f(int x) { std::cout << x; }\n"
      "void g(int y) { cout << y; }\n";
  const auto r = lint_one("src/x.cpp", src);
  const auto fr = ccmlint::fix_cout_library({"src/x.cpp", src}, r.findings);
  EXPECT_EQ(fr.rewrites, 2u);
  EXPECT_EQ(fr.unfixable, 0u);
  EXPECT_NE(fr.content.find("#include \"util/report_sink.hpp\""),
            std::string::npos);
  EXPECT_NE(fr.content.find("void f(int x) { coop::util::report_out() << x; }"),
            std::string::npos);
  EXPECT_NE(fr.content.find("void g(int y) { coop::util::report_out() << y; }"),
            std::string::npos);
  EXPECT_EQ(fr.content.find("cout"), std::string::npos);
}

TEST(Fixer, FixedContentLintsCleanAndRefixIsNoOp) {
  const std::string src =
      "#include <iostream>\n"
      "void f(int x) { std::cout << x; }\n";
  const auto r1 = lint_one("src/x.cpp", src);
  const auto fix1 = ccmlint::fix_cout_library({"src/x.cpp", src}, r1.findings);
  ASSERT_EQ(fix1.rewrites, 1u);
  const auto r2 = lint_one("src/x.cpp", fix1.content);
  EXPECT_TRUE(findings_for_rule(r2, "cout-library").empty());
  const auto fix2 =
      ccmlint::fix_cout_library({"src/x.cpp", fix1.content}, r2.findings);
  EXPECT_EQ(fix2.rewrites, 0u);
  EXPECT_EQ(fix2.content, fix1.content);
}

TEST(Fixer, PrintfAndUsingDeclarationAreReportedUnfixable) {
  const std::string src =
      "#include <cstdio>\n"
      "using std::cout;\n"
      "void f() { printf(\"x\"); }\n"
      "void g() { cout << 1; }\n";
  const auto r = lint_one("src/x.cpp", src);
  const auto fr = ccmlint::fix_cout_library({"src/x.cpp", src}, r.findings);
  // The using-declaration and printf stay; the bare `cout <<` use is fixed.
  EXPECT_EQ(fr.rewrites, 1u);
  EXPECT_EQ(fr.unfixable, 2u);
  EXPECT_NE(fr.content.find("using std::cout;"), std::string::npos);
  EXPECT_NE(fr.content.find("printf(\"x\");"), std::string::npos);
  EXPECT_NE(fr.content.find("coop::util::report_out() << 1;"),
            std::string::npos);
}

TEST(Fixer, SuppressedFindingsAreNotRewritten) {
  std::vector<std::string> errors;
  auto supp = parse_suppressions(
      "src/x.cpp cout-library cout  # audited output sink\n", errors);
  ASSERT_TRUE(errors.empty());
  const std::string src = "void f() { std::cout << 1; }\n";
  const auto r = lint({{"src/x.cpp", src}}, supp);
  const auto fr = ccmlint::fix_cout_library({"src/x.cpp", src}, r.findings);
  EXPECT_EQ(fr.rewrites, 0u);
  EXPECT_EQ(fr.content, src);
}

// --------------------------------------------------- blocking-under-lock ---

TEST(LintRules, CatchesMailboxWaitUnderLockGuard) {
  const auto r = lint_one("src/ccm/x.cpp",
                          "void f() {\n"
                          "  std::scoped_lock lock(mu_);\n"
                          "  box_.send(item);\n"
                          "}\n");
  const auto hits = findings_for_rule(r, "blocking-under-lock");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 3u);
  EXPECT_EQ(hits[0]->token, "send");
}

TEST(LintRules, CatchesRpcSleepAndStorageIoUnderGuard) {
  const auto r = lint_one(
      "src/ccm/x.cpp",
      "void f() {\n"
      "  util::UniqueLock lock(sh.mu);\n"
      "  rpc(msg);\n"
      "  std::this_thread::sleep_for(d);\n"
      "  storage_->read(file, off, out);\n"
      "}\n");
  const auto hits = findings_for_rule(r, "blocking-under-lock");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0]->token, "rpc");
  EXPECT_EQ(hits[1]->token, "sleep_for");
  EXPECT_EQ(hits[2]->token, "read");
}

TEST(LintRules, UnlockSuspendsTheGuardScopeUntilRelock) {
  // The make_room_locked hand-off: rpc between unlock() and lock() is the
  // sanctioned pattern; the same call after re-acquisition is a finding.
  const auto r = lint_one("src/ccm/x.cpp",
                          "void f() {\n"
                          "  util::UniqueLock lock(sh.mu);\n"
                          "  lock.unlock();\n"
                          "  rpc(msg);\n"
                          "  lock.lock();\n"
                          "  rpc(again);\n"
                          "}\n");
  const auto hits = findings_for_rule(r, "blocking-under-lock");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 6u);
}

TEST(LintRules, BlockingOutsideGuardScopeAndReferenceParamsAreClean) {
  // The wait after the guard's enclosing block, and a guard *reference*
  // parameter (no construction), must not open a scope.
  const auto r = lint_one(
      "src/ccm/x.cpp",
      "void f(util::UniqueLock<util::CountingMutex>& lock) { rpc(msg); }\n"
      "void g() {\n"
      "  { std::scoped_lock lock(mu_); ++count_; }\n"
      "  box_.receive();\n"
      "}\n");
  EXPECT_TRUE(findings_for_rule(r, "blocking-under-lock").empty());
}

TEST(LintRules, BlockingUnderLockOnlyAppliesToSrc) {
  const auto r = lint_one("tests/t.cpp",
                          "void f() {\n"
                          "  std::scoped_lock lock(mu_);\n"
                          "  box_.send(item);\n"
                          "}\n");
  EXPECT_TRUE(findings_for_rule(r, "blocking-under-lock").empty());
}

TEST(LintRules, BlockingUnderLockHonorsInlineAllowAndSuppressions) {
  const auto inline_allowed = lint_one(
      "src/ccm/x.cpp",
      "void f() {\n"
      "  std::scoped_lock lock(mu_);\n"
      "  box_.send(item);  // ccm-lint: allow(blocking-under-lock)\n"
      "}\n");
  EXPECT_TRUE(
      findings_for_rule(inline_allowed, "blocking-under-lock").empty());

  std::vector<std::string> errors;
  auto supp = parse_suppressions(
      "src/ccm/x.cpp blocking-under-lock send  # audited hand-off\n", errors);
  ASSERT_TRUE(errors.empty());
  const auto r = lint({{"src/ccm/x.cpp",
                        "void f() {\n"
                        "  std::scoped_lock lock(mu_);\n"
                        "  box_.send(item);\n"
                        "}\n"}},
                      supp);
  EXPECT_EQ(r.unsuppressed, 0u);
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(supp[0].uses, 1u);
}

// -------------------------------------------------------------- raw-mutex ---

TEST(LintRules, CatchesRawStdMutexInRuntimeLayers) {
  const auto ccm = lint_one("src/ccm/x.hpp", "std::mutex mu_;\n");
  ASSERT_EQ(findings_for_rule(ccm, "raw-mutex").size(), 1u);
  EXPECT_EQ(findings_for_rule(ccm, "raw-mutex")[0]->token, "mutex");
  const auto net =
      lint_one("src/net/x.hpp", "mutable std::shared_mutex table_mu_;\n");
  ASSERT_EQ(findings_for_rule(net, "raw-mutex").size(), 1u);
  EXPECT_EQ(findings_for_rule(net, "raw-mutex")[0]->token, "shared_mutex");
}

TEST(LintRules, RawMutexIgnoresOtherLayersIncludesAndWrappers) {
  // Outside src/ccm and src/net the rule is silent; `#include <mutex>` has
  // no std:: qualifier; the annotated wrappers never spell std::mutex.
  const auto util = lint_one("src/util/x.hpp", "std::mutex mu_;\n");
  EXPECT_TRUE(findings_for_rule(util, "raw-mutex").empty());
  const auto inc = lint_one("src/ccm/x.hpp", "#include <mutex>\n");
  EXPECT_TRUE(findings_for_rule(inc, "raw-mutex").empty());
  const auto wrapped =
      lint_one("src/ccm/x.hpp", "mutable util::Mutex mu_{\"ccm.x\"};\n");
  EXPECT_TRUE(findings_for_rule(wrapped, "raw-mutex").empty());
}

TEST(LintRules, RawMutexHonorsInlineAllow) {
  const auto r = lint_one(
      "src/net/envelope2.hpp",
      "std::mutex m;  // ccm-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(findings_for_rule(r, "raw-mutex").empty());
}

// ---------------------------------------------------------- suppressions ---

TEST(Suppressions, FileEntryMatchesAndCountsUses) {
  std::vector<std::string> errors;
  auto supp = parse_suppressions(
      "# comment line\n"
      "\n"
      "src/x.cpp cout-library cout  # audited output sink\n",
      errors);
  ASSERT_TRUE(errors.empty());
  ASSERT_EQ(supp.size(), 1u);
  const auto r = lint({{"src/x.cpp", "void f() { std::cout << 1; }\n"}}, supp);
  EXPECT_EQ(r.unsuppressed, 0u);
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(supp[0].uses, 1u);
}

TEST(Suppressions, MissingJustificationIsAnError) {
  std::vector<std::string> errors;
  parse_suppressions("src/x.cpp cout-library cout\n", errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("justification"), std::string::npos);
}

TEST(Suppressions, WildcardTokenAndUnusedEntries) {
  std::vector<std::string> errors;
  auto supp = parse_suppressions(
      "src/x.cpp wall-clock *  # demo timing\n"
      "src/never.cpp raw-random rand  # stale entry\n",
      errors);
  ASSERT_TRUE(errors.empty());
  const auto r = lint(
      {{"src/x.cpp", "auto t = std::chrono::steady_clock::now();\n"}}, supp);
  EXPECT_EQ(r.unsuppressed, 0u);
  EXPECT_EQ(supp[0].uses, 1u);
  EXPECT_EQ(supp[1].uses, 0u);  // caller reports stale entries
}

TEST(Suppressions, InlineAllowSilencesOnlyThatLineAndRule) {
  const auto r = lint_one(
      "src/x.cpp",
      "std::unordered_map<int, int> a_;\n"
      "std::unordered_map<int, int> b_;\n"
      "void f() {\n"
      "  for (auto& [k, v] : a_) {}  // ccm-lint: allow(unordered-iter)\n"
      "  for (auto& [k, v] : b_) {}\n"
      "}\n");
  const auto hits = findings_for_rule(r, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->line, 5u);
  EXPECT_EQ(hits[0]->token, "b_");
}

TEST(LintRules, RuleIdsStable) {
  const auto& ids = ccmlint::rule_ids();
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "unordered-iter"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "fp-accum-unordered"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "blocking-under-lock"),
            ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "raw-mutex"), ids.end());
}

}  // namespace
