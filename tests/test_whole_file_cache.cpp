// Tests for the L2S whole-file cache: last-copy preservation, LRU order,
// directory consistency.
#include <gtest/gtest.h>

#include "cache/whole_file_cache.hpp"
#include "sim/random.hpp"

namespace coop::cache {
namespace {

constexpr std::uint32_t kBlock = 8 * 1024;

WholeFileCacheConfig cfg(std::size_t nodes, std::uint64_t blocks) {
  WholeFileCacheConfig c;
  c.nodes = nodes;
  c.capacity_bytes = blocks * kBlock;
  c.block_bytes = kBlock;
  return c;
}

TEST(WholeFileCache, InsertAndLookup) {
  WholeFileCache wc(cfg(2, 8));
  EXPECT_FALSE(wc.cached(0, 1));
  const auto ev = wc.insert(0, 1, 2 * kBlock);
  EXPECT_TRUE(ev.empty());
  EXPECT_TRUE(wc.cached(0, 1));
  EXPECT_EQ(wc.used_blocks(0), 2u);
  EXPECT_EQ(wc.copy_count(1), 1u);
  EXPECT_EQ(wc.holders(1), std::vector<NodeId>{0});
}

TEST(WholeFileCache, ReplicaCountsTracked) {
  WholeFileCache wc(cfg(3, 8));
  wc.insert(0, 1, kBlock);
  wc.insert(2, 1, kBlock);
  EXPECT_EQ(wc.copy_count(1), 2u);
  EXPECT_EQ(wc.holders(1), (std::vector<NodeId>{0, 2}));
  wc.evict_copy(0, 1);
  EXPECT_EQ(wc.copy_count(1), 1u);
  EXPECT_TRUE(wc.check_invariants());
}

TEST(WholeFileCache, LruEvictionOrder) {
  WholeFileCache wc(cfg(1, 2));
  wc.insert(0, 1, kBlock);
  wc.insert(0, 2, kBlock);
  const auto ev = wc.insert(0, 3, kBlock);  // evicts file 1 (oldest)
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].file, 1u);
  EXPECT_TRUE(ev[0].was_last_copy);
  EXPECT_FALSE(wc.cached(0, 1));
}

TEST(WholeFileCache, TouchProtectsFromEviction) {
  WholeFileCache wc(cfg(1, 2));
  wc.insert(0, 1, kBlock);
  wc.insert(0, 2, kBlock);
  wc.touch(0, 1);
  const auto ev = wc.insert(0, 3, kBlock);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].file, 2u);
  EXPECT_TRUE(wc.cached(0, 1));
}

TEST(WholeFileCache, ReplicaEvictedBeforeLastCopy) {
  // Node 0 holds file 1 (replica; node 1 also has it) and file 2 (last
  // copy, older). The replica must be evicted even though file 2 is older.
  WholeFileCache wc(cfg(2, 2));
  wc.insert(0, 2, kBlock);   // oldest at node 0, last copy
  wc.insert(1, 1, kBlock);
  wc.insert(0, 1, kBlock);   // replica at node 0
  const auto ev = wc.insert(0, 3, kBlock);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].file, 1u);
  EXPECT_FALSE(ev[0].was_last_copy);
  EXPECT_TRUE(wc.cached(0, 2));
  EXPECT_EQ(wc.copy_count(1), 1u);  // node 1 still has it
}

TEST(WholeFileCache, LastCopyEvictedOnlyWhenNoReplicas) {
  WholeFileCache wc(cfg(2, 2));
  wc.insert(0, 1, kBlock);
  wc.insert(0, 2, kBlock);
  const auto ev = wc.insert(0, 3, kBlock);  // both are last copies
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].file, 1u);
  EXPECT_TRUE(ev[0].was_last_copy);
}

TEST(WholeFileCache, MultiBlockFileEvictsEnough) {
  WholeFileCache wc(cfg(1, 4));
  wc.insert(0, 1, kBlock);
  wc.insert(0, 2, kBlock);
  wc.insert(0, 3, kBlock);
  wc.insert(0, 4, kBlock);
  const auto ev = wc.insert(0, 5, 3 * kBlock);
  EXPECT_EQ(ev.size(), 3u);
  EXPECT_EQ(wc.used_blocks(0), 4u);
  EXPECT_TRUE(wc.check_invariants());
}

TEST(WholeFileCache, OversizedFileAdmittedDegenerately) {
  WholeFileCache wc(cfg(1, 2));
  wc.insert(0, 1, kBlock);
  const auto ev = wc.insert(0, 2, 10 * kBlock);  // bigger than capacity
  EXPECT_EQ(ev.size(), 1u);  // evicted everything it could
  EXPECT_TRUE(wc.cached(0, 2));
  EXPECT_TRUE(wc.check_invariants());
}

TEST(WholeFileCache, InvariantsUnderRandomWorkload) {
  WholeFileCache wc(cfg(4, 16));
  sim::Rng rng(5);
  const sim::ZipfSampler zipf(100, 0.8);
  for (int i = 0; i < 5000; ++i) {
    const auto node = static_cast<NodeId>(rng.uniform_int(4));
    const auto file = static_cast<FileId>(zipf.sample(rng));
    const auto bytes = (1 + rng.uniform_int(4)) * kBlock;
    if (wc.cached(node, file)) {
      wc.touch(node, file);
    } else {
      wc.insert(node, file, bytes);
    }
    if (i % 200 == 0) {
      ASSERT_TRUE(wc.check_invariants()) << i;
    }
  }
  ASSERT_TRUE(wc.check_invariants());
}

TEST(WholeFileCache, HoldersConsistentWithCached) {
  WholeFileCache wc(cfg(3, 8));
  wc.insert(0, 7, kBlock);
  wc.insert(1, 7, kBlock);
  wc.insert(2, 9, kBlock);
  for (const auto n : wc.holders(7)) EXPECT_TRUE(wc.cached(n, 7));
  EXPECT_EQ(wc.copy_count(7), wc.holders(7).size());
}

}  // namespace
}  // namespace coop::cache
