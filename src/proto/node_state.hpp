// Per-node protocol state machine: one node's slice of the cooperative
// caching policy, factored out of the monolithic cache::ClusterCache so a
// sharded runtime can run each node's transitions under its own lock.
//
// Division of labor:
//  * NodeState owns this node's NodeCache (entry books, LRU ages), its slice
//    of the CacheStats counters, and a lock-free *published* summary
//    (oldest age, fullness) that peers read when picking forward targets.
//  * The directory lives elsewhere (proto::DirectoryService); NodeState
//    reports what happened (drops, pending forwards) and the caller applies
//    the directory effects. That split is what lets transitions run under a
//    single shard lock while cross-node traffic goes through messages.
//
// Every transition replicates cache::ClusterCache's semantics action for
// action — tests/test_proto.cpp drives both against the same scripts and
// requires identical outcomes, drops, and statistics.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "cache/coop_cache.hpp"
#include "cache/node_cache.hpp"
#include "cache/types.hpp"

namespace coop::proto {

/// Published "no cached blocks" sentinel (ages are strictly positive).
inline constexpr std::uint64_t kNoAge = ~0ull;

/// Read-only view of every peer's published summary. Implemented by the
/// runtime over per-shard atomics; exact under a quiescent or serialized
/// cluster, best-effort (and safely stale) under concurrency.
class PeerView {
 public:
  virtual ~PeerView() = default;
  /// Age of `n`'s oldest cached block; kNoAge when `n` caches nothing.
  [[nodiscard]] virtual std::uint64_t peer_oldest_age(cache::NodeId n) const = 0;
  [[nodiscard]] virtual bool peer_full(cache::NodeId n) const = 0;
};

/// Peer that should receive a forwarded master (the paper's replacement
/// rule): the first peer with free space in index order, otherwise the peer
/// holding the oldest block; kInvalidNode for single-node clusters.
cache::NodeId pick_forward_target(cache::NodeId from, std::size_t nodes,
                                  const PeerView& view);

/// True when `my_oldest` is the oldest block cluster-wide (masters get a
/// second chance through forwarding unless they are globally oldest).
bool holds_globally_oldest(cache::NodeId self, std::uint64_t my_oldest,
                           std::size_t nodes, const PeerView& view);

/// A master this node evicted that must be offered to a peer. The entry has
/// already been erased locally (and forwards_attempted counted); the caller
/// owes the directory transition and the MasterForward message.
struct PendingForward {
  cache::BlockId block;
  std::uint64_t age = 0;  // forwarded masters keep their age
  std::uint32_t slots = 1;
};

enum class ForwardOutcome {
  kAccepted,  // inserted with the forwarded age
  kPromoted,  // local copy promoted to master (keeps its younger age)
  kRejected   // everything here is younger: the master would be dropped next
};

class NodeState {
 public:
  NodeState(cache::NodeId id, const cache::CoopCacheConfig& config);

  [[nodiscard]] cache::NodeId id() const { return id_; }
  [[nodiscard]] const cache::NodeCache& cache() const { return cache_; }
  [[nodiscard]] cache::CacheStats& stats() { return stats_; }
  [[nodiscard]] const cache::CacheStats& stats() const { return stats_; }

  [[nodiscard]] bool contains(const cache::BlockId& b) const {
    return cache_.contains(b);
  }
  [[nodiscard]] bool is_master(const cache::BlockId& b) const {
    return cache_.is_master(b);
  }

  // --- transitions; call with the owning shard's lock held ---

  void touch(const cache::BlockId& b, std::uint64_t age) {
    cache_.touch(b, age);
  }
  void insert_copy(const cache::BlockId& b, std::uint64_t age,
                   std::uint32_t slots = 1) {
    cache_.insert(b, /*master=*/false, age, slots);
  }
  void insert_master(const cache::BlockId& b, std::uint64_t age,
                     std::uint32_t slots = 1) {
    cache_.insert(b, /*master=*/true, age, slots);
  }
  void promote_to_master(const cache::BlockId& b) {
    cache_.promote_to_master(b);
  }
  void demote_to_copy(const cache::BlockId& b) { cache_.demote_to_copy(b); }

  /// Evicts until `slots` fit (or the cache is empty). Victim drops are
  /// appended to `drops` with copy/master drop statistics counted here; the
  /// caller erases the corresponding bytes and directory entries. Returns a
  /// PendingForward — with the entry already erased and forwards_attempted
  /// counted — when a master earned its second chance; the caller ships it
  /// and calls again if still short on room.
  [[nodiscard]] std::optional<PendingForward> make_room(
      std::uint32_t slots, const PeerView& view,
      std::vector<cache::Drop>& drops);

  /// Receives a forwarded master (the paper: the receiver drops its own
  /// oldest blocks to make room — never forwards again — and rejects the
  /// block if everything remaining is younger). Victim drops are appended
  /// with their statistics counted; the forwarded block's accept/reject
  /// statistics belong to the *sender* and are not counted here.
  [[nodiscard]] ForwardOutcome handle_forward(const PendingForward& pf,
                                              std::vector<cache::Drop>& drops);

  /// Drops `b` for an invalidation (file invalidation, or a write protocol
  /// invalidate; non-masters only unless `drop_master`). Returns the drop —
  /// with invalidations and drop statistics counted — or nullopt if nothing
  /// was dropped.
  [[nodiscard]] std::optional<cache::Drop> handle_invalidate(
      const cache::BlockId& b, bool drop_master);

  /// Write-ownership transfer: silently releases a master migrating to the
  /// writer (no drop statistics — the entry moves, it does not die).
  /// Returns false when `b` is not a master here (e.g. already evicted).
  bool relinquish_master(const cache::BlockId& b);

  /// Undoes a forward insert whose directory claim lost a race.
  void erase_entry(const cache::BlockId& b) { cache_.erase(b); }

  /// Crash simulation: forgets every cached entry and statistic, as if the
  /// node process died and restarted cold, then re-publishes the empty
  /// summary. The caller owes the directory fence (purge_node) — this only
  /// resets local state.
  void reset();

  // --- published summary (lock-free reads by peers) ---

  /// Re-publishes oldest age and fullness; call before releasing the shard
  /// lock after any transition.
  void publish();
  [[nodiscard]] std::uint64_t published_oldest_age() const {
    return pub_oldest_age_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool published_full() const {
    return pub_full_.load(std::memory_order_acquire);
  }

 private:
  /// One eviction step (ClusterCache::evict_one): a drop, or the decision to
  /// forward the oldest master.
  [[nodiscard]] std::optional<PendingForward> evict_one(
      const PeerView& view, std::vector<cache::Drop>& drops);

  void drop_entry(const cache::BlockId& b, std::vector<cache::Drop>& drops);

  cache::NodeId id_;
  std::size_t cluster_nodes_;
  cache::Policy policy_;
  std::uint64_t capacity_bytes_;  // kept for reset() reconstruction
  std::uint32_t block_bytes_;
  cache::NodeCache cache_;
  cache::CacheStats stats_;
  std::atomic<std::uint64_t> pub_oldest_age_{kNoAge};
  std::atomic<bool> pub_full_{false};
};

}  // namespace coop::proto
