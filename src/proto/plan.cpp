#include "proto/plan.hpp"

#include <algorithm>
#include <map>

namespace coop::proto {

std::uint32_t block_payload_bytes(std::uint64_t file_bytes,
                                  std::uint32_t index,
                                  std::uint32_t block_bytes) {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * block_bytes;
  if (file_bytes <= start) return 0;  // zero-byte file's single block
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(file_bytes - start, block_bytes));
}

TransferPlan build_transfer_plan(NodeId requester,
                                 const cache::AccessResult& plan,
                                 const PlanContext& ctx) {
  TransferPlan out;

  struct Partial {
    std::vector<BlockId> blocks;
    std::uint64_t bytes = 0;
    bool misdirected = false;
  };
  // Ordered grouping: ascending provider id, independent of fetch order.
  std::map<NodeId, Partial> remote;
  std::map<NodeId, Partial> disk;

  const std::uint64_t file_bytes =
      plan.fetches.empty() ? 0
                           : ctx.file_bytes_of(plan.fetches[0].block.file);

  for (const auto& f : plan.fetches) {
    const std::uint64_t bytes =
        ctx.whole_file
            ? file_bytes
            : block_payload_bytes(file_bytes, f.block.index, ctx.block_bytes);
    switch (f.source) {
      case cache::Source::kLocalHit:
        break;  // in memory already: covered by the request's CPU cost
      case cache::Source::kRemoteHit: {
        auto& g = remote[f.provider];
        g.blocks.push_back(f.block);
        g.bytes += bytes;
        g.misdirected |= f.misdirected;
        break;
      }
      case cache::Source::kDiskRead: {
        auto& g = disk[f.provider];
        g.blocks.push_back(f.block);
        g.bytes += bytes;
        g.misdirected |= f.misdirected;
        break;
      }
    }
  }

  const auto charge_blocks = [&](const Partial& g) -> std::uint64_t {
    return ctx.whole_file
               ? cache::blocks_for(file_bytes, ctx.block_bytes)
               : g.blocks.size();
  };

  for (auto& [provider, g] : remote) {
    TransferGroup tg;
    tg.provider = provider;
    tg.charge_blocks = charge_blocks(g);
    tg.blocks = std::move(g.blocks);
    tg.bytes = g.bytes;
    tg.misdirected = g.misdirected;
    const BlockId& first = tg.blocks.front();
    if (tg.misdirected) {
      // Stale hint: the probe reaches the wrong node, bounces back, and the
      // fetch is re-sent to the true holder — three control hops.
      tg.control.push_back(
          Message::peer_fetch(requester, provider, first, true));
      tg.control.push_back(Message::redirect(provider, requester, first));
      tg.control.push_back(
          Message::peer_fetch(requester, provider, first, false));
    } else {
      tg.control.push_back(
          Message::peer_fetch(requester, provider, first, false));
    }
    tg.bulk = Message::peer_fetch_reply(provider, requester, first, true,
                                        tg.bytes);
    out.remote.push_back(std::move(tg));
  }

  for (auto& [home, g] : disk) {
    TransferGroup tg;
    tg.provider = home;
    tg.charge_blocks = charge_blocks(g);
    tg.blocks = std::move(g.blocks);
    tg.bytes = g.bytes;
    tg.misdirected = g.misdirected;
    const BlockId& first = tg.blocks.front();
    if (home != requester) {
      tg.control.push_back(Message::home_read(
          requester, home, first,
          static_cast<std::uint32_t>(tg.blocks.size())));
      tg.bulk = Message::block_data(home, requester, first,
                                    static_cast<std::uint32_t>(
                                        tg.blocks.size()),
                                    tg.bytes);
    }
    out.disk.push_back(std::move(tg));
  }

  out.forwards.reserve(plan.forwards.size());
  for (const auto& fw : plan.forwards) {
    ForwardStep step;
    step.forward = fw;
    step.bytes = ctx.whole_file ? ctx.file_bytes_of(fw.block.file)
                                : ctx.block_bytes;
    if (fw.to != cache::kInvalidNode) {
      step.message = Message::master_forward(fw.from, fw.to, fw.block,
                                             /*age=*/0, /*slots=*/1,
                                             step.bytes);
    }
    out.forwards.push_back(std::move(step));
  }

  return out;
}

}  // namespace coop::proto
