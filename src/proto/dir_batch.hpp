// Batched directory operations: the payload vocabulary of
// kDirBatchRequest/kDirBatchReply.
//
// One envelope carries a length-prefixed vector of per-block directory ops,
// so a read path touching N blocks of a file costs one RPC and one
// directory-lock acquisition instead of N of each. The batch is *not* a
// transaction: each item applies exactly the same conditional/idempotent
// operation the singles protocol applies (see DirectoryService), so an
// at-least-once replay of the whole batch is as safe as replaying each
// single — the net/call_with_retry contract is unchanged.
//
// Payload layout (little-endian; independent of the fixed Message wire):
//
//   request  [version u8][node u16][count u32]
//            then per item:  [op u8][file u32][index u32][arg u64]
//   reply    [version u8][count u32]
//            then per item:  [node u16][epoch u64][flags u8]
//
// `arg` is op-specific (currently unused; carried for forward evolution).
// Reply flags reuse the Message flag bits (kFlagGranted, kFlagMisdirected).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/message.hpp"

namespace coop::proto {

/// Bump when the batch payload layout changes (checked by decode; the frame
/// layer's kProtocolVersion guards whole-process mixing, this guards the
/// payload inside it).
inline constexpr std::uint8_t kDirBatchVersion = 1;

/// Decode-side allocation bound: a well-formed peer never sends more items
/// than this (the cluster batches per-file block runs, far smaller).
inline constexpr std::uint32_t kDirBatchMaxItems = 1u << 16;

enum class DirBatchOp : std::uint8_t {
  kLookupRead = 0,  // lookup_for_read(node, block)
  kTryClaim,        // try_claim(block, node)
  kMasterDropped,   // master_dropped(block, node)
  /// Authoritative re-validation for the hint fast path: returns the current
  /// master, the current file epoch, and kFlagGranted iff no write to the
  /// file is in flight. The *caller* compares these against the hint it
  /// fetched under (master unchanged, epoch unchanged, write-free) — the
  /// same predicate as lookup() + read_cacheable() in the singles protocol —
  /// and refreshes its hint slot from the authoritative answer either way.
  kValidate,
};

inline constexpr std::uint8_t kDirBatchOpCount =
    static_cast<std::uint8_t>(DirBatchOp::kValidate) + 1;

struct DirBatchItem {
  DirBatchOp op = DirBatchOp::kLookupRead;
  BlockId block{0, 0};
  std::uint64_t arg = 0;  // op-specific; currently always 0

  friend bool operator==(const DirBatchItem&, const DirBatchItem&) = default;
};

struct DirBatchResult {
  NodeId node = cache::kInvalidNode;
  std::uint64_t epoch = 0;
  std::uint8_t flags = 0;  // kFlagGranted / kFlagMisdirected as per op

  [[nodiscard]] bool has(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }

  friend bool operator==(const DirBatchResult&, const DirBatchResult&) = default;
};

/// Encoded payload sizes (used by tests and the framing layer).
inline constexpr std::size_t kDirBatchRequestHeader = 1 + 2 + 4;
inline constexpr std::size_t kDirBatchItemWire = 1 + 4 + 4 + 8;
inline constexpr std::size_t kDirBatchReplyHeader = 1 + 4;
inline constexpr std::size_t kDirBatchResultWire = 2 + 8 + 1;

/// Encodes a batch request payload issued by `node`.
std::vector<std::byte> encode_dir_batch_request(
    NodeId node, std::span<const DirBatchItem> items);

/// Decodes a batch request payload. nullopt on version mismatch, unknown op,
/// oversized count, or any length mismatch (short *or* trailing bytes).
struct DirBatchRequest {
  NodeId node = cache::kInvalidNode;
  std::vector<DirBatchItem> items;
};
std::optional<DirBatchRequest> decode_dir_batch_request(
    std::span<const std::byte> payload);

/// Encodes a batch reply payload (one result per request item, in order).
std::vector<std::byte> encode_dir_batch_reply(
    std::span<const DirBatchResult> results);

/// Decodes a batch reply payload; same strictness as the request decoder.
std::optional<std::vector<DirBatchResult>> decode_dir_batch_reply(
    std::span<const std::byte> payload);

}  // namespace coop::proto
