#include "proto/node_state.hpp"

#include <cassert>
#include <limits>

namespace coop::proto {

cache::NodeId pick_forward_target(cache::NodeId from, std::size_t nodes,
                                  const PeerView& view) {
  cache::NodeId best = cache::kInvalidNode;
  std::uint64_t best_age = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t p = 0; p < nodes; ++p) {
    const auto peer = static_cast<cache::NodeId>(p);
    if (peer == from) continue;
    if (!view.peer_full(peer)) return peer;  // free space wins
    const std::uint64_t age = view.peer_oldest_age(peer);
    if (age != kNoAge && age < best_age) {
      best_age = age;
      best = peer;
    }
  }
  return best;
}

bool holds_globally_oldest(cache::NodeId self, std::uint64_t my_oldest,
                           std::size_t nodes, const PeerView& view) {
  for (std::size_t p = 0; p < nodes; ++p) {
    const auto peer = static_cast<cache::NodeId>(p);
    if (peer == self) continue;
    const std::uint64_t theirs = view.peer_oldest_age(peer);
    if (theirs != kNoAge && theirs < my_oldest) return false;
  }
  return true;
}

NodeState::NodeState(cache::NodeId id, const cache::CoopCacheConfig& config)
    : id_(id),
      cluster_nodes_(config.nodes),
      policy_(config.policy),
      capacity_bytes_(config.capacity_bytes),
      block_bytes_(config.block_bytes),
      cache_(capacity_bytes_, block_bytes_) {}

void NodeState::reset() {
  cache_ = cache::NodeCache(capacity_bytes_, block_bytes_);
  stats_ = cache::CacheStats{};
  publish();
}

void NodeState::drop_entry(const cache::BlockId& b,
                           std::vector<cache::Drop>& drops) {
  const bool was_master = cache_.erase(b);
  if (was_master) {
    ++stats_.master_drops;
  } else {
    ++stats_.copy_drops;
  }
  drops.push_back(cache::Drop{b, id_, was_master});
}

std::optional<PendingForward> NodeState::evict_one(
    const PeerView& view, std::vector<cache::Drop>& drops) {
  assert(!cache_.empty());

  if (policy_ == cache::Policy::kNeverEvictMaster) {
    // CC-NEM: while any non-master copy remains, evict the oldest copy and
    // leave every master in place.
    if (const auto copy = cache_.oldest_copy()) {
      drop_entry(copy->block, drops);
      return std::nullopt;
    }
  }

  const auto oldest = cache_.oldest();
  assert(oldest.has_value());
  if (!cache_.is_master(oldest->block)) {
    drop_entry(oldest->block, drops);
    return std::nullopt;
  }
  // Master: second chance — forward unless it is the globally oldest block.
  const auto my_oldest = cache_.oldest_age();
  assert(my_oldest.has_value());
  if (holds_globally_oldest(id_, *my_oldest, cluster_nodes_, view)) {
    drop_entry(oldest->block, drops);
    return std::nullopt;
  }
  ++stats_.forwards_attempted;
  PendingForward pf{oldest->block, oldest->age, cache_.slots_of(oldest->block)};
  cache_.erase(oldest->block);
  return pf;
}

std::optional<PendingForward> NodeState::make_room(
    std::uint32_t slots, const PeerView& view,
    std::vector<cache::Drop>& drops) {
  while (cache_.lacks_room_for(slots) && !cache_.empty()) {
    if (auto pf = evict_one(view, drops)) return pf;
  }
  return std::nullopt;
}

ForwardOutcome NodeState::handle_forward(const PendingForward& pf,
                                         std::vector<cache::Drop>& drops) {
  if (cache_.contains(pf.block)) {
    // A rival disk-read claim made this node the master while the forward
    // was in flight; the sender's directory claim is doomed — reject.
    if (cache_.is_master(pf.block)) return ForwardOutcome::kRejected;
    // A non-master copy already here simply becomes the master: no extra
    // memory, no drops, and it keeps its own (younger) age.
    cache_.promote_to_master(pf.block);
    return ForwardOutcome::kPromoted;
  }
  // Make room by dropping our own oldest blocks — never by forwarding again
  // (the paper's property: no cascaded evictions).
  while (cache_.lacks_room_for(pf.slots) && !cache_.empty()) {
    const auto victim = cache_.oldest();
    assert(victim.has_value());
    drop_entry(victim->block, drops);
  }
  // If everything left here is younger than the forwarded block, it would
  // immediately become the eviction candidate: reject it.
  const auto my_oldest = cache_.oldest_age();
  if (my_oldest.has_value() && *my_oldest > pf.age) {
    return ForwardOutcome::kRejected;
  }
  cache_.insert(pf.block, /*master=*/true, pf.age, pf.slots);
  return ForwardOutcome::kAccepted;
}

std::optional<cache::Drop> NodeState::handle_invalidate(const cache::BlockId& b,
                                                        bool drop_master) {
  if (!cache_.contains(b)) return std::nullopt;
  if (!drop_master && cache_.is_master(b)) return std::nullopt;
  std::vector<cache::Drop> drops;
  drop_entry(b, drops);
  ++stats_.invalidations;
  return drops.front();
}

bool NodeState::relinquish_master(const cache::BlockId& b) {
  if (!cache_.is_master(b)) return false;
  cache_.erase(b);
  return true;
}

void NodeState::publish() {
  const auto oldest = cache_.oldest_age();
  pub_oldest_age_.store(oldest.value_or(kNoAge), std::memory_order_release);
  pub_full_.store(cache_.full(), std::memory_order_release);
}

}  // namespace coop::proto
