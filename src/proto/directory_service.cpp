#include "proto/directory_service.hpp"

namespace coop::proto {

DirectoryService::DirectoryService(std::size_t nodes,
                                   cache::DirectoryMode mode,
                                   std::uint32_t hint_staleness)
    : mode_(mode), hints_(nodes, hint_staleness) {}

DirectoryService::ReadLookup DirectoryService::lookup_for_read(
    NodeId node, const BlockId& b) {
  util::ScopedLock lock(mu_);
  return lookup_for_read_locked(node, b);
}

DirectoryService::ReadLookup DirectoryService::lookup_for_read_locked(
    NodeId node, const BlockId& b) {
  ++ops_.lookups;
  const NodeId truth = map_.lookup(b);
  const std::uint64_t epoch = file_epoch_locked(b.file);
  if (mode_ == cache::DirectoryMode::kPerfect) return {truth, false, epoch};

  // Hinted mode (ClusterCache::access_block_impl's hint logic, verbatim):
  // a missing or wrong hint costs an extra round trip, after which the
  // request is chained to the true holder and the hint refreshed.
  const NodeId hinted = hints_.lookup(node, b);
  bool misdirected = false;
  if (hinted == cache::kInvalidNode) {
    if (truth != cache::kInvalidNode) {
      misdirected = true;
      ++ops_.hint_misdirects;
      hints_.refresh(node, b);
    }
  } else if (hinted != truth) {
    misdirected = true;
    ++ops_.hint_misdirects;
    hints_.refresh(node, b);
  }
  return {truth, misdirected, epoch};
}

NodeId DirectoryService::lookup(const BlockId& b) const {
  util::ScopedLock lock(mu_);
  return map_.lookup(b);
}

bool DirectoryService::try_claim(const BlockId& b, NodeId node) {
  util::ScopedLock lock(mu_);
  return try_claim_locked(b, node);
}

bool DirectoryService::try_claim_locked(const BlockId& b, NodeId node) {
  const NodeId current = map_.lookup(b);
  if (current == node) return true;  // at-least-once re-ask: already ours
  if (current != cache::kInvalidNode) {
    ++ops_.claim_conflicts;
    return false;
  }
  map_.set_master(b, node);
  if (mode_ == cache::DirectoryMode::kHinted) {
    hints_.set_master(b, node, node);
  }
  ++ops_.claims;
  return true;
}

std::optional<std::uint64_t> DirectoryService::begin_forward(const BlockId& b,
                                                             NodeId from) {
  util::ScopedLock lock(mu_);
  if (map_.lookup(b) != from) {
    // A rival transition (a write claim, an invalidation sweep) already
    // re-owns or erased this entry; erasing it here would let the forward
    // resurrect superseded bytes as the registered master.
    return std::nullopt;
  }
  if (writes_in_flight_.find(b.file) != writes_in_flight_.end()) {
    // A write to this file is mid-span. If it is re-writing `b` in place
    // (previous holder == writer), the lookup above still names `from` even
    // though `from`'s cached bytes are about to be superseded — forwarding
    // them would install a stale master somewhere else and make the writer's
    // own install check fail. Refuse; the caller drops the block instead.
    return std::nullopt;
  }
  map_.erase_master(b);
  ++ops_.forwards_begun;
  return file_epoch_locked(b.file);
}

bool DirectoryService::claim_forwarded(const BlockId& b, NodeId to,
                                       NodeId from, std::uint64_t epoch) {
  util::ScopedLock lock(mu_);
  if (file_epoch_locked(b.file) == epoch && map_.lookup(b) == to) {
    return true;  // at-least-once re-ask: the first delivery already landed
  }
  if (file_epoch_locked(b.file) != epoch ||
      map_.lookup(b) != cache::kInvalidNode) {
    // The loser's forward_rejected() call does the counting and hint drop.
    return false;
  }
  map_.set_master(b, to);
  if (mode_ == cache::DirectoryMode::kHinted) {
    hints_.set_master(b, to, from);
  }
  ++ops_.forward_claims;
  return true;
}

void DirectoryService::forward_rejected(const BlockId& b, NodeId from) {
  util::ScopedLock lock(mu_);
  ++ops_.forward_rejects;
  if (mode_ == cache::DirectoryMode::kHinted) {
    hints_.erase_master(b, from);
  }
}

void DirectoryService::master_dropped(const BlockId& b, NodeId node) {
  util::ScopedLock lock(mu_);
  master_dropped_locked(b, node);
}

void DirectoryService::master_dropped_locked(const BlockId& b, NodeId node) {
  if (map_.lookup(b) != node) return;  // a racing claim owns the entry now
  map_.erase_master(b);
  if (mode_ == cache::DirectoryMode::kHinted) {
    hints_.erase_master(b, node);
  }
  ++ops_.masters_dropped;
}

void DirectoryService::apply_batch(NodeId node,
                                   std::span<const DirBatchItem> items,
                                   std::vector<DirBatchResult>& out) {
  util::ScopedLock lock(mu_);
  out.reserve(out.size() + items.size());
  for (const DirBatchItem& it : items) {
    DirBatchResult r;
    switch (it.op) {
      case DirBatchOp::kLookupRead: {
        const ReadLookup lk = lookup_for_read_locked(node, it.block);
        r.node = lk.master;
        r.epoch = lk.epoch;
        if (lk.misdirected) r.flags |= kFlagMisdirected;
        break;
      }
      case DirBatchOp::kTryClaim:
        if (try_claim_locked(it.block, node)) r.flags |= kFlagGranted;
        break;
      case DirBatchOp::kMasterDropped:
        master_dropped_locked(it.block, node);
        break;
      case DirBatchOp::kValidate:
        // lookup() + read_cacheable() fused into one answer: the caller owns
        // the comparison against its hint (see DirBatchOp::kValidate docs).
        r.node = map_.lookup(it.block);
        r.epoch = file_epoch_locked(it.block.file);
        if (writes_in_flight_.find(it.block.file) == writes_in_flight_.end()) {
          r.flags |= kFlagGranted;
        }
        break;
    }
    out.push_back(r);
  }
}

NodeId DirectoryService::write_claim(const BlockId& b, NodeId writer) {
  util::ScopedLock lock(mu_);
  const NodeId previous = map_.lookup(b);
  ++ops_.write_claims;
  // Epoch fence: the write changes the block's bytes even when the
  // registered master is unchanged (previous == writer), and readers of that
  // master can't see the write through the lookup alone.
  ++epochs_[b.file];
  if (previous == writer) return previous;  // already the registered owner
  map_.set_master(b, writer);
  if (mode_ == cache::DirectoryMode::kHinted) {
    hints_.set_master(b, writer, writer);
  }
  return previous;
}

void DirectoryService::invalidate_file(FileId file) {
  util::ScopedLock lock(mu_);
  ++epochs_[file];
}

std::size_t DirectoryService::purge_node(NodeId node) {
  util::ScopedLock lock(mu_);
  const std::vector<BlockId> purged = map_.erase_node(node);
  for (const BlockId& b : purged) {
    ++epochs_[b.file];  // fence: the dead node's in-flight claims go stale
    if (mode_ == cache::DirectoryMode::kHinted) {
      hints_.erase_master(b, node);
    }
  }
  ops_.masters_purged += purged.size();
  return purged.size();
}

void DirectoryService::rebuild_masters(
    const std::vector<std::pair<BlockId, NodeId>>& masters) {
  util::ScopedLock lock(mu_);
  // Order-insensitive: per-file epoch increments commute.
  for (const auto& [b, n] : map_.entries()) {  // ccm-lint: allow(unordered-iter)
    (void)n;
    ++epochs_[b.file];
  }
  map_.clear();
  for (const auto& [b, n] : masters) {
    map_.set_master(b, n);
    ++epochs_[b.file];
    if (mode_ == cache::DirectoryMode::kHinted) {
      hints_.set_master(b, n, n);
    }
  }
}

void DirectoryService::write_begin(FileId file) {
  util::ScopedLock lock(mu_);
  ++writes_in_flight_[file];
}

void DirectoryService::write_end(FileId file) {
  util::ScopedLock lock(mu_);
  const auto it = writes_in_flight_.find(file);
  if (it != writes_in_flight_.end() && --it->second == 0) {
    writes_in_flight_.erase(it);
  }
  // Closing bump: a reader whose lookup fell inside the write span snapshot
  // an epoch that must not compare equal once the span is over.
  ++epochs_[file];
}

bool DirectoryService::read_cacheable(FileId file, std::uint64_t epoch) const {
  util::ScopedLock lock(mu_);
  return writes_in_flight_.find(file) == writes_in_flight_.end() &&
         file_epoch_locked(file) == epoch;
}

std::uint64_t DirectoryService::file_epoch_locked(FileId file) const {
  const auto it = epochs_.find(file);
  return it == epochs_.end() ? 0 : it->second;
}

std::uint64_t DirectoryService::file_epoch(FileId file) const {
  util::ScopedLock lock(mu_);
  return file_epoch_locked(file);
}

std::size_t DirectoryService::master_count() const {
  util::ScopedLock lock(mu_);
  return map_.size();
}

DirectoryService::Ops DirectoryService::ops() const {
  util::ScopedLock lock(mu_);
  return ops_;
}

void DirectoryService::reset_ops() {
  util::ScopedLock lock(mu_);
  ops_ = Ops{};
}

double DirectoryService::hint_accuracy() const {
  util::ScopedLock lock(mu_);
  return hints_.accuracy();
}

NodeId DirectoryService::hint_truth(const BlockId& b) const {
  util::ScopedLock lock(mu_);
  return hints_.truth(b);
}

std::size_t DirectoryService::audit(const char* context) const {
  util::ScopedLock lock(mu_);
  if (mode_ != cache::DirectoryMode::kHinted) return 0;
  return hints_.audit(context);
}

Message DirectoryService::handle(const Message& request) {
  switch (request.kind) {
    case MsgKind::kBlockLookup: {
      const auto r = lookup_for_read(request.from, request.block);
      return Message::lookup_reply(request.from, request.block, r.master,
                                   r.misdirected);
    }
    case MsgKind::kMasterClaim: {
      const bool granted = try_claim(request.block, request.from);
      return Message::claim_reply(request.from, request.block, granted,
                                  lookup(request.block));
    }
    case MsgKind::kEvictionNotice: {
      master_dropped(request.block, request.from);
      return Message::invalidate_ack(cache::kInvalidNode, request.from);
    }
    default:
      // Not a directory message; echo an un-granted reply.
      return Message::claim_reply(request.from, request.block, false,
                                  lookup(request.block));
  }
}

}  // namespace coop::proto
