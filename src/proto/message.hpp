// The CCM wire protocol: every cross-node interaction in the cooperative
// caching middleware expressed as a typed message.
//
// Both execution paths speak this protocol. The event-driven simulator
// (server::CcmServer) *emits* the messages an access plan implies and charges
// each one with the paper's Table-1 latencies; the threaded runtime
// (ccm::CcmCluster) *transports* the same messages between per-node protocol
// threads through Mailbox<proto::Message> envelopes. Keeping one message
// vocabulary is what makes the two provably the same protocol — and is the
// seam where a socket transport, fault injection, or dropped-hint scenarios
// plug in later.
//
// Messages are a flat POD (not a variant): every kind uses a subset of the
// same fields, which keeps them trivially copyable, mailbox-friendly, and
// serializable with a fixed wire layout (encode/decode below round-trip
// exactly; see tests/test_proto.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "cache/types.hpp"

namespace coop::proto {

using cache::BlockId;
using cache::FileId;
using cache::NodeId;

enum class MsgKind : std::uint8_t {
  kBlockLookup = 0,       // requester -> directory: who holds the master?
  kBlockLookupReply,      // directory -> requester: master node (or none)
  kMasterClaim,           // requester -> directory: claim mastership if free
  kMasterClaimReply,      // directory -> requester: granted / current holder
  kPeerFetch,             // requester -> master holder: send me a copy
  kPeerFetchReply,        // holder -> requester: block bytes (or a miss)
  kRedirect,              // stale-hint hop: probed node bounces the request
  kHomeRead,              // requester -> home node: read blocks from disk
  kBlockData,             // home -> requester: disk blocks shipped over
  kMasterForward,         // evicting node -> target: adopt this master
  kMasterForwardAck,      // target -> evicting node: accepted / rejected
  kEvictionNotice,        // node -> directory: a master was dropped
  kInvalidateFile,        // writer/API -> node: drop every block of a file
  kInvalidateBlock,       // writer -> node: drop one block (copy or master)
  kInvalidateAck,         // node -> writer
  kWriteOwnership,        // writer -> master holder: relinquish + send bytes
  kWriteOwnershipReply,   // holder -> writer: bytes attached / already gone

  // Remote-directory RPCs (multi-process clusters only). The DirectoryService
  // lives in the process hosting node 0; every other process reaches it with
  // these requests, all answered by a single generic kDirReply correlated by
  // the transport's sequence number.
  kDirLookupRead,         // node -> home: lookup_for_read(from, block)
  kDirLookup,             // node -> home: authoritative master of block
  kDirTryClaim,           // node -> home: try_claim(block, from)
  kDirBeginForward,       // node -> home: begin_forward(block, from)
  kDirClaimForwarded,     // node -> home: claim_forwarded(block, from, ...)
  kDirForwardRejected,    // node -> home: forward_rejected(block, from)
  kDirMasterDropped,      // node -> home: master_dropped(block, from)
  kDirWriteClaim,         // node -> home: write_claim(block, from)
  kDirWriteBegin,         // node -> home: write_begin(file)
  kDirWriteEnd,           // node -> home: write_end(file)
  kDirReadCacheable,      // node -> home: read_cacheable(file, epoch)
  kDirInvalidateFile,     // node -> home: invalidate_file(file) epoch fence
  kDirReply,              // home -> node: generic directory answer

  // Remote-storage RPCs (the backing store also lives at node 0's process).
  kStorageRead,           // node -> home: read [offset, offset+len) of file
  kStorageData,           // home -> node: the requested bytes (payload)
  kStorageWrite,          // node -> home: write payload at offset of file
  kStorageAck,            // home -> node: write landed

  // Cluster-level rendezvous for the multi-process drivers (seed / finish
  // phases of the loopback workload).
  kBarrier,               // node -> home: I reached phase `count`
  kBarrierReply,          // home -> node: granted once every node reached it

  // Recovery: fence a crashed node out of the directory. Answered by
  // kDirReply; `count` carries the dead node's id.
  kDirPurgeNode,          // survivor -> home: purge_node(node)

  // Runtime telemetry scrape: any node can pull a peer process's metrics
  // snapshot (obs::MetricsSnapshot, binary-encoded in the reply payload) and
  // merge the cluster-wide view (tools/ccm_metrics, ccm_node --scrape-out).
  kStatsPull,             // scraper -> node: send me your metrics snapshot
  kStatsReply,            // node -> scraper: encoded snapshot (payload)

  // Batched directory ops (proto/dir_batch.hpp): a length-prefixed vector of
  // per-block directory requests rides in the envelope payload, answered by
  // one reply whose payload carries a result per item. One RPC and one
  // directory-lock acquisition amortize over the whole batch.
  kDirBatchRequest,       // node -> home: payload = encoded DirBatchItem[]
  kDirBatchReply,         // home -> node: payload = encoded DirBatchResult[]
};

/// Number of distinct message kinds (wire-format validation bound).
inline constexpr std::uint8_t kMsgKindCount =
    static_cast<std::uint8_t>(MsgKind::kDirBatchReply) + 1;

/// Flag bits (meaning depends on kind; unused bits must be zero).
inline constexpr std::uint8_t kFlagMisdirected = 1u << 0;  // stale-hint hop(s)
inline constexpr std::uint8_t kFlagHit = 1u << 1;          // fetch served
inline constexpr std::uint8_t kFlagAccepted = 1u << 2;     // forward adopted
inline constexpr std::uint8_t kFlagPromoted = 1u << 3;     // copy promoted
inline constexpr std::uint8_t kFlagDropMaster = 1u << 4;   // invalidate masters
inline constexpr std::uint8_t kFlagTransferred = 1u << 5;  // ownership moved
inline constexpr std::uint8_t kFlagGranted = 1u << 6;      // claim succeeded

struct Message {
  MsgKind kind = MsgKind::kBlockLookup;
  NodeId from = cache::kInvalidNode;
  NodeId to = cache::kInvalidNode;
  BlockId block{0, 0};
  /// Block count for file-level / multi-block operations (kInvalidateFile,
  /// kHomeRead), slot footprint for kMasterForward.
  std::uint32_t count = 1;
  /// LRU age carried by kMasterForward (the paper: forwarded masters keep
  /// their age so they stay eviction candidates at the receiver).
  std::uint64_t age = 0;
  /// Payload size for bulk transfers (kPeerFetchReply, kBlockData,
  /// kMasterForward); zero for pure control messages.
  std::uint64_t bytes = 0;
  std::uint8_t flags = 0;
  /// Runtime trace propagation (obs/runtime_trace.hpp): the operation's
  /// trace id and the sender's span id. Zero — and ignored by every
  /// protocol handler — unless runtime tracing is enabled; the named
  /// constructors never set them, so deterministic paths are unaffected.
  std::uint64_t trace = 0;
  std::uint64_t span = 0;

  [[nodiscard]] bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  /// True for messages charged as control round-trips by the simulator
  /// (everything that carries no payload bytes).
  [[nodiscard]] bool is_control() const { return bytes == 0; }

  friend bool operator==(const Message&, const Message&) = default;

  // ---- named constructors (the only places field conventions live) ----
  static Message block_lookup(NodeId from, const BlockId& b);
  static Message lookup_reply(NodeId to, const BlockId& b, NodeId master,
                              bool misdirected);
  static Message master_claim(NodeId from, const BlockId& b);
  static Message claim_reply(NodeId to, const BlockId& b, bool granted,
                             NodeId holder);
  static Message peer_fetch(NodeId from, NodeId to, const BlockId& b,
                            bool misdirected);
  static Message peer_fetch_reply(NodeId from, NodeId to, const BlockId& b,
                                  bool hit, std::uint64_t bytes);
  static Message redirect(NodeId from, NodeId to, const BlockId& b);
  static Message home_read(NodeId from, NodeId home, const BlockId& first,
                           std::uint32_t blocks);
  static Message block_data(NodeId from, NodeId to, const BlockId& first,
                            std::uint32_t blocks, std::uint64_t bytes);
  static Message master_forward(NodeId from, NodeId to, const BlockId& b,
                                std::uint64_t age, std::uint32_t slots,
                                std::uint64_t bytes);
  static Message forward_ack(NodeId from, NodeId to, const BlockId& b,
                             bool accepted, bool promoted);
  static Message eviction_notice(NodeId from, const BlockId& b);
  static Message invalidate_file(NodeId from, NodeId to, FileId file,
                                 std::uint32_t blocks);
  static Message invalidate_block(NodeId from, NodeId to, const BlockId& b,
                                  bool drop_master);
  static Message invalidate_ack(NodeId from, NodeId to);
  static Message write_ownership(NodeId from, NodeId to, const BlockId& b);
  static Message write_ownership_reply(NodeId from, NodeId to,
                                       const BlockId& b, bool transferred,
                                       std::uint64_t bytes);

  // Remote-directory RPCs. `home` is the directory-hosting node (node 0 in
  // the loopback cluster). Field conventions for kDirReply: `count` carries a
  // result NodeId (kInvalidNode widened to 32 bits when absent), `age`
  // carries an epoch, kFlagGranted reports boolean outcomes.
  static Message dir_request(MsgKind kind, NodeId from, NodeId home,
                             const BlockId& b);
  static Message dir_claim_forwarded(NodeId from, NodeId home,
                                     const BlockId& b, NodeId forwarder,
                                     std::uint64_t epoch);
  static Message dir_file_request(MsgKind kind, NodeId from, NodeId home,
                                  FileId file, std::uint64_t epoch);
  static Message dir_reply(NodeId home, NodeId to, const BlockId& b,
                           NodeId result, std::uint64_t epoch, bool granted,
                           bool misdirected);

  // Batched directory ops: `count` is the item count, `bytes` the encoded
  // payload length (dir_batch.hpp defines the payload layout).
  static Message dir_batch_request(NodeId from, NodeId home,
                                   std::uint32_t items, std::uint64_t bytes);
  static Message dir_batch_reply(NodeId home, NodeId to, std::uint32_t items,
                                 std::uint64_t bytes);

  /// The result NodeId a singles kDirReply carries in `count` (kInvalidNode
  /// widened to 32 bits when absent). kDirBatchReply carries its per-item
  /// results in the payload, never here — this accessor asserts the kind so
  /// batch replies can't silently be read as a node id through `count`.
  [[nodiscard]] NodeId dir_result() const;

  // Remote-storage RPCs: `age` carries the byte offset, `bytes` the length.
  static Message storage_read(NodeId from, NodeId home, FileId file,
                              std::uint64_t offset, std::uint64_t length);
  static Message storage_data(NodeId home, NodeId to, FileId file,
                              std::uint64_t bytes);
  static Message storage_write(NodeId from, NodeId home, FileId file,
                               std::uint64_t offset, std::uint64_t bytes);
  static Message storage_ack(NodeId home, NodeId to, FileId file);

  // Cluster barrier: `count` is the phase index.
  static Message barrier(NodeId from, NodeId home, std::uint32_t phase);
  static Message barrier_reply(NodeId home, NodeId to, std::uint32_t phase,
                               bool granted);

  /// Crash recovery: evict every directory entry mastered by `node` and
  /// epoch-fence the files it touched (see DirectoryService::purge_node).
  static Message dir_purge_node(NodeId from, NodeId home, NodeId node);

  // Telemetry scrape: the reply's `bytes` is the encoded snapshot length
  // (the snapshot itself rides in the envelope payload).
  static Message stats_pull(NodeId from, NodeId to);
  static Message stats_reply(NodeId from, NodeId to, std::uint64_t bytes);
};

/// True for kinds that answer a request (the transport routes these to the
/// caller blocked in call(); everything else is delivered to the node's
/// protocol thread).
bool is_reply(MsgKind kind);

/// Stable display name of a message kind ("peer-fetch", ...).
const char* kind_name(MsgKind kind);

/// Fixed wire size of an encoded message (trailing trace/span ids included;
/// kProtocolVersion in net/frame.hpp guards cross-version mixing).
inline constexpr std::size_t kWireSize = 1 + 2 + 2 + 4 + 4 + 4 + 8 + 8 + 1 + 8 + 8;

using WireBytes = std::array<std::byte, kWireSize>;

/// Encodes `m` with a fixed little-endian layout.
WireBytes encode(const Message& m);

/// Decodes a message; nullopt on short input, unknown kind, or nonzero
/// reserved bits. decode(encode(m)) == m for every valid message.
std::optional<Message> decode(std::span<const std::byte> wire);

}  // namespace coop::proto
