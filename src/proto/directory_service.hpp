// The cluster's master-block directory as a standalone service object.
//
// The paper assumes a perfect directory "maintained by some external
// mechanism"; in the sharded runtime this object *is* that mechanism: a
// small, separately-locked service that answers lookups, arbitrates master
// claims, and carries the hint tables of the §6 hint-based variant. Nodes
// never touch each other's policy state directly — they consult the
// directory and then exchange proto::Messages.
//
// Concurrency: one internal mutex, held only for map operations (no I/O, no
// nested locks), so it is a leaf in the runtime's lock order (shard lock →
// directory). Claim operations are conditional (set-if-absent) precisely
// because a sharded runtime can race: two nodes may miss on the same block
// concurrently, and an in-flight master forward can cross an invalidation or
// a rival claim — the loser re-reads the directory and retries.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/directory.hpp"
#include "cache/coop_cache.hpp"
#include "proto/dir_batch.hpp"
#include "proto/message.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::proto {

class DirectoryService {
 public:
  /// Directory-side operation counters (exposed through runtime stats).
  struct Ops {
    std::uint64_t lookups = 0;
    std::uint64_t claims = 0;           // masters granted to disk readers
    std::uint64_t claim_conflicts = 0;  // claim lost: somebody was faster
    std::uint64_t forwards_begun = 0;
    std::uint64_t forward_claims = 0;   // forwarded masters re-registered
    std::uint64_t forward_rejects = 0;  // forwarded masters lost
    std::uint64_t masters_dropped = 0;
    std::uint64_t write_claims = 0;
    std::uint64_t hint_misdirects = 0;
    std::uint64_t masters_purged = 0;   // crash fences (purge_node)
  };

  DirectoryService(std::size_t nodes, cache::DirectoryMode mode,
                   std::uint32_t hint_staleness);

  [[nodiscard]] cache::DirectoryMode mode() const { return mode_; }

  struct ReadLookup {
    NodeId master = cache::kInvalidNode;
    /// Hinted mode: the node's hint was wrong/missing and an extra network
    /// round trip is owed before reaching `master`.
    bool misdirected = false;
    /// File epoch at lookup time. A reader must re-check it before caching
    /// fetched bytes: a write or invalidation that lands between the lookup
    /// and the insert bumps it, and caching the (superseded) fetch would
    /// plant a stale copy the write's invalidation sweep already missed.
    std::uint64_t epoch = 0;
  };

  /// Where `node` should fetch `b` from. In perfect mode this is the truth;
  /// in hinted mode it is the node's (refreshed-on-miss) belief, with
  /// misdirections counted exactly as cache::ClusterCache counts them.
  ReadLookup lookup_for_read(NodeId node, const BlockId& b);

  /// Authoritative master holder (kInvalidNode if none).
  [[nodiscard]] NodeId lookup(const BlockId& b) const;

  /// Registers `node` as master of `b` iff no master exists (a disk reader
  /// becoming the master holder). False: somebody beat us — retry the read.
  /// Idempotent for the claimant: re-asking while already registered
  /// succeeds, so a retried claim whose first reply was lost cannot strand
  /// a master the claimant believes it failed to take.
  bool try_claim(const BlockId& b, NodeId node);

  /// Starts forwarding `b`'s master away from `from`: unregisters it so
  /// readers cannot chase a block that is in flight (they re-claim or retry
  /// instead). Hints are left untouched — the hint protocol only learns the
  /// outcome. Returns the block's file invalidation epoch, to be echoed to
  /// claim_forwarded — or nullopt, refusing to unregister, when the
  /// directory no longer names `from` (a write claim overtook the eviction)
  /// or a write to the file is in flight (an in-place re-write keeps the
  /// lookup unchanged while superseding the bytes): either way the
  /// forwarder's bytes may be stale and must not be shipped.
  std::optional<std::uint64_t> begin_forward(const BlockId& b, NodeId from);

  /// Registers the forwarded master at `to` iff the block is still
  /// unclaimed and the file has not been invalidated since `epoch` (a rival
  /// disk-read claim, a write claim, or an invalidation wins the race).
  /// `from` is the forwarding node, credited as the hint observer.
  /// Idempotent for `to`: a retried claim that already landed (same epoch)
  /// succeeds again instead of reading its own registration as a rival's.
  bool claim_forwarded(const BlockId& b, NodeId to, NodeId from,
                       std::uint64_t epoch);

  /// The destination rejected (or lost the claim for) a forwarded master:
  /// the master is gone; drop `from`'s hint.
  void forward_rejected(const BlockId& b, NodeId from);

  /// A master copy was dropped at `node` (eviction or invalidation).
  /// Conditional: only unregisters if the directory still names `node`, so a
  /// racing claim by another node is never erased.
  void master_dropped(const BlockId& b, NodeId node);

  /// Batched entry point (kDirBatchRequest): applies every item issued by
  /// `node` under ONE lock acquisition, appending one result per item in
  /// order. Per-item semantics and Ops counters are exactly the singles
  /// methods' — a batch and the same ops issued singly leave bit-identical
  /// directory state (asserted in tests/test_proto.cpp), which is also what
  /// keeps an at-least-once replay of the batch safe.
  void apply_batch(NodeId node, std::span<const DirBatchItem> items,
                   std::vector<DirBatchResult>& out);

  /// Write protocol: makes `writer` the registered master of `b`
  /// unconditionally and returns the previous holder (== writer: no
  /// re-registration). The caller migrates ownership from the previous
  /// holder and cleans up any rival claim that slipped in between. Always
  /// bumps the file's epoch — even when the writer already holds the block —
  /// so in-flight reads and forwards of the file cannot cache or re-register
  /// bytes the write supersedes.
  NodeId write_claim(const BlockId& b, NodeId writer);

  /// File invalidation fence: bumps the file's epoch so in-flight master
  /// forwards of its blocks are rejected instead of resurrecting stale data.
  void invalidate_file(FileId file);

  /// Crash fence: unregisters every master held at `node` and bumps the
  /// epoch of each affected file, so claims/forwards the dead node still
  /// has in flight carry stale epochs and are rejected rather than
  /// resurrecting its masters. Returns how many masters were purged.
  std::size_t purge_node(NodeId node);

  /// Directory reconstruction (e.g. after the directory holder itself is
  /// restarted): replaces the whole master map with `masters`, gathered
  /// from surviving per-node caches, and epoch-fences every file touched by
  /// the old or new map so anything in flight across the rebuild loses its
  /// race cleanly.
  void rebuild_masters(
      const std::vector<std::pair<BlockId, NodeId>>& masters);

  /// Write span fence. A writer brackets the whole multi-block write with
  /// write_begin/write_end; while any write to the file is in flight,
  /// read_cacheable() is false. The epoch alone cannot close this hole: a
  /// reader's entire lookup→fetch→insert can land inside the span, after the
  /// per-block write_claim bump and after the writer's invalidation sweep
  /// visited the reader's node, yet fetch bytes the writer is about to
  /// supersede. write_end also bumps the epoch so a reader whose lookup fell
  /// inside the span fails the epoch comparison after the span closes.
  void write_begin(FileId file);
  void write_end(FileId file);

  /// True when bytes of `file` fetched under a lookup that observed `epoch`
  /// are still safe to cache as a copy: no write is in flight and nothing
  /// (write claim, write completion, invalidation) bumped the epoch since.
  [[nodiscard]] bool read_cacheable(FileId file, std::uint64_t epoch) const;

  [[nodiscard]] std::uint64_t file_epoch(FileId file) const;

  /// Registered masters cluster-wide.
  [[nodiscard]] std::size_t master_count() const;

  [[nodiscard]] Ops ops() const;
  void reset_ops();

  // --- hinted mode ---
  [[nodiscard]] double hint_accuracy() const;
  /// Authoritative hint-layer location (for cross-shard audits).
  [[nodiscard]] NodeId hint_truth(const BlockId& b) const;
  /// Hint-layer internal-consistency sweep (0 in perfect mode).
  std::size_t audit(const char* context) const;

  /// Message-level adapter: answers directory queries expressed as wire
  /// messages (kBlockLookup, kMasterClaim, kEvictionNotice). This is the
  /// seam where a remote directory node would plug in; the in-process
  /// runtime calls the typed methods directly.
  Message handle(const Message& request);

 private:
  // Lock-free bodies of the batchable operations: the public singles methods
  // and apply_batch() both dispatch here, so batched and single execution
  // cannot drift apart.
  ReadLookup lookup_for_read_locked(NodeId node, const BlockId& b)
      REQUIRES(mu_);
  bool try_claim_locked(const BlockId& b, NodeId node) REQUIRES(mu_);
  void master_dropped_locked(const BlockId& b, NodeId node) REQUIRES(mu_);
  std::uint64_t file_epoch_locked(FileId file) const REQUIRES(mu_);

  mutable util::Mutex mu_{"proto.directory"};
  cache::DirectoryMode mode_;  // immutable after construction
  cache::PerfectDirectory map_ GUARDED_BY(mu_);
  cache::HintedDirectory hints_ GUARDED_BY(mu_);
  std::unordered_map<FileId, std::uint64_t> epochs_ GUARDED_BY(mu_);
  std::unordered_map<FileId, std::uint32_t> writes_in_flight_ GUARDED_BY(mu_);
  Ops ops_ GUARDED_BY(mu_);
};

}  // namespace coop::proto
