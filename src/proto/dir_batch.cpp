#include "proto/dir_batch.hpp"

namespace coop::proto {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::to_integer<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::to_integer<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint8_t kResultFlagMask = kFlagGranted | kFlagMisdirected;

}  // namespace

std::vector<std::byte> encode_dir_batch_request(
    NodeId node, std::span<const DirBatchItem> items) {
  std::vector<std::byte> out;
  out.reserve(kDirBatchRequestHeader + items.size() * kDirBatchItemWire);
  out.push_back(static_cast<std::byte>(kDirBatchVersion));
  put_u16(out, node);
  put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const DirBatchItem& it : items) {
    out.push_back(static_cast<std::byte>(it.op));
    put_u32(out, it.block.file);
    put_u32(out, it.block.index);
    put_u64(out, it.arg);
  }
  return out;
}

std::optional<DirBatchRequest> decode_dir_batch_request(
    std::span<const std::byte> payload) {
  if (payload.size() < kDirBatchRequestHeader) return std::nullopt;
  const std::byte* p = payload.data();
  if (std::to_integer<std::uint8_t>(p[0]) != kDirBatchVersion) {
    return std::nullopt;
  }
  DirBatchRequest req;
  req.node = get_u16(p + 1);
  const std::uint32_t count = get_u32(p + 3);
  if (count > kDirBatchMaxItems) return std::nullopt;
  if (payload.size() != kDirBatchRequestHeader +
                            static_cast<std::size_t>(count) * kDirBatchItemWire) {
    return std::nullopt;  // short or trailing bytes: reject, never guess
  }
  req.items.reserve(count);
  p += kDirBatchRequestHeader;
  for (std::uint32_t i = 0; i < count; ++i, p += kDirBatchItemWire) {
    const auto raw_op = std::to_integer<std::uint8_t>(p[0]);
    if (raw_op >= kDirBatchOpCount) return std::nullopt;
    DirBatchItem it;
    it.op = static_cast<DirBatchOp>(raw_op);
    it.block.file = get_u32(p + 1);
    it.block.index = get_u32(p + 5);
    it.arg = get_u64(p + 9);
    req.items.push_back(it);
  }
  return req;
}

std::vector<std::byte> encode_dir_batch_reply(
    std::span<const DirBatchResult> results) {
  std::vector<std::byte> out;
  out.reserve(kDirBatchReplyHeader + results.size() * kDirBatchResultWire);
  out.push_back(static_cast<std::byte>(kDirBatchVersion));
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  for (const DirBatchResult& r : results) {
    put_u16(out, r.node);
    put_u64(out, r.epoch);
    out.push_back(static_cast<std::byte>(r.flags));
  }
  return out;
}

std::optional<std::vector<DirBatchResult>> decode_dir_batch_reply(
    std::span<const std::byte> payload) {
  if (payload.size() < kDirBatchReplyHeader) return std::nullopt;
  const std::byte* p = payload.data();
  if (std::to_integer<std::uint8_t>(p[0]) != kDirBatchVersion) {
    return std::nullopt;
  }
  const std::uint32_t count = get_u32(p + 1);
  if (count > kDirBatchMaxItems) return std::nullopt;
  if (payload.size() != kDirBatchReplyHeader +
                            static_cast<std::size_t>(count) * kDirBatchResultWire) {
    return std::nullopt;
  }
  std::vector<DirBatchResult> results;
  results.reserve(count);
  p += kDirBatchReplyHeader;
  for (std::uint32_t i = 0; i < count; ++i, p += kDirBatchResultWire) {
    DirBatchResult r;
    r.node = get_u16(p);
    r.epoch = get_u64(p + 2);
    r.flags = std::to_integer<std::uint8_t>(p[10]);
    if ((r.flags & ~kResultFlagMask) != 0) return std::nullopt;
    results.push_back(r);
  }
  return results;
}

}  // namespace coop::proto
