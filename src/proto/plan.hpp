// Lowers a ClusterCache access plan (cache::AccessResult) into the wire
// messages and bulk transfers it implies.
//
// One TransferGroup per (kind, provider): the paper charges a control round
// trip plus one bulk transfer per provider contacted, not per block, so the
// grouping *is* the cost model. The simulator walks the groups in order,
// charging each control message as a network control hop and each bulk
// payload as a data transfer; tests replay the same plans against the
// threaded runtime's live message counts to show both speak one protocol.
//
// Determinism: groups are emitted in ascending provider order (the builder
// groups through a std::map), so a plan lowers to the same message sequence
// every time — a requirement for byte-identical figure CSVs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/coop_cache.hpp"
#include "proto/message.hpp"

namespace coop::proto {

/// All traffic owed to one provider (peer master holder or home disk node).
struct TransferGroup {
  NodeId provider = cache::kInvalidNode;
  std::vector<BlockId> blocks;
  /// Payload bytes shipped by the bulk transfer.
  std::uint64_t bytes = 0;
  /// Hinted mode: at least one block's hint pointed at the wrong node.
  bool misdirected = false;
  /// Per-block CPU multiplier: the real block count behind this group (the
  /// whole-file adaptation fetches one entry that stands for many blocks).
  std::uint64_t charge_blocks = 0;
  /// Control messages, charged as network control hops in order. A
  /// misdirected peer fetch costs three hops (stale probe, redirect, re-sent
  /// fetch); a clean one costs one.
  std::vector<Message> control;
  /// The bulk payload transfer; absent when the provider is the requester
  /// itself (local disk: the bytes move over the memory bus, not the wire).
  std::optional<Message> bulk;
};

/// One master forward scheduled by the replacement policy (asynchronous,
/// off the request's critical path).
struct ForwardStep {
  cache::Forward forward;
  std::uint64_t bytes = 0;
  /// Absent for single-node clusters (no peer to forward to: master lost).
  std::optional<Message> message;
};

struct TransferPlan {
  std::vector<TransferGroup> remote;  // ascending peer id
  std::vector<TransferGroup> disk;    // ascending home id
  std::vector<ForwardStep> forwards;  // policy order
};

struct PlanContext {
  std::uint32_t block_bytes = 8 * 1024;
  bool whole_file = false;
  /// File sizes, needed for tail-block byte counts and whole-file footprints
  /// (forwarded entries may belong to other files than the accessed one).
  std::function<std::uint64_t(FileId)> file_bytes_of;
};

/// Bytes of the `index`-th block of a `file_bytes`-sized file (the tail
/// block may be short; a zero-byte file still has one zero-byte block).
std::uint32_t block_payload_bytes(std::uint64_t file_bytes,
                                  std::uint32_t index,
                                  std::uint32_t block_bytes);

/// Lowers `plan` (the policy actions of one access by `requester`) into
/// grouped transfers and their wire messages.
TransferPlan build_transfer_plan(NodeId requester,
                                 const cache::AccessResult& plan,
                                 const PlanContext& ctx);

}  // namespace coop::proto
