#include "proto/message.hpp"

#include <cassert>
#include <cstring>

namespace coop::proto {

namespace {

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
}

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::to_integer<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::to_integer<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Message Message::block_lookup(NodeId from, const BlockId& b) {
  Message m;
  m.kind = MsgKind::kBlockLookup;
  m.from = from;
  m.block = b;
  return m;
}

Message Message::lookup_reply(NodeId to, const BlockId& b, NodeId master,
                              bool misdirected) {
  Message m;
  m.kind = MsgKind::kBlockLookupReply;
  m.from = master;  // by convention the reply names the master holder
  m.to = to;
  m.block = b;
  if (misdirected) m.flags |= kFlagMisdirected;
  if (master != cache::kInvalidNode) m.flags |= kFlagHit;
  return m;
}

Message Message::master_claim(NodeId from, const BlockId& b) {
  Message m;
  m.kind = MsgKind::kMasterClaim;
  m.from = from;
  m.block = b;
  return m;
}

Message Message::claim_reply(NodeId to, const BlockId& b, bool granted,
                             NodeId holder) {
  Message m;
  m.kind = MsgKind::kMasterClaimReply;
  m.from = holder;
  m.to = to;
  m.block = b;
  if (granted) m.flags |= kFlagGranted;
  return m;
}

Message Message::peer_fetch(NodeId from, NodeId to, const BlockId& b,
                            bool misdirected) {
  Message m;
  m.kind = MsgKind::kPeerFetch;
  m.from = from;
  m.to = to;
  m.block = b;
  if (misdirected) m.flags |= kFlagMisdirected;
  return m;
}

Message Message::peer_fetch_reply(NodeId from, NodeId to, const BlockId& b,
                                  bool hit, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kPeerFetchReply;
  m.from = from;
  m.to = to;
  m.block = b;
  m.bytes = bytes;
  if (hit) m.flags |= kFlagHit;
  return m;
}

Message Message::redirect(NodeId from, NodeId to, const BlockId& b) {
  Message m;
  m.kind = MsgKind::kRedirect;
  m.from = from;
  m.to = to;
  m.block = b;
  m.flags = kFlagMisdirected;
  return m;
}

Message Message::home_read(NodeId from, NodeId home, const BlockId& first,
                           std::uint32_t blocks) {
  Message m;
  m.kind = MsgKind::kHomeRead;
  m.from = from;
  m.to = home;
  m.block = first;
  m.count = blocks;
  return m;
}

Message Message::block_data(NodeId from, NodeId to, const BlockId& first,
                            std::uint32_t blocks, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kBlockData;
  m.from = from;
  m.to = to;
  m.block = first;
  m.count = blocks;
  m.bytes = bytes;
  return m;
}

Message Message::master_forward(NodeId from, NodeId to, const BlockId& b,
                                std::uint64_t age, std::uint32_t slots,
                                std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kMasterForward;
  m.from = from;
  m.to = to;
  m.block = b;
  m.count = slots;
  m.age = age;
  m.bytes = bytes;
  return m;
}

Message Message::forward_ack(NodeId from, NodeId to, const BlockId& b,
                             bool accepted, bool promoted) {
  Message m;
  m.kind = MsgKind::kMasterForwardAck;
  m.from = from;
  m.to = to;
  m.block = b;
  if (accepted) m.flags |= kFlagAccepted;
  if (promoted) m.flags |= kFlagPromoted;
  return m;
}

Message Message::eviction_notice(NodeId from, const BlockId& b) {
  Message m;
  m.kind = MsgKind::kEvictionNotice;
  m.from = from;
  m.block = b;
  return m;
}

Message Message::invalidate_file(NodeId from, NodeId to, FileId file,
                                 std::uint32_t blocks) {
  Message m;
  m.kind = MsgKind::kInvalidateFile;
  m.from = from;
  m.to = to;
  m.block = BlockId{file, 0};
  m.count = blocks;
  m.flags = kFlagDropMaster;
  return m;
}

Message Message::invalidate_block(NodeId from, NodeId to, const BlockId& b,
                                  bool drop_master) {
  Message m;
  m.kind = MsgKind::kInvalidateBlock;
  m.from = from;
  m.to = to;
  m.block = b;
  if (drop_master) m.flags |= kFlagDropMaster;
  return m;
}

Message Message::invalidate_ack(NodeId from, NodeId to) {
  Message m;
  m.kind = MsgKind::kInvalidateAck;
  m.from = from;
  m.to = to;
  return m;
}

Message Message::write_ownership(NodeId from, NodeId to, const BlockId& b) {
  Message m;
  m.kind = MsgKind::kWriteOwnership;
  m.from = from;
  m.to = to;
  m.block = b;
  return m;
}

Message Message::write_ownership_reply(NodeId from, NodeId to, const BlockId& b,
                                       bool transferred, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kWriteOwnershipReply;
  m.from = from;
  m.to = to;
  m.block = b;
  m.bytes = bytes;
  if (transferred) m.flags |= kFlagTransferred;
  return m;
}

Message Message::dir_request(MsgKind kind, NodeId from, NodeId home,
                             const BlockId& b) {
  Message m;
  m.kind = kind;
  m.from = from;
  m.to = home;
  m.block = b;
  return m;
}

Message Message::dir_claim_forwarded(NodeId from, NodeId home,
                                     const BlockId& b, NodeId forwarder,
                                     std::uint64_t epoch) {
  Message m;
  m.kind = MsgKind::kDirClaimForwarded;
  m.from = from;
  m.to = home;
  m.block = b;
  m.count = forwarder;  // the forwarding node, credited as hint observer
  m.age = epoch;
  return m;
}

Message Message::dir_file_request(MsgKind kind, NodeId from, NodeId home,
                                  FileId file, std::uint64_t epoch) {
  Message m;
  m.kind = kind;
  m.from = from;
  m.to = home;
  m.block = BlockId{file, 0};
  m.age = epoch;
  return m;
}

Message Message::dir_reply(NodeId home, NodeId to, const BlockId& b,
                           NodeId result, std::uint64_t epoch, bool granted,
                           bool misdirected) {
  Message m;
  m.kind = MsgKind::kDirReply;
  m.from = home;
  m.to = to;
  m.block = b;
  m.count = result;
  m.age = epoch;
  if (granted) m.flags |= kFlagGranted;
  if (misdirected) m.flags |= kFlagMisdirected;
  return m;
}

Message Message::dir_batch_request(NodeId from, NodeId home,
                                   std::uint32_t items, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kDirBatchRequest;
  m.from = from;
  m.to = home;
  m.count = items;
  m.bytes = bytes;
  return m;
}

Message Message::dir_batch_reply(NodeId home, NodeId to, std::uint32_t items,
                                 std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kDirBatchReply;
  m.from = home;
  m.to = to;
  m.count = items;
  m.bytes = bytes;
  return m;
}

NodeId Message::dir_result() const {
  // The widening convention only works while NodeId fits in `count`; batch
  // replies carry NodeIds in the payload instead and must never come here.
  static_assert(sizeof(NodeId) < sizeof(std::uint32_t),
                "kDirReply widens the result NodeId into `count`");
  assert(kind == MsgKind::kDirReply &&
         "dir_result() is the singles kDirReply convention; kDirBatchReply "
         "results live in the payload");
  return static_cast<NodeId>(count);
}

Message Message::storage_read(NodeId from, NodeId home, FileId file,
                              std::uint64_t offset, std::uint64_t length) {
  Message m;
  m.kind = MsgKind::kStorageRead;
  m.from = from;
  m.to = home;
  m.block = BlockId{file, 0};
  m.age = offset;
  m.bytes = length;
  return m;
}

Message Message::storage_data(NodeId home, NodeId to, FileId file,
                              std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kStorageData;
  m.from = home;
  m.to = to;
  m.block = BlockId{file, 0};
  m.bytes = bytes;
  return m;
}

Message Message::storage_write(NodeId from, NodeId home, FileId file,
                               std::uint64_t offset, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kStorageWrite;
  m.from = from;
  m.to = home;
  m.block = BlockId{file, 0};
  m.age = offset;
  m.bytes = bytes;
  return m;
}

Message Message::storage_ack(NodeId home, NodeId to, FileId file) {
  Message m;
  m.kind = MsgKind::kStorageAck;
  m.from = home;
  m.to = to;
  m.block = BlockId{file, 0};
  return m;
}

Message Message::barrier(NodeId from, NodeId home, std::uint32_t phase) {
  Message m;
  m.kind = MsgKind::kBarrier;
  m.from = from;
  m.to = home;
  m.count = phase;
  return m;
}

Message Message::barrier_reply(NodeId home, NodeId to, std::uint32_t phase,
                               bool granted) {
  Message m;
  m.kind = MsgKind::kBarrierReply;
  m.from = home;
  m.to = to;
  m.count = phase;
  if (granted) m.flags |= kFlagGranted;
  return m;
}

Message Message::dir_purge_node(NodeId from, NodeId home, NodeId node) {
  Message m;
  m.kind = MsgKind::kDirPurgeNode;
  m.from = from;
  m.to = home;
  m.count = node;
  return m;
}

Message Message::stats_pull(NodeId from, NodeId to) {
  Message m;
  m.kind = MsgKind::kStatsPull;
  m.from = from;
  m.to = to;
  return m;
}

Message Message::stats_reply(NodeId from, NodeId to, std::uint64_t bytes) {
  Message m;
  m.kind = MsgKind::kStatsReply;
  m.from = from;
  m.to = to;
  m.bytes = bytes;
  return m;
}

bool is_reply(MsgKind kind) {
  switch (kind) {
    case MsgKind::kBlockLookupReply:
    case MsgKind::kMasterClaimReply:
    case MsgKind::kPeerFetchReply:
    case MsgKind::kMasterForwardAck:
    case MsgKind::kInvalidateAck:
    case MsgKind::kWriteOwnershipReply:
    case MsgKind::kDirReply:
    case MsgKind::kStorageData:
    case MsgKind::kStorageAck:
    case MsgKind::kBarrierReply:
    case MsgKind::kStatsReply:
    case MsgKind::kDirBatchReply:
      return true;
    default:
      return false;
  }
}

const char* kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kBlockLookup: return "block-lookup";
    case MsgKind::kBlockLookupReply: return "block-lookup-reply";
    case MsgKind::kMasterClaim: return "master-claim";
    case MsgKind::kMasterClaimReply: return "master-claim-reply";
    case MsgKind::kPeerFetch: return "peer-fetch";
    case MsgKind::kPeerFetchReply: return "peer-fetch-reply";
    case MsgKind::kRedirect: return "redirect";
    case MsgKind::kHomeRead: return "home-read";
    case MsgKind::kBlockData: return "block-data";
    case MsgKind::kMasterForward: return "master-forward";
    case MsgKind::kMasterForwardAck: return "master-forward-ack";
    case MsgKind::kEvictionNotice: return "eviction-notice";
    case MsgKind::kInvalidateFile: return "invalidate-file";
    case MsgKind::kInvalidateBlock: return "invalidate-block";
    case MsgKind::kInvalidateAck: return "invalidate-ack";
    case MsgKind::kWriteOwnership: return "write-ownership";
    case MsgKind::kWriteOwnershipReply: return "write-ownership-reply";
    case MsgKind::kDirLookupRead: return "dir-lookup-read";
    case MsgKind::kDirLookup: return "dir-lookup";
    case MsgKind::kDirTryClaim: return "dir-try-claim";
    case MsgKind::kDirBeginForward: return "dir-begin-forward";
    case MsgKind::kDirClaimForwarded: return "dir-claim-forwarded";
    case MsgKind::kDirForwardRejected: return "dir-forward-rejected";
    case MsgKind::kDirMasterDropped: return "dir-master-dropped";
    case MsgKind::kDirWriteClaim: return "dir-write-claim";
    case MsgKind::kDirWriteBegin: return "dir-write-begin";
    case MsgKind::kDirWriteEnd: return "dir-write-end";
    case MsgKind::kDirReadCacheable: return "dir-read-cacheable";
    case MsgKind::kDirInvalidateFile: return "dir-invalidate-file";
    case MsgKind::kDirReply: return "dir-reply";
    case MsgKind::kStorageRead: return "storage-read";
    case MsgKind::kStorageData: return "storage-data";
    case MsgKind::kStorageWrite: return "storage-write";
    case MsgKind::kStorageAck: return "storage-ack";
    case MsgKind::kBarrier: return "barrier";
    case MsgKind::kBarrierReply: return "barrier-reply";
    case MsgKind::kDirPurgeNode: return "dir-purge-node";
    case MsgKind::kStatsPull: return "stats-pull";
    case MsgKind::kStatsReply: return "stats-reply";
    case MsgKind::kDirBatchRequest: return "dir-batch-request";
    case MsgKind::kDirBatchReply: return "dir-batch-reply";
  }
  return "unknown";
}

WireBytes encode(const Message& m) {
  WireBytes out{};
  std::byte* p = out.data();
  p[0] = static_cast<std::byte>(m.kind);
  put_u16(p + 1, m.from);
  put_u16(p + 3, m.to);
  put_u32(p + 5, m.block.file);
  put_u32(p + 9, m.block.index);
  put_u32(p + 13, m.count);
  put_u64(p + 17, m.age);
  put_u64(p + 25, m.bytes);
  p[33] = static_cast<std::byte>(m.flags);
  put_u64(p + 34, m.trace);
  put_u64(p + 42, m.span);
  return out;
}

std::optional<Message> decode(std::span<const std::byte> wire) {
  if (wire.size() < kWireSize) return std::nullopt;
  const std::byte* p = wire.data();
  const auto raw_kind = std::to_integer<std::uint8_t>(p[0]);
  if (raw_kind >= kMsgKindCount) return std::nullopt;
  Message m;
  m.kind = static_cast<MsgKind>(raw_kind);
  m.from = get_u16(p + 1);
  m.to = get_u16(p + 3);
  m.block.file = get_u32(p + 5);
  m.block.index = get_u32(p + 9);
  m.count = get_u32(p + 13);
  m.age = get_u64(p + 17);
  m.bytes = get_u64(p + 25);
  m.flags = std::to_integer<std::uint8_t>(p[33]);
  m.trace = get_u64(p + 34);
  m.span = get_u64(p + 42);
  if ((m.flags & ~(kFlagMisdirected | kFlagHit | kFlagAccepted | kFlagPromoted |
                   kFlagDropMaster | kFlagTransferred | kFlagGranted)) != 0) {
    return std::nullopt;
  }
  return m;
}

}  // namespace coop::proto
