// Minimal --key=value flag parser used by examples and bench binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace coop::util {

/// Parses flags of the form `--key=value` or bare `--key` (value "true").
/// Non-flag arguments are collected as positionals. Unknown flags are kept;
/// callers decide what to reject.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// All parsed flag keys, for validation / usage messages.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace coop::util
