// CCM_AUDIT — compile-time-gated protocol invariant auditing.
//
// Two layers:
//
//  1. *Audit entry points* (ClusterCache::audit, WholeFileCache::audit,
//     Engine::audit_state, CcmCluster::audit, ...) are always compiled. They
//     sweep a component's state, report every violated invariant through
//     coop::audit::report, and return the number of violations. Tests install
//     a collecting handler (audit::Recorder) and corrupt state deliberately
//     to prove each invariant trips.
//
//  2. *Auto hooks* — the calls that run those sweeps after every protocol
//     event — are compiled in only when the build defines CCM_AUDIT_ENABLED=1
//     (CMake option -DCOOPCACHE_AUDIT=ON). A normal build pays nothing; the
//     audit CI job replays the tier-1 suites with every event audited.
//
// Threading: report() first consults a per-thread handler overlay
// (set_thread_handler — e.g. a sweep worker dumping its own tracer's
// in-flight spans), then the process-global slot (set_handler, guarded by a
// mutex). Concurrent reporters are safe: the Recorder serializes its own
// collection internally.
//
// Without an installed handler a violation prints to stderr and aborts: an
// audited build must not keep simulating from a corrupt state, because every
// figure depends on the protocol accounting being exact.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef CCM_AUDIT_ENABLED
#define CCM_AUDIT_ENABLED 0
#endif

// Expands `expr` only in audited builds. Use at protocol-event sites:
//   CCM_AUDIT_HOOK(audit("access_block"));
#if CCM_AUDIT_ENABLED
#define CCM_AUDIT_HOOK(expr) \
  do {                       \
    expr;                    \
  } while (false)
#else
#define CCM_AUDIT_HOOK(expr) \
  do {                       \
  } while (false)
#endif

namespace coop::audit {

/// One violated invariant: which rule, and the state that violated it.
struct Violation {
  std::string invariant;  // stable id, e.g. "cache-single-master"
  std::string detail;     // human-readable specifics
};

using Handler = std::function<void(const Violation&)>;

/// True when the build compiles the per-event auto hooks.
constexpr bool hooks_compiled_in() { return CCM_AUDIT_ENABLED != 0; }

/// Installs `h` as the process-global violation handler and returns the
/// previous one. Passing nullptr restores the default print-and-abort
/// handler. Thread-safe.
Handler set_handler(Handler h);

/// Installs `h` as this thread's handler overlay and returns the previous
/// overlay. While set, violations reported *on this thread* go to `h`
/// instead of the global handler; `h` may defer by calling report_global.
/// Passing nullptr removes the overlay.
Handler set_thread_handler(Handler h);

/// Routes a violation to the calling thread's overlay if one is installed,
/// else to the global handler (or print-and-abort). Thread-safe.
void report(std::string invariant, std::string detail);

/// Routes a violation directly to the global handler (or print-and-abort),
/// bypassing the calling thread's overlay — the overlay's defer path.
void report_global(const Violation& v);

/// RAII collector for tests: while alive, violations are recorded instead of
/// aborting; the previous global handler is restored on destruction.
/// Collection is internally serialized, so worker and protocol threads may
/// report concurrently; violations()/count()/saw() are meant for quiescent
/// inspection after the audited operation returns.
class Recorder {
 public:
  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t count() const {
    std::scoped_lock lock(mu_);
    return violations_.size();
  }
  [[nodiscard]] bool saw(const std::string& invariant) const;
  void clear() {
    std::scoped_lock lock(mu_);
    violations_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
  Handler previous_;
};

}  // namespace coop::audit

// Always-compiled invariant check, used *inside* audit entry points:
// evaluates `cond`; on failure reports through the handler and bumps the
// caller's violation counter (a local named `ccm_audit_failures`).
#define CCM_AUDIT(cond, invariant, detail)         \
  do {                                             \
    if (!(cond)) {                                 \
      ++ccm_audit_failures;                        \
      ::coop::audit::report((invariant), (detail)); \
    }                                              \
  } while (false)
