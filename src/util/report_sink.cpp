#include "util/report_sink.hpp"

#include <iostream>

namespace coop::util {

namespace {
std::ostream* g_report_out = nullptr;
}

std::ostream& report_out() {
  return g_report_out != nullptr ? *g_report_out : std::cout;
}

std::ostream* set_report_out(std::ostream* os) {
  std::ostream* previous = g_report_out;
  g_report_out = os;
  return previous;
}

}  // namespace coop::util
