// Annotated, watchdog-instrumented mutex wrappers.
//
// Every lock in the runtime layers (src/ccm, src/net, src/proto) is one of
// these two types instead of a raw std::mutex (enforced by the ccm-lint
// `raw-mutex` rule). The wrappers buy three things:
//
//  1. Clang Thread Safety Analysis: both are CAPABILITY types, so members
//     can be GUARDED_BY them and helpers can REQUIRES them (see
//     src/util/thread_annotations.hpp). The std:: guards are not annotated,
//     so scoped locking goes through ScopedLock / UniqueLock below.
//  2. The lock-order watchdog: each instance registers a stable display
//     name with lockcheck and reports acquire/release, which is how the
//     acquisition-order graph gets its nodes (src/util/lockcheck.hpp).
//  3. Contention counters (CountingMutex): the per-shard accounting that
//     ccm_stress and CcmStats report.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "util/lockcheck.hpp"
#include "util/thread_annotations.hpp"

namespace coop::util {

/// std::mutex with a lockcheck identity and TSA capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(std::string name = "util.mutex")
      : id_(lockcheck::register_lock(std::move(name))) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lockcheck::note_acquire(id_);
    mu_.lock();
    lockcheck::note_acquired(id_);
  }

  void unlock() RELEASE() {
    lockcheck::note_release(id_);
    mu_.unlock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    // No note_acquire: a try_lock cannot block, so it adds no wait-for
    // edges; on success it still enters the held set and orders later
    // acquires made while it is held.
    if (!mu_.try_lock()) return false;
    lockcheck::note_acquired(id_);
    return true;
  }

  [[nodiscard]] lockcheck::LockId lock_id() const { return id_; }

 private:
  std::mutex mu_;
  const lockcheck::LockId id_;
};

/// A mutex that counts acquisitions and contention (failed immediate
/// acquisition) so shard-lock pressure is observable per node. The runtime
/// uses one per shard; ccm_stress reports the counters.
class CAPABILITY("mutex") CountingMutex {
 public:
  explicit CountingMutex(std::string name = "util.counting_mutex")
      : id_(lockcheck::register_lock(std::move(name))) {}
  CountingMutex(const CountingMutex&) = delete;
  CountingMutex& operator=(const CountingMutex&) = delete;

  void lock() ACQUIRE() {
    lockcheck::note_acquire(id_);
    if (!mu_.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
    acquired_.fetch_add(1, std::memory_order_relaxed);
    lockcheck::note_acquired(id_);
  }

  void unlock() RELEASE() {
    lockcheck::note_release(id_);
    mu_.unlock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    acquired_.fetch_add(1, std::memory_order_relaxed);
    lockcheck::note_acquired(id_);
    return true;
  }

  // Tolerance contract for the counters: all updates and reads are
  // memory_order_relaxed on purpose. The counters are diagnostics, not
  // synchronization — contended_ ticks *before* the blocking lock()
  // completes, so a concurrent reader may transiently see contended_ ahead
  // of acquired_. What readers may rely on is that each counter on its own
  // is monotone non-decreasing between reset_counts() calls (fetch_add
  // only), which CcmCluster::stats() asserts per shard.
  [[nodiscard]] std::uint64_t acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  void reset_counts() {
    acquired_.store(0, std::memory_order_relaxed);
    contended_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] lockcheck::LockId lock_id() const { return id_; }

 private:
  std::mutex mu_;
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> contended_{0};
  const lockcheck::LockId id_;
};

/// Annotated block-scoped guard (the std:: guards carry no TSA attributes,
/// so using them on a Mutex would leave every GUARDED_BY access flagged).
template <typename M>
class SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(M& m) ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~ScopedLock() RELEASE() { mu_.unlock(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  M& mu_;
};

/// Annotated relockable guard; satisfies BasicLockable, so it is what
/// condition_variable_any waits release and reacquire through (which keeps
/// the lockcheck held set exact across a wait).
template <typename M>
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(M& m) ACQUIRE(m) : mu_(m), owns_(true) { mu_.lock(); }
  ~UniqueLock() RELEASE() {
    if (owns_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() RELEASE() {
    owns_ = false;
    mu_.unlock();
  }
  [[nodiscard]] bool owns_lock() const { return owns_; }

 private:
  M& mu_;
  bool owns_;
};

}  // namespace coop::util
