// CSV emission for figure data series so results can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace coop::util {

/// Accumulates rows and writes an RFC-4180-ish CSV (quotes cells containing
/// commas, quotes, or newlines). Used by bench binaries behind --csv=PATH.
class CsvWriter {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::string to_string() const;

  /// Writes the CSV to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coop::util
