// lockcheck — a runtime lock-order watchdog.
//
// Every coop::util::Mutex / CountingMutex registers itself here under a
// stable name ("ccm.shard[2]", "proto.directory", "net.tcp.outbox[1]", ...)
// and reports its acquisitions and releases. The watchdog maintains, per
// thread, the stack of locks currently held, and globally, the acquisition-
// order graph: an edge A -> B is recorded the first time any thread attempts
// a *blocking* acquire of B while holding A. Successful try_lock()s enter
// the held set (they order later acquires) but add no edges, because a
// try_lock cannot deadlock.
//
// A cycle in that graph is a potential deadlock even if the run never hangs:
// two threads took the same pair of locks in opposite orders and only
// scheduling luck kept them alive. Cycles are detected at edge-insertion
// time and by the audit() sweep; both report through coop::audit under the
// stable invariant id "lock-order-acyclic", with a dump naming each edge in
// the cycle and the held-lock stack of the thread that created it (see
// docs/STATIC_ANALYSIS.md "Concurrency discipline" for how to read one).
//
// Cost model: disabled (the default) every hook is one relaxed atomic load.
// Enabled, every blocking acquire takes one global registry mutex — fine for
// the audited build and the CI watchdog runs, not for benchmarking. The
// audited build (-DCOOPCACHE_AUDIT=ON) enables the watchdog at startup;
// ccm_stress / ccm_node take --lockcheck to opt in explicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace coop::util::lockcheck {

using LockId = std::uint32_t;

/// Turns the watchdog on or off at runtime (relaxed atomic; the switch is
/// advisory — acquisitions already in flight may be missed around a toggle,
/// and note_release tolerates releases of locks it never saw acquired).
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Registers a lock under a stable display name and returns its id. Called
/// once per mutex from the wrapper constructors; cheap, always active so a
/// mid-run set_enabled(true) still knows every lock's name.
LockId register_lock(std::string name);

/// The display name `id` was registered under.
[[nodiscard]] std::string lock_name(LockId id);

/// Hook: the calling thread is about to *block* acquiring `id`. Records
/// held -> id edges and reports a "lock-order-acyclic" violation if any new
/// edge closes a cycle (each distinct edge is checked once, on insertion).
void note_acquire(LockId id);

/// Hook: the calling thread now holds `id` (blocking acquire completed or
/// try_lock succeeded). Pushes onto the thread's held stack.
void note_acquired(LockId id);

/// Hook: the calling thread released `id`.
void note_release(LockId id);

/// Audit entry point (always compiled, like the other audit() sweeps):
/// checks the whole recorded graph for cycles and reports each under
/// "lock-order-acyclic". Returns the number of violations.
std::size_t audit(const char* context);

/// Number of cycle reports since the last reset() (edge-insertion detections
/// and audit() sweeps both count).
[[nodiscard]] std::uint64_t cycles_detected();

/// The most recent cycle dump, empty if none. For tests and bench reports.
[[nodiscard]] std::string last_cycle();

/// Drops the recorded graph, the cycle counter, and the calling thread's
/// held stack (registrations and names survive). Test isolation only.
void reset();

}  // namespace coop::util::lockcheck
