// Small formatting helpers shared by the harness, benches, and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coop::util {

/// Formats a byte count with a binary-unit suffix, e.g. "64.0 MiB".
std::string human_bytes(std::uint64_t bytes);

/// Formats a double with the given number of decimal places.
std::string fixed(double value, int places = 2);

/// Formats a fraction (0..1) as a percentage string, e.g. "83.4%".
std::string percent(double fraction, int places = 1);

/// Column-aligned ASCII table used by every figure/table bench to print the
/// rows the paper reports.
class TextTable {
 public:
  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with single-space-padded, right-aligned columns
  /// (left-aligned first column) and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coop::util
