// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang's `thread_safety` attributes when compiling with
// clang and to nothing elsewhere, so the annotations are pure documentation
// under GCC and a compile-time proof obligation under the CI `thread-safety`
// job (`-DCOOPCACHE_THREAD_SAFETY=ON`, clang, `-Wthread-safety -Werror`).
//
// Conventions in this tree:
//  - Lock members are `coop::util::Mutex` / `coop::util::CountingMutex`
//    (src/util/mutex.hpp), both marked CAPABILITY. Raw `std::mutex` members
//    in src/ccm and src/net are rejected by the ccm-lint `raw-mutex` rule.
//  - Data protected by a lock is marked GUARDED_BY(mu_); helpers that must
//    be called with the lock held are marked REQUIRES(mu_) and named
//    `*_locked` by the existing convention.
//  - NO_THREAD_SAFETY_ANALYSIS is a last resort for lock-juggling patterns
//    the analysis cannot express (each use carries a justification comment;
//    the tree budget is three).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CCM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CCM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) CCM_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY CCM_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) CCM_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) CCM_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) CCM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) CCM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) CCM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define ACQUIRE(...) CCM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define RELEASE(...) CCM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) CCM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) CCM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define RETURN_CAPABILITY(x) CCM_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS CCM_THREAD_ANNOTATION(no_thread_safety_analysis)
