#include "util/format.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>

namespace coop::util {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string fixed(double value, int places) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", places, value);
  return buf;
}

std::string percent(double fraction, int places) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", places, fraction * 100.0);
  return buf;
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - std::min(widths[c], cell.size());
      if (c == 0) {
        out += cell + std::string(pad, ' ');
      } else {
        out += std::string(pad, ' ') + cell;
      }
      if (c + 1 < widths.size()) out += "  ";
    }
    out += '\n';
    return out;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::print() const { std::cout << to_string() << std::flush; }

}  // namespace coop::util
