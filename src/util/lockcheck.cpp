#include "util/lockcheck.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/audit.hpp"

namespace coop::util::lockcheck {
namespace {

// The audited build watches by default; everyone else opts in (benches take
// --lockcheck, tests call set_enabled).
std::atomic<bool> g_enabled{CCM_AUDIT_ENABLED != 0};

struct Registry {
  std::mutex mu;
  std::vector<std::string> names;  // index == LockId
  // from -> to -> sample context of the thread that first recorded the edge.
  std::map<LockId, std::map<LockId, std::string>> edges;
  std::uint64_t cycles = 0;
  std::string last_cycle;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::vector<LockId>& held_stack() {
  thread_local std::vector<LockId> held;
  return held;
}

// All helpers below run with registry().mu held by the caller.

std::string name_locked(const Registry& r, LockId id) {
  if (id < r.names.size()) return r.names[id];
  return "lock#" + std::to_string(id);
}

std::string held_names_locked(const Registry& r,
                              const std::vector<LockId>& held) {
  std::string out = "[";
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (i != 0) out += ", ";
    out += name_locked(r, held[i]);
  }
  out += "]";
  return out;
}

// DFS from `cur` looking for `target`; fills `path` with the node sequence
// cur..target (inclusive) when found.
bool find_path_locked(const Registry& r, LockId cur, LockId target,
                      std::set<LockId>& seen, std::vector<LockId>& path) {
  path.push_back(cur);
  if (cur == target) return true;
  const auto eit = r.edges.find(cur);
  if (eit != r.edges.end()) {
    for (const auto& [next, sample] : eit->second) {
      (void)sample;
      if (!seen.insert(next).second) continue;
      if (find_path_locked(r, next, target, seen, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

// Formats the cycle from -> path[0] -> ... -> path.back() (== from), one
// line per edge with the recorded holder context.
std::string format_cycle_locked(const Registry& r, LockId from,
                                const std::vector<LockId>& path) {
  std::ostringstream os;
  os << "lock-order cycle: " << name_locked(r, from);
  for (const LockId n : path) os << " -> " << name_locked(r, n);
  LockId prev = from;
  for (const LockId n : path) {
    os << "\n  edge " << name_locked(r, prev) << " -> " << name_locked(r, n);
    const auto eit = r.edges.find(prev);
    if (eit != r.edges.end()) {
      const auto sit = eit->second.find(n);
      if (sit != eit->second.end()) os << ": " << sit->second;
    }
    prev = n;
  }
  return os.str();
}

// Gray-stack DFS over the whole graph; fills `cycle` with the node sequence
// of one cycle (cycle[0] -> ... -> cycle.back() -> cycle[0]) when found.
enum class Color : std::uint8_t { kWhite, kGray, kBlack };

bool full_scan_locked(const Registry& r, std::map<LockId, Color>& color,
                      std::vector<LockId>& stack, std::vector<LockId>& cycle,
                      LockId node) {
  color[node] = Color::kGray;
  stack.push_back(node);
  const auto eit = r.edges.find(node);
  if (eit != r.edges.end()) {
    for (const auto& [next, sample] : eit->second) {
      (void)sample;
      const auto cit = color.find(next);
      const Color c = cit == color.end() ? Color::kWhite : cit->second;
      if (c == Color::kGray) {
        const auto sit = std::find(stack.begin(), stack.end(), next);
        cycle.assign(sit, stack.end());
        return true;
      }
      if (c == Color::kWhite &&
          full_scan_locked(r, color, stack, cycle, next)) {
        return true;
      }
    }
  }
  stack.pop_back();
  color[node] = Color::kBlack;
  return false;
}

}  // namespace

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

LockId register_lock(std::string name) {
  auto& r = registry();
  std::scoped_lock lock(r.mu);
  r.names.push_back(std::move(name));
  return static_cast<LockId>(r.names.size() - 1);
}

std::string lock_name(LockId id) {
  auto& r = registry();
  std::scoped_lock lock(r.mu);
  return name_locked(r, id);
}

void note_acquire(LockId id) {
  if (!enabled()) return;
  const auto& held = held_stack();
  if (held.empty()) return;
  // Reports are gathered under the registry mutex and emitted after it is
  // released: the audit handler may abort, record, or take its own locks.
  std::vector<std::string> reports;
  {
    auto& r = registry();
    std::scoped_lock lock(r.mu);
    for (const LockId from : held) {
      auto& out = r.edges[from];
      if (out.find(id) != out.end()) continue;  // known edge, checked once
      std::ostringstream sample;
      sample << "thread " << std::this_thread::get_id() << " acquiring "
             << name_locked(r, id) << " while holding "
             << held_names_locked(r, held);
      out.emplace(id, sample.str());
      // The new edge from -> id closes a cycle iff id already reaches from
      // (id == from is the degenerate same-thread relock).
      std::set<LockId> seen{id};
      std::vector<LockId> path;
      if (find_path_locked(r, id, from, seen, path)) {
        ++r.cycles;
        r.last_cycle = format_cycle_locked(r, from, path);
        reports.push_back(r.last_cycle);
      }
    }
  }
  for (auto& dump : reports) {
    coop::audit::report("lock-order-acyclic", std::move(dump));
  }
}

void note_acquired(LockId id) {
  if (!enabled()) return;
  held_stack().push_back(id);
}

void note_release(LockId id) {
  if (!enabled()) return;
  auto& held = held_stack();
  const auto it = std::find(held.rbegin(), held.rend(), id);
  if (it != held.rend()) held.erase(std::next(it).base());
}

std::size_t audit(const char* context) {
  std::size_t ccm_audit_failures = 0;
  std::string dump;
  {
    auto& r = registry();
    std::scoped_lock lock(r.mu);
    std::map<LockId, Color> color;
    std::vector<LockId> stack;
    std::vector<LockId> cycle;
    for (const auto& [node, out] : r.edges) {
      (void)out;
      const auto cit = color.find(node);
      if (cit != color.end() && cit->second != Color::kWhite) continue;
      if (full_scan_locked(r, color, stack, cycle, node)) break;
    }
    if (!cycle.empty()) {
      std::vector<LockId> path(cycle.begin() + 1, cycle.end());
      path.push_back(cycle.front());
      dump = format_cycle_locked(r, cycle.front(), path);
      ++r.cycles;
      r.last_cycle = dump;
    }
  }
  CCM_AUDIT(dump.empty(), "lock-order-acyclic",
            dump + " [" + context + "]");
  return ccm_audit_failures;
}

std::uint64_t cycles_detected() {
  auto& r = registry();
  std::scoped_lock lock(r.mu);
  return r.cycles;
}

std::string last_cycle() {
  auto& r = registry();
  std::scoped_lock lock(r.mu);
  return r.last_cycle;
}

void reset() {
  auto& r = registry();
  {
    std::scoped_lock lock(r.mu);
    r.edges.clear();
    r.cycles = 0;
    r.last_cycle.clear();
  }
  held_stack().clear();
}

}  // namespace coop::util::lockcheck
