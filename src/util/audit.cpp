#include "util/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace coop::audit {

namespace {

std::mutex g_mu;     // guards g_handler
Handler g_handler;   // NOLINT(cert-err58-cpp)

// Per-thread overlay: a sweep worker can route its own violations (e.g. to
// dump its own tracer's in-flight spans) without racing other workers for
// the global slot.
thread_local Handler t_handler;  // NOLINT(cert-err58-cpp)

void default_handler(const Violation& v) {
  std::fprintf(stderr, "CCM_AUDIT violation [%s]: %s\n", v.invariant.c_str(),
               v.detail.c_str());
  std::abort();
}

}  // namespace

Handler set_handler(Handler h) {
  std::scoped_lock lock(g_mu);
  Handler previous = std::move(g_handler);
  g_handler = std::move(h);
  return previous;
}

Handler set_thread_handler(Handler h) {
  Handler previous = std::move(t_handler);
  t_handler = std::move(h);
  return previous;
}

void report_global(const Violation& v) {
  Handler h;
  {
    // Copy out so a slow handler never holds the slot lock.
    std::scoped_lock lock(g_mu);
    h = g_handler;
  }
  if (h) {
    h(v);
  } else {
    default_handler(v);
  }
}

void report(std::string invariant, std::string detail) {
  const Violation v{std::move(invariant), std::move(detail)};
  if (t_handler) {
    t_handler(v);
    return;
  }
  report_global(v);
}

bool Recorder::saw(const std::string& invariant) const {
  std::scoped_lock lock(mu_);
  for (const auto& v : violations_) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

Recorder::Recorder() {
  previous_ = set_handler([this](const Violation& v) {
    std::scoped_lock lock(mu_);
    violations_.push_back(v);
  });
}

Recorder::~Recorder() { set_handler(std::move(previous_)); }

}  // namespace coop::audit
