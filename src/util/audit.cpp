#include "util/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace coop::audit {

namespace {

// Intentionally not thread-local: the threaded middleware audits under its
// cluster mutex, and test Recorders are installed before threads start.
Handler g_handler;  // NOLINT(cert-err58-cpp)

void default_handler(const Violation& v) {
  std::fprintf(stderr, "CCM_AUDIT violation [%s]: %s\n", v.invariant.c_str(),
               v.detail.c_str());
  std::abort();
}

}  // namespace

Handler set_handler(Handler h) {
  Handler previous = std::move(g_handler);
  g_handler = std::move(h);
  return previous;
}

void report(std::string invariant, std::string detail) {
  const Violation v{std::move(invariant), std::move(detail)};
  if (g_handler) {
    g_handler(v);
  } else {
    default_handler(v);
  }
}

bool Recorder::saw(const std::string& invariant) const {
  for (const auto& v : violations_) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

Recorder::Recorder() {
  previous_ = set_handler(
      [this](const Violation& v) { violations_.push_back(v); });
}

Recorder::~Recorder() { set_handler(std::move(previous_)); }

}  // namespace coop::audit
