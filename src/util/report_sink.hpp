// The sanctioned output stream for library-side reporting.
//
// The cout-library lint rule bans std::cout/printf/puts under src/: libraries
// return data, the report layer prints. Code that legitimately needs a text
// sink below the harness writes to report_out() instead — it defaults to
// std::cout but is redirectable, so tests and embedders can capture or
// silence it. `ccm-lint --fix` rewrites stray `std::cout` uses in src/ to
// this function.
#pragma once

#include <iosfwd>

namespace coop::util {

/// The current report stream (std::cout unless redirected).
std::ostream& report_out();

/// Redirects report_out() to `os`; nullptr restores std::cout. Returns the
/// previous override (nullptr when none was set). Not thread-safe — redirect
/// before spawning workers.
std::ostream* set_report_out(std::ostream* os);

}  // namespace coop::util
