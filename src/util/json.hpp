// Minimal streaming JSON writer for machine-readable run reports.
//
// No external dependency (the container is frozen), no DOM: callers stream
// objects/arrays in order and get a compact, valid JSON string out. Doubles
// are emitted with enough digits to round-trip, so reports are comparable
// across runs bit-for-bit when the underlying metrics are.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coop::util {

/// Streaming JSON emitter. Usage:
///
///   JsonWriter j;
///   j.begin_object();
///   j.key("name").value("fig2");
///   j.key("cells").begin_array();
///   ...
///   j.end_array();
///   j.end_object();
///   std::string doc = j.str();
///
/// The writer tracks nesting and comma placement; mismatched begin/end or a
/// value without a pending key inside an object is a programming error and
/// asserts in debug builds (and produces invalid JSON rather than UB in
/// release).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by exactly one value or
  /// begin_object/begin_array.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document so far. Complete (all scopes closed) documents are valid
  /// JSON.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// True once every opened scope has been closed again.
  [[nodiscard]] bool complete() const { return stack_.empty() && began_; }

  /// JSON string escaping (quotes not included).
  static std::string escape(std::string_view s);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void comma_for_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  bool began_ = false;
};

}  // namespace coop::util
