#include "util/json.hpp"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace coop::util {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  began_ = true;
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already placed the comma
  }
  if (!stack_.empty()) {
    assert(stack_.back() == Scope::kArray && "object values need a key()");
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  out_ += '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!key_pending_);
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out_ += shorter;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

}  // namespace coop::util
