#include "util/csv.hpp"

#include <fstream>

namespace coop::util {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    out += escape(row[i]);
  }
  out += '\n';
}

}  // namespace

void CsvWriter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::string out;
  if (!header_.empty()) append_row(out, header_);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace coop::util
