// Disk model with seek/contiguity accounting and pluggable scheduling.
//
// The paper found that "one disk is always the performance bottleneck because
// of interleaving of request streams" (§5): when block streams from different
// files interleave at the disk, every access pays seeks (their example: 12
// seeks instead of 4 for two interleaved 64 KB units). CC-Sched adds "a
// simple scheduling algorithm in our queue of disk requests" to regroup
// streams. This model reproduces both behaviors:
//  * a block read is *contiguous* (transfer only) when it immediately follows
//    the previously-serviced block of the same file within one 64 KB unit;
//    otherwise it pays positioning + metadata seeks;
//  * the FIFO scheduler services requests in arrival order (interleaving
//    preserved); the seek-aware scheduler first looks for a pending request
//    contiguous with the last serviced block, then for any request on the
//    same file, then falls back to FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace coop::hw {

enum class DiskSched { kFifo, kSeekAware };

/// One block read of a streamed request.
struct BlockRead {
  std::uint32_t file;
  std::uint32_t index;
  std::uint32_t bytes;
};

class Disk {
 public:
  Disk(sim::Engine& engine, const ModelParams& params, DiskSched sched,
       std::string name = "disk");

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues a read of block `block_index` of `file` (`bytes` long, normally
  /// one block; the final block of a file may be short). `on_done` fires when
  /// the block is off the platter.
  void read_block(std::uint32_t file, std::uint32_t block_index,
                  std::uint32_t bytes, sim::Callback on_done);

  /// Observer invoked whenever the pending-request count changes, in
  /// deterministic sim-event order (observability timeline feed).
  using QueueProbe = std::function<void(sim::SimTime now, std::size_t depth)>;
  void set_queue_probe(QueueProbe probe) { queue_probe_ = std::move(probe); }

  /// Forwards completed busy intervals to `sink` (see sim::BusyTracker).
  void set_busy_interval_sink(sim::BusyTracker::IntervalSink sink) {
    busy_.set_interval_sink(std::move(sink));
  }

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_flag_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t seeks() const { return seeks_; }
  [[nodiscard]] std::uint64_t contiguous_reads() const {
    return completed_ - seek_reads_;
  }
  [[nodiscard]] double utilization(sim::SimTime now) const {
    return busy_.utilization(now);
  }
  [[nodiscard]] double mean_wait() const { return wait_.mean(); }

  void reset_stats();

 private:
  struct Request {
    std::uint32_t file;
    std::uint32_t block;
    std::uint32_t bytes;
    sim::SimTime enqueued;
    sim::Callback on_done;
  };

  /// True when `r` continues the last serviced read within one 64 KB unit.
  [[nodiscard]] bool is_contiguous(const Request& r) const;

  /// Index of the next request to service per the scheduler.
  [[nodiscard]] std::size_t pick_next() const;

  void start_next();
  void finish(Request r);

  sim::Engine& engine_;
  ModelParams params_;
  DiskSched sched_;
  std::string name_;

  std::deque<Request> queue_;
  bool busy_flag_ = false;
  // Head position: last serviced (file, block); block 0xFFFFFFFF = unknown.
  std::uint32_t last_file_ = 0xFFFFFFFF;
  std::uint32_t last_block_ = 0xFFFFFFFF;

  std::uint64_t completed_ = 0;
  std::uint64_t seeks_ = 0;
  std::uint64_t seek_reads_ = 0;
  sim::BusyTracker busy_;
  sim::Accumulator wait_;
  QueueProbe queue_probe_;
};

/// Streams `seq` through `disk` one block at a time: each read is enqueued
/// only when the previous one completes, the way demand-paged request streams
/// hit a disk. This is what lets concurrent streams interleave under FIFO
/// (the paper's §5 bottleneck) — and what the seek-aware scheduler untangles.
/// Fires `on_done` after the last block.
void read_sequence(Disk& disk, std::vector<BlockRead> seq,
                   sim::Callback on_done);

}  // namespace coop::hw
