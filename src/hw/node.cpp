#include "hw/node.hpp"

#include <algorithm>

namespace coop::hw {

namespace {
std::string component_name(const char* what, std::uint16_t id) {
  return std::string(what) + "-" + std::to_string(id);
}
}  // namespace

Node::Node(sim::Engine& engine, const ModelParams& params, DiskSched sched,
           std::uint16_t id)
    : id_(id),
      cpu_(engine, component_name("cpu", id)),
      bus_(engine, component_name("bus", id)),
      nic_tx_(engine, component_name("nic-tx", id)),
      nic_rx_(engine, component_name("nic-rx", id)),
      disk_(engine, params, sched, component_name("disk", id)) {}

double Node::nic_utilization(sim::SimTime now) const {
  return std::max(nic_tx_.utilization(now), nic_rx_.utilization(now));
}

void Node::reset_stats() {
  cpu_.reset_stats();
  bus_.reset_stats();
  nic_tx_.reset_stats();
  nic_rx_.reset_stats();
  disk_.reset_stats();
}

}  // namespace coop::hw
