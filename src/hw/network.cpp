#include "hw/network.hpp"

#include <utility>

namespace coop::hw {

Network::Network(sim::Engine& engine, const ModelParams& params)
    : engine_(engine), params_(params), router_(engine, "router") {}

void Network::deliver(Node& to, double nic_ms, double bus_ms,
                      sim::Callback on_delivered) {
  to.nic_rx().submit(nic_ms,
                     [&to, bus_ms, done = std::move(on_delivered)]() mutable {
                       to.bus().submit(bus_ms, std::move(done));
                     });
}

void Network::send(Node& from, Node& to, std::uint64_t bytes,
                   sim::Callback on_delivered) {
  const double nic = params_.nic_ms(bytes);
  const double bus = params_.bus_ms(bytes);
  from.bus().submit(bus, [this, &from, &to, nic, bus,
                          done = std::move(on_delivered)]() mutable {
    from.nic_tx().submit(nic, [this, &to, nic, bus,
                               done2 = std::move(done)]() mutable {
      engine_.schedule_in(params_.net_latency_ms,
                          [this, &to, nic, bus,
                           done3 = std::move(done2)]() mutable {
                            deliver(to, nic, bus, std::move(done3));
                          });
    });
  });
}

void Network::send_control(Node& from, Node& to, sim::Callback on_delivered) {
  const double nic = params_.nic_control_ms();
  from.nic_tx().submit(nic, [this, &to, nic,
                             done = std::move(on_delivered)]() mutable {
    engine_.schedule_in(
        params_.net_latency_ms,
        [this, &to, nic, done2 = std::move(done)]() mutable {
          to.nic_rx().submit(nic, std::move(done2));
        });
  });
}

void Network::client_request(Node& to, sim::Callback on_delivered) {
  router_.submit(params_.router_ms, [this, &to,
                                     done = std::move(on_delivered)]() mutable {
    engine_.schedule_in(
        params_.net_latency_ms,
        [this, &to, done2 = std::move(done)]() mutable {
          to.nic_rx().submit(params_.nic_control_ms(), std::move(done2));
        });
  });
}

void Network::respond_to_client(Node& from, std::uint64_t bytes,
                                sim::Callback on_received) {
  const double nic = params_.nic_ms(bytes);
  const double bus = params_.bus_ms(bytes);
  from.bus().submit(bus, [this, &from, nic,
                          done = std::move(on_received)]() mutable {
    from.nic_tx().submit(nic, [this, done2 = std::move(done)]() mutable {
      engine_.schedule_in(params_.net_latency_ms, std::move(done2));
    });
  });
}

double Network::router_utilization() const {
  return router_.utilization(engine_.now());
}

}  // namespace coop::hw
