#include "hw/disk.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace coop::hw {

Disk::Disk(sim::Engine& engine, const ModelParams& params, DiskSched sched,
           std::string name)
    : engine_(engine),
      params_(params),
      sched_(sched),
      name_(std::move(name)) {}

void Disk::read_block(std::uint32_t file, std::uint32_t block_index,
                      std::uint32_t bytes, sim::Callback on_done) {
  queue_.push_back(
      Request{file, block_index, bytes, engine_.now(), std::move(on_done)});
  if (queue_probe_) queue_probe_(engine_.now(), queue_.size());
  if (!busy_flag_) start_next();
}

bool Disk::is_contiguous(const Request& r) const {
  if (r.file != last_file_) return false;
  if (last_block_ == 0xFFFFFFFF || r.block != last_block_ + 1) return false;
  // Crossing into a new 64 KB unit costs the metadata seek again.
  const std::uint32_t per_unit = params_.blocks_per_unit();
  return (r.block / per_unit) == (last_block_ / per_unit);
}

std::size_t Disk::pick_next() const {
  assert(!queue_.empty());
  if (sched_ == DiskSched::kFifo) return 0;
  // Seek-aware: (1) a request contiguous with the head position wins;
  // (2) otherwise stay on the same file to avoid stream interleaving;
  // (3) otherwise FIFO.
  std::size_t same_file = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (is_contiguous(queue_[i])) return i;
    if (same_file == queue_.size() && queue_[i].file == last_file_) {
      same_file = i;
    }
  }
  return same_file < queue_.size() ? same_file : 0;
}

void Disk::start_next() {
  assert(!queue_.empty() && !busy_flag_);
  const std::size_t idx = pick_next();
  Request r = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (queue_probe_) queue_probe_(engine_.now(), queue_.size());

  const bool contiguous = is_contiguous(r);
  if (!contiguous) {
    seeks_ += 2;  // positioning + metadata (the paper's 2-seeks-per-unit)
    ++seek_reads_;
  }
  const double service = params_.disk_block_ms(r.bytes, contiguous);

  busy_flag_ = true;
  busy_.set_busy(true, engine_.now());
  wait_.add(engine_.now() - r.enqueued);
  last_file_ = r.file;
  last_block_ = r.block;

  engine_.schedule_in(service, [this, req = std::move(r)]() mutable {
    finish(std::move(req));
  });
}

void Disk::finish(Request r) {
  ++completed_;
  busy_flag_ = false;
  // Deliver the completion BEFORE dispatching the next request: a streaming
  // reader (read_sequence) enqueues its next block inside the callback, and
  // the seek-aware scheduler must see that block to chain it contiguously.
  if (r.on_done) r.on_done();
  if (busy_flag_) return;  // the callback already restarted the disk
  if (!queue_.empty()) {
    start_next();
  } else {
    busy_.set_busy(false, engine_.now());
  }
}

namespace {

void read_sequence_from(Disk& disk,
                        std::shared_ptr<std::vector<BlockRead>> seq,
                        std::size_t at, sim::Callback on_done) {
  const BlockRead& r = (*seq)[at];
  disk.read_block(
      r.file, r.index, r.bytes,
      [&disk, seq, at, done = std::move(on_done)]() mutable {
        if (at + 1 < seq->size()) {
          read_sequence_from(disk, std::move(seq), at + 1, std::move(done));
        } else if (done) {
          done();
        }
      });
}

}  // namespace

void read_sequence(Disk& disk, std::vector<BlockRead> seq,
                   sim::Callback on_done) {
  if (seq.empty()) {
    if (on_done) on_done();
    return;
  }
  read_sequence_from(disk,
                     std::make_shared<std::vector<BlockRead>>(std::move(seq)),
                     0, std::move(on_done));
}

void Disk::reset_stats() {
  completed_ = 0;
  seeks_ = 0;
  seek_reads_ = 0;
  busy_.reset(engine_.now());
  wait_.reset();
}

}  // namespace coop::hw
