// LAN + router model.
//
// "We model a high-performance LAN, a router, and 4-8 cluster nodes. ...
// client requests are distributed among the cluster's nodes using a round
// robin DNS scheme; new requests are routed in accordance with the Cisco 76xx
// performance specifications. We assume the same network is used to
// field/service client requests and for intra-cluster communication" (§4.2).
//
// The LAN is switched: a transfer occupies the sender's NIC-tx and the
// receiver's NIC-rx (plus both memory buses), with a fixed propagation
// latency in between; there is no shared-medium contention beyond the NICs.
// The router sits only on the client-request ingress path.
#pragma once

#include <cstdint>

#include "hw/node.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/service_center.hpp"

namespace coop::hw {

class Network {
 public:
  Network(sim::Engine& engine, const ModelParams& params);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Intra-cluster data transfer of `bytes` from `from` to `to`:
  /// from.bus -> from.nic_tx -> wire latency -> to.nic_rx -> to.bus.
  /// `on_delivered` fires when the payload is in `to`'s memory.
  void send(Node& from, Node& to, std::uint64_t bytes,
            sim::Callback on_delivered);

  /// Small control message (block request, forward notice, hand-off).
  void send_control(Node& from, Node& to, sim::Callback on_delivered);

  /// A client request entering the cluster: router -> wire -> node.nic_rx.
  void client_request(Node& to, sim::Callback on_delivered);

  /// Response of `bytes` leaving `from` toward a client:
  /// from.bus -> from.nic_tx -> wire latency. `on_received` fires at the
  /// client (the client's own NIC is not modeled).
  void respond_to_client(Node& from, std::uint64_t bytes,
                         sim::Callback on_received);

  [[nodiscard]] sim::ServiceCenter& router() { return router_; }
  [[nodiscard]] double router_utilization() const;

 private:
  void deliver(Node& to, double nic_ms, double bus_ms,
               sim::Callback on_delivered);

  sim::Engine& engine_;
  ModelParams params_;
  sim::ServiceCenter router_;
};

}  // namespace coop::hw
