// Cluster node: "Each node is comprised of a CPU, NIC, and disk, all
// connected by a bus" (§4.2). Every component is a service center; the NIC is
// full-duplex (separate tx/rx queues for a switched Gb/s LAN).
#pragma once

#include <cstdint>
#include <string>

#include "hw/disk.hpp"
#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/service_center.hpp"

namespace coop::hw {

class Node {
 public:
  Node(sim::Engine& engine, const ModelParams& params, DiskSched sched,
       std::uint16_t id);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] std::uint16_t id() const { return id_; }

  [[nodiscard]] sim::ServiceCenter& cpu() { return cpu_; }
  [[nodiscard]] sim::ServiceCenter& bus() { return bus_; }
  [[nodiscard]] sim::ServiceCenter& nic_tx() { return nic_tx_; }
  [[nodiscard]] sim::ServiceCenter& nic_rx() { return nic_rx_; }
  [[nodiscard]] Disk& disk() { return disk_; }
  [[nodiscard]] const Disk& disk() const { return disk_; }

  /// Load metric used by load-aware dispatch: outstanding CPU + disk work.
  [[nodiscard]] std::size_t load() const {
    return cpu_.load() + disk_.queue_length() + (disk_.busy() ? 1 : 0);
  }

  [[nodiscard]] double cpu_utilization(sim::SimTime now) const {
    return cpu_.utilization(now);
  }
  [[nodiscard]] double disk_utilization(sim::SimTime now) const {
    return disk_.utilization(now);
  }
  /// NIC utilization: the busier direction of the full-duplex link.
  [[nodiscard]] double nic_utilization(sim::SimTime now) const;

  void reset_stats();

 private:
  std::uint16_t id_;
  sim::ServiceCenter cpu_;
  sim::ServiceCenter bus_;
  sim::ServiceCenter nic_tx_;
  sim::ServiceCenter nic_rx_;
  Disk disk_;
};

}  // namespace coop::hw
