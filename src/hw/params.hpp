// Simulation constants — the reproduction of the paper's Table 1.
//
// Every value documents the scraped literal and our reconstruction where the
// scrape lost digits (see DESIGN.md "Parameter reconstruction"). The modeled
// hardware is the paper's: 800 MHz Pentium III with 133 MHz memory bus, a VIA
// Gb/s LAN behind a Cisco 7600-class router, and an IBM Deskstar 75GXP disk.
// Sizes in the cost formulas are in KB, times in milliseconds.
#pragma once

#include <cstdint>

namespace coop::hw {

struct ModelParams {
  // ----- Geometry -----
  /// Cache/transfer block size (CCM is block-based).
  std::uint32_t block_bytes = 8 * 1024;
  /// Disk contiguity unit: the file system guarantees contiguity within
  /// 64 KB blocks and charges one metadata seek per 64 KB access (§4.2).
  std::uint32_t disk_unit_bytes = 64 * 1024;

  // ----- Request processing (CPU) -----
  /// "Parsing time: .1ms" — URL parse + HTTP header handling.
  double parse_ms = 0.1;
  /// "Serving time: .1 + (Size/115) ms" — send content from local memory.
  double serve_base_ms = 0.1;
  double serve_per_kb_ms = 1.0 / 115.0;

  // ----- Block operations (CPU; specific to CCM) -----
  // The scrape lost leading zeros throughout this group (".7ms" for serving
  // a peer block cannot be 0.7 — it would make remote hits slower than
  // disk). We read every block-op constant as 10x smaller than the literal:
  // ~10-90k cycles on the PIII-800, consistent with block bookkeeping, and
  // the only reading that reproduces the paper's measured CC-NEM/L2S ratios
  // (>=90% at the memory-rich end; see DESIGN.md).
  /// "Process a file request: .3 + (NBlocks*.1) ms" -> 0.03 + 0.01/block.
  double process_request_base_ms = 0.03;
  double process_request_per_block_ms = 0.01;
  /// "Serve peer block request: .7ms" -> 0.07.
  double serve_peer_block_ms = 0.07;
  /// "Cache a new block: .1ms" -> 0.01.
  double cache_block_ms = 0.01;
  /// "Process an evicted master block: .16ms" -> 0.016.
  double evict_master_ms = 0.016;

  // ----- Disk (IBM Deskstar 75GXP) -----
  /// Positioning + metadata seek charged per non-contiguous access. The two
  /// seeks of the paper's "2 seeks per 64 KB unit" example are split below.
  double disk_seek_ms = 6.5;
  /// Media transfer: ~30 MB/s.
  double disk_per_kb_ms = 1.0 / 30.0;

  // ----- Bus (133 MHz x 8 B ~ 1 GB/s) -----
  /// Reconstructed from ".1 + (Size/13172)": 0.01 + Size/1317 (KB, ms).
  double bus_base_ms = 0.01;
  double bus_per_kb_ms = 1.0 / 1317.0;

  // ----- Network (VIA Gb/s LAN) -----
  /// One-way latency; the paper's §5 cites a round trip of 80-100 us.
  double net_latency_ms = 0.038;
  /// NIC wire rate: 1 Gb/s = 125 KB per ms.
  double nic_per_kb_ms = 1.0 / 125.0;
  /// Size of a control message (block request, forward notice) in KB.
  double control_kb = 0.25;
  /// Router forwarding cost per client request (Cisco 7600 class).
  double router_ms = 0.01;

  // ----- Derived helpers (Size in bytes at the call sites) -----
  [[nodiscard]] static double kb(std::uint64_t bytes) {
    return static_cast<double>(bytes) / 1024.0;
  }

  [[nodiscard]] double serve_ms(std::uint64_t bytes) const {
    return serve_base_ms + serve_per_kb_ms * kb(bytes);
  }
  [[nodiscard]] double process_request_ms(std::uint32_t nblocks) const {
    return process_request_base_ms + process_request_per_block_ms * nblocks;
  }
  /// Disk service time for one block; `contiguous` means the head is already
  /// positioned right before this block within the same 64 KB unit.
  [[nodiscard]] double disk_block_ms(std::uint64_t bytes,
                                     bool contiguous) const {
    const double transfer = disk_per_kb_ms * kb(bytes);
    // Non-contiguous accesses pay the positioning seek plus the per-64KB
    // metadata seek (the paper's "2 seeks" for a fresh unit).
    return contiguous ? transfer : 2.0 * disk_seek_ms + transfer;
  }
  [[nodiscard]] double bus_ms(std::uint64_t bytes) const {
    return bus_base_ms + bus_per_kb_ms * kb(bytes);
  }
  [[nodiscard]] double nic_ms(std::uint64_t bytes) const {
    return nic_per_kb_ms * kb(bytes);
  }
  [[nodiscard]] double nic_control_ms() const {
    return nic_per_kb_ms * control_kb;
  }

  [[nodiscard]] std::uint32_t blocks_per_unit() const {
    return disk_unit_bytes / block_bytes;
  }
};

/// Validates internal consistency (positive costs, unit divisible by block).
/// Returns true when the parameter set is usable.
bool validate(const ModelParams& p);

}  // namespace coop::hw
