#include "hw/params.hpp"

namespace coop::hw {

bool validate(const ModelParams& p) {
  if (p.block_bytes == 0 || p.disk_unit_bytes == 0) return false;
  if (p.disk_unit_bytes % p.block_bytes != 0) return false;
  if (p.parse_ms < 0 || p.serve_base_ms < 0 || p.serve_per_kb_ms <= 0) {
    return false;
  }
  if (p.disk_seek_ms <= 0 || p.disk_per_kb_ms <= 0) return false;
  if (p.bus_per_kb_ms <= 0 || p.nic_per_kb_ms <= 0) return false;
  if (p.net_latency_ms < 0 || p.router_ms < 0) return false;
  return true;
}

}  // namespace coop::hw
