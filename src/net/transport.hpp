// The pluggable node-to-node transport behind the middleware runtime.
//
// CcmCluster speaks only this interface: workers issue blocking RPCs with
// call(), protocol threads pull requests with receive() and answer with
// post(). Two implementations exist:
//
//  * InProcTransport — every node lives in this process; delivery is a
//    Mailbox<Envelope> hop and payloads are shared by pointer. This is the
//    original runtime path, unchanged in cost.
//  * TcpTransport (tcp_transport.hpp) — this process hosts one node; peers
//    are separate processes reached over length-prefixed frames on real
//    sockets (127.0.0.1 in the loopback cluster, anything routable in
//    general).
//
// Reply routing is the transport's job: an envelope whose kind satisfies
// proto::is_reply() completes the pending call() with the matching seq and
// is never surfaced through receive(). That keeps protocol threads free to
// block on their own outbound RPCs (a remote directory claim, say) while
// replies for them arrive — the receive path and the wait path never share a
// thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccm/transport.hpp"
#include "net/envelope.hpp"
#include "obs/metrics.hpp"
#include "proto/node_state.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::net {

/// Delivery counters, uniform across implementations; the socket transport
/// also fills the byte/flush fields (one flush == one write syscall, so
/// sent/flushes is the control-message batching factor). The injected_*
/// fields are filled only by FaultyTransport (net/fault.hpp); the rpc_*
/// failure counters by the call()/call_with_retry recovery paths.
struct TransportStats {
  std::uint64_t sent = 0;            // envelopes handed to the transport
  std::uint64_t received = 0;        // envelopes delivered (incl. replies)
  std::uint64_t rpcs = 0;            // call() round trips completed
  std::uint64_t bytes_sent = 0;      // framed bytes written (TCP)
  std::uint64_t bytes_received = 0;  // framed bytes read (TCP)
  std::uint64_t flushes = 0;         // write syscalls (TCP)
  std::uint64_t frame_errors = 0;    // malformed frames -> dropped peers
  std::uint64_t injected_drops = 0;      // messages swallowed by a fault rule
  std::uint64_t injected_delays = 0;     // messages held back by a fault rule
  std::uint64_t injected_duplicates = 0; // messages delivered twice
  std::uint64_t injected_reorders = 0;   // messages swapped with a successor
  std::uint64_t rpc_timeouts = 0;    // call() deadlines that expired
  std::uint64_t rpc_retries = 0;     // call_with_retry re-attempts
  std::uint64_t rpc_failures = 0;    // retry budgets exhausted -> error
  /// Send-side payload buffer copies. The zero-copy contract keeps this at 0
  /// on every transport: in-proc delivery forwards the shared BlockPtr, and
  /// the TCP writer scatter-gathers {frame header, payload} straight from
  /// the shared BlockData buffer (CI asserts == 0 on the loopback cluster).
  std::uint64_t payload_copies = 0;
};

/// Classified transport failure. Everything the transports throw on a
/// delivery path is one of these (it derives from std::runtime_error, so
/// pre-existing catch sites keep working); retry loops key off transient().
class TransportError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kTimeout,   // call() deadline expired (peer alive but unresponsive?)
    kPeerDown,  // destination unreachable / dropped mid-call / crashed
    kShutdown,  // this transport is closed — final, never retried
    kInjected,  // a FaultSchedule rule consumed the message
  };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Worth re-attempting? A shut-down transport never heals; a timed-out,
  /// crashed, or fault-injected delivery may.
  [[nodiscard]] bool transient() const { return kind_ != Kind::kShutdown; }

 private:
  Kind kind_;
};

/// Bounded-retry envelope for call(): geometric backoff, hard attempt cap.
/// The defaults ride out a few injected drops or a send-window partition
/// without masking a genuinely dead peer for more than ~a quarter second.
struct RetryPolicy {
  int attempts = 4;                       // total tries (1 = no retry)
  std::chrono::milliseconds backoff{2};   // sleep before the first retry
  double multiplier = 2.0;                // backoff growth per retry
  std::chrono::milliseconds max_backoff{100};
};

/// Shared counters a retry call-site aggregates into (thread-safe; merged
/// into TransportStats::rpc_retries / rpc_failures by the owner).
struct RetryStats {
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> failures{0};
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking request/response: assigns a fresh seq, delivers to
  /// env.msg.to, waits for the reply. Throws TransportError when the
  /// transport (or the peer) is shut down, the peer dies mid-call, or the
  /// call deadline expires — no call blocks forever on a dead peer.
  ///
  /// Non-virtual telemetry wrapper around call_impl(): when a metrics
  /// registry is installed it records one per-MsgKind latency/bytes sample
  /// per round trip (errors included). With no registry the cost is one
  /// relaxed load.
  Envelope call(Envelope env);

  /// One-way delivery to env.msg.to (replies, fire-and-forget posts).
  /// False when the destination is closed.
  virtual bool post(Envelope env) = 0;

  /// Next *request* envelope addressed to locally-hosted node `node`;
  /// nullopt once the transport is closed and drained.
  virtual std::optional<Envelope> receive(cache::NodeId node) = 0;

  /// Shuts delivery down: pending call()s fail, receive() drains then ends.
  virtual void close() = 0;

  [[nodiscard]] virtual TransportStats stats() const = 0;

  /// Best-effort view of a remote peer's published cache summary (oldest
  /// LRU age / fullness), refreshed from the piggyback fields every frame
  /// carries. proto::kNoAge / false until the peer has been heard from.
  [[nodiscard]] virtual std::uint64_t peer_oldest_age(cache::NodeId n) const {
    (void)n;
    return proto::kNoAge;
  }
  [[nodiscard]] virtual bool peer_full(cache::NodeId n) const {
    (void)n;
    return false;
  }

  /// Installs the registry call() records RPC samples into (nullptr turns
  /// recording off). Install on the *outermost* transport only — a
  /// decorator (FaultyTransport) delegates to the inner transport's
  /// call_impl via call(), which stays silent while the inner registry is
  /// null, so samples are never double-counted. The pointer must outlive
  /// the transport's traffic; callers may install it while calls are in
  /// flight (atomic).
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_.store(metrics, std::memory_order_release);
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() const {
    return metrics_.load(std::memory_order_acquire);
  }

 protected:
  /// The actual blocking round trip (see call()).
  virtual Envelope call_impl(Envelope env) = 0;

 private:
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
};

/// Issues `env` through transport.call(), re-attempting on transient
/// TransportErrors under `policy` (each attempt re-sends a fresh copy; the
/// request must therefore be idempotent or tolerated as at-least-once — see
/// docs/FAULTS.md for the per-kind analysis). Non-transient errors and
/// exhausted budgets propagate the last error after counting a failure.
Envelope call_with_retry(Transport& transport, const Envelope& env,
                         const RetryPolicy& policy = {},
                         RetryStats* retry_stats = nullptr);

/// All nodes in one process: per-node request mailboxes (the original
/// runtime seam) plus a shared pending-reply table for call().
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(
      std::size_t nodes, std::size_t capacity = 1024,
      std::chrono::milliseconds call_timeout = std::chrono::seconds(30));

  bool post(Envelope env) override;
  std::optional<Envelope> receive(cache::NodeId node) override;
  void close() override;
  [[nodiscard]] TransportStats stats() const override;

 protected:
  Envelope call_impl(Envelope env) override;

 private:
  struct PendingCall {
    std::condition_variable_any cv;
    // done/reply are written and read under the owning transport's mu_
    // (inexpressible as GUARDED_BY from a nested struct).
    bool done = false;
    Envelope reply;
  };

  std::vector<std::unique_ptr<ccm::Mailbox<Envelope>>> mailboxes_;
  const std::chrono::milliseconds call_timeout_;

  mutable util::Mutex mu_{"net.inproc.state"};  // pending table + counters
  bool closed_ GUARDED_BY(mu_) = false;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  // std::map, not unordered: tiny, and the close() sweep iterates it.
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_
      GUARDED_BY(mu_);
  TransportStats stats_ GUARDED_BY(mu_);
};

}  // namespace coop::net
