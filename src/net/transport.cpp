#include "net/transport.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace coop::net {

// The telemetry registry indexes RPC slots by the raw kind byte; make sure
// the wire vocabulary still fits (this is the seam where the proto-agnostic
// obs layer meets the protocol).
static_assert(proto::kMsgKindCount <= obs::kMaxRpcKinds,
              "obs::kMaxRpcKinds must cover every proto::MsgKind");

Envelope Transport::call(Envelope env) {
  auto* m = metrics_.load(std::memory_order_acquire);
  if (m == nullptr) return call_impl(std::move(env));
  const auto kind = static_cast<std::uint8_t>(env.msg.kind);
  const std::uint64_t request_bytes = env.msg.bytes;
  const std::uint64_t t0 = obs::runtime_now_ns();
  try {
    Envelope reply = call_impl(std::move(env));
    m->record_rpc(kind, obs::runtime_now_ns() - t0,
                  request_bytes + reply.msg.bytes);
    return reply;
  } catch (...) {
    m->record_rpc_error(kind, obs::runtime_now_ns() - t0);
    throw;
  }
}

Envelope call_with_retry(Transport& transport, const Envelope& env,
                         const RetryPolicy& policy,
                         RetryStats* retry_stats) {
  auto backoff = policy.backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      // Fresh copy per attempt: call() stamps a new seq, and the previous
      // attempt's envelope was consumed (the payload pointer is shared, so
      // re-sends stay cheap).
      return transport.call(env);
    } catch (const TransportError& e) {
      if (!e.transient() || attempt >= policy.attempts) {
        if (retry_stats != nullptr) {
          retry_stats->failures.fetch_add(1, std::memory_order_relaxed);
        }
        throw;
      }
    }
    if (retry_stats != nullptr) {
      retry_stats->retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (auto* m = transport.metrics()) {
      m->record_retry(static_cast<std::uint8_t>(env.msg.kind));
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(
        std::chrono::milliseconds(static_cast<std::int64_t>(
            static_cast<double>(backoff.count()) * policy.multiplier)),
        policy.max_backoff);
  }
}

InProcTransport::InProcTransport(std::size_t nodes, std::size_t capacity,
                                 std::chrono::milliseconds call_timeout)
    : call_timeout_(call_timeout) {
  if (nodes == 0) throw std::invalid_argument("InProcTransport: 0 nodes");
  mailboxes_.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    mailboxes_.push_back(std::make_unique<ccm::Mailbox<Envelope>>(
        capacity, "net.inproc.mailbox[" + std::to_string(n) + "]"));
  }
}

Envelope InProcTransport::call_impl(Envelope env) {
  auto pending = std::make_shared<PendingCall>();
  {
    util::ScopedLock lock(mu_);
    if (closed_) {
      throw TransportError(TransportError::Kind::kShutdown,
                           "transport is shut down");
    }
    env.seq = next_seq_++;
    pending_.emplace(env.seq, pending);
  }
  const std::uint64_t seq = env.seq;
  if (!post(std::move(env))) {
    util::ScopedLock lock(mu_);
    pending_.erase(seq);
    throw TransportError(TransportError::Kind::kShutdown,
                         "transport is shut down");
  }
  const auto deadline = std::chrono::steady_clock::now() + call_timeout_;
  util::UniqueLock lock(mu_);
  while (!pending->done && !closed_) {
    if (pending->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !pending->done) {
      pending_.erase(seq);
      ++stats_.rpc_timeouts;
      throw TransportError(TransportError::Kind::kTimeout,
                           "call timed out after " +
                               std::to_string(call_timeout_.count()) + " ms");
    }
  }
  if (!pending->done) {
    pending_.erase(seq);
    throw TransportError(TransportError::Kind::kShutdown,
                         "transport is shut down");
  }
  ++stats_.rpcs;
  return std::move(pending->reply);
}

bool InProcTransport::post(Envelope env) {
  if (env.msg.to >= mailboxes_.size()) {
    throw std::invalid_argument("InProcTransport: bad destination node");
  }
  // Zero-copy contract: a payload-bearing envelope always carries its bytes
  // as a shared BlockPtr moved through the mailbox — never a fresh buffer
  // cloned from the sender's copy (stats_.payload_copies stays 0 by
  // construction on this path).
  assert(env.msg.bytes == 0 || env.data != nullptr);
  if (proto::is_reply(env.msg.kind) && env.seq != 0) {
    // Complete the caller blocked in call() directly — replies never take
    // the mailbox hop.
    std::shared_ptr<PendingCall> pending;
    {
      util::ScopedLock lock(mu_);
      ++stats_.sent;
      ++stats_.received;
      const auto it = pending_.find(env.seq);
      if (it == pending_.end()) return false;  // caller gave up (shutdown)
      pending = it->second;
      pending_.erase(it);
      pending->reply = std::move(env);
      pending->done = true;
    }
    pending->cv.notify_all();
    return true;
  }
  {
    util::ScopedLock lock(mu_);
    ++stats_.sent;
  }
  if (!mailboxes_[env.msg.to]->send(std::move(env))) return false;
  util::ScopedLock lock(mu_);
  ++stats_.received;
  return true;
}

std::optional<Envelope> InProcTransport::receive(cache::NodeId node) {
  if (node >= mailboxes_.size()) {
    throw std::invalid_argument("InProcTransport: bad local node");
  }
  return mailboxes_[node]->receive();
}

void InProcTransport::close() {
  for (auto& mb : mailboxes_) mb->close();
  util::ScopedLock lock(mu_);
  closed_ = true;
  for (auto& [seq, pending] : pending_) pending->cv.notify_all();
  pending_.clear();
}

TransportStats InProcTransport::stats() const {
  util::ScopedLock lock(mu_);
  return stats_;
}

}  // namespace coop::net
