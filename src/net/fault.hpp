// Deterministic fault injection at the transport seam.
//
// FaultyTransport decorates any Transport and perturbs the traffic that
// crosses it under a seeded FaultSchedule: drop, delay, duplicate, or
// reorder specific message kinds, fail calls into crashed nodes, or
// blackhole a peer for a window (a partition is just a windowed drop rule
// with a from/to filter and no kind filter — see docs/FAULTS.md).
//
// Determinism contract: a rule fires purely off counters — the Nth message
// matching its static filter, never wall-clock time or randomness at fire
// time. Run the same single-driver workload twice under the same schedule
// and the injected-event log is byte-identical (the CI fault sweep asserts
// exactly this). Seeded *generation* (FaultSchedule::generated) draws the
// rules pseudo-randomly once, up front, from kinds whose loss or duplication
// the recovery paths provably absorb, so every generated seed must leave the
// cluster's CCM_AUDIT invariants green.
//
// Injection happens on the send side only (post() and both phases of
// call()); receive() passes through untouched, so a wrapped transport keeps
// the inner delivery semantics for whatever survives the schedule.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.hpp"
#include "proto/message.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::net {

enum class FaultAction : std::uint8_t {
  kDrop,       // swallow the message (request: fail the call pre-send)
  kDelay,      // hold the message inline for delay_ms
  kDuplicate,  // deliver twice (calls: two sequential round trips)
  kReorder,    // park the message; release it behind the next post
  kCrash,      // never in a rule: marks crash-swallowed traffic in the log
};

/// One match-and-perturb rule. Filters are conjunctive; an unset optional
/// matches anything. Occurrences count messages matching the *filter* (not
/// firings): the rule fires on occurrences o with o >= start and
/// (o - start) % every == 0, at most `count` times total.
struct FaultRule {
  FaultAction action = FaultAction::kDrop;
  std::optional<proto::MsgKind> kind;  // matched against the request kind
  std::optional<cache::NodeId> from;
  std::optional<cache::NodeId> to;
  /// False: perturb the outbound message. True (call() only): let the
  /// request execute, then perturb its *reply* — models a lost/slow answer
  /// to a request the peer did process (the at-least-once case).
  bool on_reply = false;
  std::uint64_t start = 0;
  std::uint64_t count = ~0ull;
  std::uint64_t every = 1;
  std::chrono::milliseconds delay{2};  // kDelay hold time
};

/// A seed plus the rule list it produced (or that was parsed explicitly).
struct FaultSchedule {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Parses the compact spec format, e.g.
  ///   "drop:kind=peer-fetch,every=7;delay:kind=dir-reply,ms=5,every=13"
  /// Rules are ';'-separated, each "action:key=val,...". Keys: kind (a
  /// proto::kind_name token), from, to, reply (0/1), start, count, every,
  /// ms. Throws std::invalid_argument on malformed input.
  static FaultSchedule parse(std::string_view spec, std::uint64_t seed = 0);

  /// Draws 3..6 rules pseudo-randomly from `seed`, restricted to message
  /// kinds and windows the recovery machinery is guaranteed to absorb
  /// (every >= 3 keeps consecutive retry attempts from both being dropped;
  /// non-idempotent kinds like dir-write-claim are never touched).
  static FaultSchedule generated(std::uint64_t seed);

  /// Round-trips through parse() (modulo seed).
  [[nodiscard]] std::string to_string() const;
};

/// One injected perturbation, in global injection order.
struct FaultEvent {
  std::uint64_t index = 0;  // ordinal in the event log
  FaultAction action = FaultAction::kDrop;
  proto::MsgKind kind = proto::MsgKind::kBlockLookup;  // request kind
  bool on_reply = false;
  cache::NodeId from = cache::kInvalidNode;
  cache::NodeId to = cache::kInvalidNode;
  std::size_t rule = kNoRule;        // index into the schedule's rules
  std::uint64_t occurrence = 0;      // the rule's match counter at fire time

  static constexpr std::size_t kNoRule = ~std::size_t{0};  // crash swallows
};

/// Stable one-line rendering (what dump_events writes, one per event).
std::string event_line(const FaultEvent& event);

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::shared_ptr<Transport> inner, FaultSchedule schedule);

  bool post(Envelope env) override;
  std::optional<Envelope> receive(cache::NodeId node) override;
  void close() override;
  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] std::uint64_t peer_oldest_age(cache::NodeId n) const override;
  [[nodiscard]] bool peer_full(cache::NodeId n) const override;

  /// Simulates the death of node `n` at this boundary: posts touching it
  /// are swallowed (logged as kCrash events) and calls into it fail with
  /// TransportError::kPeerDown until revive_node(). The caller owns wiping
  /// the node's cluster-side state (CcmCluster::crash_node).
  void crash_node(cache::NodeId n);
  void revive_node(cache::NodeId n);
  [[nodiscard]] bool crashed(cache::NodeId n) const;

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  [[nodiscard]] std::vector<FaultEvent> events() const;
  /// Writes event_line() per injected event; false if the file won't open.
  bool dump_events(const std::string& path) const;

 protected:
  Envelope call_impl(Envelope env) override;

 private:
  enum class Phase : std::uint8_t { kPost, kCallRequest, kCallReply };

  struct Decision {
    FaultAction action = FaultAction::kDrop;
    std::chrono::milliseconds delay{0};
    bool fired = false;
  };

  /// Matches `msg` (request kind `kind` when perturbing a reply) against
  /// the schedule, advances rule counters, and logs the event if one fires.
  Decision decide(const proto::Message& msg, Phase phase) REQUIRES(mu_);
  void log_event(FaultAction action, const proto::Message& msg,
                 bool on_reply, std::size_t rule,
                 std::uint64_t occurrence) REQUIRES(mu_);

  std::shared_ptr<Transport> inner_;
  const FaultSchedule schedule_;

  mutable util::Mutex mu_{"net.fault.state"};
  std::vector<std::uint64_t> matches_ GUARDED_BY(mu_);  // per-rule
  std::vector<std::uint64_t> fired_ GUARDED_BY(mu_);    // per-rule
  std::set<cache::NodeId> crashed_ GUARDED_BY(mu_);
  std::optional<Envelope> parked_ GUARDED_BY(mu_);  // kReorder hold slot
  std::vector<FaultEvent> events_ GUARDED_BY(mu_);
  TransportStats injected_ GUARDED_BY(mu_);  // only the injected_* fields
};

}  // namespace coop::net
