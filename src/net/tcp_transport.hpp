// Real socket transport: one process hosts one CCM node; peers are other
// processes reached over TCP (127.0.0.1 in the loopback cluster).
//
// Topology: every process listens; the process with the higher node id
// dials the lower one, so each pair shares exactly one duplex connection.
// Each direction of a connection opens with a handshake (magic, protocol
// version, node id); anything else on the socket is length-prefixed frames
// (net/frame.hpp).
//
// Threads per connection: a reader (deframes and routes — replies complete
// pending call()s, requests land in the inbound mailbox the protocol thread
// drains) and a writer draining a bounded outbox. The writer batches: it
// sleeps until the outbox is non-empty, then drains everything queued into
// ONE buffer and one write syscall — control messages that arrive while a
// flush is in flight coalesce into the next one, amortizing syscalls under
// load without adding idle latency. Outbox enqueues use the deadline-bounded
// Mailbox::send_for as backpressure: a peer that stays stalled past the
// deadline is dropped rather than wedging the sender.
//
// Failure model: a malformed frame, a mid-frame EOF, or a stalled outbox
// drops that connection; RPCs pending against the dead peer fail promptly
// with TransportError (kPeerDown, or kTimeout if the peer simply never
// answers within call_timeout), everything else keeps flowing. A peer that
// re-dials after its connection died is adopted back in: adopt_connection
// reaps the dead connection's threads and installs the new socket, which is
// what lets a crashed node rejoin a live mesh.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::net {

/// Where to reach a peer node.
struct TcpPeer {
  std::string host;
  std::uint16_t port = 0;
};

struct TcpConfig {
  cache::NodeId local_node = 0;
  std::size_t nodes = 1;
  /// Listening port; 0 binds an ephemeral port (see listen_port()).
  std::uint16_t listen_port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrame;
  std::size_t outbox_capacity = 1024;
  std::chrono::milliseconds connect_timeout{20000};
  /// Outbox backpressure deadline (Mailbox::send_for).
  std::chrono::milliseconds send_timeout{10000};
  /// call() reply deadline: a call against a peer that stays silent fails
  /// with TransportError::kTimeout instead of blocking forever.
  std::chrono::milliseconds call_timeout{30000};
};

class TcpTransport final : public Transport {
 public:
  /// Binds the listening socket (so the actual port is known before peers
  /// dial) but accepts/dials nothing until connect_peers().
  explicit TcpTransport(const TcpConfig& config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Establishes the full peer mesh: dials every lower-id peer (retrying
  /// until the peer listens), accepts every higher-id one. `peers` is
  /// indexed by node id; the local entry is ignored. Blocks until all
  /// nodes-1 connections are up; throws on timeout.
  void connect_peers(const std::vector<TcpPeer>& peers);

  /// Source of the local node's published cache summary (oldest age,
  /// full), piggybacked on every outgoing flush. Defaults to "unknown".
  void set_summary_source(
      std::function<std::pair<std::uint64_t, bool>()> source);

  bool post(Envelope env) override;
  std::optional<Envelope> receive(cache::NodeId node) override;
  void close() override;
  [[nodiscard]] TransportStats stats() const override;
  [[nodiscard]] std::uint64_t peer_oldest_age(cache::NodeId n) const override;
  [[nodiscard]] bool peer_full(cache::NodeId n) const override;

  /// Live peer connections (loopback drivers poll this for the start
  /// rendezvous).
  [[nodiscard]] std::size_t connected_peers() const;

 protected:
  Envelope call_impl(Envelope env) override;

 private:
  struct Connection {
    // fd/peer are set before the reader/writer threads start and are only
    // read afterwards; alive is the atomic liveness flag.
    int fd = -1;
    cache::NodeId peer = cache::kInvalidNode;
    ccm::Mailbox<Envelope> outbox;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> alive{false};

    Connection(std::size_t outbox_capacity, cache::NodeId peer_id)
        : peer(peer_id),
          outbox(outbox_capacity,
                 "net.tcp.outbox[" + std::to_string(peer_id) + "]") {}
  };

  struct PendingCall {
    std::condition_variable_any cv;
    // done/failed/reply are written and read under the owning transport's
    // mu_ (inexpressible as GUARDED_BY from a nested struct); dest is set
    // once before the call is registered.
    bool done = false;
    bool failed = false;
    cache::NodeId dest = cache::kInvalidNode;
    Envelope reply;
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  /// Performs the handshake on a fresh socket; returns the peer's node id
  /// or nullopt (socket closed by the caller on failure).
  std::optional<cache::NodeId> handshake(int fd);
  void adopt_connection(int fd, cache::NodeId peer);
  void drop_connection(cache::NodeId peer, bool frame_error);
  /// Fails every pending call addressed to `peer` (all peers when
  /// kInvalidNode).
  void fail_pending(cache::NodeId peer);
  bool deliver_local(Envelope env);
  void route_incoming(Envelope env);

  TcpConfig config_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> closed_{false};

  ccm::Mailbox<Envelope> inbound_;
  std::function<std::pair<std::uint64_t, bool>()> summary_;

  // Connections table, pending calls, counters. Ordered after the shard
  // locks (a protocol thread RPCs through here with its shard held) and
  // before the outbox mailbox locks; never held across a blocking send,
  // a join, or a syscall.
  mutable util::Mutex mu_{"net.tcp.state"};
  std::vector<std::unique_ptr<Connection>> conns_
      GUARDED_BY(mu_);  // indexed by node id
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_
      GUARDED_BY(mu_);
  TransportStats stats_ GUARDED_BY(mu_);

  /// Piggybacked peer summaries, refreshed on every received frame.
  std::vector<std::atomic<std::uint64_t>> peer_age_;
  std::vector<std::atomic<bool>> peer_full_;
};

}  // namespace coop::net
