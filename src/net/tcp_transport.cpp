#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace coop::net {

namespace {

/// Envelopes coalesced into one write syscall at most (bounds the latency a
/// huge backlog can add to the first message of a flush).
constexpr std::size_t kMaxBatch = 64;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Reads exactly `len` bytes; false on EOF/error.
bool read_exact(int fd, std::byte* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes all of `buf`; false on error (peer gone).
bool write_all(int fd, const std::byte* buf, std::size_t len) {
  std::size_t put = 0;
  while (put < len) {
    const ssize_t n = ::send(fd, buf + put, len - put, MSG_NOSIGNAL);
    if (n <= 0) return false;
    put += static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes every iovec fully, advancing across partial writes; false on
/// error (peer gone). Mutates the iovec array as it advances.
bool writev_all(int fd, iovec* iov, std::size_t iovcnt) {
  std::size_t idx = 0;
  while (idx < iovcnt) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = std::min(iovcnt - idx, static_cast<std::size_t>(IOV_MAX));
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) return false;
    std::size_t left = static_cast<std::size_t>(n);
    while (idx < iovcnt && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iovcnt && left > 0) {
      iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(const TcpConfig& config)
    : config_(config),
      inbound_(config.outbox_capacity, "net.tcp.inbound"),
      peer_age_(config.nodes),
      peer_full_(config.nodes) {
  if (config_.nodes == 0 || config_.local_node >= config_.nodes) {
    throw std::invalid_argument("TcpTransport: bad local node / node count");
  }
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    peer_age_[n].store(proto::kNoAge, std::memory_order_relaxed);
    peer_full_[n].store(false, std::memory_order_relaxed);
  }
  conns_.resize(config_.nodes);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.listen_port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, static_cast<int>(config_.nodes) + 4) != 0) {
    close_fd(listen_fd_);
    throw std::runtime_error("TcpTransport: bind/listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  listen_port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::set_summary_source(
    std::function<std::pair<std::uint64_t, bool>()> source) {
  summary_ = std::move(source);
}

std::optional<cache::NodeId> TcpTransport::handshake(int fd) {
  // Symmetric: both sides send first, then read (8 bytes — never fills the
  // socket buffer, so simultaneous sends cannot deadlock).
  const std::vector<std::byte> ours = encode_handshake(config_.local_node);
  if (!write_all(fd, ours.data(), ours.size())) return std::nullopt;
  std::array<std::byte, kHandshakeSize> theirs{};
  if (!read_exact(fd, theirs.data(), theirs.size())) return std::nullopt;
  return decode_handshake(theirs);
}

void TcpTransport::adopt_connection(int fd, cache::NodeId peer) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Reap a dead predecessor first: a peer that crashed and re-dialed still
  // owns a stale conns_ entry whose threads have exited (or are on their way
  // out through drop_connection). Extract it under the lock, join outside —
  // the reader/writer take mu_ themselves as they unwind, and adopt runs
  // only on the accept_loop / connect_peers threads, never on a reader or
  // writer, so the join cannot deadlock or self-join.
  std::unique_ptr<Connection> dead;
  {
    util::ScopedLock lock(mu_);
    Connection* existing = conns_[peer].get();
    if (existing != nullptr &&
        !existing->alive.load(std::memory_order_acquire)) {
      dead = std::move(conns_[peer]);
    }
  }
  if (dead != nullptr) {
    if (dead->reader.joinable()) dead->reader.join();
    if (dead->writer.joinable()) dead->writer.join();
    close_fd(dead->fd);
  }
  util::ScopedLock lock(mu_);
  if (closed_ || conns_[peer] != nullptr) {
    ::close(fd);  // duplicate live connection, or shutting down
    return;
  }
  auto conn = std::make_unique<Connection>(config_.outbox_capacity, peer);
  conn->fd = fd;
  conn->alive.store(true, std::memory_order_release);
  Connection* raw = conn.get();
  conns_[peer] = std::move(conn);
  raw->reader = std::thread([this, raw] { reader_loop(*raw); });
  raw->writer = std::thread([this, raw] { writer_loop(*raw); });
}

void TcpTransport::connect_peers(const std::vector<TcpPeer>& peers) {
  if (peers.size() < config_.nodes) {
    throw std::invalid_argument("TcpTransport: peer table too small");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });

  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect_timeout;
  // Dial every lower-id peer, retrying until it listens.
  for (cache::NodeId peer = 0; peer < config_.local_node; ++peer) {
    while (true) {
      if (closed_) throw std::runtime_error("TcpTransport: closed");
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw std::runtime_error("TcpTransport: socket failed");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(peers[peer].port);
      if (::inet_pton(AF_INET, peers[peer].host.c_str(), &addr.sin_addr) !=
          1) {
        ::close(fd);
        throw std::invalid_argument("TcpTransport: bad peer host " +
                                    peers[peer].host);
      }
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        const auto got = handshake(fd);
        if (got && *got == peer) {
          adopt_connection(fd, peer);
          break;
        }
        ::close(fd);  // wrong node answered — fatal config error
        throw std::runtime_error("TcpTransport: handshake with peer " +
                                 std::to_string(peer) + " failed");
      }
      ::close(fd);
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error("TcpTransport: timed out dialing peer " +
                                 std::to_string(peer));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  // Higher-id peers dial us; wait for the mesh to complete.
  while (connected_peers() + 1 < config_.nodes) {
    if (closed_) throw std::runtime_error("TcpTransport: closed");
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("TcpTransport: timed out waiting for peers");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void TcpTransport::accept_loop() {
  while (!closed_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const auto peer = handshake(fd);
    // Accept only higher-id peers (they dial down); anything else is a
    // misconfigured or foreign client.
    if (!peer || *peer <= config_.local_node || *peer >= config_.nodes) {
      ::close(fd);
      continue;
    }
    adopt_connection(fd, *peer);
  }
}

void TcpTransport::reader_loop(Connection& conn) {
  FrameReader reader(config_.max_frame_bytes);
  std::vector<std::byte> buf(64 * 1024);
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
    if (n <= 0) {
      // EOF or error; bytes stranded mid-frame mean the stream was cut
      // inside a message — count it with the malformed frames.
      drop_connection(conn.peer, reader.buffered() > 0);
      return;
    }
    {
      util::ScopedLock lock(mu_);
      stats_.bytes_received += static_cast<std::uint64_t>(n);
    }
    if (!reader.feed(std::span<const std::byte>(
            buf.data(), static_cast<std::size_t>(n)))) {
      drop_connection(conn.peer, /*frame_error=*/true);
      return;
    }
    while (auto frame = reader.next()) {
      peer_age_[conn.peer].store(frame->sender_age,
                                 std::memory_order_relaxed);
      peer_full_[conn.peer].store(frame->sender_full,
                                  std::memory_order_relaxed);
      {
        util::ScopedLock lock(mu_);
        ++stats_.received;
      }
      route_incoming(std::move(frame->env));
    }
  }
}

void TcpTransport::route_incoming(Envelope env) {
  if (proto::is_reply(env.msg.kind) && env.seq != 0) {
    std::shared_ptr<PendingCall> pending;
    {
      util::ScopedLock lock(mu_);
      const auto it = pending_.find(env.seq);
      if (it == pending_.end()) return;  // caller gave up / duplicate
      pending = it->second;
      pending_.erase(it);
      pending->reply = std::move(env);
      pending->done = true;
    }
    pending->cv.notify_all();
    return;
  }
  // Blocking send: a full inbound queue backpressures this connection's
  // reader (and, through TCP flow control, the remote sender).
  inbound_.send(std::move(env));
}

void TcpTransport::writer_loop(Connection& conn) {
  // Envelopes whose payload latch is still closed. The writer must NEVER
  // block in wait_ready(): the producer filling the buffer can be a storage
  // RPC queued *behind* the envelope on this very connection (a peer serves
  // a remote read from a block it is still faulting in from home), so a
  // blocking wait wedges the connection against its own fill traffic.
  // Unready envelopes are parked here and retried; everything else flows
  // past them. Reordering is safe: replies correlate by seq, and requests
  // from concurrent threads carry no cross-message ordering guarantees.
  std::deque<Envelope> deferred;
  constexpr auto kDeferredPoll = std::chrono::milliseconds(1);
  while (true) {
    std::optional<Envelope> first =
        deferred.empty() ? conn.outbox.receive()
                         : conn.outbox.receive_for(kDeferredPoll);
    if (!first && deferred.empty()) return;  // closed and fully drained
    if (!first && conn.outbox.closed()) {
      // Shutdown with payloads still unready: their producers may be gone;
      // abandoning them here is the same as the connection dying mid-send.
      return;
    }
    std::vector<Envelope> batch;
    for (auto it = deferred.begin(); it != deferred.end();) {
      if (it->data && !it->data->is_ready()) {
        ++it;
      } else {
        batch.push_back(std::move(*it));
        it = deferred.erase(it);
      }
    }
    if (first) batch.push_back(std::move(*first));
    while (batch.size() < kMaxBatch) {
      auto more = conn.outbox.try_receive();
      if (!more) break;
      batch.push_back(std::move(*more));
    }
    std::uint64_t age = proto::kNoAge;
    bool full = false;
    if (summary_) std::tie(age, full) = summary_();
    // Scatter-gather framing: one fixed header buffer per envelope plus an
    // iovec pointing straight into the shared BlockData payload buffer.
    // Payload bytes never copy through an intermediate frame buffer
    // (TransportStats::payload_copies stays 0 — CI-asserted); `sendable`
    // keeps each BlockPtr alive until the writev completes.
    std::vector<Envelope> sendable;
    sendable.reserve(batch.size());
    for (auto& env : batch) {
      if (env.data && !env.data->is_ready()) {
        deferred.push_back(std::move(env));
        continue;
      }
      sendable.push_back(std::move(env));
    }
    if (sendable.empty()) continue;
    std::vector<FrameHeaderBytes> headers;
    headers.reserve(sendable.size());  // reserve: iovecs alias the elements
    std::vector<iovec> iov;
    iov.reserve(sendable.size() * 2);
    std::size_t total = 0;
    for (const Envelope& env : sendable) {
      headers.push_back(encode_frame_header(env, age, full));
      iov.push_back({headers.back().data(), headers.back().size()});
      total += headers.back().size();
      if (env.data && !env.data->bytes.empty()) {
        iov.push_back({const_cast<std::byte*>(env.data->bytes.data()),
                       env.data->bytes.size()});
        total += env.data->bytes.size();
      }
    }
    if (!writev_all(conn.fd, iov.data(), iov.size())) {
      drop_connection(conn.peer, /*frame_error=*/false);
      return;
    }
    util::ScopedLock lock(mu_);
    ++stats_.flushes;
    stats_.bytes_sent += total;
  }
}

void TcpTransport::drop_connection(cache::NodeId peer, bool frame_error) {
  {
    util::ScopedLock lock(mu_);
    Connection* conn = conns_[peer].get();
    if (conn == nullptr || !conn->alive.load(std::memory_order_acquire)) {
      return;  // already dropped
    }
    conn->alive.store(false, std::memory_order_release);
    if (frame_error) ++stats_.frame_errors;
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader
    conn->outbox.close();             // unblocks the writer
  }
  fail_pending(peer);
}

void TcpTransport::fail_pending(cache::NodeId peer) {
  std::vector<std::shared_ptr<PendingCall>> failed;
  {
    util::ScopedLock lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (peer == cache::kInvalidNode || it->second->dest == peer) {
        it->second->failed = true;
        it->second->done = true;
        failed.push_back(it->second);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& p : failed) p->cv.notify_all();
}

Envelope TcpTransport::call_impl(Envelope env) {
  auto pending = std::make_shared<PendingCall>();
  pending->dest = env.msg.to;
  {
    util::ScopedLock lock(mu_);
    if (closed_) {
      throw TransportError(TransportError::Kind::kShutdown,
                           "transport is shut down");
    }
    env.seq = next_seq_++;
    pending_.emplace(env.seq, pending);
  }
  const std::uint64_t seq = env.seq;
  if (!post(std::move(env))) {
    bool was_closed = false;
    {
      util::ScopedLock lock(mu_);
      pending_.erase(seq);
      was_closed = closed_;
    }
    if (was_closed) {
      throw TransportError(TransportError::Kind::kShutdown,
                           "transport is shut down");
    }
    throw TransportError(TransportError::Kind::kPeerDown,
                         "peer " + std::to_string(pending->dest) +
                             " is unreachable");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + config_.call_timeout;
  util::UniqueLock lock(mu_);
  while (!pending->done) {
    if (pending->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !pending->done) {
      pending_.erase(seq);
      ++stats_.rpc_timeouts;
      throw TransportError(TransportError::Kind::kTimeout,
                           "call to peer " + std::to_string(pending->dest) +
                               " timed out after " +
                               std::to_string(config_.call_timeout.count()) +
                               " ms");
    }
  }
  if (pending->failed) {
    throw TransportError(TransportError::Kind::kPeerDown,
                         "peer " + std::to_string(pending->dest) +
                             " dropped while a call was pending");
  }
  ++stats_.rpcs;
  return std::move(pending->reply);
}

bool TcpTransport::post(Envelope env) {
  if (env.msg.to >= config_.nodes) {
    throw std::invalid_argument("TcpTransport: bad destination node");
  }
  if (env.msg.to == config_.local_node) return deliver_local(std::move(env));
  Connection* conn = nullptr;
  {
    util::ScopedLock lock(mu_);
    if (closed_) return false;
    conn = conns_[env.msg.to].get();
    if (conn == nullptr || !conn->alive.load(std::memory_order_acquire)) {
      return false;
    }
    ++stats_.sent;
  }
  const cache::NodeId to = env.msg.to;
  if (!conn->outbox.send_for(std::move(env), config_.send_timeout)) {
    // Stalled past the deadline (or already closing): treat the peer as
    // dead rather than wedging this sender forever.
    drop_connection(to, /*frame_error=*/false);
    return false;
  }
  return true;
}

bool TcpTransport::deliver_local(Envelope env) {
  {
    util::ScopedLock lock(mu_);
    if (closed_) return false;
    ++stats_.sent;
    ++stats_.received;
  }
  if (proto::is_reply(env.msg.kind) && env.seq != 0) {
    route_incoming(std::move(env));
    return true;
  }
  return inbound_.send(std::move(env));
}

std::optional<Envelope> TcpTransport::receive(cache::NodeId node) {
  if (node != config_.local_node) {
    throw std::invalid_argument("TcpTransport: receive for non-local node");
  }
  return inbound_.receive();
}

void TcpTransport::close() {
  if (closed_.exchange(true)) return;
  inbound_.close();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Mark every connection dead under the lock, then join outside it: the
  // reader/writer threads take mu_ themselves on their way out, and after
  // closed_ flips no adopt_connection can add entries, so the snapshot of
  // raw pointers stays valid.
  std::vector<Connection*> live;
  {
    util::ScopedLock lock(mu_);
    for (auto& conn : conns_) {
      if (!conn) continue;
      conn->alive.store(false, std::memory_order_release);
      ::shutdown(conn->fd, SHUT_RDWR);
      conn->outbox.close();
      live.push_back(conn.get());
    }
  }
  for (Connection* conn : live) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    close_fd(conn->fd);
  }
  close_fd(listen_fd_);
  fail_pending(cache::kInvalidNode);
}

TransportStats TcpTransport::stats() const {
  util::ScopedLock lock(mu_);
  return stats_;
}

std::uint64_t TcpTransport::peer_oldest_age(cache::NodeId n) const {
  return peer_age_[n].load(std::memory_order_relaxed);
}

bool TcpTransport::peer_full(cache::NodeId n) const {
  return peer_full_[n].load(std::memory_order_relaxed);
}

std::size_t TcpTransport::connected_peers() const {
  util::ScopedLock lock(mu_);
  std::size_t live = 0;
  for (const auto& conn : conns_) {
    if (conn && conn->alive.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

}  // namespace coop::net
