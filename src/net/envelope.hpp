// The unit of cross-node traffic in the middleware runtime: a typed wire
// message plus the payload bytes (if any) riding with it and the metadata
// the transport needs to correlate replies and fence forwards.
//
// The payload is a shared latch-guarded buffer (BlockData): inside one
// process both ends of a transfer share the same bytes (a peer-fetch reply
// hands the requester the master's buffer, a promotion shares it outright);
// across the wire the TCP transport defers the envelope until the latch
// opens, then scatter-gathers {frame header, payload} straight from this
// buffer — the bytes are never copied into an intermediate frame. That
// asymmetry is the whole point of the seam — the runtime never knows which
// it got.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "proto/message.hpp"

namespace coop::net {

/// A block's bytes; `ready` flips once the producing side (a storage read, a
/// write assembling its buffer, a frame decode) has filled `bytes`.
struct BlockData {
  // Raw std::mutex by design: one latch per in-flight block, high churn, and
  // strictly leaf usage (ready-flag flip / probe, no nested acquire), so the
  // annotated wrapper's lockcheck registration would cost per-block for a
  // lock that can never participate in an ordering cycle.
  std::mutex m;  // ccm-lint: allow(raw-mutex)
  std::condition_variable cv;
  bool ready = false;
  std::vector<std::byte> bytes;

  /// Blocks until the producer flips `ready`.
  void wait_ready() {
    std::unique_lock lock(m);
    cv.wait(lock, [this] { return ready; });
  }

  /// Non-blocking readiness probe. The socket transport's writers must
  /// never wait on the latch: the producer filling the buffer may be a
  /// storage RPC queued *behind* this envelope on the same connection, so a
  /// blocking wait here deadlocks the connection. Unready envelopes are
  /// deferred instead (TcpTransport::writer_loop).
  [[nodiscard]] bool is_ready() {
    std::scoped_lock lock(m);
    return ready;
  }
};

using BlockPtr = std::shared_ptr<BlockData>;

/// A payload buffer that is already complete (wire decodes, storage replies).
inline BlockPtr make_ready_block(std::vector<std::byte> bytes) {
  auto b = std::make_shared<BlockData>();
  b->bytes = std::move(bytes);
  b->ready = true;
  return b;
}

/// A protocol message in flight.
struct Envelope {
  proto::Message msg;
  /// RPC correlation id; 0 marks a one-way post. Replies echo the request's
  /// seq so the transport can wake the caller blocked in call().
  std::uint64_t seq = 0;
  /// Directory invalidation epoch observed by the sender (master forwards).
  std::uint64_t epoch = 0;
  /// Payload bytes (peer-fetch replies, master forwards, ownership
  /// transfers, storage traffic); null for pure control messages.
  BlockPtr data;
};

}  // namespace coop::net
