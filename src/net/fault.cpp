#include "net/fault.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace coop::net {

namespace {

/// SplitMix64 step: the schedule generator's only randomness source (drawn
/// once, up front — never at fire time, which would break replay).
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::optional<proto::MsgKind> kind_from_name(std::string_view name) {
  for (std::uint8_t k = 0; k < proto::kMsgKindCount; ++k) {
    const auto kind = static_cast<proto::MsgKind>(k);
    if (name == proto::kind_name(kind)) return kind;
  }
  return std::nullopt;
}

const char* action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kDuplicate:
      return "dup";
    case FaultAction::kReorder:
      return "reorder";
    case FaultAction::kCrash:
      return "crash";
  }
  return "unknown";
}

// ---- kinds the generated schedules are allowed to touch ----
//
// The bar (docs/FAULTS.md has the per-kind analysis): a dropped request is
// re-sent by call_with_retry, so the kind must tolerate at-least-once
// delivery; a dropped *reply* re-executes a request the peer already
// processed, so the kind must additionally be idempotent at the receiver.
// Kinds that are neither (dir-write-claim, dir-write-begin/end) are never
// generated — hand-written schedules may still target them to study the
// failure, but no invariant guarantee attaches.

constexpr proto::MsgKind kDroppableRequests[] = {
    proto::MsgKind::kPeerFetch,       proto::MsgKind::kInvalidateBlock,
    proto::MsgKind::kInvalidateFile,  proto::MsgKind::kMasterForward,
    proto::MsgKind::kDirLookup,       proto::MsgKind::kDirLookupRead,
    proto::MsgKind::kDirReadCacheable, proto::MsgKind::kStorageRead,
    proto::MsgKind::kStorageWrite,
};

constexpr proto::MsgKind kDuplicableRequests[] = {
    proto::MsgKind::kPeerFetch,       proto::MsgKind::kInvalidateBlock,
    proto::MsgKind::kInvalidateFile,  proto::MsgKind::kMasterForward,
    proto::MsgKind::kDirLookup,       proto::MsgKind::kDirLookupRead,
    proto::MsgKind::kDirReadCacheable, proto::MsgKind::kStorageRead,
    proto::MsgKind::kStorageWrite,
};

constexpr proto::MsgKind kReplyDroppable[] = {
    proto::MsgKind::kPeerFetch,        proto::MsgKind::kDirLookup,
    proto::MsgKind::kDirLookupRead,    proto::MsgKind::kDirReadCacheable,
    proto::MsgKind::kStorageRead,      proto::MsgKind::kDirTryClaim,
    proto::MsgKind::kDirClaimForwarded,
};

constexpr proto::MsgKind kDelayable[] = {
    proto::MsgKind::kPeerFetch,       proto::MsgKind::kPeerFetchReply,
    proto::MsgKind::kInvalidateBlock, proto::MsgKind::kInvalidateFile,
    proto::MsgKind::kMasterForward,   proto::MsgKind::kMasterForwardAck,
    proto::MsgKind::kDirLookup,       proto::MsgKind::kDirLookupRead,
    proto::MsgKind::kDirReply,        proto::MsgKind::kStorageRead,
    proto::MsgKind::kStorageData,     proto::MsgKind::kWriteOwnership,
};

template <std::size_t N>
proto::MsgKind pick(const proto::MsgKind (&kinds)[N], std::uint64_t& state) {
  return kinds[static_cast<std::size_t>(next_rand(state) % N)];
}

}  // namespace

FaultSchedule FaultSchedule::parse(std::string_view spec,
                                   std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.seed = seed;
  std::string text(spec);
  std::istringstream rules_in(text);
  std::string rule_text;
  while (std::getline(rules_in, rule_text, ';')) {
    if (rule_text.empty()) continue;
    const auto colon = rule_text.find(':');
    const std::string action = rule_text.substr(0, colon);
    FaultRule rule;
    if (action == "drop") {
      rule.action = FaultAction::kDrop;
    } else if (action == "delay") {
      rule.action = FaultAction::kDelay;
    } else if (action == "dup" || action == "duplicate") {
      rule.action = FaultAction::kDuplicate;
    } else if (action == "reorder") {
      rule.action = FaultAction::kReorder;
    } else {
      throw std::invalid_argument("FaultSchedule: unknown action '" + action +
                                  "'");
    }
    if (colon != std::string::npos) {
      std::istringstream keys_in(rule_text.substr(colon + 1));
      std::string kv;
      while (std::getline(keys_in, kv, ',')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          throw std::invalid_argument("FaultSchedule: expected key=value in '" +
                                      kv + "'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "kind") {
          const auto kind = kind_from_name(value);
          if (!kind) {
            throw std::invalid_argument("FaultSchedule: unknown kind '" +
                                        value + "'");
          }
          rule.kind = *kind;
        } else if (key == "from") {
          rule.from = static_cast<cache::NodeId>(std::stoul(value));
        } else if (key == "to") {
          rule.to = static_cast<cache::NodeId>(std::stoul(value));
        } else if (key == "reply") {
          rule.on_reply = value != "0";
        } else if (key == "start") {
          rule.start = std::stoull(value);
        } else if (key == "count") {
          rule.count = std::stoull(value);
        } else if (key == "every") {
          rule.every = std::stoull(value);
          if (rule.every == 0) {
            throw std::invalid_argument("FaultSchedule: every=0");
          }
        } else if (key == "ms") {
          rule.delay = std::chrono::milliseconds(std::stoll(value));
        } else {
          throw std::invalid_argument("FaultSchedule: unknown key '" + key +
                                      "'");
        }
      }
    }
    schedule.rules.push_back(rule);
  }
  return schedule;
}

FaultSchedule FaultSchedule::generated(std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.seed = seed;
  std::uint64_t state = seed;
  const std::size_t n = 3 + static_cast<std::size_t>(next_rand(state) % 4);
  // At most one request-drop and one reply-drop rule per kind: stacked drop
  // windows on one kind could otherwise cover every retry attempt of a call
  // and surface a failure the sweep's invariants assume cannot happen.
  std::set<std::pair<bool, proto::MsgKind>> dropped;
  while (schedule.rules.size() < n) {
    FaultRule rule;
    switch (next_rand(state) % 4) {
      case 0:
        rule.action = FaultAction::kDrop;
        rule.kind = pick(kDroppableRequests, state);
        if (!dropped.emplace(false, *rule.kind).second) continue;
        break;
      case 1:
        rule.action = FaultAction::kDrop;
        rule.on_reply = true;
        rule.kind = pick(kReplyDroppable, state);
        if (!dropped.emplace(true, *rule.kind).second) continue;
        break;
      case 2:
        rule.action = FaultAction::kDelay;
        rule.kind = pick(kDelayable, state);
        rule.delay =
            std::chrono::milliseconds(1 + static_cast<std::int64_t>(
                                              next_rand(state) % 4));
        break;
      default:
        rule.action = FaultAction::kDuplicate;
        rule.kind = pick(kDuplicableRequests, state);
        break;
    }
    rule.start = next_rand(state) % 20;
    rule.every = 3 + 2 * (next_rand(state) % 6);  // 3,5,...,13
    rule.count = 5 + next_rand(state) % 60;
    schedule.rules.push_back(rule);
  }
  return schedule;
}

std::string FaultSchedule::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (i > 0) out << ';';
    out << action_name(rule.action) << ':';
    bool first = true;
    const auto key = [&](const std::string& k, const std::string& v) {
      if (!first) out << ',';
      first = false;
      out << k << '=' << v;
    };
    if (rule.kind) key("kind", proto::kind_name(*rule.kind));
    if (rule.from) key("from", std::to_string(*rule.from));
    if (rule.to) key("to", std::to_string(*rule.to));
    if (rule.on_reply) key("reply", "1");
    if (rule.start != 0) key("start", std::to_string(rule.start));
    if (rule.count != ~0ull) key("count", std::to_string(rule.count));
    if (rule.every != 1) key("every", std::to_string(rule.every));
    if (rule.action == FaultAction::kDelay) {
      key("ms", std::to_string(rule.delay.count()));
    }
  }
  return out.str();
}

std::string event_line(const FaultEvent& event) {
  std::ostringstream out;
  out << '#' << event.index << ' ' << action_name(event.action)
      << " kind=" << proto::kind_name(event.kind)
      << " reply=" << (event.on_reply ? 1 : 0) << " from=" << event.from
      << " to=" << event.to << " rule=";
  if (event.rule == FaultEvent::kNoRule) {
    out << '-';
  } else {
    out << event.rule;
  }
  out << " occ=" << event.occurrence;
  return out.str();
}

FaultyTransport::FaultyTransport(std::shared_ptr<Transport> inner,
                                 FaultSchedule schedule)
    : inner_(std::move(inner)), schedule_(std::move(schedule)) {
  matches_.assign(schedule_.rules.size(), 0);
  fired_.assign(schedule_.rules.size(), 0);
}

void FaultyTransport::log_event(FaultAction action,
                                const proto::Message& msg, bool on_reply,
                                std::size_t rule, std::uint64_t occurrence) {
  FaultEvent event;
  event.index = events_.size();
  event.action = action;
  event.kind = msg.kind;
  event.on_reply = on_reply;
  event.from = msg.from;
  event.to = msg.to;
  event.rule = rule;
  event.occurrence = occurrence;
  events_.push_back(event);
}

FaultyTransport::Decision FaultyTransport::decide(const proto::Message& msg,
                                                  Phase phase) {
  Decision decision;
  const bool reply_phase = phase == Phase::kCallReply;
  for (std::size_t i = 0; i < schedule_.rules.size(); ++i) {
    const FaultRule& rule = schedule_.rules[i];
    if (rule.on_reply != reply_phase) continue;
    if (phase == Phase::kCallRequest &&
        rule.action == FaultAction::kReorder) {
      continue;  // a blocked caller cannot be overtaken; nothing to reorder
    }
    if (rule.kind && *rule.kind != msg.kind) continue;
    if (rule.from && *rule.from != msg.from) continue;
    if (rule.to && *rule.to != msg.to) continue;
    const std::uint64_t occurrence = matches_[i]++;
    if (decision.fired) continue;  // first firing rule wins; counters still
                                   // advance for the rest
    if (occurrence < rule.start) continue;
    if ((occurrence - rule.start) % rule.every != 0) continue;
    if (fired_[i] >= rule.count) continue;
    ++fired_[i];
    decision.fired = true;
    decision.action = rule.action;
    decision.delay = rule.delay;
    switch (rule.action) {
      case FaultAction::kDrop:
        ++injected_.injected_drops;
        break;
      case FaultAction::kDelay:
        ++injected_.injected_delays;
        break;
      case FaultAction::kDuplicate:
        ++injected_.injected_duplicates;
        break;
      case FaultAction::kReorder:
        ++injected_.injected_reorders;
        break;
      case FaultAction::kCrash:
        break;  // unreachable: parse/generated never emit kCrash rules
    }
    log_event(rule.action, msg, reply_phase, i, occurrence);
  }
  return decision;
}

Envelope FaultyTransport::call_impl(Envelope env) {
  Decision request_decision;
  {
    util::ScopedLock lock(mu_);
    if (crashed_.contains(env.msg.to) || crashed_.contains(env.msg.from)) {
      ++injected_.injected_drops;
      log_event(FaultAction::kCrash, env.msg, false, FaultEvent::kNoRule, 0);
      throw TransportError(
          TransportError::Kind::kPeerDown,
          "node " + std::to_string(env.msg.to) + " is crashed");
    }
    request_decision = decide(env.msg, Phase::kCallRequest);
  }
  const proto::Message request = env.msg;
  if (request_decision.fired) {
    switch (request_decision.action) {
      case FaultAction::kDrop:
        // Lost before it ever reached the peer: safe to retry blindly.
        throw TransportError(
            TransportError::Kind::kInjected,
            std::string("injected drop of ") + proto::kind_name(request.kind));
      case FaultAction::kDelay:
        std::this_thread::sleep_for(request_decision.delay);
        break;
      case FaultAction::kDuplicate: {
        // Sequential double delivery: the peer processes the request twice,
        // the caller sees only the second answer. Keeping the copies
        // serialized (instead of firing one async) is what keeps the event
        // log replayable under a single-driver workload.
        Envelope copy = env;
        (void)inner_->call(std::move(copy));
        break;
      }
      case FaultAction::kReorder:
      case FaultAction::kCrash:
        break;  // filtered out in decide()
    }
  }
  Envelope reply = inner_->call(std::move(env));
  Decision reply_decision;
  {
    util::ScopedLock lock(mu_);
    reply_decision = decide(request, Phase::kCallReply);
  }
  if (reply_decision.fired) {
    switch (reply_decision.action) {
      case FaultAction::kDrop:
        // The peer DID process the request — this models a lost answer, the
        // at-least-once case the idempotency fixes exist for.
        throw TransportError(TransportError::Kind::kInjected,
                             std::string("injected loss of reply to ") +
                                 proto::kind_name(request.kind));
      case FaultAction::kDelay:
        std::this_thread::sleep_for(reply_decision.delay);
        break;
      case FaultAction::kDuplicate:
      case FaultAction::kReorder:
      case FaultAction::kCrash:
        break;  // meaningless for a correlated reply; never generated
    }
  }
  return reply;
}

bool FaultyTransport::post(Envelope env) {
  Decision decision;
  std::optional<Envelope> release;
  {
    util::ScopedLock lock(mu_);
    if (crashed_.contains(env.msg.from) || crashed_.contains(env.msg.to)) {
      ++injected_.injected_drops;
      log_event(FaultAction::kCrash, env.msg, false, FaultEvent::kNoRule, 0);
      return true;  // blackholed, as if the wire to a dead box ate it
    }
    decision = decide(env.msg, Phase::kPost);
    if (decision.fired && decision.action == FaultAction::kReorder) {
      if (!parked_.has_value()) {
        parked_ = std::move(env);
        return true;  // held back; released behind the next post
      }
      decision.fired = false;  // park slot busy: pass through unperturbed
    }
    if (parked_.has_value()) {
      release = std::move(*parked_);
      parked_.reset();
    }
  }
  bool ok = true;
  if (decision.fired && decision.action == FaultAction::kDrop) {
    // swallowed — "true" because the sender has no reason to know
  } else {
    if (decision.fired && decision.action == FaultAction::kDelay) {
      std::this_thread::sleep_for(decision.delay);
    }
    if (decision.fired && decision.action == FaultAction::kDuplicate) {
      Envelope copy = env;
      (void)inner_->post(std::move(copy));
    }
    ok = inner_->post(std::move(env));
  }
  if (release.has_value()) (void)inner_->post(std::move(*release));
  return ok;
}

std::optional<Envelope> FaultyTransport::receive(cache::NodeId node) {
  return inner_->receive(node);
}

void FaultyTransport::close() {
  std::optional<Envelope> release;
  {
    util::ScopedLock lock(mu_);
    if (parked_.has_value()) {
      release = std::move(*parked_);
      parked_.reset();
    }
  }
  if (release.has_value()) (void)inner_->post(std::move(*release));
  inner_->close();
}

TransportStats FaultyTransport::stats() const {
  TransportStats stats = inner_->stats();
  util::ScopedLock lock(mu_);
  stats.injected_drops += injected_.injected_drops;
  stats.injected_delays += injected_.injected_delays;
  stats.injected_duplicates += injected_.injected_duplicates;
  stats.injected_reorders += injected_.injected_reorders;
  return stats;
}

std::uint64_t FaultyTransport::peer_oldest_age(cache::NodeId n) const {
  return inner_->peer_oldest_age(n);
}

bool FaultyTransport::peer_full(cache::NodeId n) const {
  return inner_->peer_full(n);
}

void FaultyTransport::crash_node(cache::NodeId n) {
  util::ScopedLock lock(mu_);
  crashed_.insert(n);
}

void FaultyTransport::revive_node(cache::NodeId n) {
  util::ScopedLock lock(mu_);
  crashed_.erase(n);
}

bool FaultyTransport::crashed(cache::NodeId n) const {
  util::ScopedLock lock(mu_);
  return crashed_.contains(n);
}

std::vector<FaultEvent> FaultyTransport::events() const {
  util::ScopedLock lock(mu_);
  return events_;
}

bool FaultyTransport::dump_events(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (const FaultEvent& event : events()) {
    out << event_line(event) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace coop::net
