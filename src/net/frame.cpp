#include "net/frame.hpp"

#include <cstring>

namespace coop::net {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void put_u32_at(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64_at(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(
      std::to_integer<std::uint16_t>(p[0]) |
      (std::to_integer<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::to_integer<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<std::byte> encode_handshake(cache::NodeId node) {
  std::vector<std::byte> out;
  out.reserve(kHandshakeSize);
  put_u32(out, kHandshakeMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, node);
  return out;
}

std::optional<cache::NodeId> decode_handshake(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kHandshakeSize) return std::nullopt;
  if (get_u32(bytes.data()) != kHandshakeMagic) return std::nullopt;
  if (get_u16(bytes.data() + 4) != kProtocolVersion) return std::nullopt;
  return get_u16(bytes.data() + 6);
}

FrameHeaderBytes encode_frame_header(const Envelope& env,
                                     std::uint64_t sender_age,
                                     bool sender_full) {
  const std::size_t payload = env.data ? env.data->bytes.size() : 0;
  FrameHeaderBytes out{};
  std::byte* p = out.data();
  put_u32_at(p, static_cast<std::uint32_t>(kFrameFixedSize + payload));
  p[4] = static_cast<std::byte>(sender_full ? 1 : 0);
  put_u64_at(p + 5, sender_age);
  put_u64_at(p + 13, env.seq);
  put_u64_at(p + 21, env.epoch);
  const proto::WireBytes wire = proto::encode(env.msg);
  std::memcpy(p + 29, wire.data(), wire.size());
  put_u32_at(p + 29 + proto::kWireSize,
             static_cast<std::uint32_t>(payload));
  return out;
}

std::vector<std::byte> encode_frame(const Envelope& env,
                                    std::uint64_t sender_age,
                                    bool sender_full) {
  const FrameHeaderBytes header = encode_frame_header(env, sender_age,
                                                      sender_full);
  const std::size_t payload = env.data ? env.data->bytes.size() : 0;
  std::vector<std::byte> out(header.size() + payload);
  std::memcpy(out.data(), header.data(), header.size());
  if (payload > 0) {
    std::memcpy(out.data() + header.size(), env.data->bytes.data(), payload);
  }
  return out;
}

bool FrameReader::feed(std::span<const std::byte> bytes) {
  if (poisoned_) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  return parse_available();
}

bool FrameReader::parse_available() {
  while (true) {
    if (buffer_.size() < 4) return true;  // length prefix incomplete
    const std::uint64_t len = get_u32(buffer_.data());
    if (len < kFrameFixedSize || 4 + len > max_frame_) {
      poisoned_ = true;  // corrupt length prefix (or oversize frame)
      buffer_.clear();
      return false;
    }
    if (buffer_.size() < 4 + len) return true;  // frame body incomplete

    const std::byte* p = buffer_.data() + 4;
    Frame f;
    f.sender_full = std::to_integer<std::uint8_t>(p[0]) != 0;
    f.sender_age = get_u64(p + 1);
    f.env.seq = get_u64(p + 9);
    f.env.epoch = get_u64(p + 17);
    const auto msg =
        proto::decode(std::span<const std::byte>(p + 25, proto::kWireSize));
    const std::uint32_t payload_len = get_u32(p + 25 + proto::kWireSize);
    if (!msg || payload_len != len - kFrameFixedSize) {
      // Garbage where a message should be, or a payload length that
      // disagrees with the frame length: never deliver a partial decode.
      poisoned_ = true;
      buffer_.clear();
      return false;
    }
    f.env.msg = *msg;
    if (payload_len > 0) {
      const std::byte* payload = p + kFrameFixedSize;
      f.env.data = make_ready_block(
          std::vector<std::byte>(payload, payload + payload_len));
    }
    ready_.push_back(std::move(f));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(4 + len));
  }
}

std::optional<Frame> FrameReader::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace coop::net
