// Wire framing for the socket transport: length-prefixed frames carrying
// one Envelope each, over the validated fixed-layout proto::encode/decode.
//
// Frame layout (all integers little-endian):
//
//   u32  len            bytes after this field (validated against bounds)
//   u8   sender_flags   bit0: sender's cache is full (piggyback summary)
//   u64  sender_age     sender's published oldest LRU age (kNoAge: empty)
//   u64  seq            RPC correlation id (0: one-way)
//   u64  epoch          directory epoch riding on master forwards
//   50B  message        proto::encode() fixed layout (proto::kWireSize)
//   u32  payload_len    must equal len - fixed header size
//   ...  payload        block / storage bytes
//
// Connection handshake (once per direction, before any frame):
//
//   u32  magic          "CCM1"
//   u16  version        kProtocolVersion
//   u16  node_id        the sender's node id
//
// FrameReader reassembles frames from arbitrary read boundaries. Any
// malformed input — a length prefix out of bounds, a payload length that
// disagrees with the frame length, bytes that proto::decode rejects —
// poisons the stream permanently: the transport must drop the connection.
// A poisoned reader never yields the malformed frame (no partial delivery).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/envelope.hpp"
#include "proto/node_state.hpp"

namespace coop::net {

inline constexpr std::uint32_t kHandshakeMagic = 0x314D4343;  // "CCM1"
// v2: proto::Message grew trailing trace/span ids (runtime telemetry) and
// the kStatsPull/kStatsReply scrape kinds, changing kWireSize.
// v3: batched directory ops (kDirBatchRequest/kDirBatchReply with their
// payload vocabulary in proto/dir_batch.hpp) extended the kind space.
inline constexpr std::uint16_t kProtocolVersion = 3;
inline constexpr std::size_t kHandshakeSize = 4 + 2 + 2;

/// Fixed frame bytes after the length prefix, before the payload.
inline constexpr std::size_t kFrameFixedSize =
    1 + 8 + 8 + 8 + proto::kWireSize + 4;

/// Default ceiling on one frame (header + payload). Generous: the largest
/// legitimate payload is one storage read of a whole file.
inline constexpr std::size_t kDefaultMaxFrame = 64u << 20;

/// One decoded frame: the envelope plus the sender's piggybacked summary.
struct Frame {
  Envelope env;
  std::uint64_t sender_age = proto::kNoAge;
  bool sender_full = false;
};

/// Encodes the handshake header for `node`.
std::vector<std::byte> encode_handshake(cache::NodeId node);

/// Decodes a handshake; nullopt on bad magic or version mismatch.
std::optional<cache::NodeId> decode_handshake(
    std::span<const std::byte> bytes);

/// Everything before the payload, length prefix included.
using FrameHeaderBytes = std::array<std::byte, 4 + kFrameFixedSize>;

/// Encodes one envelope's frame header — length prefix, sender summary, seq,
/// epoch, message, payload_len — WITHOUT the payload bytes. The scatter-
/// gather writer (TcpTransport::writer_loop) pairs this with an iovec
/// pointing straight into the shared env.data->bytes buffer, so payloads
/// never copy through an intermediate frame buffer. env.data, if present,
/// must already be ready (the writer defers unready envelopes).
FrameHeaderBytes encode_frame_header(const Envelope& env,
                                     std::uint64_t sender_age,
                                     bool sender_full);

/// Encodes one whole frame, payload copied in after the header (tests and
/// non-vectored paths; the TCP writer uses encode_frame_header instead).
std::vector<std::byte> encode_frame(const Envelope& env,
                                    std::uint64_t sender_age,
                                    bool sender_full);

/// Incremental frame reassembly over a byte stream.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrame)
      : max_frame_(max_frame_bytes) {}

  /// Appends stream bytes and parses as many complete frames as they
  /// finish. Returns false once the stream is poisoned — the connection
  /// must be dropped; further feeds are ignored.
  bool feed(std::span<const std::byte> bytes);

  /// Pops the next complete frame in arrival order.
  std::optional<Frame> next();

  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet parsed into a frame (tests).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  bool parse_available();

  std::size_t max_frame_;
  std::vector<std::byte> buffer_;
  std::deque<Frame> ready_;
  bool poisoned_ = false;
};

}  // namespace coop::net
