#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/audit.hpp"

namespace coop::sim {

Engine::~Engine() {
  while (!heap_.empty()) {
    delete heap_.top();
    heap_.pop();
  }
}

EventId Engine::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  auto* e = new Entry{at, next_seq_++, std::move(fn)};
  heap_.push(e);
  ++live_;
  return EventId{e->seq};
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  if (delay < 0) throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return false;
  if (id.seq < fired_.size() && fired_[id.seq]) return false;  // already ran
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.seq);
  if (it != cancelled_.end() && *it == id.seq) return false;  // already cancelled
  cancelled_.insert(it, id.seq);
  // live_ is decremented lazily when the entry is popped; track here so
  // pending() stays accurate.
  assert(live_ > 0);
  --live_;
  return true;
}

void Engine::step() {
  assert(!heap_.empty());
  std::unique_ptr<Entry> e(heap_.top());
  heap_.pop();
  const auto it =
      std::lower_bound(cancelled_.begin(), cancelled_.end(), e->seq);
  if (it != cancelled_.end() && *it == e->seq) {
    cancelled_.erase(it);
    return;  // cancelled; live_ was already adjusted
  }
  --live_;
  now_ = e->at;
  CCM_AUDIT_HOOK(audit_state());
  ++processed_;
  if (e->seq >= fired_.size()) fired_.resize(e->seq + 1024);
  fired_[e->seq] = true;
  e->fn();
}

void Engine::run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) step();
}

bool Engine::run_until(SimTime until) {
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.top()->at <= until) step();
  if (!stopped_ && now_ < until) now_ = until;
  return live_ > 0;
}

std::size_t Engine::audit_state() const {
  std::size_t ccm_audit_failures = 0;
  if (!heap_.empty()) {
    CCM_AUDIT(heap_.top()->at >= now_, "engine-monotonic-time",
              "next event scheduled at " + std::to_string(heap_.top()->at) +
                  " but simulation time is already " + std::to_string(now_));
  }
  CCM_AUDIT(live_ <= heap_.size(), "engine-live-count",
            "live event count " + std::to_string(live_) +
                " exceeds queue size " + std::to_string(heap_.size()));
  return ccm_audit_failures;
}

}  // namespace coop::sim
