#include "sim/stats.hpp"

#include <cassert>
#include <cmath>

namespace coop::sim {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void BusyTracker::set_busy(bool busy, SimTime now) {
  if (busy == busy_) return;
  if (busy_) {
    accumulated_ += now - busy_since_;
    if (sink_) sink_(busy_since_, now);
  }
  busy_ = busy;
  busy_since_ = now;
}

void BusyTracker::reset(SimTime now) {
  window_start_ = now;
  busy_since_ = now;
  accumulated_ = 0.0;
}

SimTime BusyTracker::busy_time(SimTime now) const {
  return accumulated_ + (busy_ ? now - busy_since_ : 0.0);
}

double BusyTracker::utilization(SimTime now) const {
  const SimTime elapsed = now - window_start_;
  if (elapsed <= 0.0) return 0.0;
  return busy_time(now) / elapsed;
}

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), log_lo_(std::log(lo)), counts_(buckets, 0) {
  assert(lo > 0.0 && hi > lo && buckets >= 2);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(buckets);
}

std::size_t LatencyHistogram::bucket_for(double value) const {
  if (value <= lo_) return 0;
  const double idx = (std::log(value) - log_lo_) / log_step_;
  const auto i = static_cast<std::size_t>(idx);
  return std::min(i, counts_.size() - 1);
}

double LatencyHistogram::bucket_upper(std::size_t i) const {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(i + 1));
}

void LatencyHistogram::add(double value) {
  ++counts_[bucket_for(value)];
  ++total_;
  sum_ += value;
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) return bucket_upper(i);
  }
  return bucket_upper(counts_.size() - 1);
}

}  // namespace coop::sim
