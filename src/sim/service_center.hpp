// Service center: the paper's basic hardware modeling primitive (§4.2).
//
// A service center has k identical servers and a FIFO queue with optional
// finite capacity. Jobs carry a pre-computed service demand; completion fires
// a callback. Utilization is tracked per center.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>

#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace coop::sim {

class ServiceCenter {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  /// `servers` parallel units share one FIFO queue holding at most
  /// `queue_capacity` waiting jobs (jobs in service excluded).
  ServiceCenter(Engine& engine, std::string name, std::size_t servers = 1,
                std::size_t queue_capacity = kUnbounded);

  ServiceCenter(const ServiceCenter&) = delete;
  ServiceCenter& operator=(const ServiceCenter&) = delete;

  /// Submits a job with the given service demand (ms). Returns false (and
  /// counts a drop) if the queue is full; `on_done` is then never called.
  bool submit(SimTime service_time, Callback on_done);

  /// Observer invoked whenever the waiting-queue depth changes, in
  /// deterministic sim-event order (observability timeline feed).
  using QueueProbe = std::function<void(SimTime now, std::size_t depth)>;
  void set_queue_probe(QueueProbe probe) { queue_probe_ = std::move(probe); }

  /// Forwards completed busy intervals to `sink` (see BusyTracker).
  void set_busy_interval_sink(BusyTracker::IntervalSink sink) {
    busy_.set_interval_sink(std::move(sink));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t in_service() const { return in_service_; }
  /// Jobs queued plus in service — the "load" metric used by load-aware
  /// dispatchers.
  [[nodiscard]] std::size_t load() const { return queue_.size() + in_service_; }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Fraction of [window start, now] during which at least one server was
  /// busy. For multi-server centers this is "any busy" utilization.
  [[nodiscard]] double utilization(SimTime now) const {
    return busy_.utilization(now);
  }
  /// Mean queueing delay (excludes service) of completed jobs.
  [[nodiscard]] double mean_wait() const { return wait_.mean(); }
  [[nodiscard]] double mean_service() const { return service_.mean(); }
  /// Total service demand processed (ms); with `servers==1` this divided by
  /// the window is the true utilization.
  [[nodiscard]] double busy_ms(SimTime now) const {
    return busy_.busy_time(now);
  }

  /// Restarts the statistics window (used after cache warm-up).
  void reset_stats();

 private:
  struct Job {
    SimTime service;
    SimTime enqueued;
    Callback on_done;
  };

  void start(Job job);
  void finish(SimTime service, Callback on_done);

  Engine& engine_;
  std::string name_;
  std::size_t servers_;
  std::size_t capacity_;
  std::size_t in_service_ = 0;
  std::deque<Job> queue_;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  BusyTracker busy_;
  Accumulator wait_;
  Accumulator service_;
  QueueProbe queue_probe_;
};

}  // namespace coop::sim
