#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace coop::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling for unbiased bounded integers.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : alpha_(alpha), cdf_(n) {
  assert(n > 0);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // First index with cdf >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace coop::sim
