// Discrete-event simulation engine.
//
// The paper's simulator is "event driven and models hardware components as
// service centers with finite queues" (§4.2). This engine provides the event
// loop: a time-ordered queue of callbacks with a stable FIFO tie-break so
// simulations are fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace coop::sim {

/// Simulation time in milliseconds (matching the paper's Table 1 units).
using SimTime = double;

/// Opaque handle for a scheduled event, usable with Engine::cancel.
struct EventId {
  std::uint64_t seq = 0;
};

/// Event callback. Runs exactly once at its scheduled time unless cancelled.
using Callback = std::function<void()>;

/// Single-threaded discrete-event engine.
///
/// Events scheduled for the same time fire in scheduling order (stable
/// tie-break on a monotonically increasing sequence number), which makes every
/// simulation reproducible.
class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` `delay` milliseconds from now (delay must be >= 0).
  EventId schedule_in(SimTime delay, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with time <= `until`, then sets now() to `until` (unless
  /// stopped earlier). Returns true if the queue still has pending events.
  bool run_until(SimTime until);

  /// Requests the run loop to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed so far (cancelled events excluded).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending (cancelled-but-not-popped excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Audits queue/clock consistency: the next pending event is not scheduled
  /// in the past (simulation time must be monotonic) and the live-event count
  /// is bounded by the queue size. Violations are reported through
  /// coop::audit; returns the violation count.
  std::size_t audit_state() const;

 private:
  friend struct EngineTestPeer;  // test-only corruption (audit tests)
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    bool cancelled = false;
  };
  struct Compare {
    // std::priority_queue is a max-heap; invert for earliest-first and
    // smallest-sequence-first among ties.
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  /// Pops and executes the earliest live event. Precondition: live_ > 0.
  void step();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry*, std::vector<Entry*>, Compare> heap_;
  // Cancellation needs to find entries by sequence number; a side map would
  // be slow on the hot path, so the id stores the sequence, checked against
  // a sorted cancel set. Cancels are rare (timeouts), so a sorted vector
  // suffices. `fired_` (1 bit per event ever scheduled) distinguishes
  // already-executed events so cancelling them is a clean no-op.
  std::vector<std::uint64_t> cancelled_;
  std::vector<bool> fired_;
};

}  // namespace coop::sim
