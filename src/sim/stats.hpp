// Statistics accumulators used across the simulator and the harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace coop::sim {

/// Running scalar statistics: count, mean, variance (Welford), min, max.
class Accumulator {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Tracks the busy fraction of a resource over simulated time.
///
/// Utilization is busy-time divided by elapsed time since the last
/// reset(now). Resources call set_busy around each service interval.
class BusyTracker {
 public:
  /// Observer invoked with each completed busy interval [begin, end), in
  /// deterministic sim-event order. Used by the observability timeline; the
  /// tracker itself never reads wall clock or randomness.
  using IntervalSink = std::function<void(SimTime begin, SimTime end)>;

  /// Marks the resource busy/idle at simulation time `now`.
  void set_busy(bool busy, SimTime now);

  /// Clears accumulated busy time and restarts the observation window.
  void reset(SimTime now);

  /// Installs (or clears, with an empty function) the busy-interval sink.
  void set_interval_sink(IntervalSink sink) { sink_ = std::move(sink); }

  /// Busy fraction in [0,1] over [window start, now].
  [[nodiscard]] double utilization(SimTime now) const;

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] SimTime busy_time(SimTime now) const;

 private:
  bool busy_ = false;
  SimTime window_start_ = 0.0;
  SimTime busy_since_ = 0.0;
  SimTime accumulated_ = 0.0;
  IntervalSink sink_;
};

/// Fixed-boundary histogram with percentile queries, used for response-time
/// distributions. Buckets are log-spaced between min and max bounds.
class LatencyHistogram {
 public:
  /// `lo`/`hi` bound the log-spaced bucket range (values outside are clamped
  /// into the first/last bucket).
  LatencyHistogram(double lo = 1e-3, double hi = 1e4, std::size_t buckets = 128);

  void add(double value);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Returns an upper-bound estimate of the p-th percentile (p in [0,100]).
  [[nodiscard]] double percentile(double p) const;

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  double lo_;
  double log_lo_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace coop::sim
