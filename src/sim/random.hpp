// Deterministic pseudo-random generation for workloads.
//
// We implement our own distributions (rather than libstdc++'s) so traces are
// bit-identical across standard libraries; reproducibility of the workload is
// part of the artifact.
#pragma once

#include <cstdint>
#include <vector>

namespace coop::sim {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (caches the second variate).
  double normal();

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf-like sampler over ranks 0..n-1 with exponent alpha:
/// P(rank k) proportional to 1 / (k+1)^alpha.
///
/// Uses a precomputed CDF + binary search; construction is O(n), sampling
/// O(log n). Web-trace popularity is Zipf-like (Arlitt & Williamson), which is
/// what gives the paper's traces their small hot set and long cold tail.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  /// Draws a rank in [0, n). Rank 0 is the most popular.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace coop::sim
