#include "sim/service_center.hpp"

#include <cassert>
#include <utility>

namespace coop::sim {

ServiceCenter::ServiceCenter(Engine& engine, std::string name,
                             std::size_t servers, std::size_t queue_capacity)
    : engine_(engine),
      name_(std::move(name)),
      servers_(servers),
      capacity_(queue_capacity) {
  assert(servers_ > 0);
}

bool ServiceCenter::submit(SimTime service_time, Callback on_done) {
  assert(service_time >= 0.0);
  if (in_service_ < servers_) {
    start(Job{service_time, engine_.now(), std::move(on_done)});
    return true;
  }
  if (queue_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  queue_.push_back(Job{service_time, engine_.now(), std::move(on_done)});
  if (queue_probe_) queue_probe_(engine_.now(), queue_.size());
  return true;
}

void ServiceCenter::start(Job job) {
  ++in_service_;
  busy_.set_busy(true, engine_.now());
  wait_.add(engine_.now() - job.enqueued);
  service_.add(job.service);
  engine_.schedule_in(
      job.service,
      [this, service = job.service, on_done = std::move(job.on_done)]() mutable {
        finish(service, std::move(on_done));
      });
}

void ServiceCenter::finish(SimTime /*service*/, Callback on_done) {
  assert(in_service_ > 0);
  --in_service_;
  ++completed_;
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    if (queue_probe_) queue_probe_(engine_.now(), queue_.size());
    start(std::move(next));
  } else if (in_service_ == 0) {
    busy_.set_busy(false, engine_.now());
  }
  if (on_done) on_done();
}

void ServiceCenter::reset_stats() {
  busy_.reset(engine_.now());
  wait_.reset();
  service_.reset();
  completed_ = 0;
  dropped_ = 0;
}

}  // namespace coop::sim
