// Trace serialization so real access logs (converted offline) can replace the
// synthetic presets without touching any other code.
//
// Format (text, line-oriented):
//   coopcache-trace 1
//   <name>
//   <num_files> <num_requests>
//   <size_bytes of file 0..n-1, whitespace separated>
//   <file id of request 0..m-1, whitespace separated>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace coop::trace {

/// Writes `trace` to the stream. Returns false on I/O failure.
bool write_trace(std::ostream& out, const Trace& trace);
bool write_trace_file(const std::string& path, const Trace& trace);

/// Reads a trace; returns std::nullopt on parse or I/O failure (including
/// out-of-range file ids in the request stream).
std::optional<Trace> read_trace(std::istream& in);
std::optional<Trace> read_trace_file(const std::string& path);

}  // namespace coop::trace
