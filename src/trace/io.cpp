#include "trace/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace coop::trace {

namespace {
constexpr const char* kMagic = "coopcache-trace";
constexpr int kVersion = 1;
}  // namespace

bool write_trace(std::ostream& out, const Trace& trace) {
  out << kMagic << ' ' << kVersion << '\n';
  out << trace.name << '\n';
  out << trace.files.count() << ' ' << trace.requests.size() << '\n';
  for (std::size_t i = 0; i < trace.files.count(); ++i) {
    out << trace.files.size_bytes(static_cast<FileId>(i));
    out << (((i + 1) % 16 == 0 || i + 1 == trace.files.count()) ? '\n' : ' ');
  }
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    out << trace.requests[i];
    out << (((i + 1) % 16 == 0 || i + 1 == trace.requests.size()) ? '\n' : ' ');
  }
  return static_cast<bool>(out);
}

bool write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream f(path);
  if (!f) return false;
  return write_trace(f, trace);
}

std::optional<Trace> read_trace(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return std::nullopt;
  }
  Trace t;
  if (!(in >> t.name)) return std::nullopt;
  std::size_t nfiles = 0, nreqs = 0;
  if (!(in >> nfiles >> nreqs)) return std::nullopt;

  std::vector<std::uint32_t> sizes(nfiles);
  for (auto& s : sizes) {
    if (!(in >> s)) return std::nullopt;
  }
  t.files = FileSet(std::move(sizes));

  t.requests.resize(nreqs);
  for (auto& r : t.requests) {
    if (!(in >> r) || r >= nfiles) return std::nullopt;
  }
  return t;
}

std::optional<Trace> read_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  return read_trace(f);
}

}  // namespace coop::trace
