// Trace characterization: the numbers behind Table 2 and Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace coop::trace {

/// One point of the Figure 1 curve: files sorted by decreasing request
/// frequency, cumulative request fraction and cumulative bytes.
struct CdfPoint {
  double file_fraction;     // fraction of the (sorted) file population
  double request_fraction;  // cumulative fraction of requests covered
  std::uint64_t cum_bytes;  // cumulative file-set bytes
};

/// Table 2 row for one trace.
struct TraceStats {
  std::size_t num_files = 0;
  std::size_t num_requests = 0;
  double avg_file_kb = 0.0;
  double avg_request_kb = 0.0;  // popularity-weighted mean transferred size
  double file_set_mb = 0.0;

  /// Bytes of the most popular files needed to cover `request_fraction` of
  /// all requests (Figure 1's "99% of requests need 494 MB" statistic).
  std::uint64_t working_set_bytes_99 = 0;
  std::uint64_t working_set_bytes_90 = 0;

  /// Figure 1 curve, downsampled to at most `max_points` points.
  std::vector<CdfPoint> cdf;
};

/// Computes trace statistics. `max_cdf_points` bounds the emitted curve.
TraceStats compute_stats(const Trace& trace, std::size_t max_cdf_points = 100);

/// Bytes of the hottest files covering `fraction` of requests.
std::uint64_t working_set_bytes(const Trace& trace, double fraction);

}  // namespace coop::trace
