// Calibrated presets standing in for the paper's four traces (Table 2).
//
// Targets (see DESIGN.md "Trace presets"): file counts, mean sizes, and
// file-set sizes chosen so that, as in the paper, the working sets exceed the
// aggregate cluster memory at the small end of the 4-512 MB/node sweep.
// Request counts are scaled down from the multi-million-request originals so
// every figure regenerates in minutes.
#pragma once

#include <string>
#include <vector>

#include "trace/synthetic.hpp"

namespace coop::trace {

SyntheticSpec calgary_spec();
SyntheticSpec clarknet_spec();
SyntheticSpec nasa_spec();
SyntheticSpec rutgers_spec();

/// All four presets in the paper's order.
std::vector<SyntheticSpec> all_presets();

/// Looks a preset up by (case-sensitive) name; throws std::out_of_range for
/// unknown names.
SyntheticSpec preset_by_name(const std::string& name);

}  // namespace coop::trace
