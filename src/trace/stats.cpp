#include "trace/stats.hpp"

#include <algorithm>
#include <cassert>

namespace coop::trace {
namespace {

/// Files sorted by decreasing request count; returns (file, count) pairs.
std::vector<std::pair<FileId, std::uint64_t>> sorted_by_popularity(
    const Trace& trace) {
  std::vector<std::uint64_t> counts(trace.files.count(), 0);
  for (const auto f : trace.requests) ++counts[f];
  std::vector<std::pair<FileId, std::uint64_t>> order;
  order.reserve(counts.size());
  for (std::size_t f = 0; f < counts.size(); ++f) {
    order.emplace_back(static_cast<FileId>(f), counts[f]);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return order;
}

}  // namespace

TraceStats compute_stats(const Trace& trace, std::size_t max_cdf_points) {
  TraceStats s;
  s.num_files = trace.files.count();
  s.num_requests = trace.requests.size();
  if (s.num_files == 0) return s;

  const std::uint64_t set_bytes = trace.files.total_bytes();
  s.avg_file_kb =
      static_cast<double>(set_bytes) / static_cast<double>(s.num_files) / 1024.0;
  s.file_set_mb = static_cast<double>(set_bytes) / (1024.0 * 1024.0);
  if (s.num_requests > 0) {
    s.avg_request_kb = static_cast<double>(trace.total_requested_bytes()) /
                       static_cast<double>(s.num_requests) / 1024.0;
  }

  const auto order = sorted_by_popularity(trace);
  const double total_reqs = std::max<double>(1.0, static_cast<double>(s.num_requests));

  std::uint64_t cum_reqs = 0;
  std::uint64_t cum_bytes = 0;
  bool hit90 = false, hit99 = false;
  const std::size_t stride =
      std::max<std::size_t>(1, order.size() / std::max<std::size_t>(1, max_cdf_points));
  for (std::size_t i = 0; i < order.size(); ++i) {
    cum_reqs += order[i].second;
    cum_bytes += trace.files.size_bytes(order[i].first);
    const double rf = static_cast<double>(cum_reqs) / total_reqs;
    if (!hit90 && rf >= 0.90) {
      s.working_set_bytes_90 = cum_bytes;
      hit90 = true;
    }
    if (!hit99 && rf >= 0.99) {
      s.working_set_bytes_99 = cum_bytes;
      hit99 = true;
    }
    if (i % stride == 0 || i + 1 == order.size()) {
      s.cdf.push_back(CdfPoint{
          static_cast<double>(i + 1) / static_cast<double>(order.size()), rf,
          cum_bytes});
    }
  }
  if (!hit90) s.working_set_bytes_90 = cum_bytes;
  if (!hit99) s.working_set_bytes_99 = cum_bytes;
  return s;
}

std::uint64_t working_set_bytes(const Trace& trace, double fraction) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  const auto order = [&] {
    std::vector<std::uint64_t> counts(trace.files.count(), 0);
    for (const auto f : trace.requests) ++counts[f];
    std::vector<std::pair<FileId, std::uint64_t>> o;
    o.reserve(counts.size());
    for (std::size_t f = 0; f < counts.size(); ++f) {
      o.emplace_back(static_cast<FileId>(f), counts[f]);
    }
    std::sort(o.begin(), o.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    return o;
  }();

  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(trace.requests.size()));
  std::uint64_t cum_reqs = 0;
  std::uint64_t cum_bytes = 0;
  for (const auto& [file, count] : order) {
    if (cum_reqs >= target) break;
    cum_reqs += count;
    cum_bytes += trace.files.size_bytes(file);
  }
  return cum_bytes;
}

}  // namespace coop::trace
