#include "trace/presets.hpp"

#include <stdexcept>

namespace coop::trace {

SyntheticSpec calgary_spec() {
  SyntheticSpec s;
  s.name = "calgary";
  s.num_files = 6000;
  s.num_requests = 400000;
  s.zipf_alpha = 0.75;
  s.mean_file_bytes = 16.0 * 1024;
  s.size_sigma = 1.3;
  s.seed = 0xCA16A21;
  return s;
}

SyntheticSpec clarknet_spec() {
  SyntheticSpec s;
  s.name = "clarknet";
  s.num_files = 22000;
  s.num_requests = 600000;
  s.zipf_alpha = 0.70;
  s.mean_file_bytes = 12.0 * 1024;
  s.size_sigma = 1.2;
  s.seed = 0xC1A84E7;
  return s;
}

SyntheticSpec nasa_spec() {
  SyntheticSpec s;
  s.name = "nasa";
  s.num_files = 9000;
  s.num_requests = 500000;
  s.zipf_alpha = 0.80;
  s.mean_file_bytes = 20.0 * 1024;
  s.size_sigma = 1.3;
  s.seed = 0x4A5A001;
  return s;
}

SyntheticSpec rutgers_spec() {
  SyntheticSpec s;
  s.name = "rutgers";
  s.num_files = 30000;
  s.num_requests = 600000;
  s.zipf_alpha = 0.65;
  s.mean_file_bytes = 17.0 * 1024;
  s.size_sigma = 1.25;
  s.seed = 0x2179E25;
  return s;
}

std::vector<SyntheticSpec> all_presets() {
  return {calgary_spec(), clarknet_spec(), nasa_spec(), rutgers_spec()};
}

SyntheticSpec preset_by_name(const std::string& name) {
  for (auto& spec : all_presets()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown trace preset: " + name);
}

}  // namespace coop::trace
