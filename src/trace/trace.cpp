#include "trace/trace.hpp"

namespace coop::trace {

std::uint64_t FileSet::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto s : sizes_) total += s;
  return total;
}

std::uint64_t Trace::total_requested_bytes() const {
  std::uint64_t total = 0;
  for (const auto f : requests) total += files.size_bytes(f);
  return total;
}

}  // namespace coop::trace
