// Web-trace representation.
//
// The paper drives its simulator with four WWW access logs (Calgary,
// ClarkNet, NASA, Rutgers; Table 2). Timing information is deliberately
// discarded ("to measure the maximum achievable throughput ... we ignore the
// timing information present in the traces", §4.3), so a trace is just the
// file-size catalogue plus an ordered request stream of file ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coop::trace {

using FileId = std::uint32_t;

/// The set of distinct files a trace touches, with their sizes.
class FileSet {
 public:
  FileSet() = default;
  explicit FileSet(std::vector<std::uint32_t> sizes_bytes)
      : sizes_(std::move(sizes_bytes)) {}

  [[nodiscard]] std::size_t count() const { return sizes_.size(); }
  [[nodiscard]] std::uint32_t size_bytes(FileId f) const { return sizes_[f]; }
  [[nodiscard]] const std::vector<std::uint32_t>& sizes() const {
    return sizes_;
  }

  /// Sum of all file sizes — the paper's "file set size" column.
  [[nodiscard]] std::uint64_t total_bytes() const;

 private:
  std::vector<std::uint32_t> sizes_;
};

/// A named request stream over a file set.
struct Trace {
  std::string name;
  FileSet files;
  std::vector<FileId> requests;

  [[nodiscard]] std::uint64_t total_requested_bytes() const;
};

}  // namespace coop::trace
