// Synthetic trace generation.
//
// Substitution (see DESIGN.md): the paper's four access logs are not
// redistributable, so we generate traces with the same knobs Table 2 reports —
// file count, mean file size, request count — plus a Zipf popularity exponent
// shaped to reproduce Figure 1's concentration. File sizes are lognormal with
// a bounded-Pareto heavy tail, the standard model for web file sizes
// (Arlitt & Williamson, reference [3] of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace coop::trace {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_files = 1000;
  std::size_t num_requests = 100000;
  /// Zipf exponent of the popularity distribution (rank-frequency).
  double zipf_alpha = 0.8;
  /// Target mean file size in bytes (the lognormal body is solved for this).
  double mean_file_bytes = 16 * 1024;
  /// Sigma of the underlying normal for the lognormal body.
  double size_sigma = 1.2;
  /// Fraction of files drawn from the heavy Pareto tail instead of the body.
  /// Kept small: the bounded-Pareto tail's mean is large (~0.8 MB), so even
  /// a few tail files dominate the byte budget.
  double tail_fraction = 0.005;
  /// Pareto tail shape and bounds (bytes).
  double tail_alpha = 1.1;
  double tail_min_bytes = 256.0 * 1024;
  double tail_max_bytes = 4.0 * 1024 * 1024;
  /// Minimum file size (bytes); draws below are clamped.
  std::uint32_t min_file_bytes = 128;
  std::uint64_t seed = 1;
};

/// Generates a trace from the spec. Deterministic in the seed. Popularity
/// ranks are randomly permuted against size so popularity and size are
/// independent, and every file is requested at least implicitly possible
/// (ranks cover the whole file set).
Trace generate(const SyntheticSpec& spec);

}  // namespace coop::trace
