#include "trace/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/random.hpp"

namespace coop::trace {

Trace generate(const SyntheticSpec& spec) {
  assert(spec.num_files > 0);
  sim::Rng rng(spec.seed);

  // --- File sizes: lognormal body + bounded-Pareto tail. ---
  // Solve the body's mu so the overall mean hits mean_file_bytes:
  //   mean = (1-tf) * exp(mu + sigma^2/2) + tf * tail_mean
  const double tf = std::clamp(spec.tail_fraction, 0.0, 0.5);
  double tail_mean = 0.0;
  if (tf > 0.0) {
    const double a = spec.tail_alpha;
    const double lo = spec.tail_min_bytes;
    const double hi = spec.tail_max_bytes;
    if (std::abs(a - 1.0) < 1e-9) {
      tail_mean = (hi - lo) / std::log(hi / lo);
    } else {
      // Bounded-Pareto mean:
      // E[X] = (lo^a * a / (a-1)) * (lo^(1-a) - hi^(1-a)) / (1 - (lo/hi)^a)
      const double la = std::pow(lo, a);
      tail_mean = (la * a / (a - 1.0)) *
                  (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a)) /
                  (1.0 - std::pow(lo / hi, a));
    }
  }
  const double body_target =
      std::max(256.0, (spec.mean_file_bytes - tf * tail_mean) / (1.0 - tf));
  const double mu =
      std::log(body_target) - spec.size_sigma * spec.size_sigma / 2.0;

  std::vector<std::uint32_t> sizes(spec.num_files);
  for (auto& s : sizes) {
    double bytes;
    if (tf > 0.0 && rng.uniform() < tf) {
      bytes = rng.bounded_pareto(spec.tail_alpha, spec.tail_min_bytes,
                                 spec.tail_max_bytes);
    } else {
      bytes = rng.lognormal(mu, spec.size_sigma);
      bytes = std::min(bytes, spec.tail_max_bytes);
    }
    s = static_cast<std::uint32_t>(
        std::max<double>(spec.min_file_bytes, bytes));
  }

  // --- Popularity: Zipf over ranks, ranks permuted onto file ids so size and
  // popularity are independent. ---
  std::vector<FileId> rank_to_file(spec.num_files);
  for (std::size_t i = 0; i < spec.num_files; ++i) {
    rank_to_file[i] = static_cast<FileId>(i);
  }
  for (std::size_t i = spec.num_files - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_int(i + 1);
    std::swap(rank_to_file[i], rank_to_file[j]);
  }

  const sim::ZipfSampler zipf(spec.num_files, spec.zipf_alpha);
  std::vector<FileId> requests(spec.num_requests);
  for (auto& r : requests) r = rank_to_file[zipf.sample(rng)];

  Trace t;
  t.name = spec.name;
  t.files = FileSet(std::move(sizes));
  t.requests = std::move(requests);
  return t;
}

}  // namespace coop::trace
