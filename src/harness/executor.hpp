// Parallel, deterministic sweep executor.
//
// Every sweep cell is a self-contained single-threaded `run_simulation` call
// (see the thread-safety note on run_simulation), so a (system x memory x
// nodes) grid parallelizes trivially: a fixed-size thread pool pulls cell
// indices from an atomic counter and writes each result into a slot keyed by
// the cell's index — never by completion order. Results are therefore
// bit-identical to the serial path regardless of thread count; only the
// order of progress callbacks varies.
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace coop::harness {

/// Progress callback: (completed cells, total cells, just-finished point).
/// Invoked exactly `total` times, serialized under the executor's mutex, with
/// `completed` taking each value 1..total exactly once. With more than one
/// thread the points arrive in completion order.
using Progress =
    std::function<void(std::size_t, std::size_t, const SweepPoint&)>;

/// One fully-specified simulation to run. `trace` must outlive the
/// execution and may be shared by any number of cells.
struct SweepCell {
  server::ClusterConfig config;
  const trace::Trace* trace = nullptr;
  /// Observability knobs (disabled by default; not part of config_hash).
  /// When enabled, the cell's TraceData lands in ExecutionReport::traces.
  obs::TraceConfig obs;
};

struct ExecutorOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). A value of
  /// 1 runs the cells inline, in index order, with no pool at all.
  std::size_t threads = 0;
};

/// Execution result plus per-cell host timing for run reports.
struct ExecutionReport {
  /// One point per cell, in *cell index* order (not completion order).
  std::vector<SweepPoint> points;
  /// Host wall-clock per cell, same order.
  std::vector<double> cell_wall_ms;
  /// Host wall-clock for the whole execution.
  double total_wall_ms = 0.0;
  /// Worker threads actually used (after clamping to the cell count).
  std::size_t threads = 1;
  /// Per-cell observability output, same index order as `points`. Empty
  /// unless at least one cell had `obs.enabled`; cells without tracing hold
  /// default-constructed TraceData (config.enabled == false).
  std::vector<obs::TraceData> traces;
};

/// Runs every cell and assembles the report. Exceptions thrown by a cell
/// (invalid config, drained trace) stop the dispatch of further cells and
/// are rethrown on the calling thread after the pool drains.
ExecutionReport execute_cells(const std::vector<SweepCell>& cells,
                              const ExecutorOptions& options = {},
                              const Progress& progress = {});

/// Resolves `requested` (0 = hardware concurrency) against `cells`.
std::size_t resolve_threads(std::size_t requested, std::size_t cells);

}  // namespace coop::harness
