// Reporting helpers used by the figure benches: ASCII tables to stdout and
// optional CSV emission for replotting.
#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace coop::harness {

/// Prints a section header in the style used by every bench binary.
void print_heading(const std::string& title, const std::string& subtitle = "");

/// Throughput table: one row per memory size, one column per system
/// (Figure 2 panel layout).
util::TextTable throughput_table(const std::vector<SweepPoint>& points,
                                 const std::vector<server::SystemKind>& systems,
                                 const std::vector<std::uint64_t>& memories);

/// Ratio table: each CC variant's metric normalized against L2S
/// (Figures 3 and 5). `metric` selects throughput or mean response time.
enum class Metric { kThroughput, kResponseTime, kGlobalHitRate };
util::TextTable normalized_table(const std::vector<SweepPoint>& points,
                                 const std::vector<server::SystemKind>& systems,
                                 const std::vector<std::uint64_t>& memories,
                                 Metric metric);

/// Extracts a metric value from a point.
double metric_value(const SweepPoint& p, Metric metric);

/// CSV with one row per sweep point and every collected metric (all benches
/// accept --csv=PATH). `label` fills the leading "trace" column.
util::CsvWriter sweep_csv(const std::vector<SweepPoint>& points,
                          const std::string& label = "");

/// Appends `points` to an existing CSV (same column layout as sweep_csv).
/// Sets the header if `csv` is empty.
void append_sweep_csv(util::CsvWriter& csv,
                      const std::vector<SweepPoint>& points,
                      const std::string& label);

/// Writes the CSV if `path` is non-empty, reporting to stdout.
void maybe_write_csv(const util::CsvWriter& csv, const std::string& path);

/// Streams every RunMetrics field (plus the derived global hit rate) as one
/// JSON object — the per-cell payload of the --json run reports.
void metrics_to_json(util::JsonWriter& json, const server::RunMetrics& m);

/// Writes `json` to `path` if non-empty, reporting to stdout like
/// maybe_write_csv.
void maybe_write_json(const util::JsonWriter& json, const std::string& path);

/// Per-cell output path for --trace-out=PATH. A run with exactly one cell
/// writes PATH verbatim; otherwise ".p<panel>c<cell>" is inserted before the
/// filename's extension so every cell gets a distinct file.
[[nodiscard]] std::string trace_file_path(const std::string& base,
                                          std::size_t panel, std::size_t cell,
                                          bool single_cell);

/// Companion timeline CSV path: replaces a trailing ".json" with
/// ".timeline.csv" (appended verbatim when the trace path has no such
/// suffix).
[[nodiscard]] std::string timeline_file_path(const std::string& trace_path);

/// Writes one traced cell's Chrome trace JSON and bucketed timeline CSV,
/// reporting each file to stdout like maybe_write_csv.
void write_trace_outputs(const obs::TraceData& data,
                         const std::string& trace_path,
                         const std::string& timeline_path);

}  // namespace coop::harness
