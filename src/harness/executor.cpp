#include "harness/executor.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace coop::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

SweepPoint run_cell(const SweepCell& cell, obs::TraceData* trace_out) {
  if (cell.trace == nullptr) {
    throw std::invalid_argument("sweep cell has no trace");
  }
  SweepPoint p;
  p.system = cell.config.system;
  p.memory_per_node = cell.config.memory_per_node;
  p.nodes = cell.config.nodes;
  if (cell.obs.enabled) {
    p.metrics = server::run_simulation(cell.config, *cell.trace, cell.obs,
                                       trace_out);
  } else {
    p.metrics = server::run_simulation(cell.config, *cell.trace);
  }
  return p;
}

}  // namespace

std::size_t resolve_threads(std::size_t requested, std::size_t cells) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (n > cells) n = cells;
  if (n == 0) n = 1;
  return n;
}

ExecutionReport execute_cells(const std::vector<SweepCell>& cells,
                              const ExecutorOptions& options,
                              const Progress& progress) {
  ExecutionReport report;
  const std::size_t total = cells.size();
  report.points.resize(total);
  report.cell_wall_ms.resize(total, 0.0);
  report.threads = resolve_threads(options.threads, total);

  bool any_traced = false;
  for (const auto& c : cells) any_traced = any_traced || c.obs.enabled;
  if (any_traced) report.traces.resize(total);

  const auto run_start = Clock::now();

  if (report.threads <= 1) {
    // Serial fast path: index order, no pool, no locking. This is also the
    // reference behavior the parallel path must reproduce bit-for-bit.
    for (std::size_t i = 0; i < total; ++i) {
      const auto cell_start = Clock::now();
      report.points[i] =
          run_cell(cells[i], any_traced ? &report.traces[i] : nullptr);
      report.cell_wall_ms[i] = ms_since(cell_start);
      if (progress) progress(i + 1, total, report.points[i]);
    }
    report.total_wall_ms = ms_since(run_start);
    return report;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex mu;  // guards `done`, `first_error`, and progress invocation
  std::size_t done = 0;
  std::exception_ptr first_error;

  const auto worker = [&]() {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        const auto cell_start = Clock::now();
        obs::TraceData trace_data;
        SweepPoint p =
            run_cell(cells[i], any_traced ? &trace_data : nullptr);
        const double wall = ms_since(cell_start);
        std::lock_guard<std::mutex> lock(mu);
        report.points[i] = std::move(p);
        report.cell_wall_ms[i] = wall;
        if (any_traced) report.traces[i] = std::move(trace_data);
        ++done;
        if (progress) progress(done, total, report.points[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(report.threads);
  for (std::size_t t = 0; t < report.threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  report.total_wall_ms = ms_since(run_start);
  return report;
}

}  // namespace coop::harness
