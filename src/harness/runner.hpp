// Sweep driver: runs (system x memory) grids and collects SweepPoints.
//
// Since the ExperimentSpec refactor these are thin compatibility wrappers
// over the parallel executor (harness/executor.hpp): cells are enumerated in
// the historical order (systems outer, memories inner) and executed on
// `threads` workers, with results assembled in enumeration order so output
// is bit-identical to the old serial loops.
#pragma once

#include <functional>
#include <vector>

#include "harness/executor.hpp"
#include "harness/experiment.hpp"

namespace coop::harness {

/// Runs every (system, memory) combination over `trace` on `nodes` nodes.
/// `mutate` (optional) lets callers tweak each ClusterConfig (ablations).
/// `threads` = 0 uses hardware concurrency; 1 reproduces the serial path
/// exactly, including progress-callback order.
std::vector<SweepPoint> run_memory_sweep(
    const trace::Trace& trace, const std::vector<server::SystemKind>& systems,
    std::size_t nodes, const std::vector<std::uint64_t>& memories,
    const std::function<void(server::ClusterConfig&)>& mutate = {},
    const Progress& progress = {}, std::size_t threads = 0);

/// Runs one system over a node-count sweep at fixed per-node memory
/// (Figure 6b).
std::vector<SweepPoint> run_node_sweep(
    const trace::Trace& trace, server::SystemKind system,
    const std::vector<std::size_t>& node_counts, std::uint64_t memory_per_node,
    const std::function<void(server::ClusterConfig&)>& mutate = {},
    const Progress& progress = {}, std::size_t threads = 0);

/// Finds the sweep point for (system, memory); throws std::out_of_range
/// naming the missing pair if absent.
const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             server::SystemKind system, std::uint64_t memory);

}  // namespace coop::harness
