// Sweep driver: runs (system x memory) grids and collects SweepPoints.
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace coop::harness {

/// Progress callback: (completed cells, total cells, last point).
using Progress =
    std::function<void(std::size_t, std::size_t, const SweepPoint&)>;

/// Runs every (system, memory) combination over `trace` on `nodes` nodes.
/// `mutate` (optional) lets callers tweak each ClusterConfig (ablations).
std::vector<SweepPoint> run_memory_sweep(
    const trace::Trace& trace, const std::vector<server::SystemKind>& systems,
    std::size_t nodes, const std::vector<std::uint64_t>& memories,
    const std::function<void(server::ClusterConfig&)>& mutate = {},
    const Progress& progress = {});

/// Runs one system over a node-count sweep at fixed per-node memory
/// (Figure 6b).
std::vector<SweepPoint> run_node_sweep(
    const trace::Trace& trace, server::SystemKind system,
    const std::vector<std::size_t>& node_counts, std::uint64_t memory_per_node,
    const std::function<void(server::ClusterConfig&)>& mutate = {},
    const Progress& progress = {});

/// Finds the sweep point for (system, memory); throws if absent.
const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             server::SystemKind system, std::uint64_t memory);

}  // namespace coop::harness
