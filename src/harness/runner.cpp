#include "harness/runner.hpp"

#include <stdexcept>
#include <string>

#include "util/format.hpp"

namespace coop::harness {

std::vector<SweepPoint> run_memory_sweep(
    const trace::Trace& trace, const std::vector<server::SystemKind>& systems,
    std::size_t nodes, const std::vector<std::uint64_t>& memories,
    const std::function<void(server::ClusterConfig&)>& mutate,
    const Progress& progress, std::size_t threads) {
  std::vector<SweepCell> cells;
  cells.reserve(systems.size() * memories.size());
  for (const auto system : systems) {
    for (const auto memory : memories) {
      auto config = figure_config(system, nodes, memory);
      if (mutate) mutate(config);
      cells.push_back({std::move(config), &trace, {}});
    }
  }
  return execute_cells(cells, {threads}, progress).points;
}

std::vector<SweepPoint> run_node_sweep(
    const trace::Trace& trace, server::SystemKind system,
    const std::vector<std::size_t>& node_counts, std::uint64_t memory_per_node,
    const std::function<void(server::ClusterConfig&)>& mutate,
    const Progress& progress, std::size_t threads) {
  std::vector<SweepCell> cells;
  cells.reserve(node_counts.size());
  for (const auto nodes : node_counts) {
    auto config = figure_config(system, nodes, memory_per_node);
    if (mutate) mutate(config);
    cells.push_back({std::move(config), &trace, {}});
  }
  return execute_cells(cells, {threads}, progress).points;
}

const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             server::SystemKind system,
                             std::uint64_t memory) {
  for (const auto& p : points) {
    if (p.system == system && p.memory_per_node == memory) return p;
  }
  throw std::out_of_range(std::string("sweep point not found: system=") +
                          server::to_string(system) + " memory=" +
                          util::human_bytes(memory) + " (" +
                          std::to_string(points.size()) + " points searched)");
}

}  // namespace coop::harness
