#include "harness/runner.hpp"

#include <stdexcept>

namespace coop::harness {

std::vector<SweepPoint> run_memory_sweep(
    const trace::Trace& trace, const std::vector<server::SystemKind>& systems,
    std::size_t nodes, const std::vector<std::uint64_t>& memories,
    const std::function<void(server::ClusterConfig&)>& mutate,
    const Progress& progress) {
  std::vector<SweepPoint> out;
  const std::size_t total = systems.size() * memories.size();
  out.reserve(total);
  for (const auto system : systems) {
    for (const auto memory : memories) {
      auto config = figure_config(system, nodes, memory);
      if (mutate) mutate(config);
      SweepPoint p;
      p.system = system;
      p.memory_per_node = memory;
      p.nodes = nodes;
      p.metrics = server::run_simulation(config, trace);
      out.push_back(p);
      if (progress) progress(out.size(), total, out.back());
    }
  }
  return out;
}

std::vector<SweepPoint> run_node_sweep(
    const trace::Trace& trace, server::SystemKind system,
    const std::vector<std::size_t>& node_counts, std::uint64_t memory_per_node,
    const std::function<void(server::ClusterConfig&)>& mutate,
    const Progress& progress) {
  std::vector<SweepPoint> out;
  out.reserve(node_counts.size());
  for (const auto nodes : node_counts) {
    auto config = figure_config(system, nodes, memory_per_node);
    if (mutate) mutate(config);
    SweepPoint p;
    p.system = system;
    p.memory_per_node = memory_per_node;
    p.nodes = nodes;
    p.metrics = server::run_simulation(config, trace);
    out.push_back(p);
    if (progress) progress(out.size(), node_counts.size(), out.back());
  }
  return out;
}

const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             server::SystemKind system,
                             std::uint64_t memory) {
  for (const auto& p : points) {
    if (p.system == system && p.memory_per_node == memory) return p;
  }
  throw std::out_of_range("sweep point not found");
}

}  // namespace coop::harness
