#include "harness/experiment.hpp"

#include "trace/synthetic.hpp"

namespace coop::harness {

std::vector<std::uint64_t> memory_sweep_bytes() {
  std::vector<std::uint64_t> out;
  for (const std::uint64_t mb : {4, 8, 16, 32, 64, 128, 256, 512}) {
    out.push_back(mb * 1024 * 1024);
  }
  return out;
}

std::vector<server::SystemKind> all_systems() {
  return {server::SystemKind::kL2S, server::SystemKind::kCcBasic,
          server::SystemKind::kCcSched, server::SystemKind::kCcNem};
}

trace::Trace load_trace(const std::string& preset_name,
                        std::size_t request_limit) {
  auto spec = trace::preset_by_name(preset_name);
  if (request_limit > 0 && request_limit < spec.num_requests) {
    spec.num_requests = request_limit;
  }
  return trace::generate(spec);
}

server::ClusterConfig figure_config(server::SystemKind system,
                                    std::size_t nodes,
                                    std::uint64_t memory_per_node) {
  server::ClusterConfig c;
  c.system = system;
  c.nodes = nodes;
  c.memory_per_node = memory_per_node;
  // Enough closed-loop clients to saturate the cluster (the paper measures
  // maximum achievable throughput).
  c.clients.clients = 16 * nodes;
  c.clients.warmup_fraction = 0.4;
  return c;
}

}  // namespace coop::harness
