#include "harness/report.hpp"

#include <fstream>
#include <iostream>

#include "obs/perfetto.hpp"

namespace coop::harness {

void print_heading(const std::string& title, const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << "\n";
}

double metric_value(const SweepPoint& p, Metric metric) {
  switch (metric) {
    case Metric::kThroughput:
      return p.metrics.throughput_rps;
    case Metric::kResponseTime:
      return p.metrics.mean_response_ms;
    case Metric::kGlobalHitRate:
      return p.metrics.global_hit_rate();
  }
  return 0.0;
}

util::TextTable throughput_table(
    const std::vector<SweepPoint>& points,
    const std::vector<server::SystemKind>& systems,
    const std::vector<std::uint64_t>& memories) {
  util::TextTable t;
  std::vector<std::string> header{"mem/node"};
  for (const auto s : systems) {
    header.push_back(std::string(server::to_string(s)) + " (req/s)");
  }
  t.set_header(std::move(header));
  for (const auto mem : memories) {
    std::vector<std::string> row{util::human_bytes(mem)};
    for (const auto s : systems) {
      row.push_back(util::fixed(
          find_point(points, s, mem).metrics.throughput_rps, 0));
    }
    t.add_row(std::move(row));
  }
  return t;
}

util::TextTable normalized_table(
    const std::vector<SweepPoint>& points,
    const std::vector<server::SystemKind>& systems,
    const std::vector<std::uint64_t>& memories, Metric metric) {
  util::TextTable t;
  std::vector<std::string> header{"mem/node"};
  for (const auto s : systems) {
    if (s == server::SystemKind::kL2S) continue;
    header.push_back(std::string(server::to_string(s)) + "/L2S");
  }
  t.set_header(std::move(header));
  for (const auto mem : memories) {
    const double base =
        metric_value(find_point(points, server::SystemKind::kL2S, mem),
                     metric);
    std::vector<std::string> row{util::human_bytes(mem)};
    for (const auto s : systems) {
      if (s == server::SystemKind::kL2S) continue;
      const double v = metric_value(find_point(points, s, mem), metric);
      row.push_back(base > 0.0 ? util::fixed(v / base, 2) : "n/a");
    }
    t.add_row(std::move(row));
  }
  return t;
}

util::CsvWriter sweep_csv(const std::vector<SweepPoint>& points,
                          const std::string& label) {
  util::CsvWriter csv;
  append_sweep_csv(csv, points, label);
  return csv;
}

void append_sweep_csv(util::CsvWriter& csv,
                      const std::vector<SweepPoint>& points,
                      const std::string& label) {
  if (csv.rows() == 0) {
    csv.set_header({"trace",          "system",
                    "nodes",          "memory_mb",
                    "throughput_rps", "throughput_mbps",
                    "mean_response_ms", "p95_response_ms",
                    "local_hit_rate", "remote_hit_rate",
                    "global_hit_rate", "cpu_util",
                    "disk_util",      "nic_util",
                    "max_disk_util",  "disk_block_reads",
                    "disk_seeks",     "remote_block_fetches",
                    "master_forwards", "replications",
                    "handoffs"});
  }
  for (const auto& p : points) {
    const auto& m = p.metrics;
    csv.add_row({label, server::to_string(p.system), std::to_string(p.nodes),
                 util::fixed(static_cast<double>(p.memory_per_node) /
                                 (1024.0 * 1024.0),
                             0),
                 util::fixed(m.throughput_rps, 2),
                 util::fixed(m.throughput_mbps, 2),
                 util::fixed(m.mean_response_ms, 3),
                 util::fixed(m.p95_response_ms, 3),
                 util::fixed(m.local_hit_rate, 4),
                 util::fixed(m.remote_hit_rate, 4),
                 util::fixed(m.global_hit_rate(), 4),
                 util::fixed(m.cpu_utilization, 4),
                 util::fixed(m.disk_utilization, 4),
                 util::fixed(m.nic_utilization, 4),
                 util::fixed(m.max_disk_utilization, 4),
                 std::to_string(m.disk_block_reads),
                 std::to_string(m.disk_seeks),
                 std::to_string(m.remote_block_fetches),
                 std::to_string(m.master_forwards),
                 std::to_string(m.replications),
                 std::to_string(m.handoffs)});
  }
}

void maybe_write_csv(const util::CsvWriter& csv, const std::string& path) {
  if (path.empty()) return;
  if (csv.write_file(path)) {
    std::cout << "(wrote " << path << ")\n";
  } else {
    std::cout << "(FAILED to write " << path << ")\n";
  }
}

void metrics_to_json(util::JsonWriter& json, const server::RunMetrics& m) {
  json.begin_object();
  json.key("requests").value(m.requests);
  json.key("bytes_served").value(m.bytes_served);
  json.key("duration_ms").value(m.duration_ms);
  json.key("throughput_rps").value(m.throughput_rps);
  json.key("throughput_mbps").value(m.throughput_mbps);
  json.key("mean_response_ms").value(m.mean_response_ms);
  json.key("p50_response_ms").value(m.p50_response_ms);
  json.key("p95_response_ms").value(m.p95_response_ms);
  json.key("p99_response_ms").value(m.p99_response_ms);
  json.key("local_hit_rate").value(m.local_hit_rate);
  json.key("remote_hit_rate").value(m.remote_hit_rate);
  json.key("global_hit_rate").value(m.global_hit_rate());
  json.key("cpu_utilization").value(m.cpu_utilization);
  json.key("disk_utilization").value(m.disk_utilization);
  json.key("nic_utilization").value(m.nic_utilization);
  json.key("max_disk_utilization").value(m.max_disk_utilization);
  json.key("router_utilization").value(m.router_utilization);
  json.key("disk_block_reads").value(m.disk_block_reads);
  json.key("disk_seeks").value(m.disk_seeks);
  json.key("remote_block_fetches").value(m.remote_block_fetches);
  json.key("master_forwards").value(m.master_forwards);
  json.key("replications").value(m.replications);
  json.key("handoffs").value(m.handoffs);
  json.key("hint_misdirects").value(m.hint_misdirects);
  json.end_object();
}

void maybe_write_json(const util::JsonWriter& json, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json.str() << "\n";
  if (out.good()) {
    std::cout << "(wrote " << path << ")\n";
  } else {
    std::cout << "(FAILED to write " << path << ")\n";
  }
}

std::string trace_file_path(const std::string& base, std::size_t panel,
                            std::size_t cell, bool single_cell) {
  if (single_cell) return base;
  const std::string tag =
      ".p" + std::to_string(panel) + "c" + std::to_string(cell);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  // Only a dot inside the filename component counts as an extension.
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + tag;
  }
  return base.substr(0, dot) + tag + base.substr(dot);
}

std::string timeline_file_path(const std::string& trace_path) {
  const std::string json_ext = ".json";
  if (trace_path.size() >= json_ext.size() &&
      trace_path.compare(trace_path.size() - json_ext.size(),
                         json_ext.size(), json_ext) == 0) {
    return trace_path.substr(0, trace_path.size() - json_ext.size()) +
           ".timeline.csv";
  }
  return trace_path + ".timeline.csv";
}

void write_trace_outputs(const obs::TraceData& data,
                         const std::string& trace_path,
                         const std::string& timeline_path) {
  {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    out << obs::chrome_trace_json(data) << "\n";
    if (out.good()) {
      std::cout << "(wrote " << trace_path << ")\n";
    } else {
      std::cout << "(FAILED to write " << trace_path << ")\n";
    }
  }
  util::CsvWriter csv;
  data.timeline.append_csv(csv);
  if (csv.write_file(timeline_path)) {
    std::cout << "(wrote " << timeline_path << ")\n";
  } else {
    std::cout << "(FAILED to write " << timeline_path << ")\n";
  }
}

}  // namespace coop::harness
