// Declarative experiment specs: every figure/table/ablation of the paper is
// registered as *data* — trace panels, sweep axes, config mutations, output
// columns — and executed by one shared driver (run_experiment). The bench
// binaries are ~5-line stubs over this registry.
//
// Axes. A spec enumerates cells as the cross product
//     panels (trace x nodes)  x  systems  x  memories  x  variants
// or, when `node_counts` is set, a node-count sweep at fixed memory. Cells
// execute on the parallel executor (harness/executor.hpp); results are keyed
// by cell index, so output is identical for any thread count.
//
// Output. Stdout tables come from builtin TableKind renderers or a custom
// `render` hook; CSV (--csv=PATH) from the declared columns or a custom
// `emit_csv` hook — the layouts reproduce the historical per-bench CSVs
// byte-for-byte. --json=PATH additionally emits a machine-readable run
// report (per-cell metrics, wall clock, trace seed, config hash).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/executor.hpp"
#include "harness/report.hpp"
#include "util/csv.hpp"

namespace coop::harness {

/// One ablation variant: a label plus a config mutation applied on top of
/// the cell's figure_config.
struct VariantSpec {
  std::string label;
  /// CSV spelling when it differs from `label` (e.g. "8 KB" vs "8").
  std::string csv_label;
  std::function<void(server::ClusterConfig&)> mutate;

  [[nodiscard]] const std::string& label_for_csv() const {
    return csv_label.empty() ? label : csv_label;
  }
};

struct ExperimentSpec;

/// One executed panel: the resolved axes plus the full result grid, in cell
/// enumeration order (systems outer, then memories, then variants).
struct PanelView {
  std::string trace_name;
  std::size_t nodes = 0;
  std::uint64_t trace_seed = 0;
  std::vector<server::SystemKind> systems;
  std::vector<std::uint64_t> memories;
  std::vector<std::size_t> node_counts;  // non-empty for node sweeps
  std::vector<VariantSpec> variants;
  std::vector<SweepPoint> points;
  std::vector<std::string> cell_labels;
  std::vector<std::uint64_t> cell_config_hashes;
  std::vector<double> cell_wall_ms;
  double total_wall_ms = 0.0;
  /// Observability output files per cell (empty vectors when tracing is
  /// off); surfaced in the --json run report.
  std::vector<std::string> cell_trace_files;
  std::vector<std::string> cell_timeline_files;

  /// Grid lookup by axis indices (not valid for node sweeps — index
  /// `points` directly there).
  [[nodiscard]] const SweepPoint& at(std::size_t system, std::size_t memory,
                                     std::size_t variant) const;
};

/// One output column of a variant-style table/CSV. `csv_header` empty means
/// table-only; `csv_cell` empty reuses `table_cell`.
struct ColumnSpec {
  std::string table_header;
  std::string csv_header;
  std::function<std::string(const SweepPoint&, const PanelView&)> table_cell;
  std::function<std::string(const SweepPoint&, const PanelView&)> csv_cell;
};

/// Builtin stdout renderers (the repeated table shapes of Figures 2-6).
enum class TableKind {
  kThroughputPivot,       // memories x systems, req/s (Fig 2)
  kNormalizedThroughput,  // CC/L2S throughput ratios (Fig 3)
  kNormalizedResponse,    // CC/L2S response-time ratios (Fig 5)
  kAbsoluteResponse,      // L2S + CC-NEM absolute ms (Fig 5 lower panel)
  kHitRatePivot,          // local/remote/global per system (Fig 4)
  kUtilizationRows,       // one row per memory, resource columns (Fig 6a)
  kScalabilityRows,       // one row per node count, speedup vs first (Fig 6b)
  kVariantRows,           // one row per variant, declared columns
};

/// A figure/ablation declared as data. See the registry in spec.cpp.
struct ExperimentSpec {
  std::string name;   // registry key == bench binary name
  std::string title;  // heading line
  std::string note;   // heading subtitle (expected shape, units)

  struct Panel {
    std::string trace;  // preset name; "" expands to every preset
    std::size_t nodes = 8;
  };
  std::vector<Panel> panels;
  std::size_t default_requests = 80000;

  std::vector<server::SystemKind> systems;
  bool system_flag = false;  // accept --system=... (Fig 6a)

  std::vector<std::uint64_t> memories;  // bytes; empty => default_memory_mb
  std::uint64_t default_memory_mb = 0;  // --mem-mb default for ablations

  std::vector<std::size_t> node_counts;  // non-empty => node sweep

  std::vector<VariantSpec> variants;  // empty => one implicit variant
  std::string variant_column;         // table header of the label column
  std::string variant_csv_column;     // CSV header of the label column
  std::vector<ColumnSpec> columns;

  std::vector<TableKind> tables;
  /// Custom hooks; when set they replace the builtin table/CSV emission.
  std::function<void(const PanelView&)> render;
  std::function<void(util::CsvWriter&, const PanelView&)> emit_csv;
  /// Extra stdout after the tables (summary lines).
  std::function<void(const PanelView&)> footer;
};

/// All registered experiments, in the paper's order.
const std::vector<ExperimentSpec>& all_experiments();

/// Looks an experiment up by name; nullptr when absent.
const ExperimentSpec* find_experiment(const std::string& name);

/// Runs a spec with the shared CLI: --trace --nodes --requests --mem-mb
/// --system --threads=N --csv=PATH --json=PATH --quiet, plus the
/// observability flags --trace-out=PATH --trace-sample=N
/// --timeline-bucket-ms=B --trace-ring=N (a --trace value containing '.' or
/// '/' is read as a path, i.e. an alias for --trace-out). Returns a process
/// exit code.
int run_experiment(const ExperimentSpec& spec, int argc, char** argv);

/// Name-based convenience for the bench stubs; unknown names print the
/// registry and return 2.
int run_experiment(const std::string& name, int argc, char** argv);

}  // namespace coop::harness
