// Experiment definitions shared by the figure benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/cluster.hpp"
#include "trace/presets.hpp"
#include "trace/trace.hpp"

namespace coop::harness {

/// The paper's per-node memory sweep (Figure 2 x-axis): 4-512 MB.
std::vector<std::uint64_t> memory_sweep_bytes();

/// The four systems in plotting order.
std::vector<server::SystemKind> all_systems();

/// Materializes a preset trace, optionally truncating the request stream to
/// `request_limit` (0 = full preset). Truncation keeps figures regenerable
/// in minutes; the caches reach steady state well within the warm-up window.
trace::Trace load_trace(const std::string& preset_name,
                        std::size_t request_limit = 0);

/// Standard cluster configuration used by every figure (the paper's §4).
server::ClusterConfig figure_config(server::SystemKind system,
                                    std::size_t nodes,
                                    std::uint64_t memory_per_node);

/// One sweep cell result.
struct SweepPoint {
  server::SystemKind system;
  std::uint64_t memory_per_node = 0;
  std::size_t nodes = 0;
  server::RunMetrics metrics;

  /// Field-wise equality (parallel-vs-serial determinism checks).
  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

}  // namespace coop::harness
