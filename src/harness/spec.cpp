#include "harness/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "trace/presets.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace coop::harness {

const SweepPoint& PanelView::at(std::size_t system, std::size_t memory,
                                std::size_t variant) const {
  if (!node_counts.empty()) {
    throw std::logic_error("PanelView::at is a grid lookup; index points[] "
                           "directly for node sweeps");
  }
  const std::size_t idx =
      (system * memories.size() + memory) * variants.size() + variant;
  return points.at(idx);
}

namespace {

// ---------------------------------------------------------------------------
// Shared column formatters (table vs CSV precision follows the historical
// per-bench output so CSVs stay byte-identical).
// ---------------------------------------------------------------------------

std::string rps_table(const SweepPoint& p, const PanelView&) {
  return util::fixed(p.metrics.throughput_rps, 0);
}
std::string rps_csv(const SweepPoint& p, const PanelView&) {
  return util::fixed(p.metrics.throughput_rps, 2);
}
std::string hit_table(const SweepPoint& p, const PanelView&) {
  return util::percent(p.metrics.global_hit_rate(), 1);
}
std::string hit_csv(const SweepPoint& p, const PanelView&) {
  return util::fixed(p.metrics.global_hit_rate(), 4);
}
std::string disk_reads_cell(const SweepPoint& p, const PanelView&) {
  return std::to_string(p.metrics.disk_block_reads);
}

double seeks_per_read(const SweepPoint& p) {
  return p.metrics.disk_block_reads
             ? static_cast<double>(p.metrics.disk_seeks) /
                   static_cast<double>(p.metrics.disk_block_reads)
             : 0.0;
}

// ---------------------------------------------------------------------------
// Builtin table renderers.
// ---------------------------------------------------------------------------

void render_hit_rate_pivot(const PanelView& v) {
  util::TextTable t;
  std::vector<std::string> header{"mem/node"};
  for (const auto s : v.systems) {
    header.push_back(std::string(server::to_string(s)) + " loc");
    header.push_back(std::string(server::to_string(s)) + " rem");
    header.push_back(std::string(server::to_string(s)) + " glob");
  }
  t.set_header(std::move(header));
  for (const auto mem : v.memories) {
    std::vector<std::string> row{util::human_bytes(mem)};
    for (const auto s : v.systems) {
      const auto& m = find_point(v.points, s, mem).metrics;
      row.push_back(util::percent(m.local_hit_rate, 0));
      row.push_back(util::percent(m.remote_hit_rate, 0));
      row.push_back(util::percent(m.global_hit_rate(), 0));
    }
    t.add_row(std::move(row));
  }
  t.print();
}

void render_absolute_response(const PanelView& v) {
  util::TextTable t;
  t.set_header({"mem/node", "L2S (ms)", "CC-NEM (ms)"});
  for (const auto mem : v.memories) {
    t.add_row({util::human_bytes(mem),
               util::fixed(find_point(v.points, server::SystemKind::kL2S, mem)
                               .metrics.mean_response_ms,
                           2),
               util::fixed(
                   find_point(v.points, server::SystemKind::kCcNem, mem)
                       .metrics.mean_response_ms,
                   2)});
  }
  t.print();
}

void render_utilization_rows(const PanelView& v) {
  util::TextTable t;
  t.set_header({"mem/node", "disk", "disk max", "cpu", "nic", "router",
                "throughput (req/s)"});
  for (const auto& p : v.points) {
    t.add_row({util::human_bytes(p.memory_per_node),
               util::percent(p.metrics.disk_utilization, 1),
               util::percent(p.metrics.max_disk_utilization, 1),
               util::percent(p.metrics.cpu_utilization, 1),
               util::percent(p.metrics.nic_utilization, 1),
               util::percent(p.metrics.router_utilization, 1),
               util::fixed(p.metrics.throughput_rps, 0)});
  }
  t.print();
}

void render_scalability_rows(const PanelView& v) {
  util::TextTable t;
  t.set_header({"nodes", "throughput (req/s)", "speedup vs " +
                             std::to_string(v.points.front().nodes),
                "global hit", "disk util"});
  const double base = v.points.front().metrics.throughput_rps;
  for (const auto& p : v.points) {
    t.add_row({std::to_string(p.nodes),
               util::fixed(p.metrics.throughput_rps, 0),
               util::fixed(base > 0.0 ? p.metrics.throughput_rps / base : 0.0,
                           2),
               util::percent(p.metrics.global_hit_rate(), 1),
               util::percent(p.metrics.disk_utilization, 1)});
  }
  t.print();
}

void render_variant_rows(const ExperimentSpec& spec, const PanelView& v) {
  util::TextTable t;
  std::vector<std::string> header{spec.variant_column};
  for (const auto& c : spec.columns) header.push_back(c.table_header);
  t.set_header(std::move(header));
  for (std::size_t vi = 0; vi < v.variants.size(); ++vi) {
    const auto& p = v.at(0, 0, vi);
    std::vector<std::string> row{v.variants[vi].label};
    for (const auto& c : spec.columns) row.push_back(c.table_cell(p, v));
    t.add_row(std::move(row));
  }
  t.print();
}

void default_render(const ExperimentSpec& spec, const PanelView& v) {
  for (const auto kind : spec.tables) {
    switch (kind) {
      case TableKind::kThroughputPivot:
        throughput_table(v.points, v.systems, v.memories).print();
        break;
      case TableKind::kNormalizedThroughput:
        normalized_table(v.points, v.systems, v.memories,
                         Metric::kThroughput)
            .print();
        break;
      case TableKind::kNormalizedResponse:
        normalized_table(v.points, v.systems, v.memories,
                         Metric::kResponseTime)
            .print();
        break;
      case TableKind::kAbsoluteResponse:
        render_absolute_response(v);
        break;
      case TableKind::kHitRatePivot:
        render_hit_rate_pivot(v);
        break;
      case TableKind::kUtilizationRows:
        render_utilization_rows(v);
        break;
      case TableKind::kScalabilityRows:
        render_scalability_rows(v);
        break;
      case TableKind::kVariantRows:
        render_variant_rows(spec, v);
        break;
    }
  }
}

void default_emit_csv(const ExperimentSpec& spec, util::CsvWriter& csv,
                      const PanelView& v) {
  const bool variant_style = !spec.columns.empty();
  if (!variant_style) {
    append_sweep_csv(csv, v.points, v.trace_name);
    return;
  }
  if (csv.rows() == 0) {
    std::vector<std::string> header{spec.variant_csv_column};
    for (const auto& c : spec.columns) {
      if (!c.csv_header.empty()) header.push_back(c.csv_header);
    }
    csv.set_header(std::move(header));
  }
  for (std::size_t vi = 0; vi < v.variants.size(); ++vi) {
    const auto& p = v.at(0, 0, vi);
    std::vector<std::string> row{v.variants[vi].label_for_csv()};
    for (const auto& c : spec.columns) {
      if (c.csv_header.empty()) continue;
      row.push_back(c.csv_cell ? c.csv_cell(p, v) : c.table_cell(p, v));
    }
    csv.add_row(std::move(row));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

int run_experiment(const ExperimentSpec& spec, int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto requests = static_cast<std::size_t>(flags.get_int(
      "requests", static_cast<std::int64_t>(spec.default_requests)));
  const bool quiet = flags.get_bool("quiet", false);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));

  // Observability flags. --trace historically filters trace presets; a value
  // containing '.' or '/' can only be a filesystem path, so it is accepted as
  // an alias for the canonical --trace-out.
  std::string trace_out = flags.get("trace-out", "");
  std::string trace_filter;
  if (flags.has("trace")) {
    const std::string v = flags.get("trace");
    const bool looks_like_path = v.find('.') != std::string::npos ||
                                 v.find('/') != std::string::npos;
    if (looks_like_path && trace_out.empty()) {
      trace_out = v;
    } else {
      trace_filter = v;
    }
  }
  obs::TraceConfig obs_config;
  obs_config.enabled = !trace_out.empty();
  obs_config.sample_every = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, flags.get_int("trace-sample", 1)));
  obs_config.timeline_bucket_ms =
      flags.get_double("timeline-bucket-ms", 100.0);
  obs_config.ring_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("trace-ring", 512)));

  // Resolve the system / memory / variant axes against the flags.
  std::vector<server::SystemKind> systems = spec.systems;
  if (spec.system_flag && flags.has("system")) {
    systems = {server::system_from_string(flags.get("system"))};
  }
  std::vector<std::uint64_t> memories = spec.memories;
  if (flags.has("mem-mb")) {
    memories = {static_cast<std::uint64_t>(flags.get_int("mem-mb", 0)) << 20};
  } else if (memories.empty()) {
    memories = {spec.default_memory_mb << 20};
  }
  std::vector<VariantSpec> variants = spec.variants;
  if (variants.empty()) variants.push_back({"", "", {}});

  // Resolve trace panels: expand the "every preset" wildcard, then apply
  // --trace / --nodes overrides.
  std::vector<ExperimentSpec::Panel> panels;
  for (const auto& p : spec.panels) {
    if (p.trace.empty()) {
      for (const auto& preset : trace::all_presets()) {
        panels.push_back({preset.name, p.nodes});
      }
    } else {
      panels.push_back(p);
    }
  }
  if (!trace_filter.empty()) {
    std::vector<ExperimentSpec::Panel> kept;
    for (const auto& p : panels) {
      if (p.trace == trace_filter) kept.push_back(p);
    }
    if (kept.empty()) kept.push_back({trace_filter, panels.front().nodes});
    panels = std::move(kept);
  }
  if (flags.has("nodes")) {
    const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
    for (auto& p : panels) p.nodes = nodes;
  }

  util::CsvWriter csv;
  std::vector<PanelView> views;
  std::size_t threads_used = 1;

  // Whether --trace-out names exactly one output file (one panel, one cell)
  // or needs a ".p<panel>c<cell>" suffix per cell.
  const std::size_t cells_per_panel =
      spec.node_counts.empty()
          ? systems.size() * memories.size() * variants.size()
          : spec.node_counts.size();
  const bool single_trace_file =
      panels.size() == 1 && cells_per_panel == 1;

  for (std::size_t panel_index = 0; panel_index < panels.size();
       ++panel_index) {
    const auto& panel = panels[panel_index];
    trace::SyntheticSpec trace_spec;
    try {
      trace_spec = trace::preset_by_name(panel.trace);
    } catch (const std::out_of_range& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    if (requests > 0 && requests < trace_spec.num_requests) {
      trace_spec.num_requests = requests;
    }
    const auto tr = trace::generate(trace_spec);

    std::string heading = spec.title + " — " + panel.trace + ", " +
                          std::to_string(panel.nodes) + " nodes";
    if (spec.node_counts.empty() && memories.size() == 1) {
      heading += ", " + std::to_string(memories.front() >> 20) + " MB/node";
    }
    print_heading(heading, spec.note);

    PanelView view;
    view.trace_name = panel.trace;
    view.nodes = panel.nodes;
    view.trace_seed = trace_spec.seed;
    view.systems = systems;
    view.memories = memories;
    view.node_counts = spec.node_counts;
    view.variants = variants;

    std::vector<SweepCell> cells;
    if (!spec.node_counts.empty()) {
      for (const auto n : spec.node_counts) {
        auto config = figure_config(systems.front(), n, memories.front());
        if (variants.front().mutate) variants.front().mutate(config);
        view.cell_labels.push_back(variants.front().label);
        view.cell_config_hashes.push_back(server::config_hash(config));
        cells.push_back({std::move(config), &tr, obs_config});
      }
    } else {
      for (const auto system : systems) {
        for (const auto memory : memories) {
          for (const auto& variant : variants) {
            auto config = figure_config(system, panel.nodes, memory);
            if (variant.mutate) variant.mutate(config);
            view.cell_labels.push_back(variant.label);
            view.cell_config_hashes.push_back(server::config_hash(config));
            cells.push_back({std::move(config), &tr, obs_config});
          }
        }
      }
    }

    const Progress progress =
        quiet ? Progress{}
              : [&](std::size_t done, std::size_t total,
                    const SweepPoint& p) {
                  std::cerr << "  [" << done << "/" << total << "] "
                            << server::to_string(p.system) << " "
                            << util::human_bytes(p.memory_per_node) << " "
                            << p.nodes << " nodes -> "
                            << util::fixed(p.metrics.throughput_rps, 0)
                            << " req/s\n";
                };

    auto report = execute_cells(cells, {threads}, progress);
    threads_used = report.threads;
    view.points = std::move(report.points);
    view.cell_wall_ms = std::move(report.cell_wall_ms);
    view.total_wall_ms = report.total_wall_ms;

    // Trace/timeline files are written here on the main thread, in cell
    // index order, so the bytes are independent of --threads.
    if (obs_config.enabled) {
      for (std::size_t i = 0; i < report.traces.size(); ++i) {
        const std::string trace_path = trace_file_path(
            trace_out, panel_index, i, single_trace_file);
        const std::string timeline_path = timeline_file_path(trace_path);
        write_trace_outputs(report.traces[i], trace_path, timeline_path);
        view.cell_trace_files.push_back(trace_path);
        view.cell_timeline_files.push_back(timeline_path);
      }
    }

    if (spec.render) {
      spec.render(view);
    } else {
      default_render(spec, view);
    }
    if (spec.emit_csv) {
      spec.emit_csv(csv, view);
    } else {
      default_emit_csv(spec, csv, view);
    }
    if (spec.footer) spec.footer(view);

    views.push_back(std::move(view));
  }

  maybe_write_csv(csv, flags.get("csv", ""));

  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    util::JsonWriter json;
    json.begin_object();
    json.key("experiment").value(spec.name);
    json.key("title").value(spec.title);
    json.key("requests").value(requests);
    json.key("threads").value(threads_used);
    if (obs_config.enabled) {
      json.key("observability").begin_object();
      json.key("trace_out").value(trace_out);
      json.key("sample_every").value(obs_config.sample_every);
      json.key("timeline_bucket_ms").value(obs_config.timeline_bucket_ms);
      json.key("ring_capacity").value(obs_config.ring_capacity);
      json.end_object();
    }
    json.key("panels").begin_array();
    for (const auto& v : views) {
      json.begin_object();
      json.key("trace").value(v.trace_name);
      json.key("nodes").value(v.nodes);
      json.key("trace_seed").value(v.trace_seed);
      json.key("total_wall_ms").value(v.total_wall_ms);
      json.key("cells").begin_array();
      for (std::size_t i = 0; i < v.points.size(); ++i) {
        const auto& p = v.points[i];
        json.begin_object();
        json.key("index").value(i);
        if (!v.cell_labels[i].empty()) {
          json.key("label").value(v.cell_labels[i]);
        }
        json.key("system").value(server::to_string(p.system));
        json.key("nodes").value(p.nodes);
        json.key("memory_bytes").value(p.memory_per_node);
        char hash_hex[19];
        std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                      static_cast<unsigned long long>(
                          v.cell_config_hashes[i]));
        json.key("config_hash").value(hash_hex);
        json.key("wall_ms").value(v.cell_wall_ms[i]);
        if (i < v.cell_trace_files.size()) {
          json.key("trace_file").value(v.cell_trace_files[i]);
          json.key("timeline_file").value(v.cell_timeline_files[i]);
        }
        json.key("metrics");
        metrics_to_json(json, p.metrics);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    maybe_write_json(json, json_path);
  }
  return 0;
}

int run_experiment(const std::string& name, int argc, char** argv) {
  const ExperimentSpec* spec = find_experiment(name);
  if (spec == nullptr) {
    std::cerr << "unknown experiment '" << name << "'. Registered:\n";
    for (const auto& s : all_experiments()) {
      std::cerr << "  " << s.name << " — " << s.title << "\n";
    }
    return 2;
  }
  return run_experiment(*spec, argc, argv);
}

// ---------------------------------------------------------------------------
// The registry: Figures 2-6 and ablations A1-A7 declared as data.
// ---------------------------------------------------------------------------

namespace {

std::vector<ExperimentSpec> build_registry() {
  std::vector<ExperimentSpec> specs;

  {
    ExperimentSpec s;
    s.name = "fig2_throughput";
    s.title = "Figure 2: throughput";
    s.note = "Per-node memory 4-512 MB; closed-loop clients; steady state.";
    s.panels = {{"", 8}};
    s.default_requests = 80000;
    s.systems = all_systems();
    s.memories = memory_sweep_bytes();
    s.tables = {TableKind::kThroughputPivot};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "fig3_normalized";
    s.title = "Figure 3: throughput normalized against L2S";
    s.note = "Values are CC/L2S throughput ratios (1.00 = matching L2S).";
    s.panels = {{"calgary", 4}, {"rutgers", 8}};
    s.default_requests = 60000;
    s.systems = all_systems();
    s.memories = memory_sweep_bytes();
    s.tables = {TableKind::kNormalizedThroughput};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "fig4_hitrates";
    s.title = "Figure 4: hit rates";
    s.note = "local+remote = global. CCM rates are block-level; L2S "
             "file-level.";
    s.panels = {{"rutgers", 8}};
    s.default_requests = 100000;
    s.systems = all_systems();
    s.memories = memory_sweep_bytes();
    s.tables = {TableKind::kHitRatePivot};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "fig5_response_time";
    s.title = "Figure 5: mean response time normalized against L2S";
    s.note = "Ratios >1 mean CC responds slower than L2S.";
    s.panels = {{"calgary", 4}, {"rutgers", 8}};
    s.default_requests = 60000;
    s.systems = all_systems();
    s.memories = memory_sweep_bytes();
    s.tables = {TableKind::kNormalizedResponse, TableKind::kAbsoluteResponse};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "fig6a_utilization";
    s.title = "Figure 6(a): resource utilization";
    s.note = "Average across nodes; 'disk max' is the hottest single disk.";
    s.panels = {{"rutgers", 8}};
    s.default_requests = 120000;
    s.systems = {server::SystemKind::kCcNem};
    s.system_flag = true;
    s.memories = memory_sweep_bytes();
    s.tables = {TableKind::kUtilizationRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "fig6b_scalability";
    s.title = "Figure 6(b): CC-NEM throughput vs cluster size";
    s.note = "Speedup is relative to the 4-node configuration.";
    s.panels = {{"rutgers", 8}};
    s.default_requests = 120000;
    s.systems = {server::SystemKind::kCcNem};
    s.node_counts = {4, 8, 16, 24, 32};
    s.default_memory_mb = 32;
    s.tables = {TableKind::kScalabilityRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_blocksize";
    s.title = "Ablation A3: cache block size (CC-NEM)";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kCcNem};
    s.default_memory_mb = 64;
    for (const std::uint32_t kb : {8u, 16u, 32u, 64u}) {
      s.variants.push_back(
          {std::to_string(kb) + " KB", std::to_string(kb),
           [kb](server::ClusterConfig& cfg) {
             cfg.params.block_bytes = kb * 1024;
           }});
    }
    s.variant_column = "block";
    s.variant_csv_column = "block_kb";
    s.columns = {
        {"throughput (req/s)", "throughput_rps", rps_table, rps_csv},
        {"global hit", "global_hit", hit_table, hit_csv},
        {"remote fetches", "remote_fetches",
         [](const SweepPoint& p, const PanelView&) {
           return std::to_string(p.metrics.remote_block_fetches);
         },
         {}},
        {"disk reads", "disk_reads", disk_reads_cell, {}},
        {"mean resp (ms)", "mean_response_ms",
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.mean_response_ms, 2);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.mean_response_ms, 3);
         }},
    };
    s.tables = {TableKind::kVariantRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_directory";
    s.title = "Ablation A1: perfect vs hint-based master directory (CC-NEM)";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kCcNem};
    s.default_memory_mb = 64;
    struct Variant {
      const char* label;
      cache::DirectoryMode mode;
      std::uint32_t staleness;
    };
    for (const auto& v : {Variant{"perfect", cache::DirectoryMode::kPerfect, 0},
                          Variant{"hints (lag 1)", cache::DirectoryMode::kHinted,
                                  1},
                          Variant{"hints (lag 4)", cache::DirectoryMode::kHinted,
                                  4},
                          Variant{"hints (lag 16)",
                                  cache::DirectoryMode::kHinted, 16}}) {
      s.variants.push_back({v.label, "",
                            [mode = v.mode, lag = v.staleness](
                                server::ClusterConfig& cfg) {
                              cfg.directory = mode;
                              cfg.hint_staleness = lag;
                            }});
    }
    s.variant_column = "directory";
    s.variant_csv_column = "directory";
    s.columns = {
        {"throughput (req/s)", "throughput_rps", rps_table, rps_csv},
        {"vs perfect", "",
         [](const SweepPoint& p, const PanelView& v) {
           const double base = v.at(0, 0, 0).metrics.throughput_rps;
           return util::fixed(base > 0.0 ? p.metrics.throughput_rps / base
                                         : 0.0,
                              2);
         },
         {}},
        {"global hit", "global_hit", hit_table, hit_csv},
        {"disk reads", "disk_reads", disk_reads_cell, {}},
        {"misdirects", "misdirects",
         [](const SweepPoint& p, const PanelView&) {
           return std::to_string(p.metrics.hint_misdirects);
         },
         {}},
    };
    s.tables = {TableKind::kVariantRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_handoff";
    s.title = "Ablation A2: TCP hand-off for L2S";
    s.note = "Warm memory so migrations dominate.";
    s.panels = {{"calgary", 8}};
    s.systems = {server::SystemKind::kL2S};
    s.default_memory_mb = 128;
    s.variants = {
        {"hand-off", "",
         [](server::ClusterConfig& cfg) { cfg.tcp_handoff = true; }},
        {"relay (no hand-off)", "",
         [](server::ClusterConfig& cfg) { cfg.tcp_handoff = false; }},
    };
    s.variant_column = "variant";
    s.variant_csv_column = "variant";
    s.columns = {
        {"throughput (req/s)", "throughput_rps", rps_table, rps_csv},
        {"mean resp (ms)", "mean_response_ms",
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.mean_response_ms, 2);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.mean_response_ms, 3);
         }},
        {"handoffs", "handoffs",
         [](const SweepPoint& p, const PanelView&) {
           return std::to_string(p.metrics.handoffs);
         },
         {}},
        {"replications", "replications",
         [](const SweepPoint& p, const PanelView&) {
           return std::to_string(p.metrics.replications);
         },
         {}},
    };
    s.tables = {TableKind::kVariantRows};
    s.footer = [](const PanelView& v) {
      const double with_rps = v.at(0, 0, 0).metrics.throughput_rps;
      const double without_rps = v.at(0, 0, 1).metrics.throughput_rps;
      if (without_rps > 0.0) {
        std::cout << "hand-off advantage: "
                  << util::percent(with_rps / without_rps - 1.0, 1)
                  << " (paper cites ~7% for Bianchini & Carrera's testbed)\n";
      }
    };
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_scheduler";
    s.title = "Ablation A4: disk scheduling x replacement policy";
    s.note = "Disk-bound regime; seeks/read is the paper's \"12 seeks "
             "instead of 4\" mechanism.";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kCcBasic};
    s.default_memory_mb = 16;
    for (const auto system :
         {server::SystemKind::kCcBasic, server::SystemKind::kCcSched,
          server::SystemKind::kCcNem, server::SystemKind::kL2S}) {
      s.variants.push_back({server::to_string(system), "",
                            [system](server::ClusterConfig& cfg) {
                              cfg.system = system;
                            }});
    }
    s.variant_column = "system";
    s.variant_csv_column = "system";
    s.columns = {
        {"throughput (req/s)", "throughput_rps", rps_table, rps_csv},
        {"seeks/read", "seeks_per_read",
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(seeks_per_read(p), 2);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(seeks_per_read(p), 3);
         }},
        {"disk util", "disk_util",
         [](const SweepPoint& p, const PanelView&) {
           return util::percent(p.metrics.disk_utilization, 1);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.disk_utilization, 4);
         }},
        {"max disk util", "max_disk_util",
         [](const SweepPoint& p, const PanelView&) {
           return util::percent(p.metrics.max_disk_utilization, 1);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.max_disk_utilization, 4);
         }},
    };
    s.tables = {TableKind::kVariantRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_hotspot";
    s.title = "Ablation A5: forced file-placement concentration (CC-NEM)";
    s.note = "Round-robin DNS still spreads requests; all misses hammer the "
             "concentrated home disks.";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kCcNem};
    s.default_memory_mb = 64;
    s.variants = {
        {"spread (file % nodes)", "", {}},
        {"half cluster", "",
         [](server::ClusterConfig& cfg) {
           const auto n = static_cast<std::uint16_t>(cfg.nodes);
           cfg.home_of = [n](trace::FileId f) {
             return static_cast<std::uint16_t>(f % (n / 2 ? n / 2 : 1));
           };
         }},
        {"single node", "",
         [](server::ClusterConfig& cfg) {
           cfg.home_of = [](trace::FileId) { return std::uint16_t{0}; };
         }},
    };
    s.variant_column = "placement";
    s.variant_csv_column = "placement";
    s.columns = {
        {"throughput (req/s)", "throughput_rps", rps_table, rps_csv},
        {"global hit", "global_hit", hit_table, hit_csv},
        {"disk util avg", "disk_util",
         [](const SweepPoint& p, const PanelView&) {
           return util::percent(p.metrics.disk_utilization, 1);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.disk_utilization, 4);
         }},
        {"disk util max", "max_disk_util",
         [](const SweepPoint& p, const PanelView&) {
           return util::percent(p.metrics.max_disk_utilization, 1);
         },
         [](const SweepPoint& p, const PanelView&) {
           return util::fixed(p.metrics.max_disk_utilization, 4);
         }},
    };
    s.tables = {TableKind::kVariantRows};
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_wholefile";
    s.title = "Ablation A7: block-grain vs whole-file CCM (vs L2S)";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kCcNem};
    s.memories = {16ull << 20, 64ull << 20, 256ull << 20};
    s.variants = {
        {"CC-NEM blk", "", {}},
        {"CC-NEM file", "",
         [](server::ClusterConfig& cfg) { cfg.ccm_whole_file = true; }},
        {"L2S", "",
         [](server::ClusterConfig& cfg) {
           cfg.system = server::SystemKind::kL2S;
         }},
    };
    s.render = [](const PanelView& v) {
      util::TextTable t;
      t.set_header({"mem/node", "CC-NEM blk (req/s)", "CC-NEM file (req/s)",
                    "L2S (req/s)", "file/blk"});
      for (std::size_t mi = 0; mi < v.memories.size(); ++mi) {
        const double block = v.at(0, mi, 0).metrics.throughput_rps;
        const double file = v.at(0, mi, 1).metrics.throughput_rps;
        const double l2s = v.at(0, mi, 2).metrics.throughput_rps;
        t.add_row({std::to_string(v.memories[mi] >> 20) + " MiB",
                   util::fixed(block, 0), util::fixed(file, 0),
                   util::fixed(l2s, 0),
                   util::fixed(block > 0 ? file / block : 0.0, 2)});
      }
      t.print();
    };
    s.emit_csv = [](util::CsvWriter& csv, const PanelView& v) {
      if (csv.rows() == 0) {
        csv.set_header({"memory_mb", "ccnem_block_rps", "ccnem_file_rps",
                        "l2s_rps", "ratio_file_over_block"});
      }
      for (std::size_t mi = 0; mi < v.memories.size(); ++mi) {
        const double block = v.at(0, mi, 0).metrics.throughput_rps;
        const double file = v.at(0, mi, 1).metrics.throughput_rps;
        const double l2s = v.at(0, mi, 2).metrics.throughput_rps;
        csv.add_row({std::to_string(v.memories[mi] >> 20),
                     util::fixed(block, 2), util::fixed(file, 2),
                     util::fixed(l2s, 2),
                     util::fixed(block > 0 ? file / block : 0.0, 3)});
      }
    };
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.name = "ablation_hardware";
    s.title = "Ablation A6: hardware sensitivity (CC-NEM vs L2S)";
    s.panels = {{"rutgers", 8}};
    s.systems = {server::SystemKind::kL2S, server::SystemKind::kCcNem};
    s.default_memory_mb = 64;
    struct Hw {
      const char* label;
      double nic_kb_per_ms;
      double latency_ms;
      double disk_kb_per_ms;
      double seek_ms;
    };
    for (const auto& hw :
         {Hw{"10 Mb/s LAN, 2001 disk", 1.25, 0.5, 30.0, 6.5},
          Hw{"100 Mb/s LAN, 2001 disk", 12.5, 0.15, 30.0, 6.5},
          Hw{"1 Gb/s LAN, 2001 disk (paper)", 125.0, 0.038, 30.0, 6.5},
          Hw{"10 Gb/s LAN, 2001 disk", 1250.0, 0.01, 30.0, 6.5},
          Hw{"1 Gb/s LAN, 4x faster disk", 125.0, 0.038, 120.0, 3.0}}) {
      s.variants.push_back({hw.label, "",
                            [hw](server::ClusterConfig& cfg) {
                              cfg.params.nic_per_kb_ms =
                                  1.0 / hw.nic_kb_per_ms;
                              cfg.params.net_latency_ms = hw.latency_ms;
                              cfg.params.disk_per_kb_ms =
                                  1.0 / hw.disk_kb_per_ms;
                              cfg.params.disk_seek_ms = hw.seek_ms;
                            }});
    }
    s.render = [](const PanelView& v) {
      util::TextTable t;
      t.set_header({"hardware", "L2S (req/s)", "CC-NEM (req/s)",
                    "CC-NEM/L2S", "CC-NEM nic util"});
      for (std::size_t vi = 0; vi < v.variants.size(); ++vi) {
        const double l2s = v.at(0, 0, vi).metrics.throughput_rps;
        const auto& nem = v.at(1, 0, vi).metrics;
        const double ratio = l2s > 0 ? nem.throughput_rps / l2s : 0.0;
        t.add_row({v.variants[vi].label, util::fixed(l2s, 0),
                   util::fixed(nem.throughput_rps, 0), util::fixed(ratio, 2),
                   util::percent(nem.nic_utilization, 1)});
      }
      t.print();
      std::cout << "The cooperative-caching trade (LAN traffic for disk "
                   "seeks) only pays on fast LANs — the paper's premise.\n";
    };
    s.emit_csv = [](util::CsvWriter& csv, const PanelView& v) {
      if (csv.rows() == 0) {
        csv.set_header({"hardware", "l2s_rps", "ccnem_rps", "ratio",
                        "nic_util"});
      }
      for (std::size_t vi = 0; vi < v.variants.size(); ++vi) {
        const double l2s = v.at(0, 0, vi).metrics.throughput_rps;
        const auto& nem = v.at(1, 0, vi).metrics;
        const double ratio = l2s > 0 ? nem.throughput_rps / l2s : 0.0;
        csv.add_row({v.variants[vi].label, util::fixed(l2s, 2),
                     util::fixed(nem.throughput_rps, 2),
                     util::fixed(ratio, 3),
                     util::fixed(nem.nic_utilization, 4)});
      }
    };
    specs.push_back(std::move(s));
  }

  return specs;
}

}  // namespace

const std::vector<ExperimentSpec>& all_experiments() {
  static const std::vector<ExperimentSpec> registry = build_registry();
  return registry;
}

const ExperimentSpec* find_experiment(const std::string& name) {
  for (const auto& s : all_experiments()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace coop::harness
