#include "cache/coop_cache.hpp"

#include <cassert>
#include <limits>
#include <string>

namespace coop::cache {

double CacheStats::local_hit_rate() const {
  const auto total = block_accesses();
  return total ? static_cast<double>(local_hits) / static_cast<double>(total)
               : 0.0;
}

double CacheStats::remote_hit_rate() const {
  const auto total = block_accesses();
  return total ? static_cast<double>(remote_hits) / static_cast<double>(total)
               : 0.0;
}

double CacheStats::global_hit_rate() const {
  return local_hit_rate() + remote_hit_rate();
}

ClusterCache::ClusterCache(const CoopCacheConfig& config,
                           std::function<NodeId(FileId)> home_of)
    : config_(config),
      home_of_(std::move(home_of)),
      hints_(config.nodes, config.hint_staleness) {
  assert(config_.nodes > 0);
  if (!home_of_) {
    const auto n = config_.nodes;
    home_of_ = [n](FileId f) { return static_cast<NodeId>(f % n); };
  }
  nodes_.reserve(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    nodes_.emplace_back(config_.capacity_bytes, config_.block_bytes);
  }
}

AccessResult ClusterCache::access(NodeId node, FileId file,
                                  std::uint64_t file_bytes) {
  AccessResult result;
  const std::uint32_t nblocks = blocks_for(file_bytes, config_.block_bytes);
  if (config_.whole_file) {
    // Whole-file adaptation: the file is one cache entry spanning its full
    // block footprint.
    access_block(node, BlockId{file, 0}, result, nblocks);
    if (access_tap_) access_tap_(node, result);
    return result;
  }
  result.fetches.reserve(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    access_block(node, BlockId{file, i}, result);
  }
  if (access_tap_) access_tap_(node, result);
  return result;
}

void ClusterCache::access_block(NodeId node, const BlockId& block,
                                AccessResult& result, std::uint32_t slots) {
  access_block_impl(node, block, result, slots);
  CCM_AUDIT_HOOK(audit("access_block"));
}

void ClusterCache::access_block_impl(NodeId node, const BlockId& block,
                                     AccessResult& result,
                                     std::uint32_t slots) {
  assert(node < nodes_.size());
  NodeCache& local = nodes_[node];

  // Local hit: master or copy already here.
  if (local.contains(block)) {
    local.touch(block, clock_.next());
    ++stats_.local_hits;
    emit_fetch(node, BlockFetch{block, Source::kLocalHit, node, false},
               result);
    return;
  }

  // Locate the master. In hinted mode the node consults its own (possibly
  // stale) hint table; a wrong hint costs an extra round trip, a missing one
  // means the block is treated as uncached.
  const NodeId truth = directory_.lookup(block);
  NodeId believed = truth;
  bool misdirected = false;
  if (config_.directory == DirectoryMode::kHinted) {
    const NodeId hinted = hints_.lookup(node, block);
    if (hinted == kInvalidNode) {
      // No hint: the request goes to the file's home node, which — like the
      // server in Sarkar & Hartman's scheme — knows the master location and
      // chains the request there. Costs an extra hop; reaches disk only if
      // no master exists.
      if (truth != kInvalidNode) {
        misdirected = true;
        ++stats_.hint_misdirects;
        hints_.refresh(node, block);
      }
      believed = truth;
    } else if (hinted != truth) {
      // Wrong hint: the probe wastes a hop, then the request is chained to
      // the true holder (or falls through to disk if the master is gone).
      misdirected = true;
      ++stats_.hint_misdirects;
      hints_.refresh(node, block);
      believed = truth;
    } else {
      believed = hinted;
    }
  }

  if (believed != kInvalidNode) {
    // Remote hit: fetch a non-master copy from the master holder. Touch the
    // master first so the incoming copy's eviction work cannot victimize it.
    NodeCache& holder = nodes_[believed];
    assert(holder.is_master(block));
    holder.touch(block, clock_.next());
    ++stats_.remote_hits;
    emit_fetch(node, BlockFetch{block, Source::kRemoteHit, believed,
                                misdirected},
               result);
    make_room(node, result, slots);
    local.insert(block, /*master=*/false, clock_.next(), slots);
    return;
  }

  // Miss everywhere (as far as the requester knows): the home node reads the
  // block from disk and the requester becomes the master holder. In hinted
  // mode a master may actually exist elsewhere without the requester knowing;
  // the old master is demoted to an ordinary copy so exactly one master
  // remains (Sarkar & Hartman resolve such duplicates the same way when the
  // hint exchange catches up).
  if (truth != kInvalidNode && truth != node &&
      nodes_[truth].is_master(block)) {
    nodes_[truth].demote_to_copy(block);
    directory_.erase_master(block);
  }
  const NodeId home = home_of_(block.file);
  ++stats_.disk_reads;
  emit_fetch(node, BlockFetch{block, Source::kDiskRead, home, misdirected},
             result);
  make_room(node, result, slots);
  nodes_[node].insert(block, /*master=*/true, clock_.next(), slots);
  directory_.set_master(block, node);
  if (config_.directory == DirectoryMode::kHinted) {
    hints_.set_master(block, node, node);
  }
}

AccessResult ClusterCache::write(NodeId node, FileId file,
                                 std::uint64_t file_bytes) {
  AccessResult result;
  const std::uint32_t nblocks = blocks_for(file_bytes, config_.block_bytes);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    write_block(node, BlockId{file, i}, result);
  }
  if (access_tap_) access_tap_(node, result);
  return result;
}

void ClusterCache::write_block(NodeId node, const BlockId& block,
                               AccessResult& result) {
  write_block_impl(node, block, result);
  CCM_AUDIT_HOOK(audit("write_block"));
}

void ClusterCache::write_block_impl(NodeId node, const BlockId& block,
                                    AccessResult& result) {
  assert(node < nodes_.size());
  ++stats_.writes;

  // Invalidate every non-master copy held by peers. A stale copy at the
  // writer itself is not dropped — it gets promoted to master below.
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    NodeCache& peer = nodes_[p];
    if (p != node && peer.contains(block) && !peer.is_master(block)) {
      drop_block(static_cast<NodeId>(p), block, result);
      ++stats_.invalidations;
    }
  }

  const NodeId holder = directory_.lookup(block);
  if (holder == node) {
    // Already the exclusive owner: refresh recency.
    nodes_[node].touch(block, clock_.next());
    return;
  }

  if (holder != kInvalidNode) {
    // Ownership migration: the master (with its current bytes, in data-plane
    // implementations) moves to the writer. Modeled as an accepted forward
    // so observers move the data; the writer's own stale copy, if any, is
    // promoted in place.
    ++stats_.ownership_migrations;
    NodeCache& old_holder = nodes_[holder];
    old_holder.erase(block);
    NodeCache& mine = nodes_[node];
    if (mine.contains(block)) {
      assert(!mine.is_master(block));
      mine.promote_to_master(block);
      mine.touch(block, clock_.next());
    } else {
      make_room(node, result);
      mine.insert(block, /*master=*/true, clock_.next());
    }
    directory_.set_master(block, node);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.set_master(block, node, node);
    }
    emit_forward(Forward{block, holder, node, true}, result);
    return;
  }

  // Uncached anywhere: write-allocate a master at the writer. No disk read
  // is modeled — the caller provides the bytes.
  if (nodes_[node].contains(block)) {
    // The writer held the last copy with no master on record (possible in
    // hinted mode after a master loss): promote it.
    nodes_[node].promote_to_master(block);
    nodes_[node].touch(block, clock_.next());
    directory_.set_master(block, node);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.set_master(block, node, node);
    }
    return;
  }
  make_room(node, result);
  install_master(node, block, clock_.next());
}

AccessResult ClusterCache::invalidate_file(FileId file,
                                           std::uint64_t file_bytes) {
  AccessResult result;
  const std::uint32_t nblocks =
      config_.whole_file ? 1 : blocks_for(file_bytes, config_.block_bytes);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    const BlockId block{file, i};
    for (std::size_t p = 0; p < nodes_.size(); ++p) {
      if (nodes_[p].contains(block)) {
        drop_block(static_cast<NodeId>(p), block, result);
        ++stats_.invalidations;
      }
    }
  }
  CCM_AUDIT_HOOK(audit("invalidate_file"));
  return result;
}

void ClusterCache::make_room(NodeId node, AccessResult& result,
                             std::uint32_t slots) {
  while (nodes_[node].lacks_room_for(slots) && !nodes_[node].empty()) {
    evict_one(node, result);
  }
}

void ClusterCache::evict_one(NodeId node, AccessResult& result) {
  NodeCache& cache = nodes_[node];
  assert(!cache.empty());

  if (config_.policy == Policy::kNeverEvictMaster) {
    // CC-NEM: while any non-master copy remains, evict the oldest copy and
    // leave every master in place.
    if (const auto copy = cache.oldest_copy()) {
      drop_block(node, copy->block, result);
      return;
    }
  }
  evict_global_lru(node, result);
}

void ClusterCache::evict_global_lru(NodeId node, AccessResult& result) {
  NodeCache& cache = nodes_[node];
  const auto oldest = cache.oldest();
  assert(oldest.has_value());

  if (!cache.is_master(oldest->block)) {
    drop_block(node, oldest->block, result);
    return;
  }
  // Master: second chance — forward unless it is the globally oldest block.
  if (holds_globally_oldest(node)) {
    drop_block(node, oldest->block, result);
    return;
  }
  forward_master(node, *oldest, result);
}

bool ClusterCache::holds_globally_oldest(NodeId node) const {
  const auto mine = nodes_[node].oldest_age();
  assert(mine.has_value());
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    if (p == node) continue;
    const auto theirs = nodes_[p].oldest_age();
    if (theirs.has_value() && *theirs < *mine) return false;
  }
  return true;
}

NodeId ClusterCache::pick_forward_target(NodeId from) const {
  NodeId best = kInvalidNode;
  std::uint64_t best_age = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t p = 0; p < nodes_.size(); ++p) {
    if (p == from) continue;
    const NodeCache& peer = nodes_[p];
    if (!peer.full()) return static_cast<NodeId>(p);  // free space wins
    const auto age = peer.oldest_age();
    if (age.has_value() && *age < best_age) {
      best_age = *age;
      best = static_cast<NodeId>(p);
    }
  }
  return best;
}

void ClusterCache::forward_master(NodeId from, const LruList::Entry& entry,
                                  AccessResult& result) {
  ++stats_.forwards_attempted;
  NodeCache& source = nodes_[from];
  const std::uint32_t slots = source.slots_of(entry.block);
  source.erase(entry.block);

  const NodeId to = pick_forward_target(from);
  if (to == kInvalidNode) {
    // Single-node cluster: nothing to forward to; the master is lost.
    directory_.erase_master(entry.block);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.erase_master(entry.block, from);
    }
    ++stats_.master_drops;
    emit_forward(Forward{entry.block, from, to, false}, result);
    emit_drop(Drop{entry.block, from, true}, result);
    return;
  }

  NodeCache& dest = nodes_[to];
  // If the destination already holds a non-master copy of this block, the
  // copy simply becomes the master (no extra memory is needed and no block
  // is dropped). The copy keeps its own — younger — age.
  if (dest.contains(entry.block)) {
    assert(!dest.is_master(entry.block));
    dest.promote_to_master(entry.block);
    directory_.set_master(entry.block, to);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.set_master(entry.block, to, from);
    }
    ++stats_.forwards_accepted;
    emit_forward(Forward{entry.block, from, to, true}, result);
    return;
  }
  // The receiver makes room by dropping its own oldest block — never by
  // forwarding again (property: no cascaded evictions).
  while (dest.lacks_room_for(slots) && !dest.empty()) {
    const auto victim = dest.oldest();
    assert(victim.has_value());
    drop_block(to, victim->block, result);
  }
  // If everything left at the destination is younger than the forwarded
  // block, it would immediately become the eviction candidate: drop it.
  const auto dest_oldest = dest.oldest_age();
  if (dest_oldest.has_value() && *dest_oldest > entry.age) {
    directory_.erase_master(entry.block);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.erase_master(entry.block, from);
    }
    ++stats_.master_drops;
    emit_forward(Forward{entry.block, from, to, false}, result);
    emit_drop(Drop{entry.block, from, true}, result);
    return;
  }

  dest.insert(entry.block, /*master=*/true, entry.age, slots);  // keeps age
  directory_.set_master(entry.block, to);
  if (config_.directory == DirectoryMode::kHinted) {
    hints_.set_master(entry.block, to, from);
  }
  ++stats_.forwards_accepted;
  emit_forward(Forward{entry.block, from, to, true}, result);
}

void ClusterCache::emit_fetch(NodeId requester, const BlockFetch& fetch,
                              AccessResult& result) {
  result.fetches.push_back(fetch);
  if (observer_) observer_->on_fetch(requester, fetch);
}

void ClusterCache::emit_drop(const Drop& drop, AccessResult& result) {
  result.drops.push_back(drop);
  if (observer_) observer_->on_drop(drop);
}

void ClusterCache::emit_forward(const Forward& forward, AccessResult& result) {
  result.forwards.push_back(forward);
  if (observer_) observer_->on_forward(forward);
}

void ClusterCache::drop_block(NodeId node, const BlockId& block,
                              AccessResult& result) {
  const bool was_master = nodes_[node].erase(block);
  if (was_master) {
    directory_.erase_master(block);
    if (config_.directory == DirectoryMode::kHinted) {
      hints_.erase_master(block, node);
    }
    ++stats_.master_drops;
  } else {
    ++stats_.copy_drops;
  }
  emit_drop(Drop{block, node, was_master}, result);
}

void ClusterCache::install_master(NodeId node, const BlockId& block,
                                  std::uint64_t age) {
  nodes_[node].insert(block, /*master=*/true, age);
  directory_.set_master(block, node);
  if (config_.directory == DirectoryMode::kHinted) {
    hints_.set_master(block, node, node);
  }
}

double ClusterCache::hint_accuracy() const { return hints_.accuracy(); }

std::size_t ClusterCache::audit(const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeCache& cache = nodes_[n];
    // A single entry wider than the whole capacity is admitted degenerately
    // (whole-file mode); anything else is a real overflow.
    CCM_AUDIT(cache.used_blocks() <= cache.capacity_blocks() ||
                  cache.entry_count() <= 1,
              "cache-occupancy",
              "node " + std::to_string(n) + " uses " +
                  std::to_string(cache.used_blocks()) + " of " +
                  std::to_string(cache.capacity_blocks()) + " blocks" + ctx);
    // Every cached master must be in the directory, pointing here; in hinted
    // mode the hint layer's authoritative view must agree with the directory.
    for (const auto& e : cache.masters()) {
      CCM_AUDIT(directory_.lookup(e.block) == static_cast<NodeId>(n),
                "cache-master-registered",
                "master of file " + std::to_string(e.block.file) + " block " +
                    std::to_string(e.block.index) + " cached at node " +
                    std::to_string(n) + " but directory says node " +
                    std::to_string(directory_.lookup(e.block)) + ctx);
      if (config_.directory == DirectoryMode::kHinted) {
        CCM_AUDIT(hints_.truth(e.block) == static_cast<NodeId>(n),
                  "cache-hint-truth",
                  "hint truth for file " + std::to_string(e.block.file) +
                      " block " + std::to_string(e.block.index) + " is node " +
                      std::to_string(hints_.truth(e.block)) +
                      " but the master is cached at node " +
                      std::to_string(n) + ctx);
      }
    }
    // Slot accounting must agree with the entry books.
    std::uint64_t slots = 0;
    for (const auto& e : cache.masters()) slots += cache.slots_of(e.block);
    for (const auto& e : cache.copies()) slots += cache.slots_of(e.block);
    CCM_AUDIT(slots == cache.used_blocks(), "cache-slot-accounting",
              "node " + std::to_string(n) + " books " +
                  std::to_string(cache.used_blocks()) +
                  " used blocks but entries cover " + std::to_string(slots) +
                  ctx);
  }
  // Every cached master points at its own directory entry (checked above);
  // equal counts then make that correspondence a bijection, which rules out
  // duplicate masters and dangling directory entries — i.e. at most one
  // master copy per block cluster-wide.
  std::size_t cached_masters = 0;
  for (const auto& cache : nodes_) cached_masters += cache.master_count();
  CCM_AUDIT(directory_.size() == cached_masters, "cache-single-master",
            "directory tracks " + std::to_string(directory_.size()) +
                " masters but nodes cache " + std::to_string(cached_masters) +
                ctx);
  if (config_.directory == DirectoryMode::kHinted) {
    ccm_audit_failures += hints_.audit(context);
  }
  return ccm_audit_failures;
}

bool ClusterCache::check_invariants() const {
  return audit("check_invariants") == 0;
}

}  // namespace coop::cache
