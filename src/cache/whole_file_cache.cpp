#include "cache/whole_file_cache.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>

#include "util/audit.hpp"

namespace coop::cache {

WholeFileCache::WholeFileCache(const WholeFileCacheConfig& config)
    : config_(config),
      capacity_blocks_(std::max<std::uint64_t>(
          1, config.capacity_bytes / config.block_bytes)),
      nodes_(config.nodes) {
  assert(config.nodes > 0);
}

bool WholeFileCache::cached(NodeId node, FileId file) const {
  assert(node < nodes_.size());
  return nodes_[node].index.count(file) > 0;
}

std::vector<NodeId> WholeFileCache::holders(FileId file) const {
  std::vector<NodeId> out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].index.count(file)) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

std::size_t WholeFileCache::copy_count(FileId file) const {
  const auto it = copy_counts_.find(file);
  return it == copy_counts_.end() ? 0 : it->second;
}

void WholeFileCache::touch(NodeId node, FileId file) {
  NodeState& ns = nodes_[node];
  const auto it = ns.index.find(file);
  assert(it != ns.index.end());
  Entry e = *it->second;
  e.age = clock_.next();
  ns.lru.erase(it->second);
  it->second = ns.lru.insert(ns.lru.end(), e);
}

std::optional<FileId> WholeFileCache::pick_victim(const NodeState& ns) const {
  // Oldest replica (copy_count > 1) if one exists, else oldest file.
  for (const auto& e : ns.lru) {
    if (copy_count(e.file) > 1) return e.file;
  }
  if (ns.lru.empty()) return std::nullopt;
  return ns.lru.front().file;
}

std::vector<FileEviction> WholeFileCache::insert(NodeId node, FileId file,
                                                 std::uint64_t file_bytes) {
  assert(!cached(node, file));
  NodeState& ns = nodes_[node];
  const std::uint32_t need = blocks_for(file_bytes, config_.block_bytes);

  std::vector<FileEviction> evictions;
  while (ns.used_blocks + need > capacity_blocks_ && !ns.lru.empty()) {
    const auto victim = pick_victim(ns);
    assert(victim.has_value());
    const bool last = copy_count(*victim) == 1;
    remove(node, *victim);
    evictions.push_back(FileEviction{*victim, node, last});
  }

  Entry e{file, clock_.next(), need};
  const auto it = ns.lru.insert(ns.lru.end(), e);
  ns.index.emplace(file, it);
  ns.used_blocks += need;
  ++copy_counts_[file];
  CCM_AUDIT_HOOK(audit("insert"));
  return evictions;
}

void WholeFileCache::evict_copy(NodeId node, FileId file) {
  assert(cached(node, file));
  remove(node, file);
  CCM_AUDIT_HOOK(audit("evict_copy"));
}

void WholeFileCache::remove(NodeId node, FileId file) {
  NodeState& ns = nodes_[node];
  const auto it = ns.index.find(file);
  assert(it != ns.index.end());
  ns.used_blocks -= it->second->blocks;
  ns.lru.erase(it->second);
  ns.index.erase(it);
  const auto cc = copy_counts_.find(file);
  assert(cc != copy_counts_.end());
  if (--cc->second == 0) copy_counts_.erase(cc);
}

std::uint64_t WholeFileCache::used_blocks(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].used_blocks;
}

std::size_t WholeFileCache::audit(const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  // std::map (not unordered) so the sweep — and therefore any violation
  // report order — is deterministic across runs and platforms.
  std::map<FileId, std::uint32_t> recount;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    std::uint64_t used = 0;
    for (const auto& e : ns.lru) {
      used += e.blocks;
      ++recount[e.file];
      CCM_AUDIT(ns.index.count(e.file) > 0, "wfc-index-lru",
                "node " + std::to_string(n) + " lru entry for file " +
                    std::to_string(e.file) + " missing from index" + ctx);
    }
    CCM_AUDIT(used == ns.used_blocks, "wfc-used-blocks",
              "node " + std::to_string(n) + " books " +
                  std::to_string(ns.used_blocks) +
                  " used blocks but lru entries cover " +
                  std::to_string(used) + ctx);
    CCM_AUDIT(ns.index.size() == ns.lru.size(), "wfc-index-lru",
              "node " + std::to_string(n) + " index has " +
                  std::to_string(ns.index.size()) + " entries but lru has " +
                  std::to_string(ns.lru.size()) + ctx);
    // Oversized files are admitted degenerately as a lone entry; any other
    // occupancy above capacity is a real overflow.
    CCM_AUDIT(ns.used_blocks <= capacity_blocks_ || ns.lru.size() <= 1,
              "wfc-occupancy",
              "node " + std::to_string(n) + " uses " +
                  std::to_string(ns.used_blocks) + " of " +
                  std::to_string(capacity_blocks_) + " blocks" + ctx);
  }
  CCM_AUDIT(recount.size() == copy_counts_.size(), "wfc-copy-counts",
            "directory tracks " + std::to_string(copy_counts_.size()) +
                " files but nodes cache " + std::to_string(recount.size()) +
                ctx);
  for (const auto& [file, count] : recount) {
    const auto it = copy_counts_.find(file);
    CCM_AUDIT(it != copy_counts_.end() && it->second == count,
              "wfc-copy-counts",
              "file " + std::to_string(file) + " cached " +
                  std::to_string(count) + "x but directory records " +
                  std::to_string(it == copy_counts_.end()
                                     ? 0
                                     : it->second) +
                  ctx);
  }
  return ccm_audit_failures;
}

bool WholeFileCache::check_invariants() const {
  return audit("check_invariants") == 0;
}

}  // namespace coop::cache
