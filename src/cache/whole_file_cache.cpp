#include "cache/whole_file_cache.hpp"

#include <algorithm>
#include <cassert>

namespace coop::cache {

WholeFileCache::WholeFileCache(const WholeFileCacheConfig& config)
    : config_(config),
      capacity_blocks_(std::max<std::uint64_t>(
          1, config.capacity_bytes / config.block_bytes)),
      nodes_(config.nodes) {
  assert(config.nodes > 0);
}

bool WholeFileCache::cached(NodeId node, FileId file) const {
  assert(node < nodes_.size());
  return nodes_[node].index.count(file) > 0;
}

std::vector<NodeId> WholeFileCache::holders(FileId file) const {
  std::vector<NodeId> out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].index.count(file)) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

std::size_t WholeFileCache::copy_count(FileId file) const {
  const auto it = copy_counts_.find(file);
  return it == copy_counts_.end() ? 0 : it->second;
}

void WholeFileCache::touch(NodeId node, FileId file) {
  NodeState& ns = nodes_[node];
  const auto it = ns.index.find(file);
  assert(it != ns.index.end());
  Entry e = *it->second;
  e.age = clock_.next();
  ns.lru.erase(it->second);
  it->second = ns.lru.insert(ns.lru.end(), e);
}

std::optional<FileId> WholeFileCache::pick_victim(const NodeState& ns) const {
  // Oldest replica (copy_count > 1) if one exists, else oldest file.
  for (const auto& e : ns.lru) {
    if (copy_count(e.file) > 1) return e.file;
  }
  if (ns.lru.empty()) return std::nullopt;
  return ns.lru.front().file;
}

std::vector<FileEviction> WholeFileCache::insert(NodeId node, FileId file,
                                                 std::uint64_t file_bytes) {
  assert(!cached(node, file));
  NodeState& ns = nodes_[node];
  const std::uint32_t need = blocks_for(file_bytes, config_.block_bytes);

  std::vector<FileEviction> evictions;
  while (ns.used_blocks + need > capacity_blocks_ && !ns.lru.empty()) {
    const auto victim = pick_victim(ns);
    assert(victim.has_value());
    const bool last = copy_count(*victim) == 1;
    remove(node, *victim);
    evictions.push_back(FileEviction{*victim, node, last});
  }

  Entry e{file, clock_.next(), need};
  const auto it = ns.lru.insert(ns.lru.end(), e);
  ns.index.emplace(file, it);
  ns.used_blocks += need;
  ++copy_counts_[file];
  return evictions;
}

void WholeFileCache::evict_copy(NodeId node, FileId file) {
  assert(cached(node, file));
  remove(node, file);
}

void WholeFileCache::remove(NodeId node, FileId file) {
  NodeState& ns = nodes_[node];
  const auto it = ns.index.find(file);
  assert(it != ns.index.end());
  ns.used_blocks -= it->second->blocks;
  ns.lru.erase(it->second);
  ns.index.erase(it);
  const auto cc = copy_counts_.find(file);
  assert(cc != copy_counts_.end());
  if (--cc->second == 0) copy_counts_.erase(cc);
}

std::uint64_t WholeFileCache::used_blocks(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].used_blocks;
}

bool WholeFileCache::check_invariants() const {
  std::unordered_map<FileId, std::uint32_t> recount;
  for (const auto& ns : nodes_) {
    std::uint64_t used = 0;
    for (const auto& e : ns.lru) {
      used += e.blocks;
      ++recount[e.file];
      if (!ns.index.count(e.file)) {
        assert(false && "lru entry missing from index");
        return false;
      }
    }
    if (used != ns.used_blocks) {
      assert(false && "used_blocks drifted");
      return false;
    }
    if (ns.index.size() != ns.lru.size()) {
      assert(false && "index/lru size mismatch");
      return false;
    }
  }
  if (recount.size() != copy_counts_.size()) {
    assert(false && "copy_counts drifted");
    return false;
  }
  for (const auto& [file, count] : recount) {
    const auto it = copy_counts_.find(file);
    if (it == copy_counts_.end() || it->second != count) {
      assert(false && "copy_counts drifted");
      return false;
    }
  }
  return true;
}

}  // namespace coop::cache
