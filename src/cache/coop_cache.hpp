// The paper's block-based cooperative caching algorithm (§3).
//
// ClusterCache is a *pure policy engine*: it tracks which node caches which
// block (master or non-master copy), decides where each block of an access
// comes from (local memory, a peer's memory, or a home node's disk), and
// carries out the replacement algorithm including master-block forwarding.
// It performs no I/O and knows nothing about time; callers — the event-driven
// simulator in src/server and the threaded middleware in src/ccm — execute
// and charge the actions it reports.
//
// Algorithm summary (from the paper):
//  * The first in-memory copy of a block (read from its home node's disk) is
//    the *master*; a global directory tracks master locations.
//  * A node missing a block fetches a non-master copy from the master holder
//    if one exists, otherwise asks the file's home node to read it from disk
//    and becomes the new master holder.
//  * Replacement is approximate global LRU. When a full node evicts:
//      - a non-master or the globally-oldest block is dropped;
//      - otherwise a master is *forwarded* to the peer holding the oldest
//        block; the receiver drops its own oldest block to make room (no
//        cascaded evictions), and drops the forwarded block instead if all
//        its blocks are now younger.
//  * CC-NEM modification (§5): never evict a master while the node still
//    holds any non-master copy; evict the oldest non-master first.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/directory.hpp"
#include "cache/node_cache.hpp"
#include "cache/types.hpp"
#include "util/audit.hpp"

namespace coop::cache {

/// Replacement policy variants evaluated in the paper.
enum class Policy {
  kBasic,            // CC-Basic: global LRU with master second chance
  kNeverEvictMaster  // CC-NEM: evict oldest non-master first
};

/// Directory implementations: the paper's optimistic perfect directory, or
/// the hint-based scheme of its §6 future work.
enum class DirectoryMode { kPerfect, kHinted };

struct CoopCacheConfig {
  std::size_t nodes = 8;
  std::uint64_t capacity_bytes = 64ull * 1024 * 1024;  // per node
  std::uint32_t block_bytes = 8 * 1024;
  Policy policy = Policy::kNeverEvictMaster;
  DirectoryMode directory = DirectoryMode::kPerfect;
  std::uint32_t hint_staleness = 1;
  /// Whole-file adaptation (§6: "whether [CCM] can easily be adapted for
  /// servers that always use whole files"): each file is cached, fetched,
  /// forwarded, and evicted as a single entry spanning its block footprint.
  bool whole_file = false;
};

/// Where one block of an access was satisfied from.
enum class Source { kLocalHit, kRemoteHit, kDiskRead };

struct BlockFetch {
  BlockId block;
  Source source = Source::kLocalHit;
  /// Peer for remote hits, home node for disk reads, self for local hits.
  NodeId provider = kInvalidNode;
  /// Hinted mode only: the hint pointed at the wrong node and an extra
  /// network round trip was wasted before reaching `provider`.
  bool misdirected = false;
};

struct Forward {
  BlockId block;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// False when the destination dropped the forwarded block (it would have
  /// been the destination's oldest).
  bool accepted = true;
};

struct Drop {
  BlockId block;
  NodeId node = kInvalidNode;
  bool was_master = false;
};

/// Everything that happened during one access; callers charge the costs.
struct AccessResult {
  std::vector<BlockFetch> fetches;
  std::vector<Forward> forwards;
  std::vector<Drop> drops;
};

/// Receives every policy action *in the order it happens* during an access.
/// AccessResult loses the interleaving between fetches, drops, and forwards;
/// data-plane implementations (the threaded middleware) need the exact order
/// to keep byte stores consistent with the policy metadata.
class ActionObserver {
 public:
  virtual ~ActionObserver() = default;
  /// `requester` is the node performing the access.
  virtual void on_fetch(NodeId requester, const BlockFetch& fetch) = 0;
  virtual void on_drop(const Drop& drop) = 0;
  /// For accepted forwards the destination may already hold a non-master
  /// copy (promotion); implementations must tolerate both cases.
  virtual void on_forward(const Forward& forward) = 0;
};

/// Aggregate policy statistics.
struct CacheStats {
  std::uint64_t local_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t forwards_attempted = 0;
  std::uint64_t forwards_accepted = 0;
  std::uint64_t master_drops = 0;
  std::uint64_t copy_drops = 0;
  std::uint64_t hint_misdirects = 0;
  // Write-protocol extension (the paper's §6 future work).
  std::uint64_t writes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t ownership_migrations = 0;

  [[nodiscard]] std::uint64_t block_accesses() const {
    return local_hits + remote_hits + disk_reads;
  }
  [[nodiscard]] double local_hit_rate() const;
  [[nodiscard]] double remote_hit_rate() const;
  [[nodiscard]] double global_hit_rate() const;
};

class ClusterCache {
 public:
  /// `home_of` maps a file to the node whose disk stores it ("the general
  /// case of files being distributed across all nodes", §3); defaults to
  /// file-id modulo node count.
  ClusterCache(const CoopCacheConfig& config,
               std::function<NodeId(FileId)> home_of = {});

  /// Accesses all blocks of `file` (of size `file_bytes`) at `node`,
  /// applying cache-state transitions and reporting the resulting actions.
  AccessResult access(NodeId node, FileId file, std::uint64_t file_bytes);

  /// Accesses a single cache entry; appends actions to `result`. `slots` is
  /// the entry's block-slot footprint (1 in block mode; the file's block
  /// count in whole-file mode).
  void access_block(NodeId node, const BlockId& block, AccessResult& result,
                    std::uint32_t slots = 1);

  /// Write-protocol extension (§6 future work): makes `node` the exclusive
  /// in-memory owner of `block`. Every non-master copy in the cluster is
  /// invalidated (dropped); a master held elsewhere migrates to `node` (an
  /// accepted Forward action carries the current bytes along in data-plane
  /// implementations); if the block is uncached, a master slot is allocated
  /// at `node` without a disk read (write-allocate). Postconditions: `node`
  /// is the master holder and holds the only in-memory instance.
  void write_block(NodeId node, const BlockId& block, AccessResult& result);

  /// Writes all blocks of `file` (of size `file_bytes`) at `node`.
  AccessResult write(NodeId node, FileId file, std::uint64_t file_bytes);

  /// Drops every cached block of `file` (masters and copies) cluster-wide.
  /// Used when content changes outside the caching layer. `file_bytes`
  /// bounds the block scan.
  AccessResult invalidate_file(FileId file, std::uint64_t file_bytes);

  [[nodiscard]] const CoopCacheConfig& config() const { return config_; }
  [[nodiscard]] NodeId home_of(FileId file) const { return home_of_(file); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const NodeCache& node(NodeId n) const { return nodes_[n]; }
  [[nodiscard]] const PerfectDirectory& directory() const { return directory_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Hinted mode only: observed hint accuracy (paper cites ~98% for [18]).
  [[nodiscard]] double hint_accuracy() const;

  /// Installs (or clears, with nullptr) the in-order action observer. Not
  /// owned; must outlive the ClusterCache or be cleared first.
  void set_observer(ActionObserver* observer) { observer_ = observer; }

  /// Observation tap fired once per access()/write() with the requesting
  /// node and the completed plan. Unlike ActionObserver it sees only the
  /// aggregate result — enough for hit/miss timelines — and may be installed
  /// without touching the data plane. Empty function clears it.
  using AccessTap = std::function<void(NodeId node, const AccessResult& plan)>;
  void set_access_tap(AccessTap tap) { access_tap_ = std::move(tap); }

  /// Sweeps every cross-node protocol invariant (see DESIGN.md and
  /// docs/STATIC_ANALYSIS.md), reporting each violation through coop::audit
  /// with `context` in the detail string. Returns the number of violations
  /// (0 = healthy). Always compiled; audited builds (CCM_AUDIT_ENABLED) also
  /// run it automatically after every protocol event.
  std::size_t audit(const char* context) const;

  /// Convenience wrapper: audit("check_invariants") == 0.
  [[nodiscard]] bool check_invariants() const;

 private:
  friend struct ClusterCacheTestPeer;  // test-only state corruption (audit tests)

  /// Bodies of access_block/write_block; the public wrappers add the
  /// per-event audit hook in CCM_AUDIT builds.
  void access_block_impl(NodeId node, const BlockId& block,
                         AccessResult& result, std::uint32_t slots = 1);
  void write_block_impl(NodeId node, const BlockId& block,
                        AccessResult& result);
  /// Frees one entry's worth of space at `node` per the configured policy.
  void evict_one(NodeId node, AccessResult& result);
  /// Ensures at least `slots` free block slots at `node`.
  void make_room(NodeId node, AccessResult& result, std::uint32_t slots = 1);
  /// Evicts the oldest local block with the CC-Basic rules (also the
  /// master-only path of CC-NEM).
  void evict_global_lru(NodeId node, AccessResult& result);
  /// Forwards an evicted master to the peer with the oldest block.
  void forward_master(NodeId from, const LruList::Entry& entry,
                      AccessResult& result);
  /// True if `node`'s oldest block is the oldest block in the whole cluster.
  [[nodiscard]] bool holds_globally_oldest(NodeId node) const;
  /// Peer that should receive a forwarded master: a peer with free space if
  /// any, otherwise the peer holding the oldest block. kInvalidNode if the
  /// cluster has a single node.
  [[nodiscard]] NodeId pick_forward_target(NodeId from) const;

  void drop_block(NodeId node, const BlockId& block, AccessResult& result);
  void install_master(NodeId node, const BlockId& block, std::uint64_t age);

  /// Appends to `result` and notifies the observer.
  void emit_fetch(NodeId requester, const BlockFetch& fetch,
                  AccessResult& result);
  void emit_drop(const Drop& drop, AccessResult& result);
  void emit_forward(const Forward& forward, AccessResult& result);

  CoopCacheConfig config_;
  std::function<NodeId(FileId)> home_of_;
  ActionObserver* observer_ = nullptr;
  AccessTap access_tap_;
  std::vector<NodeCache> nodes_;
  PerfectDirectory directory_;
  HintedDirectory hints_;
  LogicalClock clock_;
  CacheStats stats_;
};

}  // namespace coop::cache
