#include "cache/lru.hpp"

namespace coop::cache {

void LruList::insert(const BlockId& b, std::uint64_t age) {
  assert(!contains(b));
  // Find the first entry (from the back) with age <= the new age and insert
  // after it. Newly-touched blocks (the common case) land at the back in O(1);
  // forwarded old blocks walk further.
  auto pos = list_.end();
  while (pos != list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->age <= age) break;
    pos = prev;
  }
  const auto it = list_.insert(pos, Entry{b, age});
  index_.emplace(b, it);
}

void LruList::touch(const BlockId& b, std::uint64_t age) {
  const auto it = index_.find(b);
  assert(it != index_.end());
  assert(age >= it->second->age);
  list_.erase(it->second);
  // Touched entries carry a fresh (maximal) age, so they belong at the back.
  const auto pos = list_.insert(list_.end(), Entry{b, age});
  it->second = pos;
}

bool LruList::erase(const BlockId& b) {
  const auto it = index_.find(b);
  if (it == index_.end()) return false;
  list_.erase(it->second);
  index_.erase(it);
  return true;
}

LruList::Entry LruList::pop_oldest() {
  assert(!empty());
  Entry e = list_.front();
  list_.pop_front();
  index_.erase(e.block);
  return e;
}

}  // namespace coop::cache
