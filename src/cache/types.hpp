// Shared identifiers for the caching layer.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace coop::cache {

using NodeId = std::uint16_t;
using FileId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFF;

/// A fixed-size cache block: `index`-th block of `file`.
struct BlockId {
  FileId file = 0;
  std::uint32_t index = 0;

  friend auto operator<=>(const BlockId&, const BlockId&) = default;
};

struct BlockIdHash {
  std::size_t operator()(const BlockId& b) const noexcept {
    // 64-bit mix of (file, index).
    std::uint64_t x =
        (static_cast<std::uint64_t>(b.file) << 32) | b.index;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Monotonic logical timestamps used as LRU ages: larger is younger.
class LogicalClock {
 public:
  std::uint64_t next() { return ++now_; }
  [[nodiscard]] std::uint64_t now() const { return now_; }

 private:
  std::uint64_t now_ = 0;
};

/// Number of `block_bytes`-sized blocks needed for a file of `file_bytes`.
constexpr std::uint32_t blocks_for(std::uint64_t file_bytes,
                                   std::uint32_t block_bytes) {
  if (file_bytes == 0) return 1;  // zero-byte files still occupy one block
  return static_cast<std::uint32_t>((file_bytes + block_bytes - 1) /
                                    block_bytes);
}

}  // namespace coop::cache
