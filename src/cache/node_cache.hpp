// Per-node block cache: capacity accounting plus master/non-master LRU books.
//
// Masters and non-masters are kept in separate age-ordered lists so both
// replacement policies run in O(1)/O(log-ish) per eviction:
//  * CC-Basic needs the *globally* oldest local block = older of the two
//    fronts;
//  * CC-NEM needs the oldest non-master when one exists.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "cache/lru.hpp"
#include "cache/types.hpp"

namespace coop::cache {

class NodeCache {
 public:
  /// `capacity_bytes` is the memory this node devotes to the cache;
  /// `block_bytes` the fixed block size (memory is accounted in whole
  /// blocks). Entries normally occupy one block slot each; the whole-file
  /// adaptation (§6) caches a file as a single entry spanning several slots.
  NodeCache(std::uint64_t capacity_bytes, std::uint32_t block_bytes);

  [[nodiscard]] std::uint64_t capacity_blocks() const {
    return capacity_blocks_;
  }
  [[nodiscard]] std::uint64_t used_blocks() const { return used_slots_; }
  [[nodiscard]] std::size_t entry_count() const {
    return masters_.size() + copies_.size();
  }
  /// True when no further single-slot entry fits.
  [[nodiscard]] bool full() const { return used_slots_ >= capacity_blocks_; }
  /// True when an entry of `slots` does not fit.
  [[nodiscard]] bool lacks_room_for(std::uint32_t slots) const {
    return used_slots_ + slots > capacity_blocks_;
  }
  [[nodiscard]] bool empty() const { return entry_count() == 0; }
  /// Slot footprint of a cached entry.
  [[nodiscard]] std::uint32_t slots_of(const BlockId& b) const;
  [[nodiscard]] std::size_t master_count() const { return masters_.size(); }
  [[nodiscard]] std::size_t copy_count() const { return copies_.size(); }

  [[nodiscard]] bool contains(const BlockId& b) const {
    return masters_.contains(b) || copies_.contains(b);
  }
  [[nodiscard]] bool is_master(const BlockId& b) const {
    return masters_.contains(b);
  }

  /// Age of the oldest cached block (min over both lists); nullopt if empty.
  [[nodiscard]] std::optional<std::uint64_t> oldest_age() const;

  /// Oldest block overall; nullopt if empty.
  [[nodiscard]] std::optional<LruList::Entry> oldest() const;
  [[nodiscard]] bool oldest_is_master() const;

  /// Oldest non-master block; nullopt if the node holds only masters.
  [[nodiscard]] std::optional<LruList::Entry> oldest_copy() const;

  /// Inserts an entry of `slots` block slots with the given age.
  /// Precondition: not present and enough free slots (the replacement engine
  /// makes room first; entries larger than the whole capacity are admitted
  /// degenerately into an otherwise-empty cache).
  void insert(const BlockId& b, bool master, std::uint64_t age,
              std::uint32_t slots = 1);

  /// Refreshes a present block's age.
  void touch(const BlockId& b, std::uint64_t age);

  /// Removes a block; returns whether it was a master. Precondition: present.
  bool erase(const BlockId& b);

  /// Promotes a non-master copy to master (used by write-back/extension paths
  /// and the middleware when a master is re-homed). Precondition: present as
  /// a copy.
  void promote_to_master(const BlockId& b);

  /// Demotes a master to a non-master copy (hinted-directory mode: another
  /// node unknowingly re-created the master). Precondition: present as a
  /// master.
  void demote_to_copy(const BlockId& b);

  [[nodiscard]] const LruList& masters() const { return masters_; }
  [[nodiscard]] const LruList& copies() const { return copies_; }

 private:
  std::uint64_t capacity_blocks_;
  std::uint64_t used_slots_ = 0;
  LruList masters_;
  LruList copies_;
  /// Slot footprints for entries wider than one slot (absent => 1).
  std::unordered_map<BlockId, std::uint32_t, BlockIdHash> wide_entries_;
};

}  // namespace coop::cache
