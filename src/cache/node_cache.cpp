#include "cache/node_cache.hpp"

#include <algorithm>
#include <cassert>

namespace coop::cache {

NodeCache::NodeCache(std::uint64_t capacity_bytes, std::uint32_t block_bytes)
    : capacity_blocks_(std::max<std::uint64_t>(1, capacity_bytes / block_bytes)) {
  assert(block_bytes > 0);
}

std::optional<std::uint64_t> NodeCache::oldest_age() const {
  if (empty()) return std::nullopt;
  if (masters_.empty()) return copies_.oldest_age();
  if (copies_.empty()) return masters_.oldest_age();
  return std::min(masters_.oldest_age(), copies_.oldest_age());
}

std::optional<LruList::Entry> NodeCache::oldest() const {
  if (empty()) return std::nullopt;
  if (masters_.empty()) return copies_.oldest();
  if (copies_.empty()) return masters_.oldest();
  return masters_.oldest_age() <= copies_.oldest_age() ? masters_.oldest()
                                                       : copies_.oldest();
}

bool NodeCache::oldest_is_master() const {
  assert(!empty());
  if (masters_.empty()) return false;
  if (copies_.empty()) return true;
  return masters_.oldest_age() <= copies_.oldest_age();
}

std::optional<LruList::Entry> NodeCache::oldest_copy() const {
  if (copies_.empty()) return std::nullopt;
  return copies_.oldest();
}

std::uint32_t NodeCache::slots_of(const BlockId& b) const {
  assert(contains(b));
  const auto it = wide_entries_.find(b);
  return it == wide_entries_.end() ? 1 : it->second;
}

void NodeCache::insert(const BlockId& b, bool master, std::uint64_t age,
                       std::uint32_t slots) {
  assert(!contains(b));
  assert(slots >= 1);
  assert(used_slots_ + slots <= capacity_blocks_ || empty());
  (master ? masters_ : copies_).insert(b, age);
  if (slots > 1) wide_entries_.emplace(b, slots);
  used_slots_ += slots;
}

void NodeCache::touch(const BlockId& b, std::uint64_t age) {
  if (masters_.contains(b)) {
    masters_.touch(b, age);
  } else {
    copies_.touch(b, age);
  }
}

bool NodeCache::erase(const BlockId& b) {
  used_slots_ -= slots_of(b);
  wide_entries_.erase(b);
  if (masters_.erase(b)) return true;
  const bool erased = copies_.erase(b);
  assert(erased);
  (void)erased;
  return false;
}

void NodeCache::promote_to_master(const BlockId& b) {
  assert(copies_.contains(b));
  const std::uint64_t age = copies_.age_of(b);
  copies_.erase(b);
  masters_.insert(b, age);
}

void NodeCache::demote_to_copy(const BlockId& b) {
  assert(masters_.contains(b));
  const std::uint64_t age = masters_.age_of(b);
  masters_.erase(b);
  copies_.insert(b, age);
}

}  // namespace coop::cache
