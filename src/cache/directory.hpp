// Master-block directories.
//
// The paper's simulation assumes a *perfect* global directory of master
// blocks (§3, optimistic assumptions i-iii). PerfectDirectory implements
// that. HintedDirectory models the hint-based alternative of Sarkar & Hartman
// (reference [18], and the paper's §6 future work): lookups go through
// per-node hint tables that are updated lazily, so they can be stale; the
// paper cites ~98% location accuracy for this scheme.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/types.hpp"

namespace coop::cache {

/// Authoritative map from block to the node holding its master copy.
class PerfectDirectory {
 public:
  /// Node holding the master of `b`, or kInvalidNode.
  [[nodiscard]] NodeId lookup(const BlockId& b) const;

  [[nodiscard]] bool has_master(const BlockId& b) const {
    return lookup(b) != kInvalidNode;
  }

  void set_master(const BlockId& b, NodeId n);
  void erase_master(const BlockId& b);

  /// Unregisters every master held by `n` (crash recovery); returns the
  /// affected blocks so the caller can epoch-fence their files.
  std::vector<BlockId> erase_node(NodeId n);

  /// Every (block, holder) pair, in unspecified order (directory rebuild).
  [[nodiscard]] std::vector<std::pair<BlockId, NodeId>> entries() const;

  void clear() { map_.clear(); }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<BlockId, NodeId, BlockIdHash> map_;
};

/// Hint-based directory: each node keeps its own possibly-stale view.
///
/// The truth is still tracked (it is needed to adjudicate whether a hint was
/// right), but `lookup(node, b)` answers from `node`'s hint table. Hints are
/// refreshed on use: a wrong hint is corrected after the (mis-)directed fetch
/// fails, modeling the piggy-backed hint exchange of [18]. `staleness_lag`
/// controls how many master relocations a node may lag behind.
class HintedDirectory {
 public:
  HintedDirectory(std::size_t nodes, std::uint32_t staleness_lag = 1);

  /// `observer`'s belief about the master location of `b` (may be stale);
  /// kInvalidNode if the observer has no hint.
  [[nodiscard]] NodeId lookup(NodeId observer, const BlockId& b) const;

  /// Authoritative location.
  [[nodiscard]] NodeId truth(const BlockId& b) const;

  /// Records a master placement/move. The mover and the destination learn the
  /// truth immediately; other nodes keep their old hints until they have
  /// lagged more than `staleness_lag` relocations, at which point they are
  /// brought up to date (coarse model of periodic piggy-backed refresh).
  void set_master(const BlockId& b, NodeId n, NodeId observer);
  void erase_master(const BlockId& b, NodeId observer);

  /// Called when `observer` discovers the truth for `b` (e.g. after a failed
  /// fetch): refreshes its hint.
  void refresh(NodeId observer, const BlockId& b);

  /// Fraction of lookups that matched the truth (accuracy statistic).
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }

  /// Internal-consistency sweep: every authoritative entry names a valid
  /// node, and broadcast bookkeeping only covers live entries. Violations go
  /// through coop::audit; returns the violation count.
  std::size_t audit(const char* context) const;

 private:
  friend struct HintedDirectoryTestPeer;  // test-only corruption (audit tests)
  struct Hints {
    std::unordered_map<BlockId, NodeId, BlockIdHash> map;
  };
  struct TruthEntry {
    NodeId node = kInvalidNode;
    std::uint32_t version = 0;  // bumped per relocation
  };

  void propagate_if_lagged(const BlockId& b);

  std::uint32_t staleness_lag_;
  std::vector<Hints> hints_;
  std::unordered_map<BlockId, TruthEntry, BlockIdHash> truth_;
  std::unordered_map<BlockId, std::uint32_t, BlockIdHash> last_broadcast_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t correct_ = 0;
};

}  // namespace coop::cache
