// Age-ordered LRU list keyed by BlockId.
//
// Ages are logical timestamps from a shared LogicalClock; the list is kept in
// ascending age order (front = oldest). Unlike a plain LRU, entries can be
// *inserted with an old age* — a block forwarded between nodes keeps its age
// (§3), so insertion walks from the back to find the right position (forwarded
// blocks are nearly always near the front, but correctness first: we search
// from the front when the age is older than the median ends would suggest).
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/types.hpp"

namespace coop::cache {

class LruList {
 public:
  struct Entry {
    BlockId block;
    std::uint64_t age;
  };

  [[nodiscard]] bool empty() const { return list_.empty(); }
  [[nodiscard]] std::size_t size() const { return list_.size(); }
  [[nodiscard]] bool contains(const BlockId& b) const {
    return index_.count(b) > 0;
  }

  /// Age of the oldest entry. Precondition: !empty().
  [[nodiscard]] std::uint64_t oldest_age() const {
    assert(!empty());
    return list_.front().age;
  }

  /// Oldest entry. Precondition: !empty().
  [[nodiscard]] const Entry& oldest() const {
    assert(!empty());
    return list_.front();
  }

  [[nodiscard]] std::uint64_t age_of(const BlockId& b) const {
    const auto it = index_.find(b);
    assert(it != index_.end());
    return it->second->age;
  }

  /// Inserts a block with the given age. The block must not be present.
  void insert(const BlockId& b, std::uint64_t age);

  /// Updates a present block's age (typically to "now", moving it to MRU).
  void touch(const BlockId& b, std::uint64_t age);

  /// Removes a block. Returns false if it was not present.
  bool erase(const BlockId& b);

  /// Removes and returns the oldest entry. Precondition: !empty().
  Entry pop_oldest();

  /// Iteration (oldest to youngest) for tests and invariant checks.
  [[nodiscard]] auto begin() const { return list_.begin(); }
  [[nodiscard]] auto end() const { return list_.end(); }

 private:
  using List = std::list<Entry>;
  List list_;  // ascending age: front oldest, back youngest
  std::unordered_map<BlockId, List::iterator, BlockIdHash> index_;
};

}  // namespace coop::cache
