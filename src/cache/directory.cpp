#include "cache/directory.hpp"

#include <cassert>
#include <string>

#include "util/audit.hpp"

namespace coop::cache {

NodeId PerfectDirectory::lookup(const BlockId& b) const {
  const auto it = map_.find(b);
  return it == map_.end() ? kInvalidNode : it->second;
}

void PerfectDirectory::set_master(const BlockId& b, NodeId n) {
  assert(n != kInvalidNode);
  map_[b] = n;
}

void PerfectDirectory::erase_master(const BlockId& b) { map_.erase(b); }

std::vector<BlockId> PerfectDirectory::erase_node(NodeId n) {
  std::vector<BlockId> erased;
  // Order-insensitive: the caller treats the result as a set (every block's
  // file is epoch-fenced; no per-entry ordering reaches outputs).
  for (auto it = map_.begin(); it != map_.end();) {  // ccm-lint: allow(unordered-iter)
    if (it->second == n) {
      erased.push_back(it->first);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  return erased;
}

std::vector<std::pair<BlockId, NodeId>> PerfectDirectory::entries() const {
  std::vector<std::pair<BlockId, NodeId>> out;
  out.reserve(map_.size());
  // Order-insensitive: consumed as a set by directory rebuilds.
  for (const auto& [b, n] : map_) out.emplace_back(b, n);  // ccm-lint: allow(unordered-iter)
  return out;
}

HintedDirectory::HintedDirectory(std::size_t nodes, std::uint32_t staleness_lag)
    : staleness_lag_(staleness_lag), hints_(nodes) {}

NodeId HintedDirectory::lookup(NodeId observer, const BlockId& b) const {
  assert(observer < hints_.size());
  ++lookups_;
  const auto& map = hints_[observer].map;
  const auto it = map.find(b);
  const NodeId hinted = it == map.end() ? kInvalidNode : it->second;
  if (hinted == truth(b)) ++correct_;
  return hinted;
}

NodeId HintedDirectory::truth(const BlockId& b) const {
  const auto it = truth_.find(b);
  return it == truth_.end() ? kInvalidNode : it->second.node;
}

void HintedDirectory::set_master(const BlockId& b, NodeId n, NodeId observer) {
  assert(n != kInvalidNode);
  auto& entry = truth_[b];
  entry.node = n;
  ++entry.version;
  // The node performing the placement and the new holder learn immediately
  // (the update rides the data message).
  hints_[observer].map[b] = n;
  hints_[n].map[b] = n;
  propagate_if_lagged(b);
}

void HintedDirectory::erase_master(const BlockId& b, NodeId observer) {
  const auto it = truth_.find(b);
  if (it == truth_.end()) return;
  truth_.erase(it);
  last_broadcast_.erase(b);
  hints_[observer].map.erase(b);
  // Other nodes keep a dangling hint until they discover it is wrong.
}

void HintedDirectory::refresh(NodeId observer, const BlockId& b) {
  assert(observer < hints_.size());
  const NodeId t = truth(b);
  if (t == kInvalidNode) {
    hints_[observer].map.erase(b);
  } else {
    hints_[observer].map[b] = t;
  }
}

void HintedDirectory::propagate_if_lagged(const BlockId& b) {
  const auto it = truth_.find(b);
  assert(it != truth_.end());
  auto& broadcast = last_broadcast_[b];
  if (it->second.version - broadcast <= staleness_lag_) return;
  for (auto& h : hints_) h.map[b] = it->second.node;
  broadcast = it->second.version;
}

double HintedDirectory::accuracy() const {
  if (lookups_ == 0) return 1.0;
  return static_cast<double>(correct_) / static_cast<double>(lookups_);
}

std::size_t HintedDirectory::audit(const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  // Order-insensitive sweeps: each check is independent of map order.
  for (const auto& [block, entry] : truth_) {  // ccm-lint: allow(unordered-iter)
    CCM_AUDIT(entry.node != kInvalidNode && entry.node < hints_.size(),
              "dir-truth-node-valid",
              "truth for file " + std::to_string(block.file) + " block " +
                  std::to_string(block.index) + " names node " +
                  std::to_string(entry.node) + " of " +
                  std::to_string(hints_.size()) + ctx);
  }
  for (const auto& [block, version] : last_broadcast_) {  // ccm-lint: allow(unordered-iter)
    const auto it = truth_.find(block);
    CCM_AUDIT(it != truth_.end(), "dir-broadcast-live",
              "broadcast bookkeeping for file " + std::to_string(block.file) +
                  " block " + std::to_string(block.index) +
                  " outlived its truth entry" + ctx);
    if (it != truth_.end()) {
      CCM_AUDIT(version <= it->second.version, "dir-broadcast-version",
                "broadcast version " + std::to_string(version) +
                    " ahead of truth version " +
                    std::to_string(it->second.version) + " for file " +
                    std::to_string(block.file) + ctx);
    }
  }
  return ccm_audit_failures;
}

}  // namespace coop::cache
