// Whole-file caching state for the L2S baseline (§4.1).
//
// L2S (Bianchini & Carrera's locality- and load-conscious server) caches
// whole files, "tries to migrate all requests for a particular file to a
// single node so that only one copy of each file is kept in cluster memory",
// and replicates hot files under load. Its de-replication algorithm "behaves
// like local LRU ... and tries to keep at least one copy of each file in
// memory whenever possible".
//
// Like ClusterCache this is a pure policy engine: the request-forwarding and
// replication *decisions* live in src/server/l2s_server (they need load
// information); this class tracks cache contents, the file->holders
// directory, and performs last-copy-preserving LRU eviction.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/types.hpp"

namespace coop::cache {

struct WholeFileCacheConfig {
  std::size_t nodes = 8;
  std::uint64_t capacity_bytes = 64ull * 1024 * 1024;  // per node
  /// Memory accounting granularity; files occupy whole blocks like in CCM so
  /// the two systems see identical effective memory.
  std::uint32_t block_bytes = 8 * 1024;
};

/// One evicted file (for cost accounting by the caller).
struct FileEviction {
  FileId file = 0;
  NodeId node = kInvalidNode;
  /// True if this eviction removed the last in-memory copy of the file.
  bool was_last_copy = false;
};

class WholeFileCache {
 public:
  explicit WholeFileCache(const WholeFileCacheConfig& config);

  [[nodiscard]] const WholeFileCacheConfig& config() const { return config_; }

  /// True if `node` caches `file`.
  [[nodiscard]] bool cached(NodeId node, FileId file) const;

  /// Nodes currently caching `file` (empty if none).
  [[nodiscard]] std::vector<NodeId> holders(FileId file) const;

  /// Number of nodes caching `file`.
  [[nodiscard]] std::size_t copy_count(FileId file) const;

  /// Refreshes LRU recency of a cached file. Precondition: cached(node,file).
  void touch(NodeId node, FileId file);

  /// Inserts `file` (of `file_bytes`) at `node`, evicting per the
  /// de-replication policy; returns the evictions performed. Precondition:
  /// !cached(node, file). Files larger than the node's capacity are admitted
  /// by evicting everything and still count as cached (degenerate but safe).
  std::vector<FileEviction> insert(NodeId node, FileId file,
                                   std::uint64_t file_bytes);

  /// Explicitly removes a cached copy (used by de-replication on load drop).
  void evict_copy(NodeId node, FileId file);

  [[nodiscard]] std::uint64_t used_blocks(NodeId node) const;
  [[nodiscard]] std::uint64_t capacity_blocks() const {
    return capacity_blocks_;
  }

  /// Sweeps directory/cache consistency and capacity bounds, reporting each
  /// violation through coop::audit; returns the violation count.
  std::size_t audit(const char* context) const;

  /// Convenience wrapper: audit("check_invariants") == 0.
  [[nodiscard]] bool check_invariants() const;

 private:
  friend struct WholeFileCacheTestPeer;  // test-only corruption (audit tests)
  struct Entry {
    FileId file;
    std::uint64_t age;
    std::uint32_t blocks;
  };
  struct NodeState {
    std::list<Entry> lru;  // front = oldest
    std::unordered_map<FileId, std::list<Entry>::iterator> index;
    std::uint64_t used_blocks = 0;
  };

  /// Picks the eviction victim on `node`: the oldest file that is *not* a
  /// last copy if any exists, otherwise the oldest file outright.
  [[nodiscard]] std::optional<FileId> pick_victim(const NodeState& ns) const;

  void remove(NodeId node, FileId file);

  WholeFileCacheConfig config_;
  std::uint64_t capacity_blocks_;
  std::vector<NodeState> nodes_;
  std::unordered_map<FileId, std::uint32_t> copy_counts_;
  LogicalClock clock_;
};

}  // namespace coop::cache
