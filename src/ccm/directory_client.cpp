#include "ccm/directory_client.hpp"

#include <utility>

namespace coop::ccm {

proto::Message RemoteDirectory::ask(const proto::Message& request) {
  net::Envelope env;
  env.msg = request;
  // Bounded retry: a directory RPC must never hang on a lossy or slow link,
  // and every kDir* operation RemoteDirectory issues is idempotent or
  // conditional at the service (see DirectoryService), so a re-ask whose
  // first reply was lost is safe.
  return net::call_with_retry(*transport_, env, net::RetryPolicy{},
                              retry_stats_)
      .msg;
}

proto::DirectoryService::ReadLookup RemoteDirectory::lookup_for_read_impl(
    cache::NodeId node, const cache::BlockId& b) {
  const proto::Message reply = ask(
      proto::Message::dir_request(proto::MsgKind::kDirLookupRead, node, home_, b));
  proto::DirectoryService::ReadLookup lk;
  lk.master = reply.dir_result();
  lk.misdirected = reply.has(proto::kFlagMisdirected);
  lk.epoch = reply.age;
  return lk;
}

cache::NodeId RemoteDirectory::lookup_impl(const cache::BlockId& b) {
  return ask(proto::Message::dir_request(proto::MsgKind::kDirLookup, local_,
                                         home_, b))
      .dir_result();
}

bool RemoteDirectory::try_claim_impl(const cache::BlockId& b,
                                     cache::NodeId node) {
  return ask(proto::Message::dir_request(proto::MsgKind::kDirTryClaim, node,
                                         home_, b))
      .has(proto::kFlagGranted);
}

std::optional<std::uint64_t> RemoteDirectory::begin_forward_impl(
    const cache::BlockId& b, cache::NodeId from) {
  const proto::Message reply = ask(proto::Message::dir_request(
      proto::MsgKind::kDirBeginForward, from, home_, b));
  if (!reply.has(proto::kFlagGranted)) return std::nullopt;
  return reply.age;
}

bool RemoteDirectory::claim_forwarded_impl(const cache::BlockId& b,
                                           cache::NodeId to, cache::NodeId from,
                                           std::uint64_t epoch) {
  return ask(proto::Message::dir_claim_forwarded(to, home_, b, from, epoch))
      .has(proto::kFlagGranted);
}

void RemoteDirectory::forward_rejected_impl(const cache::BlockId& b,
                                            cache::NodeId from) {
  ask(proto::Message::dir_request(proto::MsgKind::kDirForwardRejected, from,
                                  home_, b));
}

void RemoteDirectory::master_dropped_impl(const cache::BlockId& b,
                                          cache::NodeId node) {
  ask(proto::Message::dir_request(proto::MsgKind::kDirMasterDropped, node,
                                  home_, b));
}

cache::NodeId RemoteDirectory::write_claim_impl(const cache::BlockId& b,
                                                cache::NodeId writer) {
  return ask(proto::Message::dir_request(proto::MsgKind::kDirWriteClaim,
                                         writer, home_, b))
      .dir_result();
}

void RemoteDirectory::invalidate_file_impl(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirInvalidateFile,
                                       local_, home_, file, 0));
}

void RemoteDirectory::write_begin_impl(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirWriteBegin, local_,
                                       home_, file, 0));
}

void RemoteDirectory::write_end_impl(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirWriteEnd, local_,
                                       home_, file, 0));
}

bool RemoteDirectory::read_cacheable_impl(cache::FileId file,
                                          std::uint64_t epoch) {
  return ask(proto::Message::dir_file_request(proto::MsgKind::kDirReadCacheable,
                                              local_, home_, file, epoch))
      .has(proto::kFlagGranted);
}

std::size_t RemoteDirectory::purge_node_impl(cache::NodeId node) {
  // The purged count rides back in the reply's epoch slot (`age`).
  return static_cast<std::size_t>(
      ask(proto::Message::dir_purge_node(local_, home_, node)).age);
}

std::vector<proto::DirBatchResult> RemoteDirectory::batch_impl(
    cache::NodeId node, std::span<const proto::DirBatchItem> items) {
  std::vector<std::byte> payload = proto::encode_dir_batch_request(node, items);
  net::Envelope env;
  env.msg = proto::Message::dir_batch_request(
      node, home_, static_cast<std::uint32_t>(items.size()), payload.size());
  env.data = net::make_ready_block(std::move(payload));
  // Same at-least-once contract as ask(): a replayed batch re-executes ops
  // that are individually idempotent or conditional, exactly like replaying
  // each single.
  net::Envelope reply =
      net::call_with_retry(*transport_, env, net::RetryPolicy{}, retry_stats_);
  if (reply.msg.kind == proto::MsgKind::kDirBatchReply && reply.data) {
    reply.data->wait_ready();
    auto results = proto::decode_dir_batch_reply(reply.data->bytes);
    if (results && results->size() == items.size()) {
      return std::move(*results);
    }
  }
  // Corrupt or truncated reply (should never happen with a well-formed
  // home): fall back to the singles protocol. Re-issuing after a
  // possibly-applied batch is no different from an RPC retry.
  std::vector<proto::DirBatchResult> out;
  out.reserve(items.size());
  for (const proto::DirBatchItem& it : items) {
    proto::DirBatchResult r;
    switch (it.op) {
      case proto::DirBatchOp::kLookupRead: {
        const auto lk = lookup_for_read_impl(node, it.block);
        r.node = lk.master;
        r.epoch = lk.epoch;
        if (lk.misdirected) r.flags |= proto::kFlagMisdirected;
        break;
      }
      case proto::DirBatchOp::kTryClaim:
        if (try_claim_impl(it.block, node)) r.flags |= proto::kFlagGranted;
        break;
      case proto::DirBatchOp::kMasterDropped:
        master_dropped_impl(it.block, node);
        break;
      case proto::DirBatchOp::kValidate:
        // No single RPC exposes the raw file epoch; answer conservatively so
        // the caller's validation fails closed (serves uncached, refreshes
        // its hint from the next authoritative lookup).
        r.node = lookup_impl(it.block);
        r.epoch = ~std::uint64_t{0};
        break;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace coop::ccm
