#include "ccm/directory_client.hpp"

namespace coop::ccm {

namespace {

cache::NodeId reply_node(const proto::Message& reply) {
  return static_cast<cache::NodeId>(reply.count);
}

}  // namespace

proto::Message RemoteDirectory::ask(const proto::Message& request) {
  net::Envelope env;
  env.msg = request;
  // Bounded retry: a directory RPC must never hang on a lossy or slow link,
  // and every kDir* operation RemoteDirectory issues is idempotent or
  // conditional at the service (see DirectoryService), so a re-ask whose
  // first reply was lost is safe.
  return net::call_with_retry(*transport_, env, net::RetryPolicy{},
                              retry_stats_)
      .msg;
}

proto::DirectoryService::ReadLookup RemoteDirectory::lookup_for_read(
    cache::NodeId node, const cache::BlockId& b) {
  const proto::Message reply = ask(
      proto::Message::dir_request(proto::MsgKind::kDirLookupRead, node, home_, b));
  proto::DirectoryService::ReadLookup lk;
  lk.master = reply_node(reply);
  lk.misdirected = reply.has(proto::kFlagMisdirected);
  lk.epoch = reply.age;
  return lk;
}

cache::NodeId RemoteDirectory::lookup(const cache::BlockId& b) {
  return reply_node(ask(proto::Message::dir_request(
      proto::MsgKind::kDirLookup, local_, home_, b)));
}

bool RemoteDirectory::try_claim(const cache::BlockId& b, cache::NodeId node) {
  return ask(proto::Message::dir_request(proto::MsgKind::kDirTryClaim, node,
                                         home_, b))
      .has(proto::kFlagGranted);
}

std::optional<std::uint64_t> RemoteDirectory::begin_forward(
    const cache::BlockId& b, cache::NodeId from) {
  const proto::Message reply = ask(proto::Message::dir_request(
      proto::MsgKind::kDirBeginForward, from, home_, b));
  if (!reply.has(proto::kFlagGranted)) return std::nullopt;
  return reply.age;
}

bool RemoteDirectory::claim_forwarded(const cache::BlockId& b,
                                      cache::NodeId to, cache::NodeId from,
                                      std::uint64_t epoch) {
  return ask(proto::Message::dir_claim_forwarded(to, home_, b, from, epoch))
      .has(proto::kFlagGranted);
}

void RemoteDirectory::forward_rejected(const cache::BlockId& b,
                                       cache::NodeId from) {
  ask(proto::Message::dir_request(proto::MsgKind::kDirForwardRejected, from,
                                  home_, b));
}

void RemoteDirectory::master_dropped(const cache::BlockId& b,
                                     cache::NodeId node) {
  ask(proto::Message::dir_request(proto::MsgKind::kDirMasterDropped, node,
                                  home_, b));
}

cache::NodeId RemoteDirectory::write_claim(const cache::BlockId& b,
                                           cache::NodeId writer) {
  return reply_node(ask(proto::Message::dir_request(
      proto::MsgKind::kDirWriteClaim, writer, home_, b)));
}

void RemoteDirectory::invalidate_file(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirInvalidateFile,
                                       local_, home_, file, 0));
}

void RemoteDirectory::write_begin(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirWriteBegin, local_,
                                       home_, file, 0));
}

void RemoteDirectory::write_end(cache::FileId file) {
  ask(proto::Message::dir_file_request(proto::MsgKind::kDirWriteEnd, local_,
                                       home_, file, 0));
}

bool RemoteDirectory::read_cacheable(cache::FileId file, std::uint64_t epoch) {
  return ask(proto::Message::dir_file_request(proto::MsgKind::kDirReadCacheable,
                                              local_, home_, file, epoch))
      .has(proto::kFlagGranted);
}

std::size_t RemoteDirectory::purge_node(cache::NodeId node) {
  // The purged count rides back in the reply's epoch slot (`age`).
  return static_cast<std::size_t>(
      ask(proto::Message::dir_purge_node(local_, home_, node)).age);
}

}  // namespace coop::ccm
