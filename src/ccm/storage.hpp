// Pluggable backing storage for the middleware runtime.
//
// The cooperative caching layer sits between a service and its disks; Storage
// is the disk abstraction. Implementations must be thread-safe: the runtime
// issues reads from many node threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::ccm {

class Storage {
 public:
  virtual ~Storage() = default;

  /// Number of files. Valid FileIds are [0, file_count()).
  [[nodiscard]] virtual std::size_t file_count() const = 0;

  /// Size of a file in bytes.
  [[nodiscard]] virtual std::uint64_t file_size(cache::FileId file) const = 0;

  /// Reads file bytes [offset, offset + out.size()) into `out`. The range is
  /// guaranteed by callers to lie within the file.
  virtual void read(cache::FileId file, std::uint64_t offset,
                    std::span<std::byte> out) const = 0;
};

/// Storage that also accepts writes (required by CcmCluster::write).
class WritableStorage : public Storage {
 public:
  /// Writes `data` at [offset, offset + data.size()); the range is
  /// guaranteed by callers to lie within the file.
  virtual void write(cache::FileId file, std::uint64_t offset,
                     std::span<const std::byte> data) = 0;
};

/// Mutable in-memory storage backed by real buffers. Files are initialized
/// with the same deterministic content as MemStorage (so read-side integrity
/// checks carry over) and can be overwritten.
class BufferStorage final : public WritableStorage {
 public:
  explicit BufferStorage(const std::vector<std::uint32_t>& file_sizes);

  [[nodiscard]] std::size_t file_count() const override;
  [[nodiscard]] std::uint64_t file_size(cache::FileId file) const override;
  void read(cache::FileId file, std::uint64_t offset,
            std::span<std::byte> out) const override;
  void write(cache::FileId file, std::uint64_t offset,
             std::span<const std::byte> data) override;

 private:
  mutable util::Mutex mu_{"ccm.storage.buffer"};
  std::vector<std::vector<std::byte>> files_ GUARDED_BY(mu_);
};

/// Synthetic in-memory storage with deterministic per-byte content, so tests
/// and examples can verify end-to-end data integrity without touching disk.
class MemStorage final : public Storage {
 public:
  explicit MemStorage(std::vector<std::uint32_t> file_sizes);

  [[nodiscard]] std::size_t file_count() const override {
    return sizes_.size();
  }
  [[nodiscard]] std::uint64_t file_size(cache::FileId file) const override;
  void read(cache::FileId file, std::uint64_t offset,
            std::span<std::byte> out) const override;

  /// The deterministic content byte at (file, offset) — what read() returns;
  /// exposed so tests can verify integrity independently.
  [[nodiscard]] static std::byte content_at(cache::FileId file,
                                            std::uint64_t offset);

 private:
  std::vector<std::uint32_t> sizes_;
};

/// Serves real files from a directory tree. Files are enumerated once at
/// construction in sorted path order (so FileId assignment is deterministic)
/// and read with pread-style positioned I/O.
class FileStorage final : public Storage {
 public:
  /// Recursively enumerates regular files under `root`. Throws
  /// std::runtime_error if the directory cannot be read.
  explicit FileStorage(const std::string& root);

  [[nodiscard]] std::size_t file_count() const override {
    return paths_.size();
  }
  [[nodiscard]] std::uint64_t file_size(cache::FileId file) const override;
  void read(cache::FileId file, std::uint64_t offset,
            std::span<std::byte> out) const override;

  [[nodiscard]] const std::string& path_of(cache::FileId file) const;

 private:
  std::vector<std::string> paths_;
  std::vector<std::uint64_t> sizes_;
};

}  // namespace coop::ccm
