// The cooperative caching middleware runtime — the deliverable the paper
// argues for: "a generic middleware layer (or library) ... usable as a
// building block for diverse distributed services".
//
// CcmCluster hosts the cluster's logical nodes — all of them in one process
// (the default), or one slice of them when several processes form the
// cluster over a socket transport. Each hosted node has a worker pool (its
// "service threads"), a byte store for cached blocks, and its own *shard* of
// the cooperative caching policy: a proto::NodeState (this node's entry
// books, LRU ages, and stats slice) guarded by a per-node lock. The
// cluster-wide master map is reached through a DirectoryClient — a local
// proto::DirectoryService in-process, kDir* RPCs to the node-0 process in a
// multi-process cluster. Cross-node traffic travels as proto::Message
// envelopes through a pluggable net::Transport (in-process mailboxes or
// length-prefixed frames on TCP sockets) to a dedicated protocol thread per
// node — the exact message vocabulary the simulator charges with the paper's
// Table-1 latencies (see docs/MIDDLEWARE.md for the correspondence).
//
// Concurrency model:
//  * A read that only touches blocks resident at its own node takes that
//    node's shard lock and nothing else — no global mutex, no directory
//    lock. Per-shard acquisition/contention counters in stats() demonstrate
//    the isolation.
//  * Cross-node operations (peer fetch, master forward, invalidation, write
//    ownership transfer) are RPCs through the transport; the receiving
//    protocol thread works under its own shard lock plus the directory (a
//    strict shard → directory lock order, with the directory a leaf).
//    Workers never hold a shard lock while waiting on an RPC reply.
//  * In a multi-process cluster the directory "leaf" is itself an RPC to the
//    home process. The wait-for graph stays acyclic: only the home process
//    hosts the directory and storage, its handlers never block on another
//    node, so every blocking chain ends there.
//  * Directory claims are conditional, so racing misses/forwards/writes
//    resolve by retry instead of blocking; a bounded retry loop falls back
//    to an uncached storage read for liveness.
//  * Storage reads happen outside all locks with per-block pending states;
//    concurrent readers of a block being faulted in block only on that
//    block.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/coop_cache.hpp"
#include "ccm/directory_client.hpp"
#include "ccm/storage.hpp"
#include "ccm/transport.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_trace.hpp"
#include "proto/directory_service.hpp"
#include "proto/message.hpp"
#include "proto/node_state.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::ccm {

struct CcmConfig {
  std::size_t nodes = 4;
  /// Cache memory per node, bytes.
  std::uint64_t capacity_bytes = 64ull * 1024 * 1024;
  std::uint32_t block_bytes = 8 * 1024;
  cache::Policy policy = cache::Policy::kNeverEvictMaster;
  cache::DirectoryMode directory = cache::DirectoryMode::kPerfect;
  /// Worker threads per node.
  std::size_t workers_per_node = 2;
  /// Batch directory traffic: multi-block reads collect their lookups,
  /// claims, and cache-validations into kDirBatch round trips (one shard-lock
  /// acquisition at the service per batch), and eviction sweeps batch their
  /// master drops. Off restores the one-RPC-per-op protocol — bit-identical
  /// directory state either way (see docs/MIDDLEWARE.md).
  bool batch_directory = true;
};

/// How this process participates in the cluster. Default-constructed: every
/// node lives here, over an in-process transport with a local directory (the
/// original single-process runtime, unchanged in cost).
struct CcmHosting {
  /// Node-to-node message fabric; null builds an InProcTransport.
  std::shared_ptr<net::Transport> transport;
  /// Cluster master directory; null builds a LocalDirectory. A process that
  /// is not `home` passes a RemoteDirectory (and a RemoteStorage).
  std::shared_ptr<DirectoryClient> directory;
  /// Nodes served by this process; empty means all of them.
  std::vector<cache::NodeId> local_nodes;
  /// The node whose process hosts the directory, backing storage, and
  /// barrier service in a multi-process cluster.
  cache::NodeId home = 0;
};

/// Policy statistics plus the runtime's per-shard, directory, and transport
/// counters. In a multi-process cluster each process reports its own slice
/// (remote shards are all-zero rows; directory ops are home-only).
struct CcmStats : cache::CacheStats {
  struct Shard {
    std::uint64_t lock_acquired = 0;
    std::uint64_t lock_contended = 0;
    /// Reads satisfied entirely under this shard's lock (the hot path).
    std::uint64_t local_reads = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_handled = 0;
  };
  std::vector<Shard> shards;
  proto::DirectoryService::Ops directory;
  net::TransportStats transport;
  /// Directory-client traffic as seen from this process: single-op calls vs
  /// batch round trips (dir_client.trips() is the number batching shrinks).
  DirectoryClient::Calls dir_client;
  /// Lock-free hint-slot probes that short-circuited a directory lookup, and
  /// how many of those hints later failed validation (served uncached).
  std::uint64_t hint_hits = 0;
  std::uint64_t hint_stale = 0;
};

class CcmCluster {
 public:
  /// `storage` is the backing disk layer (shared across nodes, like the
  /// paper's files-distributed-across-all-nodes setup).
  CcmCluster(const CcmConfig& config, std::shared_ptr<Storage> storage);

  /// Multi-process form: host only `hosting.local_nodes` here, over the
  /// given transport. The home process passes the real storage and a local
  /// directory (and serves both to its peers); every other process passes
  /// RemoteStorage / RemoteDirectory proxies.
  CcmCluster(const CcmConfig& config, std::shared_ptr<Storage> storage,
             CcmHosting hosting);
  ~CcmCluster();

  CcmCluster(const CcmCluster&) = delete;
  CcmCluster& operator=(const CcmCluster&) = delete;

  /// Reads the whole file through node `via`'s worker pool. Thread-safe.
  /// `via` must be hosted in this process.
  std::vector<std::byte> read(cache::NodeId via, cache::FileId file);

  /// Asynchronous variant; the future resolves when the bytes are assembled.
  std::future<std::vector<std::byte>> read_async(cache::NodeId via,
                                                 cache::FileId file);

  /// Reads a byte range [offset, offset+length) of `file` via `via`.
  std::vector<std::byte> read_range(cache::NodeId via, cache::FileId file,
                                    std::uint64_t offset, std::uint64_t length);

  /// Write-protocol extension (the paper's §6 future work). Writes `data` at
  /// [offset, offset+data.size()) of `file` through node `via`: the write
  /// claims directory ownership, invalidates every peer copy, migrates the
  /// master (with its bytes) to `via`, updates the cached bytes
  /// copy-on-write, and writes through to Storage (which must be a
  /// WritableStorage; throws std::logic_error otherwise). Reads racing a
  /// write see either the old or the new block content, never a mix within
  /// one block. Concurrent writers to the *same* block race last-writer-wins
  /// per layer, as in any write-through design without a serialization
  /// point; writers of disjoint blocks are fully coherent.
  void write(cache::NodeId via, cache::FileId file, std::uint64_t offset,
             std::span<const std::byte> data);

  /// Drops every cached block of `file` cluster-wide (content changed
  /// outside the caching layer). Safe to call concurrently with reads; reads
  /// already in flight may still return the superseded bytes. In-flight
  /// master forwards of the file are fenced off by a directory epoch so they
  /// cannot resurrect stale blocks.
  void invalidate(cache::FileId file);

  /// Cluster-wide rendezvous, served by the home process: blocks until every
  /// node has announced reaching `phase`. The multi-process workload drivers
  /// use it to fence their seed/run/report phases.
  void barrier(cache::NodeId via, std::uint32_t phase);

  // --- crash / recovery (fault-injection support) ---

  /// Simulates a crash of hosted node `node`: wipes its policy state and
  /// byte store (as if the process died and lost its memory) and purges the
  /// node's masters from the directory, epoch-fencing every affected file so
  /// claims/forwards the dead node still has in flight are rejected instead
  /// of resurrecting its masters. Committed writes survive: every write went
  /// through to Storage before any cached master existed. Returns how many
  /// masters the directory purged. Call with the node's workload quiesced
  /// (its workers idle); peer traffic may keep flowing.
  std::size_t crash_node(cache::NodeId node);

  /// Brings a previously crashed hosted node back cold: the shard restarts
  /// empty (idempotent — resets state again) and re-publishes its summary.
  /// The node simply resumes serving; blocks re-enter its cache through the
  /// normal miss/claim protocol.
  void rejoin_node(cache::NodeId node);

  /// Rebuilds the cluster master map from the hosted shards' caches — the
  /// recovery path when the directory itself must be reconstructed from
  /// surviving per-node state. Requires the directory in this process and
  /// every node hosted here; epoch-fences everything in flight across the
  /// rebuild. Call at quiescence (takes every shard lock, index order).
  void reconstruct_directory();

  [[nodiscard]] const CcmConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return config_.nodes; }

  /// Nodes hosted in this process.
  [[nodiscard]] const std::vector<cache::NodeId>& local_nodes() const {
    return local_nodes_;
  }

  /// Snapshot of the policy statistics plus per-shard lock/message counters.
  [[nodiscard]] CcmStats stats() const;
  void reset_stats();

  /// Bytes currently cached at `node` (block-granular accounting; the node
  /// must be hosted here).
  [[nodiscard]] std::uint64_t cached_bytes(cache::NodeId node) const;

  /// `node`'s published cache summary (oldest LRU age, fullness) — what a
  /// socket transport piggybacks on outgoing frames so remote peers can
  /// pick forward targets.
  [[nodiscard]] std::pair<std::uint64_t, bool> published_summary(
      cache::NodeId node) const;

  /// Hinted mode: observed hint accuracy (paper cites ~98% for [18]).
  [[nodiscard]] double hint_accuracy() const { return dir_->hint_accuracy(); }

  // --- runtime telemetry (docs/OBSERVABILITY.md, "Runtime telemetry") ---

  /// This process's live metrics registry: per-MsgKind RPC latency/bytes
  /// histograms (recorded at the transport seam), hit/miss/forward/claim
  /// counters, and shard-lock wait distributions. Lock-free record path;
  /// snapshot() at any time.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

  /// Cluster-wide metrics: this process's snapshot merged with every peer
  /// process's, pulled over kStatsPull RPCs (deduplicated by reporting host,
  /// so several nodes sharing a process count once). Unreachable peers are
  /// skipped. In a single-process cluster this is just the local snapshot.
  [[nodiscard]] obs::MetricsSnapshot scrape_cluster();

  /// Arms wall-clock span recording: every read/write op gets a root span,
  /// every rpc() a client span, every handled message a handler span, and
  /// the trace/span ids ride inside proto::Message so the slices line up
  /// across processes (export via obs::runtime_trace_json). Off by default;
  /// recording is bounded (obs::RuntimeSpanLog::kCapacity).
  void enable_runtime_trace();
  [[nodiscard]] const obs::RuntimeSpanLog& runtime_spans() const {
    return span_log_;
  }

  /// Sweeps policy/data-plane consistency across every hosted shard and the
  /// directory: every cached policy entry has bytes, every stored block has
  /// a policy entry, every master is registered, and — when every node lives
  /// in this process — exactly one master exists per block. Violations are
  /// reported through coop::audit; returns the violation count. Takes every
  /// hosted shard lock (index order); call at quiescence.
  std::size_t audit(const char* context) const;

  /// Convenience wrapper: audit("check_consistency") == 0.
  [[nodiscard]] bool check_consistency() const;

 private:
  friend struct CcmClusterTestPeer;  // test-only corruption (audit tests)

  // Payload buffers are the transport's latch-guarded blocks; inside one
  // process both ends of a transfer share the same bytes.
  using BlockData = net::BlockData;
  using BlockPtr = net::BlockPtr;
  using Store =
      std::unordered_map<cache::BlockId, BlockPtr, cache::BlockIdHash>;

  /// One node's share of the runtime: its policy slice, byte store, and the
  /// lock that guards both.
  struct Shard {
    Shard(cache::NodeId id, const cache::CoopCacheConfig& cfg)
        : mu("ccm.shard[" + std::to_string(id) + "]"), state(id, cfg) {}
    mutable util::CountingMutex mu;
    /// Deliberately NOT GUARDED_BY(mu): ShardView reads the published_*
    /// summary fields lock-free (they are atomics, refreshed by publish()
    /// under the lock); every other NodeState access happens with mu held.
    proto::NodeState state;
    Store store GUARDED_BY(mu);
    /// stats() monotonicity floors: the highest lock counters observed so
    /// far, asserted non-decreasing between reset_stats() calls.
    mutable std::uint64_t lock_acquired_floor GUARDED_BY(mu) = 0;
    mutable std::uint64_t lock_contended_floor GUARDED_BY(mu) = 0;
    std::atomic<std::uint64_t> local_reads{0};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_handled{0};
  };

  /// A protocol reply: the wire message plus (for fetches and ownership
  /// transfers) the block bytes riding along.
  struct Reply {
    proto::Message msg;
    BlockPtr data;
  };

  struct Task {
    enum class Kind { kRead, kWrite };
    Kind kind = Kind::kRead;
    cache::FileId file;
    std::uint64_t offset;
    std::uint64_t length;
    std::vector<std::byte> write_data;  // kWrite only
    std::promise<std::vector<std::byte>> promise;
  };

  /// Lock-free published view of every shard (forward-target selection).
  /// Remote nodes are answered from the transport's piggybacked summaries.
  class ShardView final : public proto::PeerView {
   public:
    explicit ShardView(const CcmCluster& owner) : owner_(owner) {}
    [[nodiscard]] std::uint64_t peer_oldest_age(
        cache::NodeId n) const override {
      if (owner_.shards_[n]) {
        return owner_.shards_[n]->state.published_oldest_age();
      }
      return owner_.transport_->peer_oldest_age(n);
    }
    [[nodiscard]] bool peer_full(cache::NodeId n) const override {
      if (owner_.shards_[n]) return owner_.shards_[n]->state.published_full();
      return owner_.transport_->peer_full(n);
    }

   private:
    const CcmCluster& owner_;
  };

  /// Worker-thread loop for node `node` (serves read/write tasks).
  void worker_loop(cache::NodeId node);

  /// Protocol-thread loop for node `node` (serves peer messages). Handlers
  /// take this node's shard lock and the directory only — they never block
  /// on another hosted node, so cross-node request chains cannot deadlock.
  void protocol_loop(cache::NodeId node);
  Reply handle_message(cache::NodeId self, net::Envelope& env);
  /// Answers kDir* RPCs against the in-process DirectoryService (home only).
  Reply handle_directory(cache::NodeId self, const proto::Message& msg);

  /// Sends `msg` to its destination's protocol thread and awaits the reply.
  /// Callers must not hold any shard lock.
  Reply rpc(const proto::Message& msg, BlockPtr data = nullptr,
            std::uint64_t epoch = 0);

  /// The hosted shard behind a public-API `via`; throws on a node this
  /// process does not serve.
  Shard& shard_at(cache::NodeId via) const;

  /// Next logical LRU age (monotonic per process; cluster-global when every
  /// node is hosted here).
  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Executes one read on the calling (worker) thread.
  std::vector<std::byte> execute_read(cache::NodeId node, cache::FileId file,
                                      std::uint64_t offset,
                                      std::uint64_t length);

  /// Executes one write on the calling (worker) thread.
  void execute_write(cache::NodeId node, cache::FileId file,
                     std::uint64_t offset, std::span<const std::byte> data);

  /// Materializes one block at `node` per the cooperative caching protocol:
  /// local hit, peer fetch (RPC to the master holder), or a disk-read claim
  /// (appended to `to_read` for the caller to fault in). Retries around
  /// directory races; falls back to an uncached read for liveness.
  BlockPtr acquire_block(cache::NodeId node, const cache::BlockId& block,
                         std::vector<std::pair<cache::BlockId, BlockPtr>>&
                             to_read);

  /// Batched form of acquire_block for the contiguous run [first, last] of
  /// `file`'s blocks (config_.batch_directory): one shard-lock pass drains
  /// the local hits, one kDirBatch lookup resolves the misses (hint slots
  /// short-circuit it per block), one batch claim (issued under the shard
  /// lock, like the single path's try_claim) masters the uncached ones, and
  /// fetched copies are validated by one batched kValidate under the shard
  /// lock before insertion. Any block that races a transition falls back to
  /// acquire_block — same retries, same uncached-liveness floor. Appends one
  /// BlockPtr per block to `parts`, in block order.
  void acquire_run(cache::NodeId node, cache::FileId file, std::uint32_t first,
                   std::uint32_t last, std::vector<BlockPtr>& parts,
                   std::vector<std::pair<cache::BlockId, BlockPtr>>& to_read);

  // --- master-location hint slots (the read-mostly fast path) ---
  //
  // A fixed, power-of-two array of relaxed-atomic {key, val} pairs mapping a
  // block to its last authoritatively observed (master, epoch). A probe hit
  // skips the directory lookup entirely — no lock, no RPC; the later batched
  // kValidate (under the inserting shard's lock) is what keeps a stale hint
  // from planting an uncacheable copy, exactly the check the unbatched path
  // makes against its authoritative lookup. key and val are independent
  // atomics, so a reader racing a publisher can see a torn pair; the worst
  // outcome is a wrong candidate master — a peer-fetch miss or a failed
  // validation, both of which re-chain through the authoritative protocol.
  // Slots are advisory in every mode but only *used* in kPerfect mode:
  // kHinted's staleness model lives in the DirectoryService and layering a
  // second hint tier would skew its accuracy accounting.
  struct HintSlot {
    std::atomic<std::uint64_t> key{0};  // (file<<32 | index) + 1; 0 = empty
    std::atomic<std::uint64_t> val{0};  // master<<48 | epoch (low 48 bits)
  };
  static constexpr std::size_t kHintSlots = 4096;  // power of two

  struct Hint {
    cache::NodeId master;
    std::uint64_t epoch;  // low 48 bits of the observed file epoch
  };
  static std::size_t hint_index(const cache::BlockId& b) {
    // Same mix the block-id hash uses; cheap and good enough for slots.
    const std::uint64_t k = (static_cast<std::uint64_t>(b.file) << 32) |
                            b.index;
    return static_cast<std::size_t>((k * 0x9E3779B97F4A7C15ull) >> 32) &
           (kHintSlots - 1);
  }
  [[nodiscard]] std::optional<Hint> hint_probe(const cache::BlockId& b) const;
  void hint_publish(const cache::BlockId& b, cache::NodeId master,
                    std::uint64_t epoch);
  void hint_clear(const cache::BlockId& b);
  void hint_clear_file(cache::FileId file);

  /// Unregisters a sweep's worth of dropped masters: one kDirBatch round
  /// trip when batching is on and the sweep dropped more than one, the
  /// single-op protocol otherwise. Call sites hold the shard lock, exactly
  /// as they did around the per-drop master_dropped calls this replaces
  /// (the directory stays the leaf either way).
  void drop_masters(cache::NodeId node,
                    const std::vector<cache::BlockId>& dropped);

  /// Frees `slots` at `node` per the replacement policy. Requires `lock`
  /// held on the node's shard; releases it while shipping a master forward
  /// (re-acquired before returning), so callers must re-validate any state
  /// read before the call. NO_THREAD_SAFETY_ANALYSIS (justified, 1 of 2):
  /// the unlock/relock through the guard reference is a capability
  /// hand-off Clang's analysis cannot follow.
  void make_room_locked(util::UniqueLock<util::CountingMutex>& lock,
                        cache::NodeId node, std::uint32_t slots)
      NO_THREAD_SAFETY_ANALYSIS;

  /// Shard-local audit subset (per-event hooks; caller holds the shard
  /// lock). Cross-shard invariants are checked only by audit().
  std::size_t audit_shard_locked(const Shard& sh, cache::NodeId node,
                                 const char* context) const REQUIRES(sh.mu);
  /// Full sweep; caller holds every hosted shard lock.
  /// NO_THREAD_SAFETY_ANALYSIS (justified, 2 of 2): the caller holds a
  /// dynamic set of shard locks via a vector of guards, which the analysis
  /// cannot express.
  std::size_t audit_all_locked(const char* context) const
      NO_THREAD_SAFETY_ANALYSIS;

  [[nodiscard]] std::uint32_t block_bytes_of(std::uint64_t file_bytes,
                                             std::uint32_t index) const;

  CcmConfig config_;
  std::shared_ptr<Storage> storage_;

  std::shared_ptr<net::Transport> transport_;
  std::shared_ptr<DirectoryClient> dir_;
  /// The in-process DirectoryService when the directory is local (serves
  /// kDir* RPCs); nullptr in non-home processes.
  proto::DirectoryService* home_dir_ = nullptr;

  std::vector<cache::NodeId> local_nodes_;
  bool all_local_ = true;
  cache::NodeId home_ = 0;

  /// Indexed by node id; null for nodes hosted by other processes.
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardView view_{*this};
  std::atomic<std::uint64_t> clock_{0};

  /// Master-location hint slots (see above) and their probe counters.
  std::array<HintSlot, kHintSlots> hints_;
  std::atomic<std::uint64_t> hint_hits_{0};
  std::atomic<std::uint64_t> hint_stale_{0};

  /// Bounded-retry counters for every rpc() (merged into stats().transport).
  net::RetryStats retry_stats_;

  /// Runtime telemetry: installed on the (outermost) transport at
  /// construction so call() records per-kind RPC samples into it.
  obs::MetricsRegistry metrics_;
  /// Wall-clock span sink; inert until enable_runtime_trace().
  obs::RuntimeSpanLog span_log_;

  /// Barrier service state (home only): nodes that announced each phase.
  util::Mutex barrier_mu_{"ccm.barrier"};
  std::map<std::uint32_t, std::set<cache::NodeId>> barrier_arrivals_
      GUARDED_BY(barrier_mu_);

  std::vector<std::unique_ptr<Mailbox<Task>>> mailboxes_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> protocol_threads_;
};

}  // namespace coop::ccm
