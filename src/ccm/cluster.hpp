// The cooperative caching middleware runtime — the deliverable the paper
// argues for: "a generic middleware layer (or library) ... usable as a
// building block for diverse distributed services".
//
// CcmCluster runs N logical nodes inside one process. Each node has a worker
// pool (its "service threads"), a byte store for cached blocks, and a share
// of the cluster-wide cooperative caching policy (the same cache::ClusterCache
// the simulator uses, so every behavior validated against the paper holds
// here verbatim). Reads go through any node and are satisfied from local
// memory, a peer's memory, or backing Storage, with the paper's replacement
// and master-forwarding rules deciding what stays cached where.
//
// Concurrency model: policy metadata and store maps are guarded by one
// cluster mutex (policy transitions are cheap); Storage reads happen outside
// the lock with per-block pending states, so concurrent readers of a block
// being faulted in block only on that block. In a multi-machine deployment
// the mutex becomes the directory service and Mailbox the wire transport —
// those seams are deliberately narrow.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/coop_cache.hpp"
#include "ccm/storage.hpp"
#include "ccm/transport.hpp"

namespace coop::ccm {

struct CcmConfig {
  std::size_t nodes = 4;
  /// Cache memory per node, bytes.
  std::uint64_t capacity_bytes = 64ull * 1024 * 1024;
  std::uint32_t block_bytes = 8 * 1024;
  cache::Policy policy = cache::Policy::kNeverEvictMaster;
  cache::DirectoryMode directory = cache::DirectoryMode::kPerfect;
  /// Worker threads per node.
  std::size_t workers_per_node = 2;
};

class CcmCluster {
 public:
  /// `storage` is the backing disk layer (shared across nodes, like the
  /// paper's files-distributed-across-all-nodes setup).
  CcmCluster(const CcmConfig& config, std::shared_ptr<Storage> storage);
  ~CcmCluster();

  CcmCluster(const CcmCluster&) = delete;
  CcmCluster& operator=(const CcmCluster&) = delete;

  /// Reads the whole file through node `via`'s worker pool. Thread-safe.
  std::vector<std::byte> read(cache::NodeId via, cache::FileId file);

  /// Asynchronous variant; the future resolves when the bytes are assembled.
  std::future<std::vector<std::byte>> read_async(cache::NodeId via,
                                                 cache::FileId file);

  /// Reads a byte range [offset, offset+length) of `file` via `via`.
  std::vector<std::byte> read_range(cache::NodeId via, cache::FileId file,
                                    std::uint64_t offset, std::uint64_t length);

  /// Write-protocol extension (the paper's §6 future work). Writes `data` at
  /// [offset, offset+data.size()) of `file` through node `via`: the write
  /// invalidates every peer copy, migrates block ownership to `via`
  /// (owner-based coherence), updates the cached bytes copy-on-write, and
  /// writes through to Storage (which must be a WritableStorage; throws
  /// std::logic_error otherwise). Reads racing a write see either the old or
  /// the new block content, never a mix within one block.
  void write(cache::NodeId via, cache::FileId file, std::uint64_t offset,
             std::span<const std::byte> data);

  /// Drops every cached block of `file` cluster-wide (content changed
  /// outside the caching layer). Safe to call concurrently with reads; reads
  /// already in flight may still return the superseded bytes.
  void invalidate(cache::FileId file);

  [[nodiscard]] const CcmConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return config_.nodes; }

  /// Snapshot of the policy statistics (hits, forwards, ...).
  [[nodiscard]] cache::CacheStats stats() const;
  void reset_stats();

  /// Installs an observability tap on the policy engine (fired once per
  /// access/write with the completed plan, under the cluster lock — keep it
  /// cheap and non-reentrant). Empty function clears it. Thread-safe.
  void set_access_tap(cache::ClusterCache::AccessTap tap);

  /// Bytes currently cached at `node` (block-granular accounting).
  [[nodiscard]] std::uint64_t cached_bytes(cache::NodeId node) const;

  /// Sweeps policy/data-plane consistency: every cached policy entry has
  /// bytes, every stored block has a policy entry, and the underlying policy
  /// invariants hold. Violations are reported through coop::audit; returns
  /// the violation count. Takes the cluster lock.
  std::size_t audit(const char* context) const;

  /// Convenience wrapper: audit("check_consistency") == 0.
  [[nodiscard]] bool check_consistency() const;

 private:
  friend struct CcmClusterTestPeer;  // test-only corruption (audit tests)

  /// Body of audit(); caller must hold mu_.
  std::size_t audit_locked(const char* context) const;
  /// A cached block's bytes; `ready` flips once the Storage read lands.
  struct BlockData {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    std::vector<std::byte> bytes;
  };
  using BlockPtr = std::shared_ptr<BlockData>;
  using Store = std::unordered_map<cache::BlockId, BlockPtr,
                                   cache::BlockIdHash>;

  /// Wires policy actions into the byte stores, in policy order.
  class StoreObserver final : public cache::ActionObserver {
   public:
    explicit StoreObserver(CcmCluster& owner) : owner_(owner) {}
    void on_fetch(cache::NodeId requester,
                  const cache::BlockFetch& fetch) override;
    void on_drop(const cache::Drop& drop) override;
    void on_forward(const cache::Forward& forward) override;

   private:
    CcmCluster& owner_;
  };

  struct Task {
    enum class Kind { kRead, kWrite };
    Kind kind = Kind::kRead;
    cache::FileId file;
    std::uint64_t offset;
    std::uint64_t length;
    std::vector<std::byte> write_data;  // kWrite only
    std::promise<std::vector<std::byte>> promise;
  };

  /// Worker-thread loop for node `node`.
  void worker_loop(cache::NodeId node);

  /// Executes one read on the calling (worker) thread.
  std::vector<std::byte> execute_read(cache::NodeId node, cache::FileId file,
                                      std::uint64_t offset,
                                      std::uint64_t length);

  /// Executes one write on the calling (worker) thread.
  void execute_write(cache::NodeId node, cache::FileId file,
                     std::uint64_t offset, std::span<const std::byte> data);

  [[nodiscard]] std::uint32_t block_bytes_of(std::uint64_t file_bytes,
                                             std::uint32_t index) const;

  CcmConfig config_;
  std::shared_ptr<Storage> storage_;

  mutable std::mutex mu_;  // guards cache_, stores_, and observer scratch
  cache::ClusterCache cache_;
  std::vector<Store> stores_;
  StoreObserver observer_;

  // Scratch filled by the observer during one access (under mu_).
  std::vector<BlockPtr> parts_scratch_;
  std::vector<std::pair<cache::BlockId, BlockPtr>> pending_reads_scratch_;

  std::vector<std::unique_ptr<Mailbox<Task>>> mailboxes_;
  std::vector<std::thread> workers_;
};

}  // namespace coop::ccm
