#include "ccm/remote_storage.hpp"

#include <cstring>
#include <stdexcept>

namespace coop::ccm {

std::uint64_t RemoteStorage::file_size(cache::FileId file) const {
  if (file >= sizes_.size()) {
    throw std::out_of_range("RemoteStorage: bad file id");
  }
  return sizes_[file];
}

void RemoteStorage::read(cache::FileId file, std::uint64_t offset,
                         std::span<std::byte> out) const {
  if (out.empty()) return;
  net::Envelope env;
  env.msg =
      proto::Message::storage_read(local_, home_, file, offset, out.size());
  // Bounded retry: a re-read is idempotent and must not hang on a lossy link.
  const net::Envelope reply =
      net::call_with_retry(*transport_, env, net::RetryPolicy{}, retry_stats_);
  if (!reply.data || reply.data->bytes.size() != out.size()) {
    throw std::runtime_error("RemoteStorage: short read from home node");
  }
  std::memcpy(out.data(), reply.data->bytes.data(), out.size());
}

void RemoteStorage::write(cache::FileId file, std::uint64_t offset,
                          std::span<const std::byte> data) {
  if (data.empty()) return;
  net::Envelope env;
  env.msg =
      proto::Message::storage_write(local_, home_, file, offset, data.size());
  env.data = net::make_ready_block(
      std::vector<std::byte>(data.begin(), data.end()));
  // Blocks until the kStorageAck. Retrying a write whose ack was lost
  // re-applies the same bytes at the same offset — idempotent.
  net::call_with_retry(*transport_, env, net::RetryPolicy{}, retry_stats_);
}

}  // namespace coop::ccm
