#include "ccm/storage.hpp"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace coop::ccm {

MemStorage::MemStorage(std::vector<std::uint32_t> file_sizes)
    : sizes_(std::move(file_sizes)) {}

std::uint64_t MemStorage::file_size(cache::FileId file) const {
  assert(file < sizes_.size());
  return sizes_[file];
}

std::byte MemStorage::content_at(cache::FileId file, std::uint64_t offset) {
  // Cheap deterministic mix of (file, offset).
  std::uint64_t x = (static_cast<std::uint64_t>(file) << 40) ^ offset;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return static_cast<std::byte>(x & 0xFF);
}

void MemStorage::read(cache::FileId file, std::uint64_t offset,
                      std::span<std::byte> out) const {
  assert(file < sizes_.size());
  assert(offset + out.size() <= sizes_[file]);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = content_at(file, offset + i);
  }
}

BufferStorage::BufferStorage(const std::vector<std::uint32_t>& file_sizes) {
  files_.reserve(file_sizes.size());
  for (std::size_t f = 0; f < file_sizes.size(); ++f) {
    std::vector<std::byte> content(file_sizes[f]);
    for (std::size_t i = 0; i < content.size(); ++i) {
      content[i] =
          MemStorage::content_at(static_cast<cache::FileId>(f), i);
    }
    files_.push_back(std::move(content));
  }
}

std::size_t BufferStorage::file_count() const {
  util::ScopedLock lock(mu_);
  return files_.size();
}

std::uint64_t BufferStorage::file_size(cache::FileId file) const {
  util::ScopedLock lock(mu_);
  assert(file < files_.size());
  return files_[file].size();
}

void BufferStorage::read(cache::FileId file, std::uint64_t offset,
                         std::span<std::byte> out) const {
  util::ScopedLock lock(mu_);
  assert(file < files_.size());
  assert(offset + out.size() <= files_[file].size());
  std::copy_n(files_[file].begin() + static_cast<std::ptrdiff_t>(offset),
              out.size(), out.begin());
}

void BufferStorage::write(cache::FileId file, std::uint64_t offset,
                          std::span<const std::byte> data) {
  util::ScopedLock lock(mu_);
  assert(file < files_.size());
  assert(offset + data.size() <= files_[file].size());
  std::copy(data.begin(), data.end(),
            files_[file].begin() + static_cast<std::ptrdiff_t>(offset));
}

FileStorage::FileStorage(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw std::runtime_error("FileStorage: not a directory: " + root);
  }
  for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
    if (entry.is_regular_file(ec)) paths_.push_back(entry.path().string());
  }
  if (ec) throw std::runtime_error("FileStorage: cannot enumerate " + root);
  std::sort(paths_.begin(), paths_.end());
  sizes_.reserve(paths_.size());
  for (const auto& p : paths_) {
    sizes_.push_back(static_cast<std::uint64_t>(fs::file_size(p)));
  }
}

std::uint64_t FileStorage::file_size(cache::FileId file) const {
  assert(file < sizes_.size());
  return sizes_[file];
}

const std::string& FileStorage::path_of(cache::FileId file) const {
  assert(file < paths_.size());
  return paths_[file];
}

void FileStorage::read(cache::FileId file, std::uint64_t offset,
                       std::span<std::byte> out) const {
  assert(file < paths_.size());
  std::ifstream f(paths_[file], std::ios::binary);
  if (!f) throw std::runtime_error("FileStorage: cannot open " + paths_[file]);
  f.seekg(static_cast<std::streamoff>(offset));
  f.read(reinterpret_cast<char*>(out.data()),
         static_cast<std::streamsize>(out.size()));
  if (f.gcount() != static_cast<std::streamsize>(out.size())) {
    throw std::runtime_error("FileStorage: short read on " + paths_[file]);
  }
}

}  // namespace coop::ccm
