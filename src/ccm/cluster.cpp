#include "ccm/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/audit.hpp"

namespace coop::ccm {

namespace {

cache::CoopCacheConfig to_cache_config(const CcmConfig& c) {
  cache::CoopCacheConfig cc;
  cc.nodes = c.nodes;
  cc.capacity_bytes = c.capacity_bytes;
  cc.block_bytes = c.block_bytes;
  cc.policy = c.policy;
  cc.directory = c.directory;
  return cc;
}

}  // namespace

CcmCluster::CcmCluster(const CcmConfig& config,
                       std::shared_ptr<Storage> storage)
    : config_(config),
      storage_(std::move(storage)),
      cache_(to_cache_config(config)),
      stores_(config.nodes),
      observer_(*this) {
  if (!storage_) throw std::invalid_argument("CcmCluster: null storage");
  if (config_.nodes == 0) throw std::invalid_argument("CcmCluster: 0 nodes");
  if (config_.workers_per_node == 0) {
    throw std::invalid_argument("CcmCluster: 0 workers per node");
  }
  cache_.set_observer(&observer_);

  mailboxes_.reserve(config_.nodes);
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    mailboxes_.push_back(std::make_unique<Mailbox<Task>>());
  }
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
      workers_.emplace_back(
          [this, n] { worker_loop(static_cast<cache::NodeId>(n)); });
    }
  }
}

CcmCluster::~CcmCluster() {
  for (auto& mb : mailboxes_) mb->close();
  for (auto& t : workers_) t.join();
}

void CcmCluster::worker_loop(cache::NodeId node) {
  auto& mailbox = *mailboxes_[node];
  while (auto task = mailbox.receive()) {
    try {
      if (task->kind == Task::Kind::kWrite) {
        execute_write(node, task->file, task->offset, task->write_data);
        task->promise.set_value({});
      } else {
        task->promise.set_value(
            execute_read(node, task->file, task->offset, task->length));
      }
    } catch (...) {
      task->promise.set_exception(std::current_exception());
    }
  }
}

std::future<std::vector<std::byte>> CcmCluster::read_async(
    cache::NodeId via, cache::FileId file) {
  if (via >= config_.nodes) throw std::out_of_range("bad node id");
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  Task task;
  task.file = file;
  task.offset = 0;
  task.length = storage_->file_size(file);
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  return future;
}

std::vector<std::byte> CcmCluster::read(cache::NodeId via,
                                        cache::FileId file) {
  return read_async(via, file).get();
}

std::vector<std::byte> CcmCluster::read_range(cache::NodeId via,
                                              cache::FileId file,
                                              std::uint64_t offset,
                                              std::uint64_t length) {
  if (via >= config_.nodes) throw std::out_of_range("bad node id");
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  if (offset + length > storage_->file_size(file)) {
    throw std::out_of_range("range beyond end of file");
  }
  Task task;
  task.file = file;
  task.offset = offset;
  task.length = length;
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  return future.get();
}

void CcmCluster::write(cache::NodeId via, cache::FileId file,
                       std::uint64_t offset, std::span<const std::byte> data) {
  if (via >= config_.nodes) throw std::out_of_range("bad node id");
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  if (offset + data.size() > storage_->file_size(file)) {
    throw std::out_of_range("write beyond end of file");
  }
  if (dynamic_cast<WritableStorage*>(storage_.get()) == nullptr) {
    throw std::logic_error("CcmCluster::write requires a WritableStorage");
  }
  Task task;
  task.kind = Task::Kind::kWrite;
  task.file = file;
  task.offset = offset;
  task.length = data.size();
  task.write_data.assign(data.begin(), data.end());
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  future.get();
}

std::uint32_t CcmCluster::block_bytes_of(std::uint64_t file_bytes,
                                         std::uint32_t index) const {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * config_.block_bytes;
  if (file_bytes <= start) return 0;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(file_bytes - start, config_.block_bytes));
}

// ----------------------------------------------------------- observer ----

void CcmCluster::StoreObserver::on_fetch(cache::NodeId requester,
                                         const cache::BlockFetch& fetch) {
  auto& stores = owner_.stores_;
  BlockPtr ptr;
  switch (fetch.source) {
    case cache::Source::kLocalHit: {
      const auto it = stores[requester].find(fetch.block);
      assert(it != stores[requester].end());
      ptr = it->second;
      break;
    }
    case cache::Source::kRemoteHit: {
      // Non-master copies share the (immutable) bytes with the master.
      const auto it = stores[fetch.provider].find(fetch.block);
      assert(it != stores[fetch.provider].end());
      ptr = it->second;
      stores[requester][fetch.block] = ptr;
      break;
    }
    case cache::Source::kDiskRead: {
      ptr = std::make_shared<BlockData>();
      stores[requester][fetch.block] = ptr;
      owner_.pending_reads_scratch_.emplace_back(fetch.block, ptr);
      break;
    }
  }
  owner_.parts_scratch_.push_back(std::move(ptr));
}

void CcmCluster::StoreObserver::on_drop(const cache::Drop& drop) {
  owner_.stores_[drop.node].erase(drop.block);
}

void CcmCluster::StoreObserver::on_forward(const cache::Forward& forward) {
  auto& from = owner_.stores_[forward.from];
  const auto it = from.find(forward.block);
  assert(it != from.end());
  BlockPtr data = std::move(it->second);
  from.erase(it);
  if (!forward.accepted || forward.to == cache::kInvalidNode) return;
  // Promotion case: the destination already shares these bytes.
  owner_.stores_[forward.to].try_emplace(forward.block, std::move(data));
}

// --------------------------------------------------------------- reads ----

std::vector<std::byte> CcmCluster::execute_read(cache::NodeId node,
                                                cache::FileId file,
                                                std::uint64_t offset,
                                                std::uint64_t length) {
  if (length == 0) return {};
  const std::uint64_t file_bytes = storage_->file_size(file);
  const std::uint32_t first_block =
      static_cast<std::uint32_t>(offset / config_.block_bytes);
  const std::uint32_t last_block =
      length == 0 ? first_block
                  : static_cast<std::uint32_t>((offset + length - 1) /
                                               config_.block_bytes);

  std::vector<BlockPtr> parts;
  std::vector<std::pair<cache::BlockId, BlockPtr>> to_read;
  {
    std::scoped_lock lock(mu_);
    parts_scratch_.clear();
    pending_reads_scratch_.clear();
    cache::AccessResult result;
    for (std::uint32_t b = first_block; b <= last_block; ++b) {
      cache_.access_block(node, cache::BlockId{file, b}, result);
    }
    parts = std::move(parts_scratch_);
    to_read = std::move(pending_reads_scratch_);
    parts_scratch_.clear();
    pending_reads_scratch_.clear();
    CCM_AUDIT_HOOK(audit_locked("execute_read"));
  }

  // Fault in missing blocks from Storage on this worker thread, outside the
  // cluster lock. Concurrent readers of the same block wait on its ready cv.
  for (auto& [block, data] : to_read) {
    const std::uint32_t bytes = block_bytes_of(file_bytes, block.index);
    data->bytes.resize(bytes);
    if (bytes > 0) {
      storage_->read(file,
                     static_cast<std::uint64_t>(block.index) *
                         config_.block_bytes,
                     data->bytes);
    }
    {
      std::scoped_lock block_lock(data->m);
      data->ready = true;
    }
    data->cv.notify_all();
  }

  // Assemble the requested range, waiting for any blocks still in flight.
  std::vector<std::byte> out(length);
  std::uint64_t out_pos = 0;
  for (std::uint32_t b = first_block; b <= last_block; ++b) {
    BlockPtr& part = parts[b - first_block];
    {
      std::unique_lock block_lock(part->m);
      part->cv.wait(block_lock, [&] { return part->ready; });
    }
    const std::uint64_t block_start =
        static_cast<std::uint64_t>(b) * config_.block_bytes;
    const std::uint64_t copy_from = std::max(offset, block_start);
    const std::uint64_t copy_to =
        std::min(offset + length, block_start + part->bytes.size());
    if (copy_to <= copy_from) continue;
    std::memcpy(out.data() + out_pos, part->bytes.data() +
                                          (copy_from - block_start),
                copy_to - copy_from);
    out_pos += copy_to - copy_from;
  }
  assert(out_pos == length);
  return out;
}

void CcmCluster::execute_write(cache::NodeId node, cache::FileId file,
                               std::uint64_t offset,
                               std::span<const std::byte> data) {
  if (data.empty()) return;
  auto* writable = dynamic_cast<WritableStorage*>(storage_.get());
  assert(writable != nullptr);  // checked at the API boundary

  const std::uint64_t file_bytes = storage_->file_size(file);
  const std::uint32_t first_block =
      static_cast<std::uint32_t>(offset / config_.block_bytes);
  const std::uint32_t last_block = static_cast<std::uint32_t>(
      (offset + data.size() - 1) / config_.block_bytes);

  // One entry per affected block: the superseded bytes (null if the block
  // was uncached) and the fresh copy-on-write buffer now installed.
  struct PendingWrite {
    cache::BlockId block;
    BlockPtr old_data;  // may be null or not yet ready
    BlockPtr new_data;
  };
  std::vector<PendingWrite> pending;
  {
    std::scoped_lock lock(mu_);
    parts_scratch_.clear();
    pending_reads_scratch_.clear();
    cache::AccessResult result;
    for (std::uint32_t b = first_block; b <= last_block; ++b) {
      const cache::BlockId block{file, b};
      cache_.write_block(node, block, result);
      // Postcondition: this node is the master holder. Swap in a fresh
      // buffer (copy-on-write) so concurrent readers holding the old bytes
      // are unaffected; migrated-in bytes serve as the read-modify-write
      // base for partial blocks.
      auto& slot = stores_[node][block];
      PendingWrite pw{block, std::move(slot), std::make_shared<BlockData>()};
      slot = pw.new_data;
      pending.push_back(std::move(pw));
    }
    // write_block never schedules disk reads; clear any scratch the observer
    // touched for eviction bookkeeping.
    parts_scratch_.clear();
    pending_reads_scratch_.clear();
    CCM_AUDIT_HOOK(audit_locked("execute_write"));
  }

  // Assemble block contents outside the lock.
  for (auto& pw : pending) {
    const std::uint32_t bytes = block_bytes_of(file_bytes, pw.block.index);
    const std::uint64_t block_start =
        static_cast<std::uint64_t>(pw.block.index) * config_.block_bytes;
    auto& out = pw.new_data->bytes;
    out.resize(bytes);

    const bool covers_whole_block =
        offset <= block_start && offset + data.size() >= block_start + bytes;
    if (!covers_whole_block) {
      // Read-modify-write base: superseded cached bytes if any, else storage.
      if (pw.old_data) {
        std::unique_lock block_lock(pw.old_data->m);
        pw.old_data->cv.wait(block_lock, [&] { return pw.old_data->ready; });
        assert(pw.old_data->bytes.size() == bytes);
        out = pw.old_data->bytes;
      } else if (bytes > 0) {
        storage_->read(file, block_start, out);
      }
    }
    // Apply the written slice.
    const std::uint64_t copy_from = std::max(offset, block_start);
    const std::uint64_t copy_to =
        std::min(offset + data.size(), block_start + bytes);
    if (copy_to > copy_from) {
      std::memcpy(out.data() + (copy_from - block_start),
                  data.data() + (copy_from - offset), copy_to - copy_from);
    }
    {
      std::scoped_lock block_lock(pw.new_data->m);
      pw.new_data->ready = true;
    }
    pw.new_data->cv.notify_all();
  }

  // Write-through to backing storage.
  writable->write(file, offset, data);
}

void CcmCluster::invalidate(cache::FileId file) {
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  std::scoped_lock lock(mu_);
  parts_scratch_.clear();
  pending_reads_scratch_.clear();
  cache_.invalidate_file(file, storage_->file_size(file));
  parts_scratch_.clear();
  pending_reads_scratch_.clear();
  CCM_AUDIT_HOOK(audit_locked("invalidate"));
}

// --------------------------------------------------------------- stats ----

cache::CacheStats CcmCluster::stats() const {
  std::scoped_lock lock(mu_);
  return cache_.stats();
}

void CcmCluster::reset_stats() {
  std::scoped_lock lock(mu_);
  cache_.reset_stats();
}

void CcmCluster::set_access_tap(cache::ClusterCache::AccessTap tap) {
  std::scoped_lock lock(mu_);
  cache_.set_access_tap(std::move(tap));
}

std::uint64_t CcmCluster::cached_bytes(cache::NodeId node) const {
  std::scoped_lock lock(mu_);
  return cache_.node(node).used_blocks() * config_.block_bytes;
}

std::size_t CcmCluster::audit_locked(const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    const auto& node = cache_.node(static_cast<cache::NodeId>(n));
    const auto& store = stores_[n];
    CCM_AUDIT(node.used_blocks() == store.size(), "ccm-store-policy-size",
              "node " + std::to_string(n) + " policy books " +
                  std::to_string(node.used_blocks()) +
                  " blocks but the byte store holds " +
                  std::to_string(store.size()) + ctx);
    // Order-insensitive sweep over the (unordered) byte store: each check is
    // independent of iteration order.
    for (const auto& [block, data] : store) {  // ccm-lint: allow(unordered-iter)
      CCM_AUDIT(node.contains(block), "ccm-store-orphan",
                "node " + std::to_string(n) + " stores bytes for file " +
                    std::to_string(block.file) + " block " +
                    std::to_string(block.index) +
                    " with no policy entry" + ctx);
      CCM_AUDIT(data != nullptr, "ccm-store-null",
                "node " + std::to_string(n) + " stores null bytes for file " +
                    std::to_string(block.file) + " block " +
                    std::to_string(block.index) + ctx);
    }
  }
  return ccm_audit_failures + cache_.audit(context);
}

std::size_t CcmCluster::audit(const char* context) const {
  std::scoped_lock lock(mu_);
  return audit_locked(context);
}

bool CcmCluster::check_consistency() const {
  return audit("check_consistency") == 0;
}

}  // namespace coop::ccm
