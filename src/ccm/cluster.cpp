#include "ccm/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/audit.hpp"
#include "util/mutex.hpp"

namespace coop::ccm {

namespace {

cache::CoopCacheConfig to_cache_config(const CcmConfig& c) {
  cache::CoopCacheConfig cc;
  cc.nodes = c.nodes;
  cc.capacity_bytes = c.capacity_bytes;
  cc.block_bytes = c.block_bytes;
  cc.policy = c.policy;
  cc.directory = c.directory;
  return cc;
}

/// Bounded directory-race retries before falling back to an uncached read.
constexpr int kAcquireAttempts = 64;

/// RAII root span for one worker operation: mints a fresh trace id, makes it
/// the thread's ambient context (rpc() stamps it into outgoing messages),
/// and records the op slice on destruction. No-op while tracing is off.
class OpSpan {
 public:
  OpSpan(obs::RuntimeSpanLog& log, std::uint16_t node, const char* name)
      : log_(log) {
    if (!log_.enabled()) return;
    active_ = true;
    name_ = name;
    node_ = node;
    auto& ctx = obs::tls_trace_context();
    saved_ = ctx;
    ctx.trace = log_.next_id();
    ctx.span = log_.next_id();
    trace_ = ctx.trace;
    span_ = ctx.span;
    start_ = obs::runtime_wall_ns();
  }
  ~OpSpan() {
    if (!active_) return;
    log_.record({trace_, span_, 0, start_, obs::runtime_wall_ns(), node_,
                 obs::kLaneOp, name_});
    obs::tls_trace_context() = saved_;
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

 private:
  obs::RuntimeSpanLog& log_;
  bool active_ = false;
  obs::TraceContext saved_{};
  std::uint64_t trace_ = 0, span_ = 0, start_ = 0;
  std::uint16_t node_ = 0;
  const char* name_ = "";
};

/// RAII handler span on a protocol thread: adopts the incoming message's
/// trace identity so the slice joins the sender's trace (its parent is the
/// sender's rpc-client span, which draws the cross-process flow arrow).
class HandlerSpan {
 public:
  HandlerSpan(obs::RuntimeSpanLog& log, std::uint16_t node,
              const proto::Message& msg)
      : log_(log) {
    if (!log_.enabled() || msg.trace == 0) return;
    active_ = true;
    node_ = node;
    name_ = proto::kind_name(msg.kind);
    trace_ = msg.trace;
    parent_ = msg.span;
    span_ = log_.next_id();
    auto& ctx = obs::tls_trace_context();
    saved_ = ctx;
    ctx.trace = trace_;
    ctx.span = span_;
    start_ = obs::runtime_wall_ns();
  }
  ~HandlerSpan() {
    if (!active_) return;
    log_.record({trace_, span_, parent_, start_, obs::runtime_wall_ns(),
                 node_, obs::kLaneHandler, name_});
    obs::tls_trace_context() = saved_;
  }
  HandlerSpan(const HandlerSpan&) = delete;
  HandlerSpan& operator=(const HandlerSpan&) = delete;

 private:
  obs::RuntimeSpanLog& log_;
  bool active_ = false;
  obs::TraceContext saved_{};
  std::uint64_t trace_ = 0, span_ = 0, parent_ = 0, start_ = 0;
  std::uint16_t node_ = 0;
  const char* name_ = "";
};

}  // namespace

CcmCluster::CcmCluster(const CcmConfig& config,
                       std::shared_ptr<Storage> storage)
    : CcmCluster(config, std::move(storage), CcmHosting{}) {}

CcmCluster::CcmCluster(const CcmConfig& config,
                       std::shared_ptr<Storage> storage, CcmHosting hosting)
    : config_(config), storage_(std::move(storage)) {
  if (!storage_) throw std::invalid_argument("CcmCluster: null storage");
  if (config_.nodes == 0) throw std::invalid_argument("CcmCluster: 0 nodes");
  if (config_.workers_per_node == 0) {
    throw std::invalid_argument("CcmCluster: 0 workers per node");
  }

  transport_ = hosting.transport
                   ? std::move(hosting.transport)
                   : std::make_shared<net::InProcTransport>(config_.nodes);
  dir_ = hosting.directory
             ? std::move(hosting.directory)
             : std::make_shared<LocalDirectory>(
                   config_.nodes, config_.directory,
                   cache::CoopCacheConfig{}.hint_staleness);
  home_dir_ = dir_->service();
  home_ = hosting.home;

  local_nodes_ = std::move(hosting.local_nodes);
  if (local_nodes_.empty()) {
    for (std::size_t n = 0; n < config_.nodes; ++n) {
      local_nodes_.push_back(static_cast<cache::NodeId>(n));
    }
  }
  std::sort(local_nodes_.begin(), local_nodes_.end());
  local_nodes_.erase(std::unique(local_nodes_.begin(), local_nodes_.end()),
                     local_nodes_.end());
  for (const cache::NodeId n : local_nodes_) {
    if (n >= config_.nodes) {
      throw std::invalid_argument("CcmCluster: local node out of range");
    }
  }
  all_local_ = local_nodes_.size() == config_.nodes;

  // Telemetry identity + the transport seam: call() records per-kind RPC
  // samples into this process's registry (outermost transport only — a
  // FaultyTransport decorator passed in via hosting is the recording layer,
  // its inner transport stays silent).
  metrics_.set_host(local_nodes_.front());
  transport_->set_metrics(&metrics_);

  const cache::CoopCacheConfig cc = to_cache_config(config_);
  shards_.resize(config_.nodes);
  mailboxes_.resize(config_.nodes);
  for (const cache::NodeId n : local_nodes_) {
    shards_[n] = std::make_unique<Shard>(n, cc);
    mailboxes_[n] = std::make_unique<Mailbox<Task>>(
        1024, "ccm.tasks[" + std::to_string(n) + "]");
  }
  for (const cache::NodeId n : local_nodes_) {
    protocol_threads_.emplace_back([this, n] { protocol_loop(n); });
    for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
      workers_.emplace_back([this, n] { worker_loop(n); });
    }
  }
}

CcmCluster::~CcmCluster() {
  // Workers first (they may have RPCs in flight that need the protocol
  // threads alive), then the transport, which ends the protocol loops.
  for (auto& mb : mailboxes_) {
    if (mb) mb->close();
  }
  for (auto& t : workers_) t.join();
  transport_->close();
  for (auto& t : protocol_threads_) t.join();
}

CcmCluster::Shard& CcmCluster::shard_at(cache::NodeId via) const {
  if (via >= config_.nodes) throw std::out_of_range("bad node id");
  if (!shards_[via]) {
    throw std::invalid_argument("CcmCluster: node " + std::to_string(via) +
                                " is hosted by another process");
  }
  return *shards_[via];
}

void CcmCluster::worker_loop(cache::NodeId node) {
  auto& mailbox = *mailboxes_[node];
  while (auto task = mailbox.receive()) {
    try {
      if (task->kind == Task::Kind::kWrite) {
        execute_write(node, task->file, task->offset, task->write_data);
        task->promise.set_value({});
      } else {
        task->promise.set_value(
            execute_read(node, task->file, task->offset, task->length));
      }
    } catch (...) {
      task->promise.set_exception(std::current_exception());
    }
  }
}

void CcmCluster::protocol_loop(cache::NodeId node) {
  while (auto env = transport_->receive(node)) {
    Reply reply;
    {
      HandlerSpan span(span_log_, node, env->msg);
      reply = handle_message(node, *env);
    }
    if (env->seq == 0) continue;  // one-way: nobody waits for the answer
    net::Envelope out;
    out.msg = reply.msg;
    out.seq = env->seq;  // correlates with the caller blocked in call()
    out.data = std::move(reply.data);
    transport_->post(std::move(out));
  }
}

CcmCluster::Reply CcmCluster::rpc(const proto::Message& msg, BlockPtr data,
                                  std::uint64_t epoch) {
  if (msg.from != cache::kInvalidNode && shards_[msg.from]) {
    shards_[msg.from]->messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  net::Envelope env;
  env.msg = msg;
  env.epoch = epoch;
  env.data = std::move(data);
  // Runtime tracing: stamp the ambient trace identity into the wire message
  // (the remote handler adopts it) and time the blocking slice. Stamps are
  // zero — and skipped entirely — when tracing is off, so deterministic
  // runs carry a byte-stable protocol.
  std::uint64_t client_span = 0;
  std::uint64_t wall0 = 0;
  if (span_log_.enabled()) {
    auto& ctx = obs::tls_trace_context();
    if (ctx.trace == 0) ctx.trace = span_log_.next_id();  // orphan RPC
    client_span = span_log_.next_id();
    env.msg.trace = ctx.trace;
    env.msg.span = client_span;
    wall0 = obs::runtime_wall_ns();
  }
  // Bounded retry with backoff: no RPC may hang forever on a lossy link or a
  // dead peer. Exhausted retries surface as net::TransportError; each call
  // site absorbs the failure according to the protocol's idempotency rules
  // (see docs/FAULTS.md).
  try {
    net::Envelope reply = net::call_with_retry(*transport_, env,
                                               net::RetryPolicy{},
                                               &retry_stats_);
    if (client_span != 0) {
      span_log_.record({env.msg.trace, client_span,
                        obs::tls_trace_context().span, wall0,
                        obs::runtime_wall_ns(), msg.from, obs::kLaneRpcClient,
                        proto::kind_name(msg.kind)});
    }
    return {reply.msg, std::move(reply.data)};
  } catch (...) {
    if (client_span != 0) {
      span_log_.record({env.msg.trace, client_span,
                        obs::tls_trace_context().span, wall0,
                        obs::runtime_wall_ns(), msg.from, obs::kLaneRpcClient,
                        "rpc-error"});
    }
    throw;
  }
}

std::future<std::vector<std::byte>> CcmCluster::read_async(
    cache::NodeId via, cache::FileId file) {
  shard_at(via);
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  Task task;
  task.file = file;
  task.offset = 0;
  task.length = storage_->file_size(file);
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  return future;
}

std::vector<std::byte> CcmCluster::read(cache::NodeId via,
                                        cache::FileId file) {
  return read_async(via, file).get();
}

std::vector<std::byte> CcmCluster::read_range(cache::NodeId via,
                                              cache::FileId file,
                                              std::uint64_t offset,
                                              std::uint64_t length) {
  shard_at(via);
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  if (offset + length > storage_->file_size(file)) {
    throw std::out_of_range("range beyond end of file");
  }
  Task task;
  task.file = file;
  task.offset = offset;
  task.length = length;
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  return future.get();
}

void CcmCluster::write(cache::NodeId via, cache::FileId file,
                       std::uint64_t offset, std::span<const std::byte> data) {
  shard_at(via);
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  if (offset + data.size() > storage_->file_size(file)) {
    throw std::out_of_range("write beyond end of file");
  }
  if (dynamic_cast<WritableStorage*>(storage_.get()) == nullptr) {
    throw std::logic_error("CcmCluster::write requires a WritableStorage");
  }
  Task task;
  task.kind = Task::Kind::kWrite;
  task.file = file;
  task.offset = offset;
  task.length = data.size();
  task.write_data.assign(data.begin(), data.end());
  auto future = task.promise.get_future();
  if (!mailboxes_[via]->send(std::move(task))) {
    throw std::runtime_error("CcmCluster: node is shut down");
  }
  future.get();
}

std::uint32_t CcmCluster::block_bytes_of(std::uint64_t file_bytes,
                                         std::uint32_t index) const {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * config_.block_bytes;
  if (file_bytes <= start) return 0;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(file_bytes - start, config_.block_bytes));
}

// ----------------------------------------------------------- protocol ----

CcmCluster::Reply CcmCluster::handle_message(cache::NodeId self,
                                             net::Envelope& env) {
  Shard& sh = *shards_[self];
  const proto::Message& msg = env.msg;
  sh.messages_handled.fetch_add(1, std::memory_order_relaxed);

  switch (msg.kind) {
    case proto::MsgKind::kPeerFetch: {
      const std::uint64_t lw0 = obs::runtime_now_ns();
      util::UniqueLock lock(sh.mu);
      metrics_.record_lock_wait(obs::runtime_now_ns() - lw0);
      if (sh.state.is_master(msg.block)) {
        const auto it = sh.store.find(msg.block);
        assert(it != sh.store.end());
        // Only promise bytes that exist: a master still being faulted in
        // must not leave this node as a reply payload. A framed transport
        // would hold the reply until the producer finishes — and the
        // producer may itself be blocked on a fetch from the requester's
        // node, deadlocking both. A miss sends the requester back to the
        // directory; by its next attempt the fill has finished.
        if (it->second->is_ready()) {
          sh.state.touch(msg.block, tick());
          sh.state.publish();
          CCM_AUDIT_HOOK(audit_shard_locked(sh, self, "peer_fetch"));
          return {proto::Message::peer_fetch_reply(self, msg.from, msg.block,
                                                   /*hit=*/true,
                                                   config_.block_bytes),
                  it->second};
        }
      }
      // Not the master (any more), or the master's bytes are still in
      // flight: the requester re-reads the directory.
      return {proto::Message::peer_fetch_reply(self, msg.from, msg.block,
                                               /*hit=*/false, 0),
              nullptr};
    }

    case proto::MsgKind::kMasterForward: {
      util::UniqueLock lock(sh.mu);
      const proto::PendingForward pf{msg.block, msg.age, msg.count};
      std::vector<cache::Drop> drops;
      const auto outcome = sh.state.handle_forward(pf, drops);
      bool accepted = false;
      bool promoted = false;
      if (outcome == proto::ForwardOutcome::kPromoted) {
        if (dir_->claim_forwarded(msg.block, self, msg.from, env.epoch)) {
          accepted = promoted = true;
          // Promotion: this node's copy already shares the master's bytes.
          sh.store.try_emplace(msg.block, env.data);
        } else {
          sh.state.demote_to_copy(msg.block);
        }
      } else if (outcome == proto::ForwardOutcome::kAccepted) {
        if (dir_->claim_forwarded(msg.block, self, msg.from, env.epoch)) {
          accepted = true;
          sh.store[msg.block] = env.data;
        } else {
          // A rival claim or an invalidation won; undo the insert.
          sh.state.erase_entry(msg.block);
        }
      }
      std::vector<cache::BlockId> dropped;
      for (const auto& d : drops) {
        sh.store.erase(d.block);
        if (d.was_master) dropped.push_back(d.block);
      }
      drop_masters(self, dropped);
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, self, "master_forward"));
      return {proto::Message::forward_ack(self, msg.from, msg.block, accepted,
                                          promoted),
              nullptr};
    }

    case proto::MsgKind::kInvalidateBlock: {
      hint_clear(msg.block);
      util::UniqueLock lock(sh.mu);
      if (const auto drop = sh.state.handle_invalidate(
              msg.block, msg.has(proto::kFlagDropMaster))) {
        sh.store.erase(drop->block);
        if (drop->was_master) dir_->master_dropped(drop->block, self);
      }
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, self, "invalidate_block"));
      return {proto::Message::invalidate_ack(self, msg.from), nullptr};
    }

    case proto::MsgKind::kInvalidateFile: {
      hint_clear_file(msg.block.file);
      util::UniqueLock lock(sh.mu);
      std::vector<cache::BlockId> dropped;
      for (std::uint32_t b = 0; b < msg.count; ++b) {
        const cache::BlockId block{msg.block.file, b};
        if (const auto drop =
                sh.state.handle_invalidate(block, /*drop_master=*/true)) {
          sh.store.erase(drop->block);
          if (drop->was_master) dropped.push_back(drop->block);
        }
      }
      drop_masters(self, dropped);
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, self, "invalidate_file"));
      return {proto::Message::invalidate_ack(self, msg.from), nullptr};
    }

    case proto::MsgKind::kWriteOwnership: {
      util::UniqueLock lock(sh.mu);
      if (sh.state.relinquish_master(msg.block)) {
        const auto it = sh.store.find(msg.block);
        assert(it != sh.store.end());
        BlockPtr data = std::move(it->second);
        sh.store.erase(it);
        sh.state.publish();
        CCM_AUDIT_HOOK(audit_shard_locked(sh, self, "write_ownership"));
        // Same rule as kPeerFetch: never ship a buffer whose producer has
        // not finished filling it (a framed transport would sit on the
        // reply until it does). The master is relinquished either way; the
        // writer's read-modify-write base falls back to post-write-through
        // storage, which is documented idempotent.
        if (data->is_ready()) {
          return {proto::Message::write_ownership_reply(
                      self, msg.from, msg.block, /*transferred=*/true,
                      config_.block_bytes),
                  std::move(data)};
        }
        return {proto::Message::write_ownership_reply(
                    self, msg.from, msg.block, /*transferred=*/false, 0),
                nullptr};
      }
      // Already evicted / forwarded away; the writer faults in from storage.
      return {proto::Message::write_ownership_reply(self, msg.from, msg.block,
                                                    /*transferred=*/false, 0),
              nullptr};
    }

    // --- home-process services (remote directory / storage / barrier) ---

    case proto::MsgKind::kDirBatchRequest: {
      assert(home_dir_ != nullptr && self == home_);
      assert(env.data != nullptr);
      env.data->wait_ready();  // ready on arrival (decoded frame / in-proc)
      std::vector<proto::DirBatchResult> results;
      if (const auto req = proto::decode_dir_batch_request(env.data->bytes)) {
        home_dir_->apply_batch(req->node, req->items, results);
      }
      // A malformed request answers with zero results; the client sees the
      // count mismatch and falls back to the singles protocol.
      auto payload = proto::encode_dir_batch_reply(results);
      const auto bytes = static_cast<std::uint64_t>(payload.size());
      return {proto::Message::dir_batch_reply(
                  self, msg.from, static_cast<std::uint32_t>(results.size()),
                  bytes),
              net::make_ready_block(std::move(payload))};
    }

    case proto::MsgKind::kDirLookupRead:
    case proto::MsgKind::kDirLookup:
    case proto::MsgKind::kDirTryClaim:
    case proto::MsgKind::kDirBeginForward:
    case proto::MsgKind::kDirClaimForwarded:
    case proto::MsgKind::kDirForwardRejected:
    case proto::MsgKind::kDirMasterDropped:
    case proto::MsgKind::kDirWriteClaim:
    case proto::MsgKind::kDirWriteBegin:
    case proto::MsgKind::kDirWriteEnd:
    case proto::MsgKind::kDirReadCacheable:
    case proto::MsgKind::kDirInvalidateFile:
    case proto::MsgKind::kDirPurgeNode:
      return handle_directory(self, msg);

    case proto::MsgKind::kStorageRead: {
      assert(self == home_);
      auto data = std::make_shared<BlockData>();
      data->bytes.resize(msg.bytes);
      storage_->read(msg.block.file, msg.age, data->bytes);
      data->ready = true;
      return {proto::Message::storage_data(self, msg.from, msg.block.file,
                                           msg.bytes),
              std::move(data)};
    }

    case proto::MsgKind::kStorageWrite: {
      assert(self == home_);
      auto* writable = dynamic_cast<WritableStorage*>(storage_.get());
      if (writable == nullptr) {
        throw std::logic_error("kStorageWrite against a read-only storage");
      }
      assert(env.data != nullptr);
      env.data->wait_ready();
      writable->write(msg.block.file, msg.age, env.data->bytes);
      return {proto::Message::storage_ack(self, msg.from, msg.block.file),
              nullptr};
    }

    case proto::MsgKind::kBarrier: {
      assert(self == home_);
      util::ScopedLock lock(barrier_mu_);
      auto& arrived = barrier_arrivals_[msg.count];
      arrived.insert(msg.from);
      const bool granted = arrived.size() >= config_.nodes;
      return {proto::Message::barrier_reply(self, msg.from, msg.count,
                                            granted),
              nullptr};
    }

    case proto::MsgKind::kStatsPull: {
      // Telemetry scrape: ship this *process's* metrics snapshot (the
      // registry is shared by every node hosted here; the scraper dedupes
      // by the snapshot's host id).
      metrics_.incr(obs::RtCounter::kStatsScrape);
      auto wire = metrics_.snapshot().encode();
      const auto size = static_cast<std::uint64_t>(wire.size());
      return {proto::Message::stats_reply(self, msg.from, size),
              net::make_ready_block(std::move(wire))};
    }

    default:
      // Reply kinds are routed to call() waiters by the transport; anything
      // else here is a protocol error.
      assert(false && "unexpected message kind at a node protocol thread");
      return {proto::Message::invalidate_ack(self, msg.from), nullptr};
  }
}

CcmCluster::Reply CcmCluster::handle_directory(cache::NodeId self,
                                               const proto::Message& msg) {
  assert(home_dir_ != nullptr && self == home_);
  proto::DirectoryService& d = *home_dir_;
  const cache::NodeId to = msg.from;
  switch (msg.kind) {
    case proto::MsgKind::kDirLookupRead: {
      const auto lk = d.lookup_for_read(msg.from, msg.block);
      return {proto::Message::dir_reply(self, to, msg.block, lk.master,
                                        lk.epoch, /*granted=*/false,
                                        lk.misdirected),
              nullptr};
    }
    case proto::MsgKind::kDirLookup:
      return {proto::Message::dir_reply(self, to, msg.block,
                                        d.lookup(msg.block), 0, false, false),
              nullptr};
    case proto::MsgKind::kDirTryClaim:
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0,
                                        d.try_claim(msg.block, msg.from),
                                        false),
              nullptr};
    case proto::MsgKind::kDirBeginForward: {
      const auto epoch = d.begin_forward(msg.block, msg.from);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode,
                                        epoch.value_or(0), epoch.has_value(),
                                        false),
              nullptr};
    }
    case proto::MsgKind::kDirClaimForwarded: {
      const bool granted = d.claim_forwarded(
          msg.block, msg.from, static_cast<cache::NodeId>(msg.count),
          msg.age);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, granted,
                                        false),
              nullptr};
    }
    case proto::MsgKind::kDirForwardRejected:
      d.forward_rejected(msg.block, msg.from);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, true, false),
              nullptr};
    case proto::MsgKind::kDirMasterDropped:
      d.master_dropped(msg.block, msg.from);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, true, false),
              nullptr};
    case proto::MsgKind::kDirWriteClaim:
      return {proto::Message::dir_reply(self, to, msg.block,
                                        d.write_claim(msg.block, msg.from), 0,
                                        true, false),
              nullptr};
    case proto::MsgKind::kDirWriteBegin:
      d.write_begin(msg.block.file);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, true, false),
              nullptr};
    case proto::MsgKind::kDirWriteEnd:
      d.write_end(msg.block.file);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, true, false),
              nullptr};
    case proto::MsgKind::kDirReadCacheable:
      return {proto::Message::dir_reply(
                  self, to, msg.block, cache::kInvalidNode, 0,
                  d.read_cacheable(msg.block.file, msg.age), false),
              nullptr};
    case proto::MsgKind::kDirInvalidateFile:
      d.invalidate_file(msg.block.file);
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, true, false),
              nullptr};
    case proto::MsgKind::kDirPurgeNode: {
      // `count` names the dead node; the purged-master count rides back in
      // the reply's epoch slot. Idempotent: a re-ask purges nothing more.
      const std::size_t purged =
          d.purge_node(static_cast<cache::NodeId>(msg.count));
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, purged, true,
                                        false),
              nullptr};
    }
    default:
      assert(false && "not a directory request");
      return {proto::Message::dir_reply(self, to, msg.block,
                                        cache::kInvalidNode, 0, false, false),
              nullptr};
  }
}

// --------------------------------------------------------- replacement ----

void CcmCluster::drop_masters(cache::NodeId node,
                              const std::vector<cache::BlockId>& dropped) {
  if (dropped.empty()) return;
  if (config_.batch_directory && dropped.size() > 1) {
    std::vector<proto::DirBatchItem> items;
    items.reserve(dropped.size());
    for (const cache::BlockId& b : dropped) {
      items.push_back({proto::DirBatchOp::kMasterDropped, b});
    }
    dir_->batch(node, items);
    return;
  }
  for (const cache::BlockId& b : dropped) dir_->master_dropped(b, node);
}

void CcmCluster::make_room_locked(util::UniqueLock<util::CountingMutex>& lock,
                                  cache::NodeId node, std::uint32_t slots) {
  Shard& sh = *shards_[node];
  assert(lock.owns_lock());
  while (true) {
    std::vector<cache::Drop> drops;
    auto pf = sh.state.make_room(slots, view_, drops);
    std::vector<cache::BlockId> dropped;
    for (const auto& d : drops) {
      sh.store.erase(d.block);
      if (d.was_master) dropped.push_back(d.block);
    }
    drop_masters(node, dropped);
    sh.state.publish();
    if (!pf) return;  // enough room (or the cache drained)

    // A master earned its second chance: ship it to a peer. The entry is
    // already erased locally; unregister it in the directory first so no
    // reader chases a block that is in flight.
    const cache::NodeId to =
        proto::pick_forward_target(node, config_.nodes, view_);
    if (to == cache::kInvalidNode) {
      // Single-node cluster: nowhere to forward; the master is lost.
      dir_->master_dropped(pf->block, node);
      ++sh.state.stats().master_drops;
      sh.store.erase(pf->block);
      continue;
    }
    const auto it = sh.store.find(pf->block);
    assert(it != sh.store.end());
    BlockPtr data = std::move(it->second);
    sh.store.erase(it);
    const auto epoch = dir_->begin_forward(pf->block, node);
    if (!epoch) {
      // The directory refused: either a write claim overtook this eviction
      // (the registered master lives at the writer now) or a write to the
      // file is mid-span and these bytes may be superseded. Shipping them
      // would resurrect stale data, so the master is dropped instead. The
      // conditional master_dropped unregisters only if the directory still
      // names this node (the in-flight-write case); when a rival owns the
      // entry it is a no-op.
      dir_->master_dropped(pf->block, node);
      ++sh.state.stats().master_drops;
      continue;
    }
    lock.unlock();
    bool accepted = false;
    try {
      const Reply ack =
          rpc(proto::Message::master_forward(node, to, pf->block, pf->age,
                                             pf->slots, config_.block_bytes),
              std::move(data), *epoch);
      accepted = ack.msg.has(proto::kFlagAccepted);
    } catch (const net::TransportError&) {
      // The receiver is dead or the link ate every retry. Either the forward
      // never landed (the block is simply lost — safe, it has a disk copy) or
      // it landed and only the ack was lost, in which case forward_rejected
      // below merely skews stats: the receiver's registered claim stays.
    }
    lock.lock();
    if (accepted) {
      ++sh.state.stats().forwards_accepted;
      metrics_.incr(obs::RtCounter::kMasterForward);
    } else {
      dir_->forward_rejected(pf->block, node);
      ++sh.state.stats().master_drops;
    }
  }
}

// --------------------------------------------------------------- reads ----

CcmCluster::BlockPtr CcmCluster::acquire_block(
    cache::NodeId node, const cache::BlockId& block,
    std::vector<std::pair<cache::BlockId, BlockPtr>>& to_read) {
  Shard& sh = *shards_[node];
  for (int attempt = 0; attempt < kAcquireAttempts; ++attempt) {
    if (attempt > 0) std::this_thread::yield();

    // Hot path: a block resident at this node costs one shard lock — no
    // directory access, no cross-node traffic.
    {
      const std::uint64_t lw0 = obs::runtime_now_ns();
      util::UniqueLock lock(sh.mu);
      metrics_.record_lock_wait(obs::runtime_now_ns() - lw0);
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        sh.state.touch(block, tick());
        ++sh.state.stats().local_hits;
        metrics_.incr(obs::RtCounter::kLocalHit);
        sh.local_reads.fetch_add(1, std::memory_order_relaxed);
        sh.state.publish();
        CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "local_hit"));
        return it->second;
      }
    }

    const auto lk = dir_->lookup_for_read(node, block);
    if (lk.master == node) {
      // Directory says the master is here but the store check above missed:
      // an in-flight transition (our own forward landing back, a write
      // ownership migration) — settle and retry.
      continue;
    }

    if (lk.master != cache::kInvalidNode) {
      // Remote hit: fetch a copy from the master holder. In hinted mode a
      // stale hint was already counted (and the request re-chained) by
      // lookup_for_read, exactly as ClusterCache charges it.
      Reply reply;
      try {
        reply = rpc(proto::Message::peer_fetch(node, lk.master, block,
                                               lk.misdirected));
      } catch (const net::TransportError&) {
        // Master unreachable (crashed, or the link ate every retry): re-read
        // the directory — a crash purge re-homes the block; otherwise the
        // bounded acquire loop falls back to an uncached storage read.
        continue;
      }
      if (!reply.msg.has(proto::kFlagHit) || !reply.data) {
        continue;  // the master moved while the fetch was in flight
      }
      const std::uint64_t lw1 = obs::runtime_now_ns();
      util::UniqueLock lock(sh.mu);
      metrics_.record_lock_wait(obs::runtime_now_ns() - lw1);
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        // A sibling worker cached the block while we fetched.
        sh.state.touch(block, tick());
        ++sh.state.stats().remote_hits;
        metrics_.incr(obs::RtCounter::kPeerHit);
        sh.state.publish();
        return it->second;
      }
      ++sh.state.stats().remote_hits;
      metrics_.incr(obs::RtCounter::kPeerHit);
      make_room_locked(lock, node, 1);
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        sh.state.touch(block, tick());
        sh.state.publish();
        return it->second;
      }
      // Don't cache a copy whose master moved — or whose file has a write in
      // flight or a bumped epoch — while the fetch was in flight: the
      // writer's invalidation sweep may already have visited this node and
      // would never drop a copy planted after it. In-flight writes matter
      // because a whole lookup→fetch→insert can land inside the write span
      // (after its claim, before its buffer swap) with no visible directory
      // change. The bytes themselves are still valid to *return*: a read
      // racing a write may see the superseded content.
      if (dir_->lookup(block) != lk.master ||
          !dir_->read_cacheable(block.file, lk.epoch)) {
        sh.state.publish();
        return reply.data;
      }
      sh.state.insert_copy(block, tick());
      sh.store[block] = reply.data;
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "remote_hit"));
      return reply.data;
    }

    // Miss everywhere: claim mastership and fault the block in from storage.
    {
      const std::uint64_t lw2 = obs::runtime_now_ns();
      util::UniqueLock lock(sh.mu);
      metrics_.record_lock_wait(obs::runtime_now_ns() - lw2);
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        sh.state.touch(block, tick());
        ++sh.state.stats().local_hits;
        metrics_.incr(obs::RtCounter::kLocalHit);
        sh.local_reads.fetch_add(1, std::memory_order_relaxed);
        sh.state.publish();
        return it->second;
      }
      make_room_locked(lock, node, 1);
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        sh.state.touch(block, tick());
        ++sh.state.stats().local_hits;
        metrics_.incr(obs::RtCounter::kLocalHit);
        sh.state.publish();
        return it->second;
      }
      if (dir_->try_claim(block, node)) {
        ++sh.state.stats().disk_reads;
        metrics_.incr(obs::RtCounter::kMasterClaim);
        metrics_.incr(obs::RtCounter::kDiskRead);
        sh.state.insert_master(block, tick());
        auto data = std::make_shared<BlockData>();
        sh.store.emplace(block, data);
        to_read.emplace_back(block, data);
        sh.state.publish();
        CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "disk_read"));
        return data;
      }
      sh.state.publish();
    }
    // Claim lost: somebody else became the master — retry as a remote hit.
  }

  // Liveness fallback after pathological churn: serve the read uncached.
  metrics_.incr(obs::RtCounter::kUncachedFallback);
  metrics_.incr(obs::RtCounter::kDiskRead);
  {
    util::ScopedLock lock(sh.mu);
    ++sh.state.stats().disk_reads;
  }
  auto data = std::make_shared<BlockData>();
  to_read.emplace_back(block, data);
  return data;
}

// ---------------------------------------------------------- hint slots ----

namespace {
/// Hint values pack the epoch into 48 bits (see HintSlot); comparisons
/// against an authoritative epoch mask both sides.
constexpr std::uint64_t kHintEpochMask = (1ull << 48) - 1;
}  // namespace

std::optional<CcmCluster::Hint> CcmCluster::hint_probe(
    const cache::BlockId& b) const {
  const HintSlot& slot = hints_[hint_index(b)];
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(b.file) << 32) | b.index) + 1;
  if (slot.key.load(std::memory_order_relaxed) != key) return std::nullopt;
  const std::uint64_t val = slot.val.load(std::memory_order_relaxed);
  // key/val are independent atomics: this pair may be torn against a
  // concurrent publish. A wrong candidate is safe — the fetch misses or the
  // batched validation refuses the insert, and the block re-chains through
  // the authoritative protocol.
  return Hint{static_cast<cache::NodeId>(val >> 48), val & kHintEpochMask};
}

void CcmCluster::hint_publish(const cache::BlockId& b, cache::NodeId master,
                              std::uint64_t epoch) {
  HintSlot& slot = hints_[hint_index(b)];
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(b.file) << 32) | b.index) + 1;
  slot.key.store(key, std::memory_order_relaxed);
  slot.val.store((static_cast<std::uint64_t>(master) << 48) |
                     (epoch & kHintEpochMask),
                 std::memory_order_relaxed);
}

void CcmCluster::hint_clear(const cache::BlockId& b) {
  HintSlot& slot = hints_[hint_index(b)];
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(b.file) << 32) | b.index) + 1;
  // Conditional: don't wipe a colliding block's hint.
  std::uint64_t cur = slot.key.load(std::memory_order_relaxed);
  if (cur == key) slot.key.compare_exchange_strong(cur, 0,
                                                   std::memory_order_relaxed);
}

void CcmCluster::hint_clear_file(cache::FileId file) {
  // An invalidation sweep is rare and already cluster-wide; a linear pass
  // over the fixed slot array is cheap next to it.
  for (HintSlot& slot : hints_) {
    std::uint64_t cur = slot.key.load(std::memory_order_relaxed);
    if (cur != 0 && static_cast<cache::FileId>((cur - 1) >> 32) == file) {
      slot.key.compare_exchange_strong(cur, 0, std::memory_order_relaxed);
    }
  }
}

// --------------------------------------------------------- batched read ----

void CcmCluster::acquire_run(
    cache::NodeId node, cache::FileId file, std::uint32_t first,
    std::uint32_t last, std::vector<BlockPtr>& parts,
    std::vector<std::pair<cache::BlockId, BlockPtr>>& to_read) {
  Shard& sh = *shards_[node];
  const std::size_t base = parts.size();
  parts.resize(base + (last - first + 1));  // filled per block, in order

  struct Pending {
    std::uint32_t index;  // block index within `file`
    cache::NodeId master = cache::kInvalidNode;
    std::uint64_t epoch = 0;
    bool misdirected = false;
    bool from_hint = false;
    BlockPtr fetched;  // peer-fetch payload awaiting validation
  };
  const auto slot_of = [&](const Pending& p) -> BlockPtr& {
    return parts[base + (p.index - first)];
  };

  // Pass 1 — local hits: the whole run's resident blocks cost ONE shard-lock
  // acquisition (the unbatched path pays one per block).
  std::vector<Pending> pending;
  {
    const std::uint64_t lw0 = obs::runtime_now_ns();
    util::UniqueLock lock(sh.mu);
    metrics_.record_lock_wait(obs::runtime_now_ns() - lw0);
    bool any = false;
    for (std::uint32_t b = first; b <= last; ++b) {
      const cache::BlockId block{file, b};
      if (const auto it = sh.store.find(block); it != sh.store.end()) {
        sh.state.touch(block, tick());
        ++sh.state.stats().local_hits;
        metrics_.incr(obs::RtCounter::kLocalHit);
        sh.local_reads.fetch_add(1, std::memory_order_relaxed);
        parts[base + (b - first)] = it->second;
        any = true;
      } else {
        Pending p;
        p.index = b;
        pending.push_back(p);
      }
    }
    if (any) {
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "local_hit"));
    }
  }
  if (pending.empty()) return;

  // Pass 2 — resolve masters: hint slots answer for free (kPerfect mode);
  // ONE batched lookup covers the rest. Authoritative answers refresh the
  // hint slots.
  const bool use_hints =
      config_.directory == cache::DirectoryMode::kPerfect;
  std::vector<proto::DirBatchItem> lookups;
  std::vector<std::size_t> lookup_owner;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    const cache::BlockId block{file, p.index};
    if (use_hints) {
      if (const auto h = hint_probe(block);
          h && h->master != node && h->master < config_.nodes) {
        p.master = h->master;
        p.epoch = h->epoch;
        p.from_hint = true;
        hint_hits_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    lookups.push_back({proto::DirBatchOp::kLookupRead, block});
    lookup_owner.push_back(i);
  }
  if (!lookups.empty()) {
    const auto results = dir_->batch(node, lookups);
    assert(results.size() == lookups.size());
    for (std::size_t k = 0; k < results.size(); ++k) {
      Pending& p = pending[lookup_owner[k]];
      p.master = results[k].node;
      p.epoch = results[k].epoch;
      p.misdirected = results[k].has(proto::kFlagMisdirected);
      if (use_hints && p.master != cache::kInvalidNode && p.master != node) {
        hint_publish(cache::BlockId{file, p.index}, p.master, p.epoch);
      }
    }
  }

  std::vector<std::size_t> to_claim, to_fetch, fallback;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].master == cache::kInvalidNode) {
      to_claim.push_back(i);
    } else if (pending[i].master == node) {
      // Directory names us but pass 1 missed: an in-flight transition (our
      // own forward landing back, a write migration) — let the per-block
      // retry loop settle it.
      fallback.push_back(i);
    } else {
      to_fetch.push_back(i);
    }
  }

  // Pass 3 — misses: ONE batched try_claim masters the uncached blocks.
  // The claim is issued *under the shard lock* with the inserts following in
  // the same hold, exactly the atomicity the unbatched path gets from
  // claiming inside its locked scope: a rival writer's ownership migration
  // (kWriteOwnership needs this lock) cannot interleave between a granted
  // claim and its insert. Chunked to the cache's capacity so make_room can
  // always clear space for a chunk before its inserts.
  if (!to_claim.empty()) {
    const std::uint64_t lw1 = obs::runtime_now_ns();
    util::UniqueLock lock(sh.mu);
    metrics_.record_lock_wait(obs::runtime_now_ns() - lw1);
    const std::size_t chunk_cap =
        std::max<std::size_t>(1, sh.state.cache().capacity_blocks());
    for (std::size_t at = 0; at < to_claim.size(); at += chunk_cap) {
      const std::size_t end = std::min(to_claim.size(), at + chunk_cap);
      make_room_locked(lock, node,
                       static_cast<std::uint32_t>(end - at));
      // make_room may bounce the lock to ship a forward: re-check the store
      // before claiming (a sibling worker may have landed these blocks).
      std::vector<std::size_t> want;
      for (std::size_t j = at; j < end; ++j) {
        Pending& p = pending[to_claim[j]];
        const cache::BlockId block{file, p.index};
        if (const auto it = sh.store.find(block); it != sh.store.end()) {
          sh.state.touch(block, tick());
          ++sh.state.stats().local_hits;
          metrics_.incr(obs::RtCounter::kLocalHit);
          sh.local_reads.fetch_add(1, std::memory_order_relaxed);
          slot_of(p) = it->second;
        } else {
          want.push_back(to_claim[j]);
        }
      }
      if (want.empty()) continue;
      std::vector<proto::DirBatchItem> claims;
      claims.reserve(want.size());
      for (const std::size_t i : want) {
        claims.push_back(
            {proto::DirBatchOp::kTryClaim, {file, pending[i].index}});
      }
      const auto granted = dir_->batch(node, claims);
      assert(granted.size() == claims.size());
      for (std::size_t k = 0; k < want.size(); ++k) {
        Pending& p = pending[want[k]];
        if (!granted[k].has(proto::kFlagGranted)) {
          fallback.push_back(want[k]);  // lost the race: retry as a fetch
          continue;
        }
        const cache::BlockId block{file, p.index};
        ++sh.state.stats().disk_reads;
        metrics_.incr(obs::RtCounter::kMasterClaim);
        metrics_.incr(obs::RtCounter::kDiskRead);
        sh.state.insert_master(block, tick());
        auto data = std::make_shared<BlockData>();
        sh.store.emplace(block, data);
        to_read.emplace_back(block, data);
        slot_of(p) = data;
      }
    }
    sh.state.publish();
    CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "disk_read"));
  }

  // Pass 4 — remote hits: per-block peer fetches (bulk payloads keep their
  // own RPCs — that is the zero-copy path), then ONE batched validation
  // under the shard lock decides which copies may be cached, the same
  // lookup+read_cacheable predicate the unbatched path re-checks.
  std::vector<std::size_t> fetched;
  for (const std::size_t i : to_fetch) {
    Pending& p = pending[i];
    const cache::BlockId block{file, p.index};
    Reply reply;
    try {
      reply = rpc(proto::Message::peer_fetch(node, p.master, block,
                                             p.misdirected));
    } catch (const net::TransportError&) {
      if (p.from_hint) {
        hint_stale_.fetch_add(1, std::memory_order_relaxed);
        hint_clear(block);
      }
      fallback.push_back(i);  // re-read the directory (crash purge re-homes)
      continue;
    }
    if (!reply.msg.has(proto::kFlagHit) || !reply.data) {
      if (p.from_hint) {
        hint_stale_.fetch_add(1, std::memory_order_relaxed);
        hint_clear(block);
      }
      fallback.push_back(i);  // the master moved while the fetch flew
      continue;
    }
    p.fetched = std::move(reply.data);
    fetched.push_back(i);
  }
  if (!fetched.empty()) {
    const std::uint64_t lw2 = obs::runtime_now_ns();
    util::UniqueLock lock(sh.mu);
    metrics_.record_lock_wait(obs::runtime_now_ns() - lw2);
    const std::size_t chunk_cap =
        std::max<std::size_t>(1, sh.state.cache().capacity_blocks());
    for (std::size_t at = 0; at < fetched.size(); at += chunk_cap) {
      const std::size_t end = std::min(fetched.size(), at + chunk_cap);
      std::vector<std::size_t> insertable;
      for (std::size_t j = at; j < end; ++j) {
        Pending& p = pending[fetched[j]];
        const cache::BlockId block{file, p.index};
        if (const auto it = sh.store.find(block); it != sh.store.end()) {
          // A sibling worker cached the block while we fetched.
          sh.state.touch(block, tick());
          ++sh.state.stats().remote_hits;
          metrics_.incr(obs::RtCounter::kPeerHit);
          slot_of(p) = it->second;
        } else {
          insertable.push_back(fetched[j]);
        }
      }
      if (insertable.empty()) continue;
      make_room_locked(lock, node,
                       static_cast<std::uint32_t>(insertable.size()));
      std::vector<proto::DirBatchItem> checks;
      std::vector<std::size_t> checked;
      for (const std::size_t i : insertable) {
        Pending& p = pending[i];
        const cache::BlockId block{file, p.index};
        if (const auto it = sh.store.find(block); it != sh.store.end()) {
          sh.state.touch(block, tick());
          ++sh.state.stats().remote_hits;
          metrics_.incr(obs::RtCounter::kPeerHit);
          slot_of(p) = it->second;
          continue;
        }
        ++sh.state.stats().remote_hits;
        metrics_.incr(obs::RtCounter::kPeerHit);
        checks.push_back({proto::DirBatchOp::kValidate, block});
        checked.push_back(i);
      }
      if (checks.empty()) continue;
      // Issued with the lock held, like the unbatched re-validation: the
      // check and the insert must be atomic against an invalidation sweep,
      // which needs this shard lock to visit us.
      const auto verdicts = dir_->batch(node, checks);
      assert(verdicts.size() == checks.size());
      for (std::size_t k = 0; k < checked.size(); ++k) {
        Pending& p = pending[checked[k]];
        const cache::BlockId block{file, p.index};
        const proto::DirBatchResult& v = verdicts[k];
        // Cacheable iff the master is where we fetched from, the file epoch
        // is unchanged, and no write is mid-span — the hint path compares
        // its 48-bit stored epoch.
        const bool epoch_ok =
            p.from_hint ? ((v.epoch & kHintEpochMask) == p.epoch)
                        : (v.epoch == p.epoch);
        if (v.node == p.master && epoch_ok &&
            v.has(proto::kFlagGranted)) {
          sh.state.insert_copy(block, tick());
          sh.store[block] = p.fetched;
        } else if (p.from_hint) {
          // Stale hint: the bytes are still valid to *serve* (a read racing
          // a write may see superseded content), just not to cache.
          hint_stale_.fetch_add(1, std::memory_order_relaxed);
          if (use_hints && v.node != cache::kInvalidNode && v.node != node) {
            hint_publish(block, v.node, v.epoch);  // refresh from authority
          } else {
            hint_clear(block);
          }
        }
        slot_of(p) = p.fetched;
      }
    }
    sh.state.publish();
    CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "remote_hit"));
  }

  // Pass 5 — stragglers: whatever raced a transition goes through the
  // per-block protocol, retries, liveness fallback and all.
  for (const std::size_t i : fallback) {
    Pending& p = pending[i];
    slot_of(p) = acquire_block(node, {file, p.index}, to_read);
  }
}

std::vector<std::byte> CcmCluster::execute_read(cache::NodeId node,
                                                cache::FileId file,
                                                std::uint64_t offset,
                                                std::uint64_t length) {
  OpSpan op_span(span_log_, node, "read");
  metrics_.incr(obs::RtCounter::kReadOp);
  const std::uint64_t op0 = obs::runtime_now_ns();
  if (length == 0) return {};
  const std::uint64_t file_bytes = storage_->file_size(file);
  const std::uint32_t first_block =
      static_cast<std::uint32_t>(offset / config_.block_bytes);
  const std::uint32_t last_block = static_cast<std::uint32_t>(
      (offset + length - 1) / config_.block_bytes);

  std::vector<BlockPtr> parts;
  parts.reserve(last_block - first_block + 1);
  std::vector<std::pair<cache::BlockId, BlockPtr>> to_read;
  if (config_.batch_directory) {
    acquire_run(node, file, first_block, last_block, parts, to_read);
  } else {
    for (std::uint32_t b = first_block; b <= last_block; ++b) {
      parts.push_back(acquire_block(node, cache::BlockId{file, b}, to_read));
    }
  }

  // Fault in missing blocks from Storage on this worker thread, outside all
  // locks. Concurrent readers of the same block wait on its ready cv.
  for (auto& [block, data] : to_read) {
    const std::uint32_t bytes = block_bytes_of(file_bytes, block.index);
    data->bytes.resize(bytes);
    if (bytes > 0) {
      storage_->read(file,
                     static_cast<std::uint64_t>(block.index) *
                         config_.block_bytes,
                     data->bytes);
    }
    {
      std::scoped_lock block_lock(data->m);
      data->ready = true;
    }
    data->cv.notify_all();
  }

  // Assemble the requested range, waiting for any blocks still in flight.
  std::vector<std::byte> out(length);
  std::uint64_t out_pos = 0;
  for (std::uint32_t b = first_block; b <= last_block; ++b) {
    BlockPtr& part = parts[b - first_block];
    part->wait_ready();
    const std::uint64_t block_start =
        static_cast<std::uint64_t>(b) * config_.block_bytes;
    const std::uint64_t copy_from = std::max(offset, block_start);
    const std::uint64_t copy_to =
        std::min(offset + length, block_start + part->bytes.size());
    if (copy_to <= copy_from) continue;
    std::memcpy(out.data() + out_pos,
                part->bytes.data() + (copy_from - block_start),
                copy_to - copy_from);
    out_pos += copy_to - copy_from;
  }
  assert(out_pos == length);
  metrics_.record_op_read(obs::runtime_now_ns() - op0);
  return out;
}

// -------------------------------------------------------------- writes ----

void CcmCluster::execute_write(cache::NodeId node, cache::FileId file,
                               std::uint64_t offset,
                               std::span<const std::byte> data) {
  OpSpan op_span(span_log_, node, "write");
  metrics_.incr(obs::RtCounter::kWriteOp);
  const std::uint64_t op0 = obs::runtime_now_ns();
  if (data.empty()) return;
  auto* writable = dynamic_cast<WritableStorage*>(storage_.get());
  assert(writable != nullptr);  // checked at the API boundary

  const std::uint64_t file_bytes = storage_->file_size(file);
  const std::uint32_t first_block =
      static_cast<std::uint32_t>(offset / config_.block_bytes);
  const std::uint32_t last_block = static_cast<std::uint32_t>(
      (offset + data.size() - 1) / config_.block_bytes);

  Shard& sh = *shards_[node];

  // Open the write span: readers refuse to cache copies of this file until
  // write_end, closing the window where a fetched pre-write copy could be
  // inserted after the invalidation sweep below has already passed its node.
  dir_->write_begin(file);

  // Write-through to backing storage *before* installing any cached master.
  // Ordering invariant: storage must hold the new bytes before a cached
  // master of them can exist — and hence be evicted/dropped — or a
  // subsequent miss would fault the superseded bytes back in as a fresh,
  // persistent master. Read-modify-write bases below stay correct either
  // way: re-applying the written slice over post-write storage bytes is
  // idempotent.
  writable->write(file, offset, data);

  // One entry per affected block: the superseded bytes (read-modify-write
  // base; null if the block was uncached everywhere) and the fresh
  // copy-on-write buffer now installed.
  struct PendingWrite {
    cache::BlockId block;
    BlockPtr old_data;  // may be null or not yet ready
    BlockPtr new_data;
  };
  std::vector<PendingWrite> pending;

  for (std::uint32_t b = first_block; b <= last_block; ++b) {
    const cache::BlockId block{file, b};

    // 1. Claim directory ownership first: any reader that fetches the old
    //    master from here on re-checks the directory before caching a copy,
    //    so no stale copy can outlive the invalidation pass below. Our own
    //    hint slot for the block is now wrong (the master is us) — drop it;
    //    peers drop theirs in the kInvalidateBlock sweep below.
    const cache::NodeId previous = dir_->write_claim(block, node);
    hint_clear(block);

    // 2. Invalidate every peer's (non-master) copy.
    for (std::size_t p = 0; p < config_.nodes; ++p) {
      const auto peer = static_cast<cache::NodeId>(p);
      if (peer == node) continue;
      try {
        rpc(proto::Message::invalidate_block(node, peer, block,
                                             /*drop_master=*/false));
      } catch (const net::TransportError&) {
        // An unreachable peer under the runtime's fault model is crashed —
        // its cache (and any stale copy) died with it, and its rejoin starts
        // cold. Transient losses were already healed by the rpc retries.
      }
    }

    // 3. Migrate ownership (with bytes) from the previous master holder.
    BlockPtr migrated;
    bool migrated_in = false;
    if (previous != cache::kInvalidNode && previous != node) {
      try {
        const Reply reply =
            rpc(proto::Message::write_ownership(node, previous, block));
        if (reply.msg.has(proto::kFlagTransferred)) {
          migrated = reply.data;
          migrated_in = true;
        }
      } catch (const net::TransportError&) {
        // Previous holder unreachable: proceed without the migrated bytes —
        // the read-modify-write base falls back to post-write-through
        // storage, which already holds the new bytes (idempotent re-apply).
      }
    }

    // 4. Install the block as a local master and swap in a fresh buffer.
    {
      const std::uint64_t lw0 = obs::runtime_now_ns();
      util::UniqueLock lock(sh.mu);
      metrics_.record_lock_wait(obs::runtime_now_ns() - lw0);
      ++sh.state.stats().writes;
      if (migrated_in) ++sh.state.stats().ownership_migrations;
      bool install = dir_->lookup(block) == node;
      if (install && !sh.state.contains(block)) {
        make_room_locked(lock, node, 1);
        // make_room may have released the lock to ship a forward; a rival
        // writer could have overtaken our claim meanwhile.
        install = dir_->lookup(block) == node;
      }
      if (install) {
        if (sh.state.contains(block)) {
          if (!sh.state.is_master(block)) sh.state.promote_to_master(block);
          sh.state.touch(block, tick());
        } else {
          sh.state.insert_master(block, tick());
        }
        auto& slot = sh.store[block];
        PendingWrite pw{block, nullptr, std::make_shared<BlockData>()};
        pw.old_data = slot ? std::move(slot) : std::move(migrated);
        slot = pw.new_data;
        pending.push_back(std::move(pw));
      }
      sh.state.publish();
      CCM_AUDIT_HOOK(audit_shard_locked(sh, node, "execute_write"));
    }
  }

  // Assemble block contents outside all locks.
  for (auto& pw : pending) {
    const std::uint32_t bytes = block_bytes_of(file_bytes, pw.block.index);
    const std::uint64_t block_start =
        static_cast<std::uint64_t>(pw.block.index) * config_.block_bytes;
    auto& out = pw.new_data->bytes;
    out.resize(bytes);

    const bool covers_whole_block =
        offset <= block_start && offset + data.size() >= block_start + bytes;
    if (!covers_whole_block) {
      // Read-modify-write base: superseded cached bytes if any, else storage.
      if (pw.old_data) {
        pw.old_data->wait_ready();
        assert(pw.old_data->bytes.size() == bytes);
        out = pw.old_data->bytes;
      } else if (bytes > 0) {
        storage_->read(file, block_start, out);
      }
    }
    // Apply the written slice.
    const std::uint64_t copy_from = std::max(offset, block_start);
    const std::uint64_t copy_to =
        std::min(offset + data.size(), block_start + bytes);
    if (copy_to > copy_from) {
      std::memcpy(out.data() + (copy_from - block_start),
                  data.data() + (copy_from - offset), copy_to - copy_from);
    }
    {
      std::scoped_lock block_lock(pw.new_data->m);
      pw.new_data->ready = true;
    }
    pw.new_data->cv.notify_all();
  }

  dir_->write_end(file);
  metrics_.record_op_write(obs::runtime_now_ns() - op0);
}

// -------------------------------------------------------- invalidation ----

void CcmCluster::invalidate(cache::FileId file) {
  if (file >= storage_->file_count()) throw std::out_of_range("bad file id");
  const std::uint32_t nblocks =
      cache::blocks_for(storage_->file_size(file), config_.block_bytes);
  // Epoch fence first: any master forward of this file still in flight is
  // rejected by claim_forwarded, so it cannot resurrect a stale block after
  // the per-node sweep below. The sweep is issued in this hosted node's
  // name (a transport needs a routable reply address).
  const cache::NodeId self = local_nodes_.front();
  metrics_.incr(obs::RtCounter::kInvalidation);
  dir_->invalidate_file(file);
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    try {
      rpc(proto::Message::invalidate_file(self, static_cast<cache::NodeId>(n),
                                          file, nblocks));
    } catch (const net::TransportError&) {
      // A crashed node holds no cached blocks; the epoch fence above already
      // blocks any of its in-flight forwards from resurrecting the file.
    }
  }
}

// ------------------------------------------------------------- barrier ----

void CcmCluster::barrier(cache::NodeId via, std::uint32_t phase) {
  shard_at(via);
  while (true) {
    try {
      const Reply r = rpc(proto::Message::barrier(via, home_, phase));
      if (r.msg.has(proto::kFlagGranted)) return;
    } catch (const net::TransportError& e) {
      // Re-announcing a barrier arrival is idempotent (a std::set insert at
      // the home), so transient losses are simply re-polled; only a shutdown
      // ends the wait.
      if (!e.transient()) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ----------------------------------------------------- crash / recovery ----

std::size_t CcmCluster::crash_node(cache::NodeId node) {
  Shard& sh = shard_at(node);
  {
    util::ScopedLock lock(sh.mu);
    sh.state.reset();
    sh.store.clear();
  }
  // Shard lock released before the directory fence: purge_node may be an RPC
  // to the home process, and workers never hold a shard lock across one.
  // Ordering is safe either way — a peer fetch that races the wipe sees
  // "not the master" and re-reads the directory.
  return dir_->purge_node(node);
}

void CcmCluster::rejoin_node(cache::NodeId node) {
  Shard& sh = shard_at(node);
  util::ScopedLock lock(sh.mu);
  sh.state.reset();
  sh.store.clear();
}

void CcmCluster::reconstruct_directory() {
  if (home_dir_ == nullptr || !all_local_) {
    throw std::logic_error(
        "reconstruct_directory: requires the directory and every shard in "
        "this process");
  }
  std::vector<std::pair<cache::BlockId, cache::NodeId>> masters;
  for (const cache::NodeId n : local_nodes_) {
    const Shard& sh = *shards_[n];
    util::ScopedLock lock(sh.mu);
    for (const auto& e : sh.state.cache().masters()) {
      masters.emplace_back(e.block, n);
    }
  }
  home_dir_->rebuild_masters(masters);
}

// --------------------------------------------------------------- stats ----

CcmStats CcmCluster::stats() const {
  CcmStats s;
  s.shards.resize(config_.nodes);
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    if (!shards_[n]) continue;  // hosted by another process
    const Shard& sh = *shards_[n];
    util::ScopedLock lock(sh.mu);
    const cache::CacheStats& slice = sh.state.stats();
    s.local_hits += slice.local_hits;
    s.remote_hits += slice.remote_hits;
    s.disk_reads += slice.disk_reads;
    s.forwards_attempted += slice.forwards_attempted;
    s.forwards_accepted += slice.forwards_accepted;
    s.master_drops += slice.master_drops;
    s.copy_drops += slice.copy_drops;
    s.invalidations += slice.invalidations;
    s.writes += slice.writes;
    s.ownership_migrations += slice.ownership_migrations;
    auto& out = s.shards[n];
    out.lock_acquired = sh.mu.acquired();
    out.lock_contended = sh.mu.contended();
    // Each lock counter is individually monotone non-decreasing between
    // reset_counts() calls (relaxed atomics tolerate transient cross-counter
    // skew, never a decrease); serialized here by sh.mu.
    assert(out.lock_acquired >= sh.lock_acquired_floor);
    assert(out.lock_contended >= sh.lock_contended_floor);
    sh.lock_acquired_floor = out.lock_acquired;
    sh.lock_contended_floor = out.lock_contended;
    out.local_reads = sh.local_reads.load(std::memory_order_relaxed);
    out.messages_sent = sh.messages_sent.load(std::memory_order_relaxed);
    out.messages_handled = sh.messages_handled.load(std::memory_order_relaxed);
  }
  s.directory = dir_->ops();
  s.hint_misdirects = s.directory.hint_misdirects;
  s.dir_client = dir_->calls();
  s.hint_hits = hint_hits_.load(std::memory_order_relaxed);
  s.hint_stale = hint_stale_.load(std::memory_order_relaxed);
  s.transport = transport_->stats();
  // Retries live at the rpc() layer, above any transport decorator.
  s.transport.rpc_retries +=
      retry_stats_.retries.load(std::memory_order_relaxed);
  s.transport.rpc_failures +=
      retry_stats_.failures.load(std::memory_order_relaxed);
  return s;
}

void CcmCluster::reset_stats() {
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    if (!shards_[n]) continue;
    Shard& sh = *shards_[n];
    util::ScopedLock lock(sh.mu);
    sh.state.stats() = cache::CacheStats{};
    sh.mu.reset_counts();
    sh.lock_acquired_floor = 0;
    sh.lock_contended_floor = 0;
    sh.local_reads.store(0, std::memory_order_relaxed);
    sh.messages_sent.store(0, std::memory_order_relaxed);
    sh.messages_handled.store(0, std::memory_order_relaxed);
  }
  retry_stats_.retries.store(0, std::memory_order_relaxed);
  retry_stats_.failures.store(0, std::memory_order_relaxed);
  dir_->reset_ops();
  dir_->reset_calls();
  hint_hits_.store(0, std::memory_order_relaxed);
  hint_stale_.store(0, std::memory_order_relaxed);
  metrics_.reset();
}

void CcmCluster::enable_runtime_trace() {
  span_log_.enable(local_nodes_.front());
}

obs::MetricsSnapshot CcmCluster::scrape_cluster() {
  obs::MetricsSnapshot merged = metrics_.snapshot();
  metrics_.incr(obs::RtCounter::kStatsScrape);
  const cache::NodeId self = local_nodes_.front();
  // One registry per process, reported under its lowest hosted node id;
  // pulling from every node and deduping by that id collapses the per-node
  // fan-out back to one snapshot per process without a membership service.
  std::set<std::uint32_t> seen{merged.host};
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    if (shards_[n]) continue;  // hosted here: already in the local snapshot
    try {
      Reply r = rpc(proto::Message::stats_pull(
          self, static_cast<cache::NodeId>(n)));
      if (!r.data) continue;
      r.data->wait_ready();
      const auto remote = obs::MetricsSnapshot::decode(r.data->bytes);
      if (!remote) continue;  // version/geometry skew: drop, don't misparse
      if (!seen.insert(remote->host).second) continue;  // same process
      merged.merge(*remote);
    } catch (const net::TransportError&) {
      // A dead or partitioned peer costs its slice of the report, not the
      // scrape; the `processes` count in the output records the coverage.
    }
  }
  return merged;
}

std::uint64_t CcmCluster::cached_bytes(cache::NodeId node) const {
  const Shard& sh = shard_at(node);
  util::ScopedLock lock(sh.mu);
  return sh.state.cache().used_blocks() * config_.block_bytes;
}

std::pair<std::uint64_t, bool> CcmCluster::published_summary(
    cache::NodeId node) const {
  const Shard& sh = shard_at(node);
  return {sh.state.published_oldest_age(), sh.state.published_full()};
}

// --------------------------------------------------------------- audit ----

std::size_t CcmCluster::audit_shard_locked(const Shard& sh,
                                           cache::NodeId node,
                                           const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  const cache::NodeCache& cache = sh.state.cache();
  CCM_AUDIT(cache.used_blocks() == sh.store.size(), "ccm-store-policy-size",
            "node " + std::to_string(node) + " policy books " +
                std::to_string(cache.used_blocks()) +
                " blocks but the byte store holds " +
                std::to_string(sh.store.size()) + ctx);
  // Order-insensitive sweep over the (unordered) byte store: each check is
  // independent of iteration order.
  for (const auto& [block, data] : sh.store) {  // ccm-lint: allow(unordered-iter)
    CCM_AUDIT(cache.contains(block), "ccm-store-orphan",
              "node " + std::to_string(node) + " stores bytes for file " +
                  std::to_string(block.file) + " block " +
                  std::to_string(block.index) + " with no policy entry" + ctx);
    CCM_AUDIT(data != nullptr, "ccm-store-null",
              "node " + std::to_string(node) + " stores null bytes for file " +
                  std::to_string(block.file) + " block " +
                  std::to_string(block.index) + ctx);
  }
  CCM_AUDIT(cache.used_blocks() <= cache.capacity_blocks() ||
                cache.entry_count() <= 1,
            "cache-occupancy",
            "node " + std::to_string(node) + " uses " +
                std::to_string(cache.used_blocks()) + " of " +
                std::to_string(cache.capacity_blocks()) + " blocks" + ctx);
  std::uint64_t slots = 0;
  for (const auto& e : cache.masters()) slots += cache.slots_of(e.block);
  for (const auto& e : cache.copies()) slots += cache.slots_of(e.block);
  CCM_AUDIT(slots == cache.used_blocks(), "cache-slot-accounting",
            "node " + std::to_string(node) + " books " +
                std::to_string(cache.used_blocks()) +
                " used blocks but entries cover " + std::to_string(slots) +
                ctx);
  return ccm_audit_failures;
}

std::size_t CcmCluster::audit_all_locked(const char* context) const {
  std::size_t ccm_audit_failures = 0;
  const std::string ctx = std::string(" [") + context + "]";
  for (const cache::NodeId n : local_nodes_) {
    ccm_audit_failures += audit_shard_locked(*shards_[n], n, context);
    // Cross-shard: every cached master must be registered in the directory,
    // pointing here; in hinted mode the hint layer's authoritative view must
    // agree with the directory.
    const cache::NodeCache& cache = shards_[n]->state.cache();
    for (const auto& e : cache.masters()) {
      CCM_AUDIT(dir_->lookup(e.block) == n, "cache-master-registered",
                "master of file " + std::to_string(e.block.file) + " block " +
                    std::to_string(e.block.index) + " cached at node " +
                    std::to_string(n) + " but directory says node " +
                    std::to_string(dir_->lookup(e.block)) + ctx);
      if (config_.directory == cache::DirectoryMode::kHinted && all_local_) {
        CCM_AUDIT(dir_->hint_truth(e.block) == n, "cache-hint-truth",
                  "hint truth for file " + std::to_string(e.block.file) +
                      " block " + std::to_string(e.block.index) +
                      " is node " +
                      std::to_string(dir_->hint_truth(e.block)) +
                      " but the master is cached at node " +
                      std::to_string(n) + ctx);
      }
    }
  }
  // Every cached master points at its own directory entry (checked above);
  // equal counts then make that correspondence a bijection, which rules out
  // duplicate masters and dangling directory entries — i.e. at most one
  // master copy per block cluster-wide. Only checkable when this process
  // can see every shard.
  if (all_local_) {
    std::size_t cached_masters = 0;
    for (const auto& sh : shards_) {
      cached_masters += sh->state.cache().master_count();
    }
    CCM_AUDIT(dir_->master_count() == cached_masters, "cache-single-master",
              "directory tracks " + std::to_string(dir_->master_count()) +
                  " masters but nodes cache " +
                  std::to_string(cached_masters) + ctx);
  }
  ccm_audit_failures += dir_->audit(context);
  return ccm_audit_failures;
}

std::size_t CcmCluster::audit(const char* context) const {
  // Take every hosted shard lock (index order) for a consistent view. The
  // index order makes the lockcheck graph's shard[i] -> shard[j] (i < j)
  // chain edges, which stay acyclic against every runtime acquisition.
  std::vector<std::unique_lock<util::CountingMutex>> locks;
  locks.reserve(local_nodes_.size());
  for (const cache::NodeId n : local_nodes_) {
    locks.emplace_back(shards_[n]->mu);
  }
  return audit_all_locked(context);
}

bool CcmCluster::check_consistency() const {
  return audit("check_consistency") == 0;
}

}  // namespace coop::ccm
