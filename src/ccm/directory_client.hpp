// Where the runtime's directory lives, abstracted.
//
// CcmCluster consults the cluster-wide master directory on every miss,
// forward, write, and invalidation. In-process the directory is a local
// object (LocalDirectory wraps a proto::DirectoryService); in the
// multi-process cluster it lives in the process hosting node 0 and every
// other process reaches it with kDir* RPCs over the transport
// (RemoteDirectory). The runtime code is identical either way — it speaks
// DirectoryClient.
//
// The public protocol surface is NON-virtual: every call is counted at the
// base class — the one place — and then dispatched to the protected *_impl
// virtuals. The counters are the "directory RPC" metric the batching work
// is judged by (bench --json, the perf-smoke CI job): with a remote client
// each counted call is one wire RPC; with a local client it is one
// directory-lock acquisition — the same contended resource either way.
//
// The wait-for graph stays acyclic: RemoteDirectory calls block only on the
// home node, and the home node's directory handlers never block on anything
// (DirectoryService is a leaf lock with no I/O), so a protocol thread that
// issues a remote directory RPC mid-handler cannot deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/transport.hpp"
#include "proto/dir_batch.hpp"
#include "proto/directory_service.hpp"

namespace coop::ccm {

/// The directory operations the runtime needs, mirroring
/// proto::DirectoryService (see that header for semantics).
class DirectoryClient {
 public:
  /// Snapshot of the call counters (relaxed; merged into CcmStats).
  struct Calls {
    std::uint64_t singles = 0;      // single-op protocol calls issued
    std::uint64_t batches = 0;      // kDirBatch round trips issued
    std::uint64_t batched_ops = 0;  // ops carried inside those batches
    /// Directory round trips — the number the ≥4× batching win is
    /// measured on (each batch is one trip no matter how many ops ride it).
    [[nodiscard]] std::uint64_t trips() const { return singles + batches; }
  };

  virtual ~DirectoryClient() = default;

  // ---- protocol surface (counted, non-virtual) ----

  proto::DirectoryService::ReadLookup lookup_for_read(
      cache::NodeId node, const cache::BlockId& b) {
    count_single();
    return lookup_for_read_impl(node, b);
  }
  cache::NodeId lookup(const cache::BlockId& b) {
    count_single();
    return lookup_impl(b);
  }
  bool try_claim(const cache::BlockId& b, cache::NodeId node) {
    count_single();
    return try_claim_impl(b, node);
  }
  std::optional<std::uint64_t> begin_forward(const cache::BlockId& b,
                                             cache::NodeId from) {
    count_single();
    return begin_forward_impl(b, from);
  }
  bool claim_forwarded(const cache::BlockId& b, cache::NodeId to,
                       cache::NodeId from, std::uint64_t epoch) {
    count_single();
    return claim_forwarded_impl(b, to, from, epoch);
  }
  void forward_rejected(const cache::BlockId& b, cache::NodeId from) {
    count_single();
    forward_rejected_impl(b, from);
  }
  void master_dropped(const cache::BlockId& b, cache::NodeId node) {
    count_single();
    master_dropped_impl(b, node);
  }
  cache::NodeId write_claim(const cache::BlockId& b, cache::NodeId writer) {
    count_single();
    return write_claim_impl(b, writer);
  }
  void invalidate_file(cache::FileId file) {
    count_single();
    invalidate_file_impl(file);
  }
  void write_begin(cache::FileId file) {
    count_single();
    write_begin_impl(file);
  }
  void write_end(cache::FileId file) {
    count_single();
    write_end_impl(file);
  }
  bool read_cacheable(cache::FileId file, std::uint64_t epoch) {
    count_single();
    return read_cacheable_impl(file, epoch);
  }
  /// Crash fence: unregisters every master at `node` and epoch-fences the
  /// affected files (see DirectoryService::purge_node). Returns the number
  /// of masters purged.
  std::size_t purge_node(cache::NodeId node) {
    count_single();
    return purge_node_impl(node);
  }

  /// Batched directory ops issued by `node`: one round trip (and, at the
  /// service, one lock acquisition) for the whole vector. Returns one
  /// result per item, in order. Safe under at-least-once retry for the same
  /// reason the singles are: every op is idempotent or conditional.
  std::vector<proto::DirBatchResult> batch(
      cache::NodeId node, std::span<const proto::DirBatchItem> items) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_ops_.fetch_add(items.size(), std::memory_order_relaxed);
    return batch_impl(node, items);
  }

  [[nodiscard]] Calls calls() const {
    Calls c;
    c.singles = singles_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.batched_ops = batched_ops_.load(std::memory_order_relaxed);
    return c;
  }
  void reset_calls() {
    singles_.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
    batched_ops_.store(0, std::memory_order_relaxed);
  }

  // Observability. Remote clients return empty/neutral values — directory
  // counters and audits are read where the directory lives (the home
  // process).
  virtual proto::DirectoryService::Ops ops() = 0;
  virtual void reset_ops() = 0;
  virtual double hint_accuracy() = 0;
  virtual cache::NodeId hint_truth(const cache::BlockId& b) = 0;
  virtual std::size_t master_count() = 0;
  virtual std::size_t audit(const char* context) = 0;

  /// The in-process service when the directory is local (home process and
  /// the all-in-one runtime); nullptr behind a remote client. CcmCluster
  /// uses this to answer kDir* RPCs on the directory's behalf.
  virtual proto::DirectoryService* service() { return nullptr; }

 protected:
  virtual proto::DirectoryService::ReadLookup lookup_for_read_impl(
      cache::NodeId node, const cache::BlockId& b) = 0;
  virtual cache::NodeId lookup_impl(const cache::BlockId& b) = 0;
  virtual bool try_claim_impl(const cache::BlockId& b, cache::NodeId node) = 0;
  virtual std::optional<std::uint64_t> begin_forward_impl(
      const cache::BlockId& b, cache::NodeId from) = 0;
  virtual bool claim_forwarded_impl(const cache::BlockId& b, cache::NodeId to,
                                    cache::NodeId from,
                                    std::uint64_t epoch) = 0;
  virtual void forward_rejected_impl(const cache::BlockId& b,
                                     cache::NodeId from) = 0;
  virtual void master_dropped_impl(const cache::BlockId& b,
                                   cache::NodeId node) = 0;
  virtual cache::NodeId write_claim_impl(const cache::BlockId& b,
                                         cache::NodeId writer) = 0;
  virtual void invalidate_file_impl(cache::FileId file) = 0;
  virtual void write_begin_impl(cache::FileId file) = 0;
  virtual void write_end_impl(cache::FileId file) = 0;
  virtual bool read_cacheable_impl(cache::FileId file,
                                   std::uint64_t epoch) = 0;
  virtual std::size_t purge_node_impl(cache::NodeId node) = 0;
  virtual std::vector<proto::DirBatchResult> batch_impl(
      cache::NodeId node, std::span<const proto::DirBatchItem> items) = 0;

 private:
  void count_single() { singles_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<std::uint64_t> singles_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
};

/// The directory is in this process: thin forwarding wrapper owning the
/// DirectoryService.
class LocalDirectory final : public DirectoryClient {
 public:
  LocalDirectory(std::size_t nodes, cache::DirectoryMode mode,
                 std::uint32_t hint_staleness)
      : svc_(nodes, mode, hint_staleness) {}

  proto::DirectoryService::Ops ops() override { return svc_.ops(); }
  void reset_ops() override { svc_.reset_ops(); }
  double hint_accuracy() override { return svc_.hint_accuracy(); }
  cache::NodeId hint_truth(const cache::BlockId& b) override {
    return svc_.hint_truth(b);
  }
  std::size_t master_count() override { return svc_.master_count(); }
  std::size_t audit(const char* context) override {
    return svc_.audit(context);
  }

  proto::DirectoryService* service() override { return &svc_; }

 protected:
  proto::DirectoryService::ReadLookup lookup_for_read_impl(
      cache::NodeId node, const cache::BlockId& b) override {
    return svc_.lookup_for_read(node, b);
  }
  cache::NodeId lookup_impl(const cache::BlockId& b) override {
    return svc_.lookup(b);
  }
  bool try_claim_impl(const cache::BlockId& b, cache::NodeId node) override {
    return svc_.try_claim(b, node);
  }
  std::optional<std::uint64_t> begin_forward_impl(const cache::BlockId& b,
                                                  cache::NodeId from) override {
    return svc_.begin_forward(b, from);
  }
  bool claim_forwarded_impl(const cache::BlockId& b, cache::NodeId to,
                            cache::NodeId from, std::uint64_t epoch) override {
    return svc_.claim_forwarded(b, to, from, epoch);
  }
  void forward_rejected_impl(const cache::BlockId& b,
                             cache::NodeId from) override {
    svc_.forward_rejected(b, from);
  }
  void master_dropped_impl(const cache::BlockId& b,
                           cache::NodeId node) override {
    svc_.master_dropped(b, node);
  }
  cache::NodeId write_claim_impl(const cache::BlockId& b,
                                 cache::NodeId writer) override {
    return svc_.write_claim(b, writer);
  }
  void invalidate_file_impl(cache::FileId file) override {
    svc_.invalidate_file(file);
  }
  void write_begin_impl(cache::FileId file) override {
    svc_.write_begin(file);
  }
  void write_end_impl(cache::FileId file) override { svc_.write_end(file); }
  bool read_cacheable_impl(cache::FileId file, std::uint64_t epoch) override {
    return svc_.read_cacheable(file, epoch);
  }
  std::size_t purge_node_impl(cache::NodeId node) override {
    return svc_.purge_node(node);
  }
  std::vector<proto::DirBatchResult> batch_impl(
      cache::NodeId node,
      std::span<const proto::DirBatchItem> items) override {
    std::vector<proto::DirBatchResult> out;
    svc_.apply_batch(node, items, out);
    return out;
  }

 private:
  proto::DirectoryService svc_;
};

/// The directory lives at `home` in another process; every operation is one
/// kDir* RPC over the transport, answered with a generic kDirReply (or a
/// kDirBatchReply whose payload carries the per-item results).
class RemoteDirectory final : public DirectoryClient {
 public:
  /// `retry_stats` (optional, must outlive the client) accumulates the
  /// bounded-retry counters of every directory RPC.
  RemoteDirectory(std::shared_ptr<net::Transport> transport,
                  cache::NodeId local, cache::NodeId home,
                  net::RetryStats* retry_stats = nullptr)
      : transport_(std::move(transport)),
        local_(local),
        home_(home),
        retry_stats_(retry_stats) {}

  proto::DirectoryService::Ops ops() override { return {}; }
  void reset_ops() override {}
  double hint_accuracy() override { return 1.0; }
  cache::NodeId hint_truth(const cache::BlockId&) override {
    return cache::kInvalidNode;
  }
  std::size_t master_count() override { return 0; }
  std::size_t audit(const char*) override { return 0; }

 protected:
  proto::DirectoryService::ReadLookup lookup_for_read_impl(
      cache::NodeId node, const cache::BlockId& b) override;
  cache::NodeId lookup_impl(const cache::BlockId& b) override;
  bool try_claim_impl(const cache::BlockId& b, cache::NodeId node) override;
  std::optional<std::uint64_t> begin_forward_impl(const cache::BlockId& b,
                                                  cache::NodeId from) override;
  bool claim_forwarded_impl(const cache::BlockId& b, cache::NodeId to,
                            cache::NodeId from, std::uint64_t epoch) override;
  void forward_rejected_impl(const cache::BlockId& b,
                             cache::NodeId from) override;
  void master_dropped_impl(const cache::BlockId& b,
                           cache::NodeId node) override;
  cache::NodeId write_claim_impl(const cache::BlockId& b,
                                 cache::NodeId writer) override;
  void invalidate_file_impl(cache::FileId file) override;
  void write_begin_impl(cache::FileId file) override;
  void write_end_impl(cache::FileId file) override;
  bool read_cacheable_impl(cache::FileId file, std::uint64_t epoch) override;
  std::size_t purge_node_impl(cache::NodeId node) override;
  std::vector<proto::DirBatchResult> batch_impl(
      cache::NodeId node, std::span<const proto::DirBatchItem> items) override;

 private:
  /// Round-trips one request and returns the kDirReply message.
  proto::Message ask(const proto::Message& request);

  std::shared_ptr<net::Transport> transport_;
  cache::NodeId local_;
  cache::NodeId home_;
  net::RetryStats* retry_stats_;
};

}  // namespace coop::ccm
