// Where the runtime's directory lives, abstracted.
//
// CcmCluster consults the cluster-wide master directory on every miss,
// forward, write, and invalidation. In-process the directory is a local
// object (LocalDirectory wraps a proto::DirectoryService); in the
// multi-process cluster it lives in the process hosting node 0 and every
// other process reaches it with kDir* RPCs over the transport
// (RemoteDirectory). The runtime code is identical either way — it speaks
// DirectoryClient.
//
// The wait-for graph stays acyclic: RemoteDirectory calls block only on the
// home node, and the home node's directory handlers never block on anything
// (DirectoryService is a leaf lock with no I/O), so a protocol thread that
// issues a remote directory RPC mid-handler cannot deadlock.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/transport.hpp"
#include "proto/directory_service.hpp"

namespace coop::ccm {

/// The directory operations the runtime needs, mirroring
/// proto::DirectoryService (see that header for semantics).
class DirectoryClient {
 public:
  virtual ~DirectoryClient() = default;

  virtual proto::DirectoryService::ReadLookup lookup_for_read(
      cache::NodeId node, const cache::BlockId& b) = 0;
  virtual cache::NodeId lookup(const cache::BlockId& b) = 0;
  virtual bool try_claim(const cache::BlockId& b, cache::NodeId node) = 0;
  virtual std::optional<std::uint64_t> begin_forward(const cache::BlockId& b,
                                                     cache::NodeId from) = 0;
  virtual bool claim_forwarded(const cache::BlockId& b, cache::NodeId to,
                               cache::NodeId from, std::uint64_t epoch) = 0;
  virtual void forward_rejected(const cache::BlockId& b,
                                cache::NodeId from) = 0;
  virtual void master_dropped(const cache::BlockId& b, cache::NodeId node) = 0;
  virtual cache::NodeId write_claim(const cache::BlockId& b,
                                    cache::NodeId writer) = 0;
  virtual void invalidate_file(cache::FileId file) = 0;
  virtual void write_begin(cache::FileId file) = 0;
  virtual void write_end(cache::FileId file) = 0;
  virtual bool read_cacheable(cache::FileId file, std::uint64_t epoch) = 0;
  /// Crash fence: unregisters every master at `node` and epoch-fences the
  /// affected files (see DirectoryService::purge_node). Returns the number
  /// of masters purged.
  virtual std::size_t purge_node(cache::NodeId node) = 0;

  // Observability. Remote clients return empty/neutral values — directory
  // counters and audits are read where the directory lives (the home
  // process).
  virtual proto::DirectoryService::Ops ops() = 0;
  virtual void reset_ops() = 0;
  virtual double hint_accuracy() = 0;
  virtual cache::NodeId hint_truth(const cache::BlockId& b) = 0;
  virtual std::size_t master_count() = 0;
  virtual std::size_t audit(const char* context) = 0;

  /// The in-process service when the directory is local (home process and
  /// the all-in-one runtime); nullptr behind a remote client. CcmCluster
  /// uses this to answer kDir* RPCs on the directory's behalf.
  virtual proto::DirectoryService* service() { return nullptr; }
};

/// The directory is in this process: thin forwarding wrapper owning the
/// DirectoryService.
class LocalDirectory final : public DirectoryClient {
 public:
  LocalDirectory(std::size_t nodes, cache::DirectoryMode mode,
                 std::uint32_t hint_staleness)
      : svc_(nodes, mode, hint_staleness) {}

  proto::DirectoryService::ReadLookup lookup_for_read(
      cache::NodeId node, const cache::BlockId& b) override {
    return svc_.lookup_for_read(node, b);
  }
  cache::NodeId lookup(const cache::BlockId& b) override {
    return svc_.lookup(b);
  }
  bool try_claim(const cache::BlockId& b, cache::NodeId node) override {
    return svc_.try_claim(b, node);
  }
  std::optional<std::uint64_t> begin_forward(const cache::BlockId& b,
                                             cache::NodeId from) override {
    return svc_.begin_forward(b, from);
  }
  bool claim_forwarded(const cache::BlockId& b, cache::NodeId to,
                       cache::NodeId from, std::uint64_t epoch) override {
    return svc_.claim_forwarded(b, to, from, epoch);
  }
  void forward_rejected(const cache::BlockId& b, cache::NodeId from) override {
    svc_.forward_rejected(b, from);
  }
  void master_dropped(const cache::BlockId& b, cache::NodeId node) override {
    svc_.master_dropped(b, node);
  }
  cache::NodeId write_claim(const cache::BlockId& b,
                            cache::NodeId writer) override {
    return svc_.write_claim(b, writer);
  }
  void invalidate_file(cache::FileId file) override {
    svc_.invalidate_file(file);
  }
  void write_begin(cache::FileId file) override { svc_.write_begin(file); }
  void write_end(cache::FileId file) override { svc_.write_end(file); }
  bool read_cacheable(cache::FileId file, std::uint64_t epoch) override {
    return svc_.read_cacheable(file, epoch);
  }
  std::size_t purge_node(cache::NodeId node) override {
    return svc_.purge_node(node);
  }

  proto::DirectoryService::Ops ops() override { return svc_.ops(); }
  void reset_ops() override { svc_.reset_ops(); }
  double hint_accuracy() override { return svc_.hint_accuracy(); }
  cache::NodeId hint_truth(const cache::BlockId& b) override {
    return svc_.hint_truth(b);
  }
  std::size_t master_count() override { return svc_.master_count(); }
  std::size_t audit(const char* context) override {
    return svc_.audit(context);
  }

  proto::DirectoryService* service() override { return &svc_; }

 private:
  proto::DirectoryService svc_;
};

/// The directory lives at `home` in another process; every operation is one
/// kDir* RPC over the transport, answered with a generic kDirReply.
class RemoteDirectory final : public DirectoryClient {
 public:
  /// `retry_stats` (optional, must outlive the client) accumulates the
  /// bounded-retry counters of every directory RPC.
  RemoteDirectory(std::shared_ptr<net::Transport> transport,
                  cache::NodeId local, cache::NodeId home,
                  net::RetryStats* retry_stats = nullptr)
      : transport_(std::move(transport)),
        local_(local),
        home_(home),
        retry_stats_(retry_stats) {}

  proto::DirectoryService::ReadLookup lookup_for_read(
      cache::NodeId node, const cache::BlockId& b) override;
  cache::NodeId lookup(const cache::BlockId& b) override;
  bool try_claim(const cache::BlockId& b, cache::NodeId node) override;
  std::optional<std::uint64_t> begin_forward(const cache::BlockId& b,
                                             cache::NodeId from) override;
  bool claim_forwarded(const cache::BlockId& b, cache::NodeId to,
                       cache::NodeId from, std::uint64_t epoch) override;
  void forward_rejected(const cache::BlockId& b, cache::NodeId from) override;
  void master_dropped(const cache::BlockId& b, cache::NodeId node) override;
  cache::NodeId write_claim(const cache::BlockId& b,
                            cache::NodeId writer) override;
  void invalidate_file(cache::FileId file) override;
  void write_begin(cache::FileId file) override;
  void write_end(cache::FileId file) override;
  bool read_cacheable(cache::FileId file, std::uint64_t epoch) override;
  std::size_t purge_node(cache::NodeId node) override;

  proto::DirectoryService::Ops ops() override { return {}; }
  void reset_ops() override {}
  double hint_accuracy() override { return 1.0; }
  cache::NodeId hint_truth(const cache::BlockId&) override {
    return cache::kInvalidNode;
  }
  std::size_t master_count() override { return 0; }
  std::size_t audit(const char*) override { return 0; }

 private:
  /// Round-trips one request and returns the kDirReply message.
  proto::Message ask(const proto::Message& request);

  std::shared_ptr<net::Transport> transport_;
  cache::NodeId local_;
  cache::NodeId home_;
  net::RetryStats* retry_stats_;
};

}  // namespace coop::ccm
