// Backing storage proxied over the transport.
//
// In the multi-process cluster the real store (a BufferStorage) lives in the
// process hosting node 0, mirroring the directory. Peer processes mount a
// RemoteStorage: reads become kStorageRead RPCs answered with the bytes in a
// kStorageData payload, writes ship their bytes in a kStorageWrite payload
// and block until the home's kStorageAck — preserving CcmCluster's
// write-through ordering (storage holds the new bytes before any cached
// master of them exists).
//
// File geometry (count and sizes) is passed to the constructor rather than
// fetched: every process derives it from the same workload seed, and keeping
// it local means file_size() — called on every read path — costs no RPC.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccm/storage.hpp"
#include "net/transport.hpp"

namespace coop::ccm {

class RemoteStorage final : public WritableStorage {
 public:
  /// `retry_stats` (optional, must outlive the proxy) accumulates the
  /// bounded-retry counters of every storage RPC.
  RemoteStorage(std::shared_ptr<net::Transport> transport,
                cache::NodeId local, cache::NodeId home,
                std::vector<std::uint32_t> file_sizes,
                net::RetryStats* retry_stats = nullptr)
      : transport_(std::move(transport)),
        local_(local),
        home_(home),
        sizes_(std::move(file_sizes)),
        retry_stats_(retry_stats) {}

  [[nodiscard]] std::size_t file_count() const override {
    return sizes_.size();
  }
  [[nodiscard]] std::uint64_t file_size(cache::FileId file) const override;

  void read(cache::FileId file, std::uint64_t offset,
            std::span<std::byte> out) const override;
  void write(cache::FileId file, std::uint64_t offset,
             std::span<const std::byte> data) override;

 private:
  std::shared_ptr<net::Transport> transport_;
  cache::NodeId local_;
  cache::NodeId home_;
  std::vector<std::uint32_t> sizes_;
  net::RetryStats* retry_stats_;
};

}  // namespace coop::ccm
