// Intra-process message transport: a bounded MPMC mailbox used to hand work
// to node worker threads. In a distributed deployment this is the seam where
// a socket-based transport would plug in.
//
// The queue state is guarded by an annotated util::Mutex (thread-safety
// analysis + lock-order watchdog); waits go through condition_variable_any
// on the annotated UniqueLock, written as explicit while-loops because the
// analysis cannot see through predicate lambdas. The mailbox lock is a leaf:
// no callout ever happens while it is held.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::ccm {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 1024,
                   std::string lock_name = "ccm.mailbox")
      : mu_(std::move(lock_name)), capacity_(capacity) {}

  /// Blocks while the mailbox is full. Returns false if the mailbox was
  /// closed (the message is dropped).
  bool send(T message) {
    util::UniqueLock lock(mu_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    queue_.push_back(std::move(message));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the mailbox is closed *and drained*;
  /// returns nullopt only in the latter case.
  std::optional<T> receive() {
    util::UniqueLock lock(mu_);
    while (!closed_ && queue_.empty()) not_empty_.wait(lock);
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T msg = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return msg;
  }

  /// Non-blocking send; false when the mailbox is full or closed (the
  /// message is dropped). Lets callers implement their own overflow policy
  /// instead of blocking forever on a full, never-drained mailbox.
  bool try_send(T message) {
    util::ScopedLock lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(message));
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded send: waits up to `timeout` for room. False on timeout
  /// or close (the message is dropped). This is the backpressure primitive
  /// the socket transport uses — a peer whose outbox stays full past the
  /// deadline is treated as stalled and its connection is dropped, rather
  /// than wedging the sender forever.
  template <typename Rep, typename Period>
  bool send_for(T message, std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::UniqueLock lock(mu_);
    while (!closed_ && queue_.size() >= capacity_) {
      if (not_full_.wait_until(lock, deadline) == std::cv_status::timeout &&
          (closed_ || queue_.size() >= capacity_)) {
        return false;  // still full at the deadline
      }
    }
    if (closed_) return false;
    queue_.push_back(std::move(message));
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded receive: waits up to `timeout` for a message. Nullopt
  /// on timeout, or once the mailbox is closed *and drained*. Lets the
  /// socket transport's writers block for new traffic while still polling
  /// deferred not-yet-ready payloads.
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::UniqueLock lock(mu_);
    while (!closed_ && queue_.empty()) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout &&
          queue_.empty()) {
        return std::nullopt;  // timed out
      }
    }
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T msg = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return msg;
  }

  /// Non-blocking receive; nullopt if empty (whether or not closed).
  std::optional<T> try_receive() {
    util::ScopedLock lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return msg;
  }

  /// Closes the mailbox: senders fail fast; receivers drain then get nullopt.
  void close() {
    util::ScopedLock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    util::ScopedLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    util::ScopedLock lock(mu_);
    return queue_.size();
  }

 private:
  mutable util::Mutex mu_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> queue_ GUARDED_BY(mu_);
  std::size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace coop::ccm
