#include "obs/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/format.hpp"

namespace coop::obs {

namespace {
const std::vector<TimelineBucket> kEmptyLane;
}  // namespace

Timeline::Timeline(std::size_t nodes, double bucket_ms)
    : nodes_(nodes), bucket_ms_(bucket_ms) {
  assert(bucket_ms_ > 0.0);
  lanes_.resize((nodes_ + 1) * kResourceCount);
}

std::size_t Timeline::lane_index(std::uint16_t node, Resource r) const {
  const std::size_t n = node == kClusterNode ? nodes_ : node;
  return n * kResourceCount + static_cast<std::size_t>(r);
}

TimelineBucket& Timeline::bucket_at(std::uint16_t node, Resource r,
                                    sim::SimTime t) {
  auto& lane = lanes_[lane_index(node, r)];
  const double offset = std::max(0.0, t - origin_);
  const auto idx = static_cast<std::size_t>(offset / bucket_ms_);
  if (lane.size() <= idx) lane.resize(idx + 1);
  return lane[idx];
}

void Timeline::add_busy(std::uint16_t node, Resource r, sim::SimTime begin,
                        sim::SimTime end) {
  if (lanes_.empty()) return;
  begin = std::max(begin, origin_);
  if (end <= begin) return;
  // Split the interval across buckets so a long service burst shows up in
  // every bucket it covers.
  sim::SimTime t = begin;
  while (t < end) {
    const double offset = t - origin_;
    const auto idx = static_cast<std::size_t>(offset / bucket_ms_);
    const sim::SimTime bucket_end =
        origin_ + static_cast<double>(idx + 1) * bucket_ms_;
    const sim::SimTime upto = std::min(end, bucket_end);
    bucket_at(node, r, t).busy_ms += upto - t;
    if (upto <= t) break;  // numeric safety: never spin
    t = upto;
  }
}

void Timeline::note_queue_depth(std::uint16_t node, Resource r,
                                sim::SimTime now, std::size_t depth) {
  if (lanes_.empty() || now < origin_) return;
  TimelineBucket& b = bucket_at(node, r, now);
  b.max_queue = std::max(b.max_queue, static_cast<std::uint64_t>(depth));
}

void Timeline::add_bytes(std::uint16_t node, Resource r, sim::SimTime now,
                         std::uint64_t bytes) {
  if (lanes_.empty() || now < origin_) return;
  bucket_at(node, r, now).bytes += bytes;
}

void Timeline::add_cache_access(std::uint16_t node, sim::SimTime now,
                                std::uint64_t hits, std::uint64_t misses) {
  if (lanes_.empty() || now < origin_) return;
  TimelineBucket& b = bucket_at(node, Resource::kCache, now);
  b.hits += hits;
  b.misses += misses;
}

void Timeline::rebase(sim::SimTime origin) {
  origin_ = origin;
  for (auto& lane : lanes_) lane.clear();
}

const std::vector<TimelineBucket>& Timeline::lane(std::uint16_t node,
                                                  Resource r) const {
  if (lanes_.empty()) return kEmptyLane;
  return lanes_[lane_index(node, r)];
}

void Timeline::append_csv(util::CsvWriter& csv) const {
  if (csv.rows() == 0) {
    csv.set_header({"bucket_start_ms", "node", "resource", "busy_ms",
                    "max_queue", "hits", "misses", "bytes"});
  }
  // Longest lane bounds the bucket scan.
  std::size_t buckets = 0;
  for (const auto& lane : lanes_) buckets = std::max(buckets, lane.size());
  for (std::size_t bi = 0; bi < buckets; ++bi) {
    for (std::size_t n = 0; n <= nodes_; ++n) {
      for (std::size_t ri = 0; ri < kResourceCount; ++ri) {
        const auto& lane = lanes_[n * kResourceCount + ri];
        if (lane.size() <= bi || lane[bi].empty()) continue;
        const TimelineBucket& b = lane[bi];
        const std::string node_label =
            n == nodes_ ? "cluster" : std::to_string(n);
        csv.add_row({util::fixed(origin_ + static_cast<double>(bi) * bucket_ms_, 3),
                     node_label, to_string(static_cast<Resource>(ri)),
                     util::fixed(b.busy_ms, 3), std::to_string(b.max_queue),
                     std::to_string(b.hits), std::to_string(b.misses),
                     std::to_string(b.bytes)});
      }
    }
  }
}

}  // namespace coop::obs
