#include "obs/trace.hpp"

#include <cassert>
#include <ostream>
#include <utility>

namespace coop::obs {

const char* to_string(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kBus:
      return "bus";
    case Resource::kNicTx:
      return "nic-tx";
    case Resource::kNicRx:
      return "nic-rx";
    case Resource::kDisk:
      return "disk";
    case Resource::kRouter:
      return "router";
    case Resource::kCache:
      return "cache";
    case Resource::kPhase:
      return "phase";
  }
  return "?";
}

SpanCtx SpanCtx::begin(const char* op, Resource resource, std::uint16_t node,
                       sim::SimTime demand, std::uint64_t bytes) const {
  if (tracer_ == nullptr) return {};
  return tracer_->open_child(request_, span_, op, resource, node, demand,
                             bytes, /*new_track=*/false);
}

SpanCtx SpanCtx::branch(const char* op, Resource resource, std::uint16_t node,
                        std::uint64_t bytes) const {
  if (tracer_ == nullptr) return {};
  return tracer_->open_child(request_, span_, op, resource, node, 0.0, bytes,
                             /*new_track=*/true);
}

void SpanCtx::end() const {
  if (tracer_ != nullptr) tracer_->close_span(request_, span_);
}

void SpanCtx::note(std::string detail) const {
  if (tracer_ != nullptr) {
    tracer_->set_note(request_, span_, std::move(detail));
  }
}

Tracer::Tracer(sim::Engine& engine, const TracerConfig& config)
    : engine_(engine), config_(config) {
  assert(config_.sample_every > 0);
}

SpanCtx Tracer::begin_request(std::uint64_t id, std::uint32_t file,
                              std::uint16_t landing, std::uint32_t client) {
  if (config_.sample_every == 0 || id % config_.sample_every != 0) return {};
  ++started_;
  Active& a = active_[id];
  a.req.id = id;
  a.req.file = file;
  a.req.landing = landing;
  a.req.client = client;
  a.open = 1;
  SpanRecord root;
  root.op = "request";
  root.node = landing;
  root.begin = engine_.now();
  a.req.spans.push_back(std::move(root));
  return SpanCtx(this, id, 0);
}

SpanCtx Tracer::open_child(std::uint64_t request, std::uint32_t parent,
                           const char* op, Resource resource,
                           std::uint16_t node, sim::SimTime demand,
                           std::uint64_t bytes, bool new_track) {
  const auto it = active_.find(request);
  if (it == active_.end()) return {};  // committed before an async tail span
  Active& a = it->second;
  SpanRecord s;
  s.parent = parent;
  s.op = op;
  s.node = node;
  s.resource = resource;
  s.track = new_track ? a.req.tracks++
                      : (parent < a.req.spans.size()
                             ? a.req.spans[parent].track
                             : 0);
  s.begin = engine_.now();
  s.demand = demand;
  s.bytes = bytes;
  const auto idx = static_cast<std::uint32_t>(a.req.spans.size());
  a.req.spans.push_back(std::move(s));
  ++a.open;
  return SpanCtx(this, request, idx);
}

void Tracer::close_span(std::uint64_t request, std::uint32_t span) {
  const auto it = active_.find(request);
  if (it == active_.end()) return;
  Active& a = it->second;
  if (span >= a.req.spans.size()) return;
  SpanRecord& s = a.req.spans[span];
  if (s.end >= s.begin) return;  // already closed
  s.end = engine_.now();
  assert(a.open > 0);
  if (--a.open == 0) commit(request);
}

void Tracer::set_note(std::uint64_t request, std::uint32_t span,
                      std::string detail) {
  const auto it = active_.find(request);
  if (it == active_.end()) return;
  Active& a = it->second;
  if (span < a.req.spans.size()) a.req.spans[span].detail = std::move(detail);
}

void Tracer::commit(std::uint64_t request) {
  const auto it = active_.find(request);
  if (it == active_.end()) return;
  done_.push_back(std::move(it->second.req));
  active_.erase(it);
  ++committed_;
  while (done_.size() > config_.ring_capacity) {
    done_.pop_front();
    ++evicted_;
  }
}

std::vector<RequestTrace> Tracer::take_completed() {
  std::vector<RequestTrace> out;
  out.reserve(done_.size());
  for (auto& r : done_) out.push_back(std::move(r));
  done_.clear();
  return out;
}

namespace {

void dump_request(std::ostream& os, std::uint64_t id,
                  const RequestTrace& req) {
  os << "  request " << id << " file " << req.file << " landing node "
     << req.landing << " began " << req.begin() << " ms\n";
  for (const auto& s : req.spans) {
    os << "    [" << to_string(s.resource) << "@" << s.node << "] " << s.op;
    if (!s.detail.empty()) os << " (" << s.detail << ")";
    os << " " << s.begin << " ms -> ";
    if (s.end >= s.begin) {
      os << s.end << " ms";
    } else {
      os << "(open)";
    }
    if (s.bytes > 0) os << " " << s.bytes << " B";
    os << "\n";
  }
}

}  // namespace

void Tracer::dump_in_flight(std::ostream& os, std::uint16_t node) const {
  for (const auto& [id, a] : active_) {
    bool touches = a.req.landing == node;
    for (const auto& s : a.req.spans) touches = touches || s.node == node;
    if (!touches) continue;
    dump_request(os, id, a.req);
  }
}

void Tracer::dump_in_flight(std::ostream& os) const {
  for (const auto& [id, a] : active_) dump_request(os, id, a.req);
}

}  // namespace coop::obs
