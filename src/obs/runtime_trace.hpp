// Wall-clock runtime spans for the live cluster, propagated across
// processes.
//
// The sim-time tracer (obs/trace.hpp) records deterministic spans in
// simulated milliseconds; this module is its runtime sibling: spans are
// stamped with epoch nanoseconds (obs::runtime_wall_ns) so slices recorded
// by different `ccm_node` processes line up on one Perfetto timeline. A
// trace id minted by the worker that starts a block operation rides inside
// every proto::Message the operation fans out (Message::trace / ::span), so
// the client RPC slice in one process and the handler slice in another
// carry the same trace id and a parent/child span link — that is what makes
// one block op visible as a single flow across the cluster.
//
// Recording is off by default and costs one relaxed load when disabled; the
// deterministic drivers never enable it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace coop::obs {

/// Display lanes (Perfetto tid) runtime spans are grouped into.
inline constexpr std::uint8_t kLaneOp = 0;         // whole read/write op
inline constexpr std::uint8_t kLaneRpcClient = 1;  // blocking call() slice
inline constexpr std::uint8_t kLaneHandler = 2;    // protocol-thread handler

/// One completed wall-clock slice.
struct RuntimeSpan {
  std::uint64_t trace = 0;   // operation identity, constant across processes
  std::uint64_t span = 0;    // this slice
  std::uint64_t parent = 0;  // enclosing slice (0 = root)
  std::uint64_t start_ns = 0;  // epoch ns (runtime_wall_ns)
  std::uint64_t end_ns = 0;
  std::uint16_t node = 0;  // logical node (Perfetto pid)
  std::uint8_t lane = kLaneOp;
  std::string name;
};

/// The ambient trace identity of the calling thread: workers set it when an
/// operation starts, protocol threads adopt it from the incoming message.
struct TraceContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
};

TraceContext& tls_trace_context();

/// Bounded in-memory span sink; one per process (CcmCluster owns one).
class RuntimeSpanLog {
 public:
  /// Spans kept before new ones are dropped (counted, not silent).
  static constexpr std::size_t kCapacity = 1 << 18;

  /// Arms recording. `id_node` salts the id allocator so span/trace ids
  /// minted by different processes cannot collide.
  void enable(std::uint16_t id_node);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Fresh process-unique id (node in the top 16 bits).
  std::uint64_t next_id() {
    return base_ | next_.fetch_add(1, std::memory_order_relaxed);
  }

  void record(RuntimeSpan s);

  [[nodiscard]] std::vector<RuntimeSpan> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{1};
  std::uint64_t base_ = 0;
  mutable util::Mutex mu_{"obs.runtime_spans"};
  std::vector<RuntimeSpan> spans_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> dropped_{0};
};

/// Text form of a span log — one `node trace span parent lane start end
/// name` line per span — so per-process logs can be dumped to files and
/// merged offline (tools/ccm_metrics) into one Perfetto trace.
std::string span_log_lines(const std::vector<RuntimeSpan>& spans);

/// Parses span_log_lines output (appends to `out`); false on malformed
/// input. Blank lines and `#` comments are skipped.
bool parse_span_log(std::string_view text, std::vector<RuntimeSpan>& out);

}  // namespace coop::obs
