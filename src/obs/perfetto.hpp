// Chrome trace-event ("Perfetto JSON") export of one run's observability
// data, plus the TraceConfig/TraceData types the harness plumbs around.
//
// Layout of the emitted trace (open in https://ui.perfetto.dev or
// chrome://tracing):
//   * one *process* per cluster node ("node0", ...) plus a "cluster"
//     process for the router;
//   * per process, one *thread* per hardware resource (cpu, bus, nic-tx,
//     nic-rx, disk, cache) carrying complete ("X") slices for the *service*
//     portion of every sampled span whose demand is known — single-server
//     centers serialize service, so these slices never overlap;
//   * per sampled request, dedicated request threads under the landing
//     node's process (tid 1000+) carrying the nested phase slices; parallel
//     phases (per-provider fetches, async master forwards) render on branch
//     tracks so slices on one track always nest properly;
//   * counter ("C") events per node/resource from the bucketed Timeline.
// Timestamps are sim-time milliseconds exported as microseconds (the trace
// format's native unit); the simulation's t=0 is the trace's t=0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/runtime_trace.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace coop::obs {

/// Run-level observability knobs (CLI: --trace-out/--trace-sample/
/// --timeline-bucket-ms). Deliberately *not* part of server::ClusterConfig's
/// config_hash: tracing must never look like a different experiment.
struct TraceConfig {
  bool enabled = false;
  /// Sample request ids divisible by this (deterministic; never RNG/time).
  std::uint64_t sample_every = 1;
  double timeline_bucket_ms = 100.0;
  /// Completed sampled requests retained in the ring buffer.
  std::size_t ring_capacity = 512;
  /// In audited builds, install a handler that dumps in-flight spans when an
  /// invariant trips. The handler is a per-thread overlay, so parallel sweep
  /// workers dump their own cell's spans independently; it never affects
  /// trace/metric output.
  bool audit_dump = true;
};

/// Everything one traced run produced; serialized by chrome_trace_json and
/// Timeline::append_csv.
struct TraceData {
  TraceConfig config;
  std::size_t nodes = 0;
  std::uint64_t requests_sampled = 0;
  std::uint64_t requests_committed = 0;
  std::uint64_t requests_evicted = 0;
  sim::SimTime measure_start_ms = 0.0;
  sim::SimTime end_ms = 0.0;
  std::vector<RequestTrace> requests;  // surviving ring, oldest first
  Timeline timeline;
};

/// Serializes `data` as Chrome trace-event JSON. Output bytes depend only on
/// `data` (itself deterministic for a deterministic run), so trace files are
/// byte-identical across harness thread counts.
[[nodiscard]] std::string chrome_trace_json(const TraceData& data);

/// Wall-clock mode of the exporter: serializes *runtime* spans (recorded by
/// the live cluster with epoch-ns timestamps, see obs/runtime_trace.hpp) as
/// Chrome trace-event JSON. Each logical node renders as a process and each
/// lane (op / rpc / handler) as a thread; RPC client slices open a flow
/// event that the remote handler slice closes, so one block op reads as a
/// single arrow-linked trace even when its spans come from different
/// `ccm_node` processes (merge the per-process span logs first —
/// tools/ccm_metrics does). Timestamps are rebased to the earliest span.
[[nodiscard]] std::string runtime_trace_json(
    const std::vector<RuntimeSpan>& spans);

}  // namespace coop::obs
