#include "obs/runtime_trace.hpp"

#include <charconv>
#include <cstdio>

namespace coop::obs {

TraceContext& tls_trace_context() {
  thread_local TraceContext ctx;
  return ctx;
}

void RuntimeSpanLog::enable(std::uint16_t id_node) {
  base_ = static_cast<std::uint64_t>(id_node) << 48;
  enabled_.store(true, std::memory_order_relaxed);
}

void RuntimeSpanLog::record(RuntimeSpan s) {
  if (!enabled()) return;
  util::ScopedLock lock(mu_);
  if (spans_.size() >= kCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(s));
}

std::vector<RuntimeSpan> RuntimeSpanLog::snapshot() const {
  util::ScopedLock lock(mu_);
  return spans_;
}

std::string span_log_lines(const std::vector<RuntimeSpan>& spans) {
  std::string out;
  out += "# node trace span parent lane start_ns end_ns name\n";
  char buf[160];
  for (const auto& s : spans) {
    std::snprintf(buf, sizeof(buf), "%u %llu %llu %llu %u %llu %llu ",
                  unsigned(s.node), (unsigned long long)s.trace,
                  (unsigned long long)s.span, (unsigned long long)s.parent,
                  unsigned(s.lane), (unsigned long long)s.start_ns,
                  (unsigned long long)s.end_ns);
    out += buf;
    out += s.name;
    out += '\n';
  }
  return out;
}

namespace {

bool parse_u64(std::string_view& line, std::uint64_t& v) {
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  const char* begin = line.data();
  const char* end = begin + line.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr == begin) return false;
  line.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return true;
}

}  // namespace

bool parse_span_log(std::string_view text, std::vector<RuntimeSpan>& out) {
  while (!text.empty()) {
    const auto nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;
    RuntimeSpan s;
    std::uint64_t node = 0, lane = 0;
    if (!parse_u64(line, node) || !parse_u64(line, s.trace) ||
        !parse_u64(line, s.span) || !parse_u64(line, s.parent) ||
        !parse_u64(line, lane) || !parse_u64(line, s.start_ns) ||
        !parse_u64(line, s.end_ns)) {
      return false;
    }
    if (node > 0xFFFF || lane > 0xFF) return false;
    s.node = static_cast<std::uint16_t>(node);
    s.lane = static_cast<std::uint8_t>(lane);
    if (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    s.name.assign(line);
    out.push_back(std::move(s));
  }
  return true;
}

}  // namespace coop::obs
