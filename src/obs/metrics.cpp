#include "obs/metrics.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/json.hpp"

namespace coop::obs {

// The only wall-clock reads in the runtime metrics path, deliberately
// confined to this translation unit (see tools/lint/suppressions.txt): the
// deterministic sim layers never call these.
std::uint64_t runtime_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t runtime_wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::size_t hist_bucket(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t hist_bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

const char* rt_counter_name(RtCounter c) {
  switch (c) {
    case RtCounter::kLocalHit: return "local-hits";
    case RtCounter::kPeerHit: return "peer-hits";
    case RtCounter::kDiskRead: return "disk-reads";
    case RtCounter::kUncachedFallback: return "uncached-fallbacks";
    case RtCounter::kMasterClaim: return "master-claims";
    case RtCounter::kMasterForward: return "master-forwards";
    case RtCounter::kInvalidation: return "invalidations";
    case RtCounter::kReadOp: return "read-ops";
    case RtCounter::kWriteOp: return "write-ops";
    case RtCounter::kStatsScrape: return "stats-scrapes";
    case RtCounter::kCount: break;
  }
  return "unknown";
}

// ---- snapshots -------------------------------------------------------------

void HistSnapshot::merge(const HistSnapshot& other) {
  for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

double HistSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t in_bucket = buckets[b];
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = static_cast<double>(hist_bucket_floor(b));
      // Upper edge of the log2 bucket; bucket 0 is the single value 0.
      const double hi = b == 0 ? 0.0 : lo * 2.0;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double est = lo + (hi - lo) * frac;
      // Never report beyond the recorded maximum.
      const double cap = static_cast<double>(max);
      return est > cap ? cap : est;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

void RpcKindSnapshot::merge(const RpcKindSnapshot& other) {
  latency_ns.merge(other.latency_ns);
  calls += other.calls;
  bytes += other.bytes;
  retries += other.retries;
  errors += other.errors;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  if (other.host < host) host = other.host;
  processes += other.processes;
  for (std::size_t k = 0; k < kMaxRpcKinds; ++k) rpc[k].merge(other.rpc[k]);
  for (std::size_t c = 0; c < kRtCounterCount; ++c) {
    counters[c] += other.counters[c];
  }
  lock_wait_ns.merge(other.lock_wait_ns);
  op_read_ns.merge(other.op_read_ns);
  op_write_ns.merge(other.op_write_ns);
}

// ---- binary wire form ------------------------------------------------------

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x534D4343;  // "CCMS"

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> wire) : wire_(wire) {}

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > wire_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::to_integer<std::uint32_t>(wire_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > wire_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::to_integer<std::uint64_t>(wire_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

 private:
  std::span<const std::byte> wire_;
  std::size_t pos_ = 0;
};

void encode_hist(std::vector<std::byte>& out, const HistSnapshot& h) {
  for (const auto b : h.buckets) put_u64(out, b);
  put_u64(out, h.count);
  put_u64(out, h.sum);
  put_u64(out, h.max);
}

bool decode_hist(WireReader& r, HistSnapshot& h) {
  for (auto& b : h.buckets) {
    if (!r.u64(b)) return false;
  }
  return r.u64(h.count) && r.u64(h.sum) && r.u64(h.max);
}

}  // namespace

std::vector<std::byte> MetricsSnapshot::encode() const {
  std::vector<std::byte> out;
  // Geometry rides in the header so a decoder rejects (rather than
  // misparses) a snapshot from a build with different array sizes.
  put_u32(out, kSnapshotMagic);
  put_u32(out, version);
  put_u32(out, static_cast<std::uint32_t>(kMaxRpcKinds));
  put_u32(out, static_cast<std::uint32_t>(kRtCounterCount));
  put_u32(out, static_cast<std::uint32_t>(kHistBuckets));
  put_u32(out, host);
  put_u64(out, processes);
  for (const auto& k : rpc) {
    encode_hist(out, k.latency_ns);
    put_u64(out, k.calls);
    put_u64(out, k.bytes);
    put_u64(out, k.retries);
    put_u64(out, k.errors);
  }
  for (const auto c : counters) put_u64(out, c);
  encode_hist(out, lock_wait_ns);
  encode_hist(out, op_read_ns);
  encode_hist(out, op_write_ns);
  return out;
}

std::optional<MetricsSnapshot> MetricsSnapshot::decode(
    std::span<const std::byte> wire) {
  WireReader r(wire);
  std::uint32_t magic = 0, ver = 0, kinds = 0, ctrs = 0, buckets = 0;
  if (!r.u32(magic) || !r.u32(ver) || !r.u32(kinds) || !r.u32(ctrs) ||
      !r.u32(buckets)) {
    return std::nullopt;
  }
  if (magic != kSnapshotMagic || ver != kMetricsVersion ||
      kinds != kMaxRpcKinds || ctrs != kRtCounterCount ||
      buckets != kHistBuckets) {
    return std::nullopt;
  }
  MetricsSnapshot s;
  s.version = ver;
  if (!r.u32(s.host) || !r.u64(s.processes)) return std::nullopt;
  for (auto& k : s.rpc) {
    if (!decode_hist(r, k.latency_ns) || !r.u64(k.calls) || !r.u64(k.bytes) ||
        !r.u64(k.retries) || !r.u64(k.errors)) {
      return std::nullopt;
    }
  }
  for (auto& c : s.counters) {
    if (!r.u64(c)) return std::nullopt;
  }
  if (!decode_hist(r, s.lock_wait_ns) || !decode_hist(r, s.op_read_ns) ||
      !decode_hist(r, s.op_write_ns)) {
    return std::nullopt;
  }
  return s;
}

// ---- JSON report -----------------------------------------------------------

namespace {

void hist_json(util::JsonWriter& j, const HistSnapshot& h) {
  j.begin_object();
  j.key("count").value(h.count);
  j.key("p50_us").value(h.percentile(0.50) / 1000.0);
  j.key("p90_us").value(h.percentile(0.90) / 1000.0);
  j.key("p99_us").value(h.percentile(0.99) / 1000.0);
  j.key("mean_us").value(h.mean() / 1000.0);
  j.key("max_us").value(static_cast<double>(h.max) / 1000.0);
  j.end_object();
}

}  // namespace

void metrics_json(util::JsonWriter& j, const MetricsSnapshot& s,
                  const char* (*kind_name)(std::uint8_t)) {
  j.begin_object();
  j.key("version").value(s.version);
  j.key("processes").value(s.processes);
  j.key("counters").begin_object();
  for (std::size_t c = 0; c < kRtCounterCount; ++c) {
    j.key(rt_counter_name(static_cast<RtCounter>(c))).value(s.counters[c]);
  }
  j.end_object();
  j.key("rpc").begin_object();
  for (std::size_t k = 0; k < kMaxRpcKinds; ++k) {
    const auto& slot = s.rpc[k];
    if (slot.calls == 0 && slot.errors == 0) continue;
    j.key(kind_name(static_cast<std::uint8_t>(k))).begin_object();
    j.key("calls").value(slot.calls);
    j.key("bytes").value(slot.bytes);
    j.key("retries").value(slot.retries);
    j.key("errors").value(slot.errors);
    j.key("latency");
    hist_json(j, slot.latency_ns);
    j.end_object();
  }
  j.end_object();
  j.key("lock_wait");
  hist_json(j, s.lock_wait_ns);
  j.key("op_read");
  hist_json(j, s.op_read_ns);
  j.key("op_write");
  hist_json(j, s.op_write_ns);
  j.end_object();
}

// ---- live registry ---------------------------------------------------------

void MetricsRegistry::Hist::record(std::uint64_t v) {
  buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
  // Tolerant max: a concurrent larger value may win the race and that is
  // fine — the loop only guarantees max never decreases.
  std::uint64_t cur = max.load(std::memory_order_relaxed);
  while (v > cur &&
         !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::Hist::fold_into(HistSnapshot& out) const {
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    out.buckets[i] += buckets[i].load(std::memory_order_relaxed);
  }
  out.count += count.load(std::memory_order_relaxed);
  out.sum += sum.load(std::memory_order_relaxed);
  const auto m = max.load(std::memory_order_relaxed);
  if (m > out.max) out.max = m;
}

void MetricsRegistry::Hist::clear() {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

std::size_t MetricsRegistry::shard_index() {
  // Thread-identity sharding: stable per thread, cheap, and collision-
  // tolerant (a shared shard only costs contention, never correctness).
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
}

MetricsRegistry::Shard& MetricsRegistry::my_shard() {
  thread_local const std::size_t idx = shard_index();
  return shards_[idx];
}

void MetricsRegistry::record_rpc(std::uint8_t kind, std::uint64_t latency_ns,
                                 std::uint64_t bytes) {
  if (kind >= kMaxRpcKinds) return;
  auto& slot = my_shard().rpc[kind];
  slot.latency.record(latency_ns);
  slot.calls.fetch_add(1, std::memory_order_relaxed);
  slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void MetricsRegistry::record_rpc_error(std::uint8_t kind,
                                       std::uint64_t latency_ns) {
  if (kind >= kMaxRpcKinds) return;
  auto& slot = my_shard().rpc[kind];
  slot.latency.record(latency_ns);
  slot.errors.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::record_retry(std::uint8_t kind) {
  if (kind >= kMaxRpcKinds) return;
  my_shard().rpc[kind].retries.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::incr(RtCounter c, std::uint64_t n) {
  my_shard().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void MetricsRegistry::record_lock_wait(std::uint64_t ns) {
  my_shard().lock_wait.record(ns);
}

void MetricsRegistry::record_op_read(std::uint64_t ns) {
  my_shard().op_read.record(ns);
}

void MetricsRegistry::record_op_write(std::uint64_t ns) {
  my_shard().op_write.record(ns);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.host = host_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    for (std::size_t k = 0; k < kMaxRpcKinds; ++k) {
      const auto& slot = shard.rpc[k];
      slot.latency.fold_into(s.rpc[k].latency_ns);
      s.rpc[k].calls += slot.calls.load(std::memory_order_relaxed);
      s.rpc[k].bytes += slot.bytes.load(std::memory_order_relaxed);
      s.rpc[k].retries += slot.retries.load(std::memory_order_relaxed);
      s.rpc[k].errors += slot.errors.load(std::memory_order_relaxed);
    }
    for (std::size_t c = 0; c < kRtCounterCount; ++c) {
      s.counters[c] += shard.counters[c].load(std::memory_order_relaxed);
    }
    shard.lock_wait.fold_into(s.lock_wait_ns);
    shard.op_read.fold_into(s.op_read_ns);
    shard.op_write.fold_into(s.op_write_ns);
  }
  return s;
}

void MetricsRegistry::reset() {
  for (auto& shard : shards_) {
    for (auto& slot : shard.rpc) {
      slot.latency.clear();
      slot.calls.store(0, std::memory_order_relaxed);
      slot.bytes.store(0, std::memory_order_relaxed);
      slot.retries.store(0, std::memory_order_relaxed);
      slot.errors.store(0, std::memory_order_relaxed);
    }
    for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
    shard.lock_wait.clear();
    shard.op_read.clear();
    shard.op_write.clear();
  }
}

}  // namespace coop::obs
